//! End-to-end tests of the `qec` command line binary.

use std::process::Command;

fn qec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qec"))
}

#[test]
fn compiles_and_evaluates_a_full_query() {
    let out = qec()
        .args([
            "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)",
            "--n",
            "16",
            "--evaluate",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LOGDAPB"), "{text}");
    assert!(text.contains("matches the RAM baseline"), "{text}");
}

#[test]
fn projective_query_uses_two_families() {
    let out = qec()
        .args(["Q(a, c) :- R(a, b), S(b, c)", "--n", "16", "--evaluate"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("da-fhtw"), "{text}");
    assert!(text.contains("family 2"), "{text}");
}

#[test]
fn csv_loading_and_proof_printing() {
    let dir = std::env::temp_dir().join(format!("qec-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("edges.csv");
    std::fs::write(&csv, "0,1\n1,2\n0,2\n# comment\n").unwrap();
    let out = qec()
        .args([
            "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)",
            "--n",
            "8",
            "--evaluate",
            "--proof",
            "--load",
            &format!("R={}", csv.display()),
            "--load",
            &format!("S={}", csv.display()),
            "--load",
            &format!("T={}", csv.display()),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("≥  1·h(ABC)"), "{text}"); // the Shannon-flow inequality
    assert!(text.contains("1 result tuples"), "{text}"); // the one triangle
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["Q(a) :- R(a, a)"],                   // repeated variable
        vec!["Q(a) :- R(a)", "--deg", "nonsense"], // malformed --deg
        vec!["Q(a) :- R(a)", "--load", "Z=/no/file", "--evaluate"], // unknown atom
        vec!["--n", "8"],                          // missing query
    ] {
        let out = qec().args(&args).output().expect("runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn netlist_and_dot_outputs() {
    let dir = std::env::temp_dir().join(format!("qec-cli-dot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dot = dir.join("plan.dot");
    let netlist = dir.join("circuit.netlist");
    let out = qec()
        .args([
            "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)",
            "--n",
            "4",
            "--dot",
            dot.to_str().unwrap(),
            "--netlist",
            netlist.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph rc {"));
    assert!(dot_text.contains("shape=box"));
    // the netlist parses back into an evaluable circuit
    let net_text = std::fs::read_to_string(&netlist).unwrap();
    let circuit = query_circuits::circuit::read_netlist(&net_text).unwrap();
    assert!(circuit.num_inputs() > 0);
    std::fs::remove_dir_all(&dir).ok();
}
