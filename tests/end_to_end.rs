//! Integration tests spanning the whole stack: parser → bounds → proof
//! sequences → PANDA-C → word-circuit lowering → evaluation → MPC, all
//! cross-checked against the RAM baselines.

use query_circuits::circuit::{lower_with, CompileOptions, Mode};
use query_circuits::core::{compile_fcq, paper_cost, OutputSensitive};
use query_circuits::entropy::{polymatroid_bound, prove_bound, validate};
use query_circuits::query::baseline::{evaluate_pairwise, generic_join, yannakakis};
use query_circuits::query::{k_cycle, k_path, parse_cq, snowflake, triangle, Cq};
use query_circuits::relation::{
    agm_worst_case_triangle, random_relation, zipf_relation, Database, DcSet, DegreeConstraint,
    Relation, Var, VarSet,
};

fn uniform_dc(cq: &Cq, n: u64) -> DcSet {
    DcSet::from_vec(
        cq.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    )
}

fn uniform_db(cq: &Cq, n: usize, seed: u64) -> Database {
    let mut db = Database::new();
    for (i, a) in cq.atoms.iter().enumerate() {
        db.insert(
            a.name.clone(),
            random_relation(a.vars.to_vec(), n, seed * 101 + i as u64),
        );
    }
    db
}

#[test]
fn full_pipeline_triangle_word_circuit() {
    // parse → compile → lower → evaluate, vs two independent baselines
    let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)").unwrap();
    let dc = uniform_dc(&q, 24);
    let compiled = compile_fcq(&q, &dc).unwrap();
    let lowered = compiled.rc.lower(Mode::Build);
    for seed in 0..3 {
        let db = uniform_db(&q, 20, seed);
        let circuit = &lowered.run(&db).unwrap()[0];
        assert_eq!(*circuit, evaluate_pairwise(&q, &db).unwrap(), "seed {seed}");
        assert_eq!(*circuit, generic_join(&q, &db).unwrap(), "seed {seed}");
    }
}

#[test]
fn oblivious_topology_is_data_independent() {
    // the same circuit evaluates different instances — obliviousness is
    // the whole point (Sec. 1, outsourced processing)
    let q = triangle();
    let dc = uniform_dc(&q, 16);
    let compiled = compile_fcq(&q, &dc).unwrap();
    let lowered = compiled.rc.lower(Mode::Build);
    let empty = {
        let mut db = Database::new();
        for a in &q.atoms {
            db.insert(a.name.clone(), Relation::empty(a.vars));
        }
        db
    };
    let (r, s, t) = agm_worst_case_triangle(Var(0), Var(1), Var(2), 16);
    let mut worst = Database::new();
    worst.insert("R", r);
    worst.insert("S", s);
    worst.insert("T", t);
    assert_eq!(lowered.run(&empty).unwrap()[0].len(), 0);
    assert_eq!(lowered.run(&worst).unwrap()[0].len(), 64); // 16^1.5
}

#[test]
fn skewed_data_through_decompositions() {
    // Zipf-skewed relations exercise every decomposition bucket
    let q = triangle();
    let dc = uniform_dc(&q, 48);
    let compiled = compile_fcq(&q, &dc).unwrap();
    let mut db = Database::new();
    db.insert("R", zipf_relation(Var(0), Var(1), 40, 1.2, 1));
    db.insert("S", zipf_relation(Var(1), Var(2), 40, 1.2, 2));
    db.insert("T", random_relation(vec![Var(0), Var(2)], 40, 3));
    let got = compiled.rc.evaluate_ram(&db).unwrap();
    assert_eq!(got[0], evaluate_pairwise(&q, &db).unwrap());
}

#[test]
fn output_sensitive_pipeline_matches_yannakakis_baseline() {
    let q0 = snowflake(2);
    let q = Cq {
        free: [Var(0), Var(1)].into_iter().collect::<VarSet>(),
        ..q0
    };
    let dc = uniform_dc(&q, 24);
    let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
    for seed in 0..3 {
        let db = uniform_db(&q, 20, seed + 50);
        let expect = evaluate_pairwise(&q, &db).unwrap();
        let ram_yk = yannakakis(&q, &db).unwrap().expect("acyclic");
        assert_eq!(ram_yk, expect);
        assert_eq!(os.evaluate_ram(&db).unwrap(), expect, "seed {seed}");
        assert_eq!(
            os.count_ram(&db).unwrap(),
            expect.len() as u64,
            "seed {seed}"
        );
    }
}

#[test]
fn proof_sequences_validate_across_corpus_and_match_bounds() {
    for q in [triangle(), k_cycle(4), k_path(3), snowflake(2)] {
        let dc = uniform_dc(&q, 1 << 6);
        let bound = polymatroid_bound(q.num_vars(), &dc, q.all_vars()).unwrap();
        let proof = prove_bound(q.num_vars(), &dc, q.all_vars(), None).unwrap();
        validate(&proof).unwrap();
        assert_eq!(proof.log_cost, bound.log_value, "{q}");
    }
}

#[test]
fn panda_cost_beats_naive_asymptotically() {
    let q = triangle();
    let ratio_at = |e: u32| -> f64 {
        let dc = uniform_dc(&q, 1 << e);
        let p = compile_fcq(&q, &dc).unwrap();
        let (naive, _) = query_circuits::core::naive_circuit(&q, &dc).unwrap();
        paper_cost(&naive).to_f64() / paper_cost(&p.rc).to_f64()
    };
    let (r6, r10) = (ratio_at(6), ratio_at(10));
    assert!(
        r10 > 4.0 * r6,
        "speedup must grow ~N^1.5/polylog: {r6} → {r10}"
    );
}

#[test]
fn secure_two_party_join_end_to_end() {
    use query_circuits::circuit::{encode_relation, join_pk, relation_to_values, Builder};
    let m = 6usize;
    let mut b = Builder::new(Mode::Build);
    let rw = encode_relation(&mut b, vec![Var(0), Var(1)], m);
    let sw = encode_relation(&mut b, vec![Var(1), Var(2)], m);
    let j = join_pk(&mut b, &rw, &sw);
    let schema = j.schema.clone();
    let c = b.finish(j.flatten());
    let bc = lower_with(&c, 16, &CompileOptions::from_env());

    let r = Relation::from_rows(
        vec![Var(0), Var(1)],
        vec![vec![1, 5], vec![2, 6], vec![3, 5]],
    );
    let s = Relation::from_rows(vec![Var(1), Var(2)], vec![vec![5, 100], vec![7, 200]]);
    let mut inputs = relation_to_values(&r, m).unwrap();
    inputs.extend(relation_to_values(&s, m).unwrap());
    let bits = bc.pack_inputs(&inputs);
    let (out_bits, stats) = query_circuits::mpc::run_two_party(&bc, &bits, 5).unwrap();
    let out = query_circuits::circuit::decode_relation(&schema, &bc.unpack_outputs(&out_bits));
    assert_eq!(out, r.natural_join(&s));
    // the networked session consumes one packed triple (64 scalar
    // triples in word form) per circuit AND, in AND-depth many rounds
    assert_eq!(stats.and_gates, bc.and_count() * 64);
    assert_eq!(stats.rounds, bc.and_depth() as u64);
    assert!(stats.bytes_sent > 0 && stats.bytes_sent == stats.bytes_recv);
}

#[test]
fn degree_constraints_shrink_circuits() {
    // an FD on S collapses the triangle's bound from N^1.5 to N
    let q = triangle();
    let mut dc = uniform_dc(&q, 1 << 8);
    let free = compile_fcq(&q, &dc).unwrap();
    dc.add(DegreeConstraint::fd(
        VarSet::singleton(Var(1)),
        [Var(1), Var(2)].into_iter().collect(),
    ));
    let fd = compile_fcq(&q, &dc).unwrap();
    assert!(fd.bound.log_value < free.bound.log_value);
    assert!(paper_cost(&fd.rc) < paper_cost(&free.rc));
}

#[test]
fn nonconforming_instances_are_rejected_not_miscomputed() {
    // feed more tuples than declared: the layout refuses
    let q = triangle();
    let dc = uniform_dc(&q, 8);
    let compiled = compile_fcq(&q, &dc).unwrap();
    let lowered = compiled.rc.lower(Mode::Build);
    let db = uniform_db(&q, 20, 1); // 20 > 8
    assert!(lowered.run(&db).is_err());
    assert!(compiled.rc.evaluate_ram(&db).is_err());
}

#[test]
fn boolean_query_two_family() {
    let q = parse_cq("Q() :- R(x, y), S(y, z), T(z, w)").unwrap();
    let dc = uniform_dc(&q, 16);
    let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
    for seed in 0..3 {
        let db = uniform_db(&q, 12, seed + 9);
        let expect = !evaluate_pairwise(&q, &db).unwrap().is_empty();
        let got = !os.evaluate_ram(&db).unwrap().is_empty();
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn single_bit_secure_triangle_existence() {
    // The minimal-leakage MPC artifact: a Boolean-query circuit whose
    // word-level output is ONE wire; two parties learn only whether a
    // triangle exists across their joint data.
    use query_circuits::relation::agm_worst_case_triangle;
    let q = parse_cq("Q() :- R(a, b), S(b, c), T(a, c)").unwrap();
    let dc = uniform_dc(&q, 9);
    let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
    let rc = os.boolean_circuit().unwrap();
    let lowered = rc.lower(Mode::Build);
    // the circuit's entire output is one word: arity-0 slot = validity bit
    assert_eq!(lowered.circuit.outputs().len(), 1);
    let bc = lower_with(&lowered.circuit, 16, &CompileOptions::from_env());

    let run = |db: &Database| -> bool {
        let words = lowered.layout.values(db).unwrap();
        let bits = bc.pack_inputs(&words);
        let (out, _) = query_circuits::mpc::run_two_party(&bc, &bits, 11).unwrap();
        let words = bc.unpack_outputs(&out);
        words[0] != 0
    };

    // a database with triangles
    let (r, s, t) = agm_worst_case_triangle(Var(0), Var(1), Var(2), 9);
    let mut db_yes = Database::new();
    db_yes.insert("R", r);
    db_yes.insert("S", s);
    db_yes.insert("T", t);
    assert!(run(&db_yes));
    assert!(!evaluate_pairwise(&q, &db_yes).unwrap().is_empty());

    // a triangle-free database (bipartite-style shift)
    let mut db_no = Database::new();
    db_no.insert(
        "R",
        Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 2], vec![3, 4]]),
    );
    db_no.insert(
        "S",
        Relation::from_rows(vec![Var(1), Var(2)], vec![vec![2, 5], vec![4, 6]]),
    );
    db_no.insert(
        "T",
        Relation::from_rows(vec![Var(0), Var(2)], vec![vec![1, 6], vec![3, 5]]),
    );
    assert!(!run(&db_no));
    assert!(evaluate_pairwise(&q, &db_no).unwrap().is_empty());
}

#[test]
fn degree_constraint_on_projection_gets_a_guard() {
    // Sec. 3.1: a degree constraint on Y ⊂ F is guarded by precomputing
    // Π_Y(R_F); here a cardinality constraint on the single column B.
    let q = triangle();
    let mut dc = uniform_dc(&q, 1 << 8);
    // few distinct B values: h(ABC) ≤ h(B) + h(AB|B) + h(BC|B)-ish —
    // the planner may or may not use it, but it must be guarded, compile,
    // and stay correct
    dc.add(DegreeConstraint::cardinality(VarSet::singleton(Var(1)), 4));
    let compiled = compile_fcq(&q, &dc).unwrap();
    let mut db = uniform_db(&q, 40, 5);
    // make the instance conform: B values in [0, 4)
    let squash = |r: &Relation, col: usize| -> Relation {
        Relation::from_rows(
            r.schema().to_vec(),
            r.iter()
                .map(|row| {
                    let mut t = row.clone();
                    t[col] %= 4;
                    t
                })
                .collect(),
        )
    };
    let r = squash(db.get("R").unwrap(), 1);
    let s = squash(db.get("S").unwrap(), 0);
    db.insert("R", r);
    db.insert("S", s);
    let got = compiled.rc.evaluate_ram(&db).unwrap();
    assert_eq!(got[0], evaluate_pairwise(&q, &db).unwrap());
}

#[test]
fn disconnected_query_cross_product() {
    // a query whose hypergraph is disconnected: the result is a cross
    // product of the components — phase 3 must handle the empty shared
    // set (Alg. 9's join over no common attributes)
    let q = parse_cq("Q(a, b, x, y) :- R(a, b), S(x, y)").unwrap();
    let dc = uniform_dc(&q, 8);
    let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
    for seed in 0..2 {
        let db = uniform_db(&q, 6, seed + 31);
        let expect = evaluate_pairwise(&q, &db).unwrap();
        assert_eq!(
            os.count_ram(&db).unwrap(),
            expect.len() as u64,
            "seed {seed}"
        );
        assert_eq!(os.evaluate_ram(&db).unwrap(), expect, "seed {seed}");
    }
    // PANDA handles the same query directly (its c-steps cross-product)
    let compiled = compile_fcq(&q, &dc).unwrap();
    let db = uniform_db(&q, 6, 77);
    assert_eq!(
        compiled.rc.evaluate_ram(&db).unwrap()[0],
        evaluate_pairwise(&q, &db).unwrap()
    );
}
