//! Property test: PANDA-C must agree with the RAM baseline on *random*
//! conjunctive queries — random hypergraphs, not just the curated corpus.

use proptest::prelude::*;
use query_circuits::core::compile_fcq;
use query_circuits::query::baseline::evaluate_pairwise;
use query_circuits::query::{Atom, Cq};
use query_circuits::relation::{
    random_relation_with_domain, Database, DcSet, DegreeConstraint, Var, VarSet,
};

/// A random connected-ish FCQ over `n ∈ 3..=4` variables with 2–4 binary
/// or ternary atoms covering every variable.
fn cq_strategy() -> impl Strategy<Value = Cq> {
    (
        3u32..=4,
        prop::collection::vec((any::<u64>(), 2usize..=3), 2..=4),
    )
        .prop_map(|(n, seeds)| {
            let mut atoms = Vec::new();
            for (i, (seed, arity)) in seeds.iter().enumerate() {
                // pick `arity` distinct variables deterministically from the seed
                let mut vars = VarSet::EMPTY;
                let mut s = *seed;
                while (vars.len() as usize) < *arity {
                    vars = vars.with(Var((s % u64::from(n)) as u32));
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
                atoms.push(Atom {
                    name: format!("R{i}"),
                    vars,
                });
            }
            // ensure every variable is covered (append singleton-covering
            // binary atoms if needed)
            let covered = atoms.iter().fold(VarSet::EMPTY, |acc, a| acc.union(a.vars));
            for v in VarSet::full(n).minus(covered).iter() {
                let other = if v.0 == 0 { Var(1) } else { Var(0) };
                let name = format!("C{}", v.0);
                atoms.push(Atom {
                    name,
                    vars: VarSet::singleton(v).with(other),
                });
            }
            let names = (0..n).map(|i| format!("x{i}")).collect();
            Cq::new(names, atoms, VarSet::full(n)).expect("well-formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn panda_matches_baseline_on_random_queries(q in cq_strategy(), seed in 0u64..1000) {
        let n = 16u64;
        let dc = DcSet::from_vec(
            q.atoms.iter().map(|a| DegreeConstraint::cardinality(a.vars, n)).collect(),
        );
        let compiled = compile_fcq(&q, &dc).expect("every covered FCQ compiles");
        let mut db = Database::new();
        for (i, a) in q.atoms.iter().enumerate() {
            db.insert(
                a.name.clone(),
                random_relation_with_domain(a.vars.to_vec(), 14, 6, seed * 17 + i as u64),
            );
        }
        let got = compiled.rc.evaluate_ram(&db).expect("conforming instance");
        let expect = evaluate_pairwise(&q, &db).expect("baseline");
        prop_assert_eq!(&got[0], &expect, "{} seed {}", q, seed);
    }
}
