//! Property test: the output-sensitive two-family pipeline (Sec. 6) must
//! agree with the RAM baseline on random *projective* queries — random
//! acyclic-ish bodies with random free-variable subsets.

use proptest::prelude::*;
use query_circuits::core::OutputSensitive;
use query_circuits::query::baseline::evaluate_pairwise;
use query_circuits::query::{k_path, k_star, snowflake, Cq};
use query_circuits::relation::{
    random_relation_with_domain, Database, DcSet, DegreeConstraint, VarSet,
};

fn body_strategy() -> impl Strategy<Value = Cq> {
    prop_oneof![
        (2usize..=4).prop_map(k_path),
        (2usize..=4).prop_map(k_star),
        (1usize..=3).prop_map(snowflake),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn output_sensitive_matches_baseline_on_random_projections(
        body in body_strategy(),
        free_mask in 1u64..32,
        seed in 0u64..500,
    ) {
        let n_vars = body.num_vars();
        let free = VarSet(free_mask & VarSet::full(n_vars).0);
        let q = Cq { free, ..body };
        let dc = DcSet::from_vec(
            q.atoms.iter().map(|a| DegreeConstraint::cardinality(a.vars, 16)).collect(),
        );
        let os = OutputSensitive::build(&q, &dc, 4_000).expect("free-connex GHD exists");
        let mut db = Database::new();
        for (i, a) in q.atoms.iter().enumerate() {
            db.insert(
                a.name.clone(),
                random_relation_with_domain(a.vars.to_vec(), 13, 6, seed * 23 + i as u64),
            );
        }
        let expect = evaluate_pairwise(&q, &db).expect("baseline");
        prop_assert_eq!(
            os.count_ram(&db).expect("count") as usize,
            expect.len(),
            "{} count", q
        );
        prop_assert_eq!(os.evaluate_ram(&db).expect("evaluate"), expect, "{}", q);
    }
}
