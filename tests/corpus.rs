//! Corpus-wide end-to-end checks: every query family the theory layer is
//! exercised on must also compile through PANDA-C and evaluate correctly
//! (RAM interpreter) against the pairwise-join baseline.

use query_circuits::core::{compile_fcq, paper_cost};
use query_circuits::query::baseline::evaluate_pairwise;
use query_circuits::query::{bowtie, full_star, k_cycle, k_path, k_star, loomis_whitney, Cq};
use query_circuits::relation::{random_relation, Database, DcSet, DegreeConstraint, Var};

fn uniform_dc(cq: &Cq, n: u64) -> DcSet {
    DcSet::from_vec(
        cq.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    )
}

fn uniform_db(cq: &Cq, n: usize, seed: u64) -> Database {
    let mut db = Database::new();
    for (i, a) in cq.atoms.iter().enumerate() {
        db.insert(
            a.name.clone(),
            random_relation(a.vars.to_vec(), n, seed * 131 + i as u64),
        );
    }
    db
}

fn check_fcq(q: &Cq, n: u64, rows: usize, seeds: u64) {
    let dc = uniform_dc(q, n);
    let compiled = compile_fcq(q, &dc).unwrap_or_else(|e| panic!("{q} failed to compile: {e}"));
    assert!(
        compiled.rc.nodes.len() < 3000,
        "{q}: relational circuit should be Õ(1) gates, got {}",
        compiled.rc.nodes.len()
    );
    for seed in 0..seeds {
        let db = uniform_db(q, rows, seed);
        let got = compiled
            .rc
            .evaluate_ram(&db)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let expect = evaluate_pairwise(q, &db).expect("baseline");
        assert_eq!(got[0], expect, "{q} seed {seed}");
    }
}

#[test]
fn five_cycle_compiles_and_evaluates() {
    check_fcq(&k_cycle(5), 16, 14, 3);
}

#[test]
fn bowtie_compiles_and_evaluates() {
    check_fcq(&bowtie(), 16, 14, 3);
}

#[test]
fn loomis_whitney_4_compiles_and_evaluates() {
    // ternary relations; DAPB = N^{4/3}
    check_fcq(&loomis_whitney(4), 16, 14, 3);
}

#[test]
fn four_path_compiles_and_evaluates() {
    check_fcq(&k_path(4), 16, 14, 3);
}

#[test]
fn five_star_compiles_and_evaluates() {
    check_fcq(&k_star(5), 12, 10, 2);
}

#[test]
fn full_star_with_ternary_atom() {
    check_fcq(&full_star(), 16, 14, 3);
}

#[test]
fn six_cycle_compiles_and_evaluates() {
    check_fcq(&k_cycle(6), 12, 10, 2);
}

#[test]
fn degree_constrained_corpus() {
    // 4-cycle with two *consecutive* degree-bounded edges pointing along
    // the cycle (x1→x2 and x2→x3): LOGDAPB drops from 2 log N to
    // log N + 2 log d, because the chain h(ABCD) ≤ h(AB) + h(C|B) + h(D|C)
    // now composes. (Bounding two opposite edges does NOT help — the
    // conditional directions cannot be chained; the polymatroid bound
    // stays at 2 log N, which the first assertion below also documents.)
    let q = k_cycle(4);
    let n = 32u64;
    let mut opposite = uniform_dc(&q, n);
    opposite.add(DegreeConstraint::degree(
        [Var(1)].into_iter().collect(),
        [Var(1), Var(2)].into_iter().collect(),
        2,
    ));
    opposite.add(DegreeConstraint::degree(
        [Var(3)].into_iter().collect(),
        [Var(3), Var(0)].into_iter().collect(),
        2,
    ));
    let free = compile_fcq(&q, &uniform_dc(&q, n)).expect("compiles");
    let opp = compile_fcq(&q, &opposite).expect("compiles");
    assert_eq!(
        opp.bound.log_value, free.bound.log_value,
        "opposite bounds do not chain"
    );

    let mut dc = uniform_dc(&q, n);
    dc.add(DegreeConstraint::degree(
        [Var(1)].into_iter().collect(),
        [Var(1), Var(2)].into_iter().collect(),
        2,
    ));
    dc.add(DegreeConstraint::degree(
        [Var(2)].into_iter().collect(),
        [Var(2), Var(3)].into_iter().collect(),
        2,
    ));
    let constrained = compile_fcq(&q, &dc).expect("compiles");
    assert!(constrained.bound.log_value < free.bound.log_value);
    assert!(paper_cost(&constrained.rc) < paper_cost(&free.rc));
    // and it is still correct on conforming data
    for seed in 0..2 {
        let mut db = uniform_db(&q, 24, seed);
        db.insert(
            "E1",
            query_circuits::relation::random_degree_bounded(Var(1), Var(2), 24, 2, seed + 70),
        );
        db.insert(
            "E2",
            query_circuits::relation::random_degree_bounded(Var(2), Var(3), 24, 2, seed + 80),
        );
        let got = constrained.rc.evaluate_ram(&db).expect("conforms");
        assert_eq!(got[0], evaluate_pairwise(&q, &db).unwrap(), "seed {seed}");
    }
}

#[test]
fn mixed_arity_query() {
    // a ternary atom joined with binary ones
    let q = query_circuits::query::parse_cq("Q(a, b, c, d) :- R(a, b, c), S(c, d), T(a, d)")
        .expect("parses");
    check_fcq(&q, 16, 14, 3);
}

#[test]
fn two_atoms_same_relation_shape() {
    // self-join-like shape: two atoms over disjoint variable pairs plus a
    // bridging atom
    let q = query_circuits::query::parse_cq("Q(a, b, c) :- R(a, b), R2(b, c), Bridge(a, c)")
        .expect("parses");
    check_fcq(&q, 16, 14, 3);
}
