//! Replays every `*.dlcase` under `tests/corpus/` through the Datalog
//! differential stage: RAM semi-naive reference, provenance evaluation,
//! compiled fixpoint circuit (RAM interpretation), and the lowered word
//! circuit under the full engine-option matrix.

use qec_check::{load_datalog_corpus, options_matrix, run_datalog_case};
use std::path::Path;

#[test]
fn datalog_corpus_replays_clean_through_the_full_matrix() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = load_datalog_corpus(&dir).unwrap();
    assert_eq!(cases.len(), 3, "expected the three workload cases");
    for (path, case) in cases {
        let outcome = run_datalog_case(&case, &options_matrix(case.seed))
            .unwrap_or_else(|d| panic!("{} diverges: {d}", path.display()));
        assert_eq!(
            outcome.configs,
            8,
            "{} ran a truncated matrix",
            path.display()
        );
        assert!(outcome.word_gates > 0);
        assert!(
            outcome.prov_nodes > 0,
            "{} has no provenance",
            path.display()
        );
    }
}
