//! Replays every corpus case under `tests/corpus/` through the full
//! differential matrix. Any case the fuzz driver ever shrinks and
//! checks in becomes a permanent regression test here.

use qec_check::{load_corpus, replay};
use std::path::Path;

#[test]
fn corpus_cases_replay_clean_through_the_full_matrix() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = load_corpus(&dir).unwrap();
    assert!(!cases.is_empty(), "corpus directory is empty");
    for (path, case) in cases {
        let outcome = replay(&case).unwrap_or_else(|d| panic!("{} diverges: {d}", path.display()));
        assert!(
            outcome.configs >= 8,
            "{} ran a truncated matrix",
            path.display()
        );
    }
}
