//! `qec` — the query-circuits command line.
//!
//! Compiles a conjunctive query into an oblivious circuit and reports the
//! bound, proof sequence, circuit sizes, and (optionally) evaluates it on
//! a random conforming instance.
//!
//! ```text
//! qec "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)" --n 256
//! qec "Q(a, c) :- R(a, b), S(b, c)" --n 128 --evaluate
//! qec "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)" --n 64 --deg "S:b:4" --lower
//! ```
//!
//! Options:
//! * `--n <N>`        cardinality bound for every atom (default 64)
//! * `--deg A:v:d`    extra degree constraint `deg_A(rest | v) ≤ d`
//! * `--lower`        also lower to a word-level circuit and print size/depth
//! * `--netlist <f>`  write the lowered circuit as a textual netlist to `f`
//! * `--plan`         print the relational circuit gate by gate
//! * `--proof`        print the Shannon-flow proof sequence (Sec. 3.4 style)
//! * `--dot <f>`      write the relational circuit as Graphviz DOT to `f`
//! * `--load R=f.csv` evaluate on CSV data for atom `R` (repeatable; atoms
//!   without `--load` get random data)
//! * `--evaluate`     evaluate on a random instance and cross-check the
//!   RAM baseline
//! * `--seed <s>`     RNG seed for `--evaluate` (default 1)

use std::process::ExitCode;

use query_circuits::circuit::Mode;
use query_circuits::core::{compile_fcq, naive_circuit, paper_cost, OutputSensitive};
use query_circuits::query::{baseline::evaluate_pairwise, parse_cq, Cq};
use query_circuits::relation::{random_relation, Database, DcSet, DegreeConstraint, Var, VarSet};

struct Options {
    query: String,
    n: u64,
    degs: Vec<(String, String, u64)>,
    lower: bool,
    evaluate: bool,
    seed: u64,
    netlist: Option<String>,
    plan: bool,
    proof: bool,
    dot: Option<String>,
    loads: Vec<(String, String)>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        query: String::new(),
        n: 64,
        degs: Vec::new(),
        lower: false,
        evaluate: false,
        seed: 1,
        netlist: None,
        plan: false,
        proof: false,
        dot: None,
        loads: Vec::new(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => {
                opts.n = args
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
            }
            "--deg" => {
                let spec = args.next().ok_or("--deg needs atom:var:bound")?;
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 3 {
                    return Err(format!("--deg expects atom:var:bound, got {spec}"));
                }
                let bound = parts[2].parse().map_err(|e| format!("--deg bound: {e}"))?;
                opts.degs
                    .push((parts[0].to_string(), parts[1].to_string(), bound));
            }
            "--lower" => opts.lower = true,
            "--plan" => opts.plan = true,
            "--proof" => opts.proof = true,
            "--dot" => opts.dot = Some(args.next().ok_or("--dot needs a path")?),
            "--load" => {
                let spec = args.next().ok_or("--load needs name=path.csv")?;
                let (name, path) = spec.split_once('=').ok_or("--load expects name=path.csv")?;
                opts.loads.push((name.to_string(), path.to_string()));
            }
            "--netlist" => opts.netlist = Some(args.next().ok_or("--netlist needs a path")?),
            "--evaluate" => opts.evaluate = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: qec \"Q(a,b) :- R(a,b), ...\" [--n N] [--deg atom:var:d] [--lower] [--netlist f] [--dot f] [--plan] [--proof] [--load R=f.csv] [--evaluate] [--seed s]".into());
            }
            q if opts.query.is_empty() => opts.query = q.to_string(),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if opts.query.is_empty() {
        return Err("missing query (try --help)".into());
    }
    Ok(opts)
}

fn build_dc(cq: &Cq, opts: &Options) -> Result<DcSet, String> {
    let mut v: Vec<DegreeConstraint> = cq
        .atoms
        .iter()
        .map(|a| DegreeConstraint::cardinality(a.vars, opts.n))
        .collect();
    for (atom_name, var_name, bound) in &opts.degs {
        let atom = cq
            .atoms
            .iter()
            .find(|a| &a.name == atom_name)
            .ok_or_else(|| format!("--deg: no atom named {atom_name}"))?;
        let var_idx = cq
            .var_names
            .iter()
            .position(|n| n == var_name)
            .ok_or_else(|| format!("--deg: no variable named {var_name}"))?;
        let on = VarSet::singleton(Var(var_idx as u32));
        if !on.is_subset(atom.vars) {
            return Err(format!(
                "--deg: {var_name} is not an attribute of {atom_name}"
            ));
        }
        v.push(DegreeConstraint::degree(on, atom.vars, *bound));
    }
    Ok(DcSet::from_vec(v))
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let cq = parse_cq(&opts.query).map_err(|e| e.to_string())?;
    let dc = build_dc(&cq, &opts)?;
    println!("query      : {cq}");
    println!(
        "constraints: {}",
        dc.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    if cq.is_full() {
        let compiled = compile_fcq(&cq, &dc).map_err(|e| e.to_string())?;
        println!(
            "LOGDAPB    : {} (worst-case output ≤ 2^{})",
            compiled.bound.log_value, compiled.bound.log_value
        );
        println!(
            "proof      : {} steps, order {:?}, certificate cost {}",
            compiled.proof.steps.len(),
            compiled
                .proof
                .order
                .iter()
                .map(|v| cq.var_name(*v).to_string())
                .collect::<Vec<_>>(),
            compiled.proof.log_cost
        );
        println!(
            "rel circuit: {} gates, {} branches, paper cost {}",
            compiled.rc.nodes.len(),
            compiled.branches,
            paper_cost(&compiled.rc)
        );
        if opts.proof {
            print!("{}", compiled.proof);
        }
        if opts.plan {
            print!("{}", compiled.rc);
        }
        if let Some(path) = &opts.dot {
            std::fs::write(path, compiled.rc.to_dot()).map_err(|e| format!("--dot: {e}"))?;
            println!("dot        : wrote circuit graph to {path}");
        }
        let (naive, _) = naive_circuit(&cq, &dc).map_err(|e| e.to_string())?;
        println!(
            "vs naive   : cost {} ({:.1}x)",
            paper_cost(&naive),
            paper_cost(&naive).to_f64() / paper_cost(&compiled.rc).to_f64()
        );
        if opts.lower || opts.netlist.is_some() {
            let mode = if opts.netlist.is_some() {
                Mode::Build
            } else {
                Mode::Count
            };
            let lowered = compiled.rc.lower(mode);
            println!(
                "word circuit: {} gates, depth {}",
                lowered.circuit.size(),
                lowered.circuit.depth()
            );
            if let Some(path) = &opts.netlist {
                let text = query_circuits::circuit::write_netlist(&lowered.circuit);
                std::fs::write(path, &text).map_err(|e| format!("--netlist: {e}"))?;
                println!("netlist    : wrote {} bytes to {path}", text.len());
            }
        }
        if opts.evaluate {
            let db = build_db(&cq, &opts)?;
            let got = compiled.rc.evaluate_ram(&db).map_err(|e| e.to_string())?;
            let expect = evaluate_pairwise(&cq, &db).map_err(|e| e.to_string())?;
            if got[0] != expect {
                return Err("MISMATCH against RAM baseline (bug)".into());
            }
            println!(
                "evaluate   : {} result tuples — matches the RAM baseline",
                got[0].len()
            );
        }
    } else {
        let os = OutputSensitive::build(&cq, &dc, 10_000).map_err(|e| e.to_string())?;
        println!("da-fhtw    : {} (log₂)", os.width);
        let count_rc = os.count_circuit().map_err(|e| e.to_string())?;
        println!("family 1   : cost {} (computes OUT)", paper_cost(&count_rc));
        if opts.evaluate {
            let db = build_db(&cq, &opts)?;
            let out = os.count_ram(&db).map_err(|e| e.to_string())?;
            let query_rc = os.query_circuit(out).map_err(|e| e.to_string())?;
            println!("family 2   : cost {} at OUT = {out}", paper_cost(&query_rc));
            let got = os.evaluate_ram(&db).map_err(|e| e.to_string())?;
            let expect = evaluate_pairwise(&cq, &db).map_err(|e| e.to_string())?;
            if got != expect {
                return Err("MISMATCH against RAM baseline (bug)".into());
            }
            println!(
                "evaluate   : {} result tuples — matches the RAM baseline",
                got.len()
            );
        } else {
            let query_rc = os.query_circuit(opts.n).map_err(|e| e.to_string())?;
            println!(
                "family 2   : cost {} at OUT = {} (pass --evaluate for the real OUT)",
                paper_cost(&query_rc),
                opts.n
            );
        }
    }
    Ok(())
}

fn random_db(cq: &Cq, rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    for (i, a) in cq.atoms.iter().enumerate() {
        db.insert(
            a.name.clone(),
            random_relation(a.vars.to_vec(), rows, seed * 37 + i as u64),
        );
    }
    db
}

/// Random data for every atom, overridden by `--load` CSVs.
fn build_db(cq: &Cq, opts: &Options) -> Result<Database, String> {
    let mut db = random_db(cq, (opts.n - opts.n / 8).max(1) as usize, opts.seed);
    for (name, path) in &opts.loads {
        let atom = cq
            .atoms
            .iter()
            .find(|a| &a.name == name)
            .ok_or_else(|| format!("--load: no atom named {name}"))?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("--load {path}: {e}"))?;
        let rel = query_circuits::relation::Relation::from_csv(atom.vars.to_vec(), &text)
            .map_err(|(line, msg)| format!("--load {path}:{line}: {msg}"))?;
        if rel.len() as u64 > opts.n {
            return Err(format!(
                "--load {name}: {} tuples exceed the declared bound {} (raise --n)",
                rel.len(),
                opts.n
            ));
        }
        db.insert(name.clone(), rel);
    }
    Ok(db)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qec: {e}");
            ExitCode::FAILURE
        }
    }
}
