//! Facade crate re-exporting the `query-circuits` workspace — a
//! from-scratch implementation of *Query Evaluation by Circuits*
//! (Wang & Yi, PODS 2022).
//!
//! The heart of the library is [`core`]: the PANDA-C compiler
//! ([`core::compile_fcq`]) and the output-sensitive Yannakakis-C families
//! ([`core::OutputSensitive`]), built on the oblivious circuit substrate
//! in [`circuit`] and the polymatroid/proof-sequence machinery in
//! [`entropy`].
//!
//! ```
//! use query_circuits::circuit::Mode;
//! use query_circuits::core::compile_fcq;
//! use query_circuits::query::parse_cq;
//! use query_circuits::relation::{random_relation, Database, DcSet, DegreeConstraint, Var};
//!
//! // 1. a query and its declared degree constraints
//! let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)").unwrap();
//! let dc = DcSet::from_vec(
//!     q.atoms.iter().map(|a| DegreeConstraint::cardinality(a.vars, 16)).collect(),
//! );
//!
//! // 2. compile once: bound → proof sequence → relational circuit
//! let compiled = compile_fcq(&q, &dc).unwrap();
//!
//! // 3. lower to an oblivious word-level circuit and evaluate any
//! //    conforming database with it
//! let lowered = compiled.rc.lower(Mode::Build);
//! let mut db = Database::new();
//! db.insert("R", random_relation(vec![Var(0), Var(1)], 14, 1));
//! db.insert("S", random_relation(vec![Var(1), Var(2)], 14, 2));
//! db.insert("T", random_relation(vec![Var(0), Var(2)], 14, 3));
//! let triangles = &lowered.run(&db).unwrap()[0];
//!
//! // the circuit computes exactly the join
//! let expected = query_circuits::query::baseline::evaluate_pairwise(&q, &db).unwrap();
//! assert_eq!(*triangles, expected);
//! ```

pub use qec_bignum as bignum;
pub use qec_circuit as circuit;
pub use qec_core as core;
pub use qec_datalog as datalog;
pub use qec_entropy as entropy;
pub use qec_lp as lp;
pub use qec_mpc as mpc;
pub use qec_query as query;
pub use qec_relation as relation;
