//! Offline drop-in replacement for the subset of [`criterion`] this
//! workspace uses. The build container has no network access to
//! crates.io, so the workspace pins `criterion` to this path crate
//! (see `[workspace.dependencies]` in the root manifest).
//!
//! The harness is deliberately simple: per benchmark it warms up for
//! `warm_up_time`, then collects `sample_size` samples (each sample a
//! batch of iterations auto-sized so a sample takes roughly
//! `measurement_time / sample_size`), and reports min/mean/max like
//! criterion's `time: [..]` line. When `CRITERION_JSON` is set in the
//! environment, one JSON line per benchmark is appended to that file
//! (`{"id": .., "mean_ns": .., "min_ns": .., "max_ns": .., "iters": ..}`)
//! — this is how `BENCH_*.json` artifacts are produced, see
//! EXPERIMENTS.md.
//!
//! [`criterion`]: https://docs.rs/criterion/0.5

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group name prefixes it at print time).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded in JSON output, not rate-printed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    settings: Settings,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`, auto-sizing iteration batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut total_ns = 0.0f64;
        let mut min_ns = f64::MAX;
        let mut max_ns = 0.0f64;
        let mut iters = 0u64;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            iters += batch;
        }
        *self.result = Some(Sample {
            mean_ns: total_ns / self.settings.sample_size as f64,
            min_ns,
            max_ns,
            iters,
        });
    }

    /// Times `routine` with an explicit per-call iteration count,
    /// returning total elapsed time (criterion's `iter_custom` shape).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let per_sample_iters = 1u64;
        let mut min_ns = f64::MAX;
        let mut max_ns = 0.0f64;
        for _ in 0..self.settings.sample_size {
            let d = routine(per_sample_iters);
            let ns = d.as_nanos() as f64 / per_sample_iters as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total += d;
            iters += per_sample_iters;
        }
        *self.result = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns,
            max_ns,
            iters,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn record(id: &str, sample: &Sample, throughput: Option<Throughput>) {
    println!(
        "{id:<44} time: [{} {} {}]",
        human(sample.min_ns),
        human(sample.mean_ns),
        human(sample.max_ns)
    );
    if let Some(tp) = throughput {
        let (n, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = n as f64 / (sample.mean_ns / 1e9);
        println!("{:<44} thrpt: {rate:.3e} {unit}/s", "");
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let tp = match throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"id\":\"{id}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iters\":{}{tp}}}\n",
            sample.mean_ns, sample.min_ns, sample.max_ns, sample.iters
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut result = None;
        f(&mut Bencher {
            settings: self.settings,
            result: &mut result,
        });
        if let Some(sample) = result {
            record(
                &format!("{}/{}", self.name, id.id),
                &sample,
                self.throughput,
            );
        }
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut result = None;
        f(
            &mut Bencher {
                settings: self.settings,
                result: &mut result,
            },
            input,
        );
        if let Some(sample) = result {
            record(
                &format!("{}/{}", self.name, id.id),
                &sample,
                self.throughput,
            );
        }
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (a much-reduced `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Opens a settings-scoped group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut result = None;
        f(&mut Bencher {
            settings: self.settings,
            result: &mut result,
        });
        if let Some(sample) = result {
            record(&id.id, &sample, None);
        }
        self
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
