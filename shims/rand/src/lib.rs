//! Offline drop-in replacement for the subset of the [`rand` 0.8]
//! API this workspace uses. The build container has no network access
//! to crates.io, so the workspace pins `rand` to this path crate
//! instead (see `[workspace.dependencies]` in the root manifest).
//!
//! Implemented surface:
//! - [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for `bool` and the primitive integer/float types
//! - [`Rng::gen_range`] over half-open and inclusive integer ranges
//!   and half-open `f64` ranges
//!
//! The generator is xoshiro256**, seeded through splitmix64 — high
//! quality, deterministic across platforms, and fully reproducible
//! from a `u64` seed (the only seeding mode the workspace uses).
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided; it is the
/// only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the shim's stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // top bit: avoids low-bit weaknesses in weaker generators
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize, T: Standard> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| T::sample(rng))
    }
}

macro_rules! standard_tuple {
    ($($t:ident),+) => {
        impl<$($t: Standard),+> Standard for ($($t,)+) {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> ($($t,)+) {
                ($($t::sample(rng),)+)
            }
        }
    };
}
standard_tuple!(A);
standard_tuple!(A, B);
standard_tuple!(A, B, C);
standard_tuple!(A, B, C, D);
standard_tuple!(A, B, C, D, E);
standard_tuple!(A, B, C, D, E, F);

/// Ranges that can be sampled uniformly (the shim's stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded sampling: widening multiply keeps the
/// modulo bias below 2^-64 per draw, far under anything a test could
/// observe, while staying branch-light.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64) + 1;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}
range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli(`p`) draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the shim's `StdRng`. Statistically strong for
    /// test-data generation; NOT cryptographically secure (the real
    /// `StdRng` is ChaCha-based, so streams differ from upstream
    /// `rand`, which the workspace never relies on).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as recommended by the xoshiro authors
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn full_domain_sampling_hits_both_bools() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn arrays_sample_elementwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: [u64; 4] = rng.gen();
        let b: [u64; 4] = rng.gen();
        assert_ne!(a, b);
    }
}
