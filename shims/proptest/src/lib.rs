//! Offline drop-in replacement for the subset of [`proptest`] this
//! workspace uses. The build container has no network access to
//! crates.io, so the workspace pins `proptest` to this path crate
//! (see `[workspace.dependencies]` in the root manifest).
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! random cases drawn from the given strategies, seeded
//! deterministically from the test's name (reruns are reproducible;
//! set `PROPTEST_SHIM_SEED` to perturb the stream). Unlike upstream
//! proptest there is **no shrinking**: a failing case panics with the
//! case number and the assertion message. `.proptest-regressions`
//! files are ignored.
//!
//! Implemented surface: `proptest!` (with `#![proptest_config(..)]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`,
//! `Just`, integer/float range strategies, tuple strategies,
//! `prop::collection::{vec, btree_set}`, and the `Strategy`
//! combinators `prop_map`, `prop_filter`, `prop_flat_map`, `boxed`.
//!
//! [`proptest`]: https://docs.rs/proptest/1

use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng, Standard};

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 96 keeps the compute-heavy circuit
        // suites fast while still exercising plenty of structure.
        ProptestConfig { cases: 96 }
    }
}

/// A failed `prop_assert!`-family assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The generation source handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner: the stream is a function of the test name
    /// (and the optional `PROPTEST_SHIM_SEED` environment variable).
    pub fn deterministic(name: &str) -> TestRunner {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            for b in extra.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
            }
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values (upstream's `Strategy`, minus
/// shrinking: `generate` plays the role of `new_tree(..).current()`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (up to an attempt cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, runner: &mut TestRunner) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.generate(runner)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        self.0.generate_dyn(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for `T` — see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.rng().gen()
    }
}

/// Uniform strategy over `T`'s full value domain.
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$i.generate(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`prop::collection` upstream).
pub mod collection {
    use super::*;

    /// Ranges of collection sizes.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    /// `Vec` strategy: `size` elements of `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Vector of `size` draws from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// `BTreeSet` strategy — see [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> BTreeSet<S::Value> {
            let n = self.size.pick(runner);
            let mut out = BTreeSet::new();
            // the element domain may be smaller than `n`: cap the attempts
            // and accept a smaller set, as upstream does
            for _ in 0..(20 * n + 20) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(runner));
            }
            out
        }
    }

    /// Set of (up to) `size` distinct draws from `element`.
    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Everything a `proptest!` test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Picks uniformly among the listed strategies (all must yield the
/// same value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Implementation of [`prop_oneof!`].
pub struct UnionStrategy<V>(Vec<BoxedStrategy<V>>);

impl<V> UnionStrategy<V> {
    /// Union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> UnionStrategy<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        UnionStrategy(options)
    }
}

impl<V> Strategy for UnionStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().gen_range(0..self.0.len());
        self.0[i].generate(runner)
    }
}

/// Asserts a condition inside a `proptest!` body (returns an `Err`
/// instead of panicking so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::deterministic(concat!(
                    ::std::module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Wrapped(Vec<u64>);

    fn wrapped(max_len: usize) -> impl Strategy<Value = Wrapped> {
        prop::collection::vec(0u64..6, 0..max_len).prop_map(Wrapped)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in -4i64..=4, n in 1usize..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn composite_strategies(w in wrapped(8), pair in (any::<bool>(), 0u32..3)) {
            prop_assert!(w.0.len() < 8);
            prop_assert!(w.0.iter().all(|&v| v < 6));
            prop_assert!(pair.1 < 3);
        }

        #[test]
        fn filters_hold(v in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn oneof_and_sets(
            choice in prop_oneof![Just(1u64), Just(2u64), 10u64..12],
            s in prop::collection::btree_set(0u64..6, 0..6),
        ) {
            prop_assert!(choice == 1 || choice == 2 || (10..12).contains(&choice));
            prop_assert!(s.len() < 6);
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut r1 = crate::TestRunner::deterministic("x");
        let mut r2 = crate::TestRunner::deterministic("x");
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
