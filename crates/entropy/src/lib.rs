//! Polymatroid bounds, Shannon-flow inequalities, and proof sequences
//! (Secs. 3.2–3.4 of the paper).
//!
//! Pipeline:
//!
//! 1. [`polymatroid_bound`] solves the exact LP
//!    `max { h(B) : h ∈ Γ_n ∩ HDC }` over the cone of polymatroids
//!    (elemental monotonicity + submodularity constraints) intersected with
//!    the degree constraints, returning `LOGDAPB` and — by strong duality —
//!    the coefficient vector `δ` of a Shannon-flow inequality
//!    `⟨δ, h⟩ ≥ h(B)` with `Σ δ_{Y|X}·n_{Y|X} = LOGDAPB` (Theorem 1).
//! 2. [`prove_bound`] turns the inequality into an explicit **proof
//!    sequence** (Theorem 2): an ordered list of weighted monotonicity /
//!    submodularity / composition / decomposition steps whose intermediate
//!    coefficient vectors stay non-negative. The constructor searches
//!    variable orders and solves a small flow LP per order (the
//!    *chain-cover* construction described in `DESIGN.md`); for
//!    cardinality-only constraints the first order always succeeds and the
//!    proved inequality is exactly the (weighted) AGM bound.
//! 3. [`validate`] independently checks any proof sequence, so the
//!    downstream PANDA-C compiler never consumes an unsound certificate.
//!
//! Log scale: degree bounds `N` enter as `⌈log₂ N⌉` (exactly representable;
//! rounding up only weakens constraints, which preserves soundness of the
//! upper bound and costs at most a factor 2 per constraint — inside the
//! paper's `Õ(·)`).

mod bound;
mod chain;
mod proof;

pub use bound::{ceil_log2, polymatroid_bound, Bound, BoundError};
pub use chain::{prove_bound, prove_bound_opts, with_implied_degrees, ChainProofError, ProveOpts};
pub use proof::{validate, ProofError, ProofStep, ShannonFlowProof, Term, WeightedStep};
