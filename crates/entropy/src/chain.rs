//! The chain-cover proof-sequence constructor.
//!
//! For a target set `B` and a variable order `v_1..v_k` of `B`, write
//! `P_i = {v_1..v_i}`. The telescoping identity
//! `h(B) = Σ_i h(P_i | P_{i-1})` suggests proving the Shannon-flow
//! inequality by *covering the chain*:
//!
//! * a cardinality constraint `(∅, F, N_F)` is split into contiguous
//!   *blocks* of its positions (`d`-steps at block boundaries); each block
//!   `(F∩P_{l-1}, F∩P_r)` lifts to the chain jump `(P_{l-1}, P_r)` by one
//!   submodularity step `s_{F∩P_r, P_{l-1}}`;
//! * a degree constraint `(Z, W, N_{W|Z})` with `W ⊆ B` lifts in one
//!   submodularity step `s_{W, P_{l-1}}` to the jump `(P_{l-1}, P_r)`,
//!   provided the positions of `W∖Z` are contiguous (`l..r`) and all of
//!   `Z` lies before `l`;
//! * composition steps then thread one unit of weight from `P_0 = ∅`
//!   through the jumps to `(∅, B)`.
//!
//! Which constraints cover which jumps, at which weights, is a min-cost
//! unit-flow LP over the `k+1` chain nodes. For each cardinality
//! constraint the LP may choose among several *block plans* — its maximal
//! runs as-is (zero extra `d`-steps when contiguous), any single split of
//! one run, or the fully split single-link plan — so the constructor
//! prefers certificates with few decompositions: PANDA-C pays a
//! `Θ(log N)` branching factor per `d`-step, and on the triangle query
//! this reproduces exactly the paper's one-decomposition proof
//! sequence (3).
//!
//! The constructor searches variable orders (the query size is constant),
//! keeping the cheapest certificate; for cardinality-only constraints the
//! (weighted) AGM bound is always attained. Every certificate is
//! re-checked by [`validate`]; on queries whose polymatroid bound
//! genuinely needs a branching proof the chain bound may exceed
//! `LOGDAPB`, which callers can see by comparing
//! [`ShannonFlowProof::log_cost`] with the bound (see `DESIGN.md`,
//! “Substitutions”).

use qec_bignum::Rat;
use qec_lp::{LpBuilder, LpOutcome, Relation as LpRel};
use qec_relation::{DcSet, DegreeConstraint, Var, VarSet};

use crate::bound::{ceil_log2, polymatroid_bound, BoundError};
use crate::proof::{validate, ProofStep, ShannonFlowProof, Term, WeightedStep};

/// Failures of the chain constructor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainProofError {
    /// The polymatroid bound itself is infinite/ill-posed.
    Bound(BoundError),
    /// No variable order admits a chain cover of the target.
    NoChainCover,
    /// Internal: a constructed sequence failed validation (a bug; surfaced
    /// rather than silently emitting an unsound certificate).
    Invalid(crate::proof::ProofError),
}

impl std::fmt::Display for ChainProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainProofError::Bound(e) => write!(f, "bound error: {e}"),
            ChainProofError::NoChainCover => {
                write!(f, "no variable order admits a chain cover of the target")
            }
            ChainProofError::Invalid(e) => write!(f, "constructed proof failed validation: {e}"),
        }
    }
}

impl std::error::Error for ChainProofError {}

/// How aggressively cardinality constraints may be split into blocks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Granularity {
    /// No decompositions at all: single-run cardinality plans and
    /// (implied) degree jumps only. Preferred because PANDA-C pays a
    /// `Θ(log N)` branching factor per `d`-step.
    ZeroD,
    /// Maximal runs plus all single-split variants (at most one extra
    /// `d`-step per used plan).
    Coarse,
    /// Every position its own block (maximal flexibility, most
    /// decompositions). Tried only when the earlier tiers miss the bound.
    Fine,
}

/// Extends a constraint set with the *implied* degree constraints
/// `deg(F|X) ≤ N_F` for every cardinality constraint `(∅, F, N_F)` and
/// every `∅ ⊂ X ⊂ F`. These hold on every instance (a degree is at most
/// the cardinality), cost nothing extra in a certificate (`n_{F|X} = n_F`),
/// and let the chain constructor cover suffix jumps without
/// decomposition steps. PANDA-C applies the same augmentation so every
/// proof term has a guarded constraint entry.
pub fn with_implied_degrees(dc: &DcSet) -> DcSet {
    let mut out: Vec<DegreeConstraint> = dc.iter().copied().collect();
    for c in dc.iter() {
        if !c.is_cardinality() || c.of.len() < 2 {
            continue;
        }
        for x in c.of.subsets() {
            if !x.is_empty() && x != c.of {
                out.push(DegreeConstraint {
                    on: x,
                    of: c.of,
                    bound: c.bound,
                });
            }
        }
    }
    DcSet::from_vec(out)
}

/// One way of using a constraint: its chain blocks under the order.
struct Plan {
    cons: usize,
    blocks: Vec<(usize, usize)>,
}

struct Edge {
    from: usize,
    to: usize,
    plan: usize,
    block: usize,
}

struct OrderPlan {
    order: Vec<Var>,
    plans: Vec<Plan>,
    edges: Vec<Edge>,
    /// Weight per plan.
    delta: Vec<Rat>,
    /// Flow per edge.
    flow: Vec<Rat>,
    cost: Rat,
}

/// Maximal contiguous runs of sorted 1-based positions.
fn maximal_runs(positions: &[usize]) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &p in positions {
        match runs.last_mut() {
            Some((_, r)) if *r + 1 == p => *r = p,
            _ => runs.push((p, p)),
        }
    }
    runs
}

/// Block plans for a cardinality constraint's positions.
fn block_plans(positions: &[usize], granularity: Granularity) -> Vec<Vec<(usize, usize)>> {
    let runs = maximal_runs(positions);
    match granularity {
        Granularity::ZeroD => {
            if runs.len() == 1 {
                vec![runs]
            } else {
                Vec::new()
            }
        }
        Granularity::Fine => vec![positions.iter().map(|&p| (p, p)).collect()],
        Granularity::Coarse => {
            let mut plans = vec![runs.clone()];
            for (ri, &(l, r)) in runs.iter().enumerate() {
                for split in l..r {
                    // split this run after the position `split` occupies
                    let mut blocks: Vec<(usize, usize)> = Vec::new();
                    for (rj, &run) in runs.iter().enumerate() {
                        if rj == ri {
                            blocks.push((l, split));
                            blocks.push((split + 1, r));
                        } else {
                            blocks.push(run);
                        }
                    }
                    plans.push(blocks);
                }
            }
            plans
        }
    }
}

/// Builds a validated proof sequence for `⟨δ, h⟩ ≥ h(target)` under `dc`,
/// minimizing `Σ δ·n` over chain covers, preferring few decompositions.
///
/// `max_orders` caps how many variable orders are tried (`None` = all
/// `|B|!`).
///
/// ```
/// use qec_entropy::{prove_bound, validate};
/// use qec_relation::{DcSet, DegreeConstraint, VarSet};
///
/// // the triangle: |R_AB|, |R_BC|, |R_AC| ≤ 2^10
/// let dc = DcSet::from_vec(
///     [0b011u64, 0b110, 0b101]
///         .into_iter()
///         .map(|m| DegreeConstraint::cardinality(VarSet(m), 1 << 10))
///         .collect(),
/// );
/// let proof = prove_bound(3, &dc, VarSet::full(3), None).unwrap();
/// validate(&proof).unwrap();                        // independently checked
/// assert_eq!(proof.log_cost, qec_bignum::rat(15, 1)); // 1.5·log₂ N
/// ```
pub fn prove_bound(
    num_vars: u32,
    dc: &DcSet,
    target: VarSet,
    max_orders: Option<usize>,
) -> Result<ShannonFlowProof, ChainProofError> {
    prove_bound_opts(
        num_vars,
        dc,
        target,
        ProveOpts {
            max_orders,
            ..ProveOpts::default()
        },
    )
}

/// Options for [`prove_bound_opts`].
#[derive(Clone, Debug, Default)]
pub struct ProveOpts {
    /// Cap on variable orders tried per granularity tier.
    pub max_orders: Option<usize>,
    /// A precomputed `LOGDAPB` for the same `(dc, target)` — skips the
    /// internal bound LP and early-exits the order search on reaching it.
    pub known_bound: Option<Rat>,
    /// Accept the first certificate with `log_cost ≤ accept_at` without
    /// computing the polymatroid bound at all. Used by PANDA-C's
    /// truncation re-proofs, which only need *a* certificate within the
    /// global `DAPB` budget (Alg. 1 lines 28–31), not an optimal one.
    pub accept_at: Option<Rat>,
}

/// [`prove_bound`] with search/optimality knobs.
pub fn prove_bound_opts(
    num_vars: u32,
    dc: &DcSet,
    target: VarSet,
    opts: ProveOpts,
) -> Result<ShannonFlowProof, ChainProofError> {
    let max_orders = opts.max_orders;
    if target.is_empty() {
        return Ok(ShannonFlowProof {
            num_vars,
            target,
            lambda: Rat::zero(),
            delta: Vec::new(),
            steps: Vec::new(),
            order: Vec::new(),
            log_cost: Rat::zero(),
        });
    }
    let stop_at = match (&opts.accept_at, &opts.known_bound) {
        (Some(t), _) => t.clone(),
        (None, Some(b)) => b.clone(),
        (None, None) => {
            polymatroid_bound(num_vars, dc, target)
                .map_err(ChainProofError::Bound)?
                .log_value
        }
    };

    let augmented = with_implied_degrees(dc);
    let constraints: Vec<DegreeConstraint> = augmented.iter().copied().collect();
    let log_bounds: Vec<Rat> = constraints
        .iter()
        .map(|c| Rat::from(i64::from(ceil_log2(c.bound))))
        .collect();

    let vars: Vec<Var> = target.to_vec();
    let limit = max_orders.unwrap_or(usize::MAX);

    let mut best: Option<OrderPlan> = None;
    'tiers: for granularity in [Granularity::ZeroD, Granularity::Coarse, Granularity::Fine] {
        for (tried, order) in permutations(&vars).into_iter().enumerate() {
            if tried >= limit {
                break;
            }
            let Some(plan) = solve_order(&order, &constraints, &log_bounds, target, granularity)
            else {
                continue;
            };
            let better = best.as_ref().is_none_or(|b| plan.cost < b.cost);
            if better {
                let done = plan.cost <= stop_at;
                best = Some(plan);
                if done {
                    break 'tiers; // good enough: at the bound / threshold
                }
            }
        }
    }
    let plan = best.ok_or(ChainProofError::NoChainCover)?;
    let proof = build_steps(num_vars, target, &constraints, plan);
    validate(&proof).map_err(ChainProofError::Invalid)?;
    Ok(proof)
}

fn permutations(items: &[Var]) -> Vec<Vec<Var>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Builds the min-cost unit-flow LP for one order; returns the plan if the
/// flow is feasible.
fn solve_order(
    order: &[Var],
    constraints: &[DegreeConstraint],
    log_bounds: &[Rat],
    target: VarSet,
    granularity: Granularity,
) -> Option<OrderPlan> {
    let k = order.len();
    let pos = |v: Var| -> usize { order.iter().position(|&o| o == v).expect("var in order") + 1 };

    let mut plans: Vec<Plan> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for (ci, c) in constraints.iter().enumerate() {
        if c.is_cardinality() {
            let g = c.of.intersect(target);
            let mut positions: Vec<usize> = g.iter().map(pos).collect();
            positions.sort_unstable();
            if positions.is_empty() {
                continue;
            }
            for blocks in block_plans(&positions, granularity) {
                let plan_idx = plans.len();
                for (bi, &(l, r)) in blocks.iter().enumerate() {
                    edges.push(Edge {
                        from: l - 1,
                        to: r,
                        plan: plan_idx,
                        block: bi,
                    });
                }
                plans.push(Plan { cons: ci, blocks });
            }
        } else {
            // degree constraint (Z, W): usable iff W ⊆ target, Z before the
            // contiguous block of W∖Z
            if !c.of.is_subset(target) {
                continue;
            }
            let jump = c.of.minus(c.on);
            let positions: Vec<usize> = jump.iter().map(pos).collect();
            let l = *positions.iter().min().expect("nonempty jump");
            let r = *positions.iter().max().expect("nonempty jump");
            if r - l + 1 != positions.len() {
                continue; // not contiguous under this order
            }
            if c.on.iter().any(|z| pos(z) >= l) {
                continue; // conditioning set must precede the jump
            }
            let plan_idx = plans.len();
            edges.push(Edge {
                from: l - 1,
                to: r,
                plan: plan_idx,
                block: 0,
            });
            plans.push(Plan {
                cons: ci,
                blocks: vec![(l, r)],
            });
        }
    }
    if edges.is_empty() {
        return None;
    }

    // LP variables: δ_p (per plan) then f_e (per edge).
    let m = plans.len();
    let nv = m + edges.len();
    let mut lp = LpBuilder::minimize(nv);
    for (pi, p) in plans.iter().enumerate() {
        lp.obj(pi, log_bounds[p.cons].clone());
    }
    // flow conservation at internal nodes 1..k-1
    for node in 1..k {
        let mut coeffs: Vec<(usize, Rat)> = Vec::new();
        for (ei, e) in edges.iter().enumerate() {
            if e.to == node {
                coeffs.push((m + ei, Rat::one()));
            }
            if e.from == node {
                coeffs.push((m + ei, -Rat::one()));
            }
        }
        if coeffs.is_empty() {
            return None; // node unreachable
        }
        lp.constraint(coeffs, LpRel::Eq, Rat::zero());
    }
    // unit flow out of node 0
    let source: Vec<(usize, Rat)> = edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.from == 0)
        .map(|(ei, _)| (m + ei, Rat::one()))
        .collect();
    if source.is_empty() {
        return None;
    }
    lp.constraint(source, LpRel::Eq, Rat::one());
    // capacity: f_e ≤ δ_plan(e)
    for (ei, e) in edges.iter().enumerate() {
        lp.constraint(
            vec![(m + ei, Rat::one()), (e.plan, -Rat::one())],
            LpRel::Le,
            Rat::zero(),
        );
    }

    // A solver failure (iteration limit) simply means no plan for this
    // variable order — the search over orders continues; it must not
    // abort the whole proof construction.
    match lp.solve().ok()? {
        LpOutcome::Optimal(sol) => Some(OrderPlan {
            order: order.to_vec(),
            plans,
            edges,
            delta: sol.primal[..m].to_vec(),
            flow: sol.primal[m..].to_vec(),
            cost: sol.value,
        }),
        _ => None,
    }
}

/// Turns an order plan into the explicit step sequence (see module docs).
fn build_steps(
    num_vars: u32,
    target: VarSet,
    constraints: &[DegreeConstraint],
    plan: OrderPlan,
) -> ShannonFlowProof {
    let order = &plan.order;
    let pos = |v: Var| -> usize { order.iter().position(|&o| o == v).expect("var in order") + 1 };
    let prefix = |p: usize| -> VarSet { order[..p].iter().copied().collect() };

    let mut steps: Vec<WeightedStep> = Vec::new();

    // Per plan: block-prefix sets `G ∩ P_{r_i}`.
    let block_prefixes: Vec<Vec<VarSet>> = plan
        .plans
        .iter()
        .map(|p| {
            let c = &constraints[p.cons];
            if !c.is_cardinality() {
                return Vec::new();
            }
            let g = c.of.intersect(target);
            p.blocks
                .iter()
                .map(|&(_, r)| g.intersect(prefix(r)))
                .collect()
        })
        .collect();
    let _ = pos;

    // δ per original constraint (summed over plans).
    let mut per_cons = vec![Rat::zero(); constraints.len()];
    for (pi, p) in plan.plans.iter().enumerate() {
        per_cons[p.cons] = &per_cons[p.cons] + &plan.delta[pi];
    }
    let delta_terms: Vec<(Term, Rat)> = constraints
        .iter()
        .zip(per_cons.iter())
        .filter(|(_, w)| w.is_positive())
        .map(|(c, w)| {
            let term = if c.is_cardinality() {
                Term::plain(c.of)
            } else {
                Term::cond(c.on, c.of)
            };
            (term, w.clone())
        })
        .collect();

    // (a) monotonicity projections + (b) block-boundary decompositions
    // per used plan
    for (pi, p) in plan.plans.iter().enumerate() {
        let w = plan.delta[pi].clone();
        if !w.is_positive() {
            continue;
        }
        let c = &constraints[p.cons];
        if !c.is_cardinality() {
            continue;
        }
        let g = c.of.intersect(target);
        if g != c.of {
            steps.push(WeightedStep {
                step: ProofStep::Mono { x: g, y: c.of },
                weight: w.clone(),
            });
        }
        let prefixes = &block_prefixes[pi];
        for j in (2..=prefixes.len()).rev() {
            steps.push(WeightedStep {
                step: ProofStep::Decomp {
                    y: prefixes[j - 1],
                    x: prefixes[j - 2],
                },
                weight: w.clone(),
            });
        }
    }

    // (c) submodularity lifts per used edge
    for (ei, e) in plan.edges.iter().enumerate() {
        let f = plan.flow[ei].clone();
        if !f.is_positive() {
            continue;
        }
        let c = &constraints[plan.plans[e.plan].cons];
        let (i_set, j_set) = if c.is_cardinality() {
            (block_prefixes[e.plan][e.block], prefix(e.from))
        } else {
            (c.of, prefix(e.from))
        };
        // skip no-op lifts (term already in chain form: J ⊆ I means the
        // consumed and produced terms coincide)
        if j_set.is_subset(i_set) {
            continue;
        }
        steps.push(WeightedStep {
            step: ProofStep::Sub { i: i_set, j: j_set },
            weight: f,
        });
    }

    // (d) compositions threading the flow, in increasing source order
    let mut used: Vec<usize> = (0..plan.edges.len())
        .filter(|&ei| plan.flow[ei].is_positive())
        .collect();
    used.sort_by_key(|&ei| plan.edges[ei].from);
    for ei in used {
        let e = &plan.edges[ei];
        if e.from == 0 {
            continue; // already an unconditional term (∅, P_to)
        }
        steps.push(WeightedStep {
            step: ProofStep::Comp {
                x: prefix(e.from),
                y: prefix(e.to),
            },
            weight: plan.flow[ei].clone(),
        });
    }

    ShannonFlowProof {
        num_vars,
        target,
        lambda: Rat::one(),
        delta: delta_terms,
        steps,
        order: plan.order,
        log_cost: plan.cost,
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use qec_bignum::rat;
    use qec_relation::DegreeConstraint;

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn triangle_cards(log_n: u64) -> DcSet {
        let n = 1u64 << log_n;
        DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), n),
            DegreeConstraint::cardinality(vs(&[1, 2]), n),
            DegreeConstraint::cardinality(vs(&[0, 2]), n),
        ])
    }

    #[test]
    fn triangle_chain_proof_attains_agm() {
        let dc = triangle_cards(10);
        let p = prove_bound(3, &dc, VarSet::full(3), None).unwrap();
        assert_eq!(p.log_cost, rat(15, 1)); // 1.5 log N
        validate(&p).unwrap();
        // exactly one decomposition — the same shape as the paper's proof
        // sequence (3) / Example 2, which decomposes a single relation —
        // and two compositions
        assert_eq!(
            p.steps
                .iter()
                .filter(|s| matches!(s.step, ProofStep::Decomp { .. }))
                .count(),
            1
        );
        assert!(
            p.steps
                .iter()
                .filter(|s| matches!(s.step, ProofStep::Comp { .. }))
                .count()
                >= 2
        );
    }

    #[test]
    fn triangle_with_degree_constraint_tight() {
        for (d, expect) in [(2u64, 12i64), (4, 14), (8, 15)] {
            let mut dc = triangle_cards(10);
            dc.add(DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 1 << d));
            let p = prove_bound(3, &dc, VarSet::full(3), None).unwrap();
            assert_eq!(p.log_cost, rat(expect, 1), "d = {d}");
            validate(&p).unwrap();
        }
    }

    #[test]
    fn fd_chain_proof() {
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 1 << 10),
            DegreeConstraint::cardinality(vs(&[1, 2]), 1 << 10),
            DegreeConstraint::fd(vs(&[1]), vs(&[1, 2])),
        ]);
        let p = prove_bound(3, &dc, VarSet::full(3), None).unwrap();
        assert_eq!(p.log_cost, rat(10, 1));
        validate(&p).unwrap();
    }

    #[test]
    fn degree_chain_from_unary_root() {
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0]), 1 << 5),
            DegreeConstraint::degree(vs(&[0]), vs(&[0, 1]), 1 << 3),
            DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 1 << 2),
        ]);
        let p = prove_bound(3, &dc, VarSet::full(3), None).unwrap();
        assert_eq!(p.log_cost, rat(10, 1));
        validate(&p).unwrap();
        // the natural order must be A, B, C
        assert_eq!(p.order, vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn four_and_five_cycles_attain_polymatroid_bound() {
        for k in [4u32, 5] {
            let n = 1u64 << 8;
            let mut cs = Vec::new();
            for i in 0..k {
                cs.push(DegreeConstraint::cardinality(vs(&[i, (i + 1) % k]), n));
            }
            let dc = DcSet::from_vec(cs);
            let b = polymatroid_bound(k, &dc, VarSet::full(k)).unwrap();
            let p = prove_bound(k, &dc, VarSet::full(k), None).unwrap();
            assert_eq!(p.log_cost, b.log_value, "cycle {k}");
            validate(&p).unwrap();
        }
    }

    #[test]
    fn bag_targets_project_constraints() {
        // target AB under triangle constraints: one mono step away
        let dc = triangle_cards(10);
        let p = prove_bound(3, &dc, vs(&[0, 1]), None).unwrap();
        assert_eq!(p.log_cost, rat(10, 1));
        validate(&p).unwrap();
    }

    #[test]
    fn wide_relation_projected_onto_bag() {
        // |R_ABC| ≤ 2^9; target AB: m-step to AB then chain
        let dc = DcSet::from_vec(vec![DegreeConstraint::cardinality(vs(&[0, 1, 2]), 1 << 9)]);
        let p = prove_bound(3, &dc, vs(&[0, 1]), None).unwrap();
        assert_eq!(p.log_cost, rat(9, 1));
        assert!(p
            .steps
            .iter()
            .any(|s| matches!(s.step, ProofStep::Mono { .. })));
        validate(&p).unwrap();
    }

    #[test]
    fn empty_target_trivial_proof() {
        let dc = triangle_cards(4);
        let p = prove_bound(3, &dc, VarSet::EMPTY, None).unwrap();
        assert!(p.steps.is_empty());
        assert_eq!(p.lambda, Rat::zero());
    }

    #[test]
    fn uncoverable_target_errors() {
        let dc = DcSet::from_vec(vec![DegreeConstraint::cardinality(vs(&[0]), 8)]);
        let err = prove_bound(2, &dc, VarSet::full(2), None).unwrap_err();
        assert!(matches!(err, ChainProofError::Bound(BoundError::Unbounded)));
    }

    #[test]
    fn order_limit_respected() {
        let dc = triangle_cards(6);
        // even with a single order tried, cardinality-only chains succeed
        let p = prove_bound(3, &dc, VarSet::full(3), Some(1)).unwrap();
        assert_eq!(p.log_cost, rat(9, 1));
        validate(&p).unwrap();
    }
}
