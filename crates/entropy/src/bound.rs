//! The degree-aware polymatroid bound `LOGDAPB` (Sec. 3.2).

use qec_bignum::{Int, Rat};
use qec_lp::{LpBuilder, LpOutcome, Relation as LpRel};
use qec_relation::{DcSet, VarSet};

use crate::Term;

/// `⌈log₂ n⌉` for `n ≥ 1`.
///
/// # Panics
/// Panics if `n == 0` (a relation bound of zero is not a meaningful
/// constraint — the instance would be empty).
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n > 0, "log of zero bound");
    if n == 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Errors from bound computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundError {
    /// The target set is not bounded by the constraints (some variable in
    /// the target is not covered by any constraint chain): `h(B)` can grow
    /// without limit, so no finite circuit exists.
    Unbounded,
    /// A degree constraint mentions variables outside `[n]`.
    VariableOutOfRange,
    /// The underlying LP solver failed (iteration limit, or an outcome
    /// that contradicts the dual LP's structure).
    Solver(qec_lp::LpError),
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::Unbounded => {
                write!(
                    f,
                    "polymatroid bound is unbounded: constraints do not cover the target"
                )
            }
            BoundError::VariableOutOfRange => {
                write!(f, "degree constraint mentions a variable outside the query")
            }
            BoundError::Solver(e) => write!(f, "polymatroid LP failed: {e}"),
        }
    }
}

impl std::error::Error for BoundError {}

/// The computed bound and its dual certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// `LOGDAPB` (in log₂ units): `max { h(B) : h ∈ Γ_n ∩ HDC }`.
    pub log_value: Rat,
    /// Shannon-flow coefficients `δ_{Y|X}` per degree constraint (aligned
    /// with `DcSet::iter` order). By strong duality
    /// `Σ δ·n_{Y|X} = LOGDAPB` (Theorem 1).
    pub delta: Vec<Rat>,
    /// The optimal polymatroid `h` itself (witness of tightness), indexed
    /// by `mask - 1` over non-empty subsets of `[n]`.
    pub witness: Vec<Rat>,
    /// Number of variables the witness is indexed over.
    pub num_vars: u32,
}

impl Bound {
    /// `DAPB` rounded up to the next power of two, as an exact integer:
    /// `2^{⌈LOGDAPB⌉}`. This is the worst-case output-size budget used to
    /// size circuits (`|Q(D)| ≤ DAPB ≤ dapb_pow2`).
    pub fn dapb_pow2(&self) -> Int {
        let e = self.log_value.ceil();
        let e = e.to_i64().expect("bound exponent fits in i64").max(0);
        Int::pow2(e as u32)
    }

    /// Witness value `h(S)`.
    pub fn h(&self, s: VarSet) -> Rat {
        if s.is_empty() {
            Rat::zero()
        } else {
            self.witness[(s.0 - 1) as usize].clone()
        }
    }

    /// The Shannon-flow starting vector `δ` as `(term, weight)` pairs,
    /// skipping zero weights.
    pub fn delta_terms(&self, dc: &DcSet) -> Vec<(Term, Rat)> {
        dc.iter()
            .zip(self.delta.iter())
            .filter(|(_, w)| w.is_positive())
            .map(|(c, w)| (Term { on: c.on, of: c.of }, w.clone()))
            .collect()
    }
}

/// Solves `max { h(B) : h ∈ Γ_n ∩ HDC }` exactly (Sec. 3.2).
///
/// `Γ_n` is encoded by its elemental description: submodularity
/// `h(S∪i) + h(S∪j) ≥ h(S∪ij) + h(S)` for all `i < j`, `S ⊆ [n]∖{i,j}`,
/// plus monotonicity at the top `h([n]) ≥ h([n]∖i)`; `h(∅) = 0` is
/// implicit (the empty set has no LP variable). Degree constraints
/// contribute `h(Y) - h(X) ≤ ⌈log₂ N_{Y|X}⌉`.
pub fn polymatroid_bound(num_vars: u32, dc: &DcSet, target: VarSet) -> Result<Bound, BoundError> {
    assert!(
        num_vars <= 16,
        "polymatroid LP is exponential in n; n ≤ 16 enforced"
    );
    let n = num_vars;
    let all = VarSet::full(n);
    if !dc.vars().is_subset(all) {
        return Err(BoundError::VariableOutOfRange);
    }
    assert!(target.is_subset(all), "target outside [n]");
    if target.is_empty() {
        return Ok(Bound {
            log_value: Rat::zero(),
            delta: vec![Rat::zero(); dc.len()],
            witness: vec![Rat::zero(); (1usize << n) - 1],
            num_vars: n,
        });
    }

    let num_sets = (1usize << n) - 1; // non-empty subsets; row index = mask-1
    let ridx = |s: VarSet| -> usize {
        debug_assert!(!s.is_empty());
        (s.0 - 1) as usize
    };

    // We solve the *dual* program: the primal has a row per elemental
    // inequality (Θ(n²·2ⁿ)) but only 2ⁿ-1 variables, so the dual's
    // tableau — one row per subset, one variable per inequality — is far
    // smaller for the exact simplex. Duality also matches the theory: the
    // dual optimum *is* the Shannon-flow coefficient vector δ (Thm 1),
    // and the dual's row multipliers recover the witness polymatroid.
    //
    //   min Σ_c y_c·n_c
    //   s.t. ∀ S ≠ ∅:  Σ_c y_c·D_c[S] − Σ_k z_k·E_k[S] ≥ [S = target]
    //        y, z ≥ 0
    //
    // where D_c = e_Y − e_X for the degree constraint (X, Y) and E_k
    // ranges over elemental submodularity/monotonicity expressions
    // (E_k·h ≥ 0 for every polymatroid h).

    // Column layout: DC multipliers first (their primal values are δ).
    struct Col {
        coeffs: Vec<(usize, Rat)>, // (subset row, coefficient)
        cost: Rat,
    }
    let mut cols: Vec<Col> = Vec::new();
    for c in dc.iter() {
        let mut coeffs = vec![(ridx(c.of), Rat::one())];
        if !c.on.is_empty() {
            coeffs.push((ridx(c.on), -Rat::one()));
        }
        cols.push(Col {
            coeffs,
            cost: Rat::from(i64::from(ceil_log2(c.bound))),
        });
    }
    let num_dc = cols.len();
    // Elemental submodularity: h(S∪i) + h(S∪j) − h(S∪ij) − h(S) ≥ 0.
    for i in all.iter() {
        for j in all.iter() {
            if j.0 <= i.0 {
                continue;
            }
            let rest = all.minus(VarSet::singleton(i)).minus(VarSet::singleton(j));
            for s in rest.subsets() {
                let si = s.with(i);
                let sj = s.with(j);
                let sij = si.with(j);
                let mut coeffs = vec![(ridx(si), -Rat::one()), (ridx(sj), -Rat::one())];
                coeffs.push((ridx(sij), Rat::one()));
                if !s.is_empty() {
                    coeffs.push((ridx(s), Rat::one()));
                }
                cols.push(Col {
                    coeffs,
                    cost: Rat::zero(),
                });
            }
        }
    }
    // Elemental monotonicity at the top: h([n]) − h([n]∖i) ≥ 0.
    for i in all.iter() {
        let below = all.minus(VarSet::singleton(i));
        let mut coeffs = vec![(ridx(all), -Rat::one())];
        if !below.is_empty() {
            coeffs.push((ridx(below), Rat::one()));
        }
        cols.push(Col {
            coeffs,
            cost: Rat::zero(),
        });
    }

    let mut lp = LpBuilder::minimize(cols.len());
    for (ci, col) in cols.iter().enumerate() {
        if !col.cost.is_zero() {
            lp.obj(ci, col.cost.clone());
        }
    }
    // one Ge row per non-empty subset
    let mut row_coeffs: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); num_sets];
    for (ci, col) in cols.iter().enumerate() {
        for (row, coeff) in &col.coeffs {
            row_coeffs[*row].push((ci, coeff.clone()));
        }
    }
    for (row, coeffs) in row_coeffs.into_iter().enumerate() {
        let rhs = if row == ridx(target) {
            Rat::one()
        } else {
            Rat::zero()
        };
        lp.constraint(coeffs, LpRel::Ge, rhs);
    }

    match lp.solve().map_err(BoundError::Solver)? {
        LpOutcome::Optimal(sol) => {
            let delta = sol.primal[..num_dc].to_vec();
            Ok(Bound {
                log_value: sol.value,
                delta,
                witness: sol.dual,
                num_vars: n,
            })
        }
        // the dual is infeasible exactly when the primal is unbounded
        LpOutcome::Infeasible => Err(BoundError::Unbounded),
        // The dual objective is bounded below by 0, so an unbounded
        // outcome can only be a solver defect — report it, don't abort.
        LpOutcome::Unbounded => Err(BoundError::Solver(qec_lp::LpError::Unbounded)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_bignum::rat;
    use qec_relation::{DegreeConstraint, Var};

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn triangle_cards(log_n: u64) -> DcSet {
        let n = 1u64 << log_n;
        DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), n),
            DegreeConstraint::cardinality(vs(&[1, 2]), n),
            DegreeConstraint::cardinality(vs(&[0, 2]), n),
        ])
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
        assert_eq!(ceil_log2(u64::MAX), 64);
    }

    #[test]
    fn triangle_agm_bound() {
        // LOGDAPB = 1.5 log N; δ = (1/2, 1/2, 1/2) — the paper's
        // inequality (2) after normalization.
        let dc = triangle_cards(10);
        let b = polymatroid_bound(3, &dc, VarSet::full(3)).unwrap();
        assert_eq!(b.log_value, rat(15, 1));
        let total: Rat = b.delta.iter().fold(Rat::zero(), |acc, d| &acc + d);
        // Σ δ·n = LOGDAPB with all n = 10 ⇒ Σ δ = 3/2
        assert_eq!(total, rat(3, 2));
        assert_eq!(b.dapb_pow2(), qec_bignum::Int::pow2(15));
    }

    #[test]
    fn triangle_with_degree_constraint() {
        // cards 2^10 each, deg(BC|B) ≤ 2^d: LOGDAPB = min(10 + d, 15).
        for (d, expect) in [(2u64, 12i64), (4, 14), (5, 15), (8, 15)] {
            let mut dc = triangle_cards(10);
            dc.add(DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 1 << d));
            let b = polymatroid_bound(3, &dc, VarSet::full(3)).unwrap();
            assert_eq!(b.log_value, rat(expect, 1), "d = {d}");
            // Theorem 1: Σ δ·n = LOGDAPB
            let mut dual_val = Rat::zero();
            for (c, delta) in dc.iter().zip(b.delta.iter()) {
                dual_val = &dual_val + &(delta * &Rat::from(i64::from(ceil_log2(c.bound))));
            }
            assert_eq!(dual_val, b.log_value, "duality at d = {d}");
        }
    }

    #[test]
    fn functional_dependency_collapses_bound() {
        // R(A,B) with |R| ≤ 2^10 and FD A→AB, S(B,C) with |S| ≤ 2^10 and
        // FD B→BC: h(ABC) ≤ h(AB) + h(BC|B) ≤ 10 + 0 = 10.
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 1 << 10),
            DegreeConstraint::cardinality(vs(&[1, 2]), 1 << 10),
            DegreeConstraint::fd(vs(&[1]), vs(&[1, 2])),
        ]);
        let b = polymatroid_bound(3, &dc, VarSet::full(3)).unwrap();
        assert_eq!(b.log_value, rat(10, 1));
    }

    #[test]
    fn four_cycle_bound_is_two_log_n() {
        let n = 1u64 << 8;
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), n),
            DegreeConstraint::cardinality(vs(&[1, 2]), n),
            DegreeConstraint::cardinality(vs(&[2, 3]), n),
            DegreeConstraint::cardinality(vs(&[0, 3]), n),
        ]);
        let b = polymatroid_bound(4, &dc, VarSet::full(4)).unwrap();
        assert_eq!(b.log_value, rat(16, 1));
    }

    #[test]
    fn bag_target_uses_subset_constraints() {
        let dc = triangle_cards(10);
        let b = polymatroid_bound(3, &dc, vs(&[0, 1])).unwrap();
        assert_eq!(b.log_value, rat(10, 1));
    }

    #[test]
    fn empty_target_is_zero() {
        let dc = triangle_cards(4);
        let b = polymatroid_bound(3, &dc, VarSet::EMPTY).unwrap();
        assert_eq!(b.log_value, Rat::zero());
    }

    #[test]
    fn uncovered_target_is_unbounded() {
        // no constraint mentions C
        let dc = DcSet::from_vec(vec![DegreeConstraint::cardinality(vs(&[0, 1]), 16)]);
        assert_eq!(
            polymatroid_bound(3, &dc, VarSet::full(3)).unwrap_err(),
            BoundError::Unbounded
        );
    }

    #[test]
    fn degree_only_constraint_chain() {
        // |R_A| ≤ 2^5, deg(AB|A) ≤ 2^3, deg(BC|B) ≤ 2^2:
        // h(ABC) ≤ 5 + 3 + 2 = 10.
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0]), 1 << 5),
            DegreeConstraint::degree(vs(&[0]), vs(&[0, 1]), 1 << 3),
            DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 1 << 2),
        ]);
        let b = polymatroid_bound(3, &dc, VarSet::full(3)).unwrap();
        assert_eq!(b.log_value, rat(10, 1));
    }

    #[test]
    fn witness_is_a_polymatroid() {
        let dc = triangle_cards(6);
        let b = polymatroid_bound(3, &dc, VarSet::full(3)).unwrap();
        let all = VarSet::full(3);
        // spot-check monotonicity and submodularity of the witness
        for s in all.subsets() {
            for t in all.subsets() {
                if s.is_subset(t) {
                    assert!(b.h(s) <= b.h(t), "monotone at {s} ⊆ {t}");
                }
                let lhs = &b.h(s) + &b.h(t);
                let rhs = &b.h(s.union(t)) + &b.h(s.intersect(t));
                assert!(lhs >= rhs, "submodular at {s}, {t}");
            }
        }
    }
}
