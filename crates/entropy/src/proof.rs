//! Proof sequences for Shannon-flow inequalities (Sec. 3.4).

use std::collections::BTreeMap;
use std::fmt;

use qec_bignum::Rat;
use qec_relation::{Var, VarSet};

/// A (possibly conditional) entropy term `h(Y|X)` with `X ⊂ Y`;
/// unconditional terms have `X = ∅`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term {
    /// The conditioning set `X`.
    pub on: VarSet,
    /// The conditioned set `Y`.
    pub of: VarSet,
}

impl Term {
    /// Unconditional term `h(Y)`.
    pub fn plain(of: VarSet) -> Term {
        Term {
            on: VarSet::EMPTY,
            of,
        }
    }

    /// Conditional term `h(Y|X)`.
    ///
    /// # Panics
    /// Panics unless `X ⊂ Y`.
    pub fn cond(on: VarSet, of: VarSet) -> Term {
        assert!(on.is_subset(of) && on != of, "term requires X ⊂ Y");
        Term { on, of }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.on.is_empty() {
            write!(f, "h({})", self.of)
        } else {
            write!(f, "h({}|{})", self.of, self.on)
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// One proof step (the four rules of Sec. 3.4).
///
/// Each step is a "rule vector": it consumes some terms and produces
/// others; an inequality-rule step is sound because the consumed terms
/// dominate the produced ones for every polymatroid `h`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// `s_{I,J}`: submodularity `h(I|I∩J) ≥ h(I∪J|J)` — consumes
    /// `(I∩J, I)`, produces `(J, I∪J)`.
    Sub {
        /// The set `I`.
        i: VarSet,
        /// The set `J`.
        j: VarSet,
    },
    /// `m_{X,Y}`: monotonicity `h(Y) ≥ h(X)` for `X ⊆ Y` — consumes
    /// `(∅, Y)`, produces `(∅, X)`.
    Mono {
        /// The smaller set `X`.
        x: VarSet,
        /// The larger set `Y`.
        y: VarSet,
    },
    /// `c_{X,Y}`: composition `h(X) + h(Y|X) ≥ h(Y)` — consumes `(∅, X)`
    /// and `(X, Y)`, produces `(∅, Y)`.
    Comp {
        /// The prefix set `X`.
        x: VarSet,
        /// The full set `Y`.
        y: VarSet,
    },
    /// `d_{Y,X}`: decomposition `h(Y) ≥ h(X) + h(Y|X)` — consumes `(∅, Y)`,
    /// produces `(∅, X)` and `(X, Y)`.
    Decomp {
        /// The set being decomposed `Y`.
        y: VarSet,
        /// The split point `X`.
        x: VarSet,
    },
}

impl ProofStep {
    /// Terms consumed (coefficient decreases).
    pub fn consumes(&self) -> Vec<Term> {
        match *self {
            ProofStep::Sub { i, j } => vec![Term {
                on: i.intersect(j),
                of: i,
            }],
            ProofStep::Mono { y, .. } => vec![Term::plain(y)],
            ProofStep::Comp { x, y } => vec![Term::plain(x), Term { on: x, of: y }],
            ProofStep::Decomp { y, .. } => vec![Term::plain(y)],
        }
    }

    /// Terms produced (coefficient increases).
    pub fn produces(&self) -> Vec<Term> {
        match *self {
            ProofStep::Sub { i, j } => vec![Term {
                on: j,
                of: i.union(j),
            }],
            ProofStep::Mono { x, .. } => vec![Term::plain(x)],
            ProofStep::Comp { y, .. } => vec![Term::plain(y)],
            ProofStep::Decomp { y, x } => vec![Term::plain(x), Term { on: x, of: y }],
        }
    }

    /// Structural validity of the rule instance itself.
    pub fn well_formed(&self) -> bool {
        match *self {
            ProofStep::Sub { i, j } => {
                let meet = i.intersect(j);
                // consumed (I∩J, I) and produced (J, I∪J) must be proper
                meet != i && j != i.union(j)
            }
            ProofStep::Mono { x, y } => x.is_subset(y) && x != y,
            ProofStep::Comp { x, y } => !x.is_empty() && x.is_subset(y) && x != y,
            ProofStep::Decomp { y, x } => !x.is_empty() && x.is_subset(y) && x != y,
        }
    }
}

impl fmt::Display for ProofStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProofStep::Sub { i, j } => write!(f, "s[{i};{j}]"),
            ProofStep::Mono { x, y } => write!(f, "m[{x}≤{y}]"),
            ProofStep::Comp { x, y } => write!(f, "c[{x}→{y}]"),
            ProofStep::Decomp { y, x } => write!(f, "d[{y}→{x}]"),
        }
    }
}

/// A weighted proof step `w·f`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedStep {
    /// The rule applied.
    pub step: ProofStep,
    /// Its weight `w > 0`.
    pub weight: Rat,
}

/// A Shannon-flow inequality `⟨δ, h⟩ ≥ λ·h(target)` together with a proof
/// sequence and the variable order the chain construction used.
#[derive(Clone, Debug)]
pub struct ShannonFlowProof {
    /// Number of query variables.
    pub num_vars: u32,
    /// Target set `B` (the RHS is `λ·h(B)`).
    pub target: VarSet,
    /// RHS weight `λ` (`1` after normalization).
    pub lambda: Rat,
    /// The starting coefficient vector `δ` (LHS), as sparse `(term, w)`.
    pub delta: Vec<(Term, Rat)>,
    /// The proof steps, in application order.
    pub steps: Vec<WeightedStep>,
    /// Variable order used by the chain construction (diagnostics and
    /// PANDA-C's deterministic replay).
    pub order: Vec<Var>,
    /// `Σ δ_{Y|X}·n_{Y|X}` for the degree bounds the proof was built from —
    /// the log of the cost bound this certificate yields.
    pub log_cost: Rat,
}

impl std::fmt::Display for ShannonFlowProof {
    /// Paper-style rendering: the Shannon-flow inequality, then the step
    /// list with weights (compare Sec. 3.4's worked derivation of
    /// inequality (2) and sequence (3)).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (t, w) in &self.delta {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if *w == Rat::one() {
                write!(f, "{t}")?;
            } else {
                write!(f, "{w}·{t}")?;
            }
        }
        writeln!(f, "  ≥  {}·h({})", self.lambda, self.target)?;
        for (i, ws) in self.steps.iter().enumerate() {
            let kind = match ws.step {
                ProofStep::Sub { .. } => "submodularity",
                ProofStep::Mono { .. } => "monotonicity",
                ProofStep::Comp { .. } => "composition",
                ProofStep::Decomp { .. } => "decomposition",
            };
            writeln!(f, "  {:>2}. {}  ×{}   ({kind})", i + 1, ws.step, ws.weight)?;
        }
        Ok(())
    }
}

/// Validation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A step is not a well-formed rule instance.
    MalformedStep(usize),
    /// A step has non-positive weight.
    NonPositiveWeight(usize),
    /// Applying step `index` would drive `term`'s coefficient negative.
    NegativeCoefficient {
        /// Index of the offending step.
        index: usize,
        /// The term whose coefficient would go negative.
        term: Term,
    },
    /// The final vector does not dominate `λ·(∅, target)`.
    TargetNotReached,
    /// A starting coefficient is negative.
    NegativeDelta(Term),
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::MalformedStep(i) => write!(f, "step {i} is not a valid rule instance"),
            ProofError::NonPositiveWeight(i) => write!(f, "step {i} has non-positive weight"),
            ProofError::NegativeCoefficient { index, term } => {
                write!(f, "step {index} drives the coefficient of {term} negative")
            }
            ProofError::TargetNotReached => write!(f, "final vector does not cover the target"),
            ProofError::NegativeDelta(t) => write!(f, "starting coefficient of {t} is negative"),
        }
    }
}

impl std::error::Error for ProofError {}

/// Independently validates a proof sequence: every step is a well-formed
/// rule with positive weight, every intermediate coefficient vector is
/// non-negative, and the final vector dominates `λ` at the target (the
/// three conditions of Sec. 3.4).
pub fn validate(proof: &ShannonFlowProof) -> Result<(), ProofError> {
    let mut coeff: BTreeMap<Term, Rat> = BTreeMap::new();
    for (t, w) in &proof.delta {
        if w.is_negative() {
            return Err(ProofError::NegativeDelta(*t));
        }
        let e = coeff.entry(*t).or_insert_with(Rat::zero);
        *e = &*e + w;
    }
    for (idx, ws) in proof.steps.iter().enumerate() {
        if !ws.step.well_formed() {
            return Err(ProofError::MalformedStep(idx));
        }
        if !ws.weight.is_positive() {
            return Err(ProofError::NonPositiveWeight(idx));
        }
        for t in ws.step.consumes() {
            let e = coeff.entry(t).or_insert_with(Rat::zero);
            *e = &*e - &ws.weight;
            if e.is_negative() {
                return Err(ProofError::NegativeCoefficient {
                    index: idx,
                    term: t,
                });
            }
        }
        for t in ws.step.produces() {
            let e = coeff.entry(t).or_insert_with(Rat::zero);
            *e = &*e + &ws.weight;
        }
    }
    let got = coeff
        .get(&Term::plain(proof.target))
        .cloned()
        .unwrap_or_else(Rat::zero);
    if got < proof.lambda {
        return Err(ProofError::TargetNotReached);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_bignum::rat;

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    /// The paper's proof of inequality (2), sequence (3):
    /// `(s_{AB,C}, d_{BC,C}, s_{BC,AC}, c_{C,ABC}, c_{AC,ABC})`,
    /// normalized to `λ = 1` (all weights 1/2).
    fn paper_triangle_proof() -> ShannonFlowProof {
        let (a, b, c) = (0u32, 1u32, 2u32);
        let h = rat(1, 2);
        ShannonFlowProof {
            num_vars: 3,
            target: vs(&[a, b, c]),
            lambda: Rat::one(),
            delta: vec![
                (Term::plain(vs(&[a, b])), h.clone()),
                (Term::plain(vs(&[b, c])), h.clone()),
                (Term::plain(vs(&[a, c])), h.clone()),
            ],
            steps: vec![
                // s_{AB,C}: consumes h(AB|∅), produces h(ABC|C)
                WeightedStep {
                    step: ProofStep::Sub {
                        i: vs(&[a, b]),
                        j: vs(&[c]),
                    },
                    weight: h.clone(),
                },
                // d_{BC,C}: h(BC) → h(C) + h(BC|C)
                WeightedStep {
                    step: ProofStep::Decomp {
                        y: vs(&[b, c]),
                        x: vs(&[c]),
                    },
                    weight: h.clone(),
                },
                // s_{BC,AC}: consumes h(BC|C), produces h(ABC|AC)
                WeightedStep {
                    step: ProofStep::Sub {
                        i: vs(&[b, c]),
                        j: vs(&[a, c]),
                    },
                    weight: h.clone(),
                },
                // c_{C,ABC}: h(C) + h(ABC|C) → h(ABC)
                WeightedStep {
                    step: ProofStep::Comp {
                        x: vs(&[c]),
                        y: vs(&[a, b, c]),
                    },
                    weight: h.clone(),
                },
                // c_{AC,ABC}: h(AC) + h(ABC|AC) → h(ABC)
                WeightedStep {
                    step: ProofStep::Comp {
                        x: vs(&[a, c]),
                        y: vs(&[a, b, c]),
                    },
                    weight: h,
                },
            ],
            order: vec![Var(0), Var(1), Var(2)],
            log_cost: Rat::zero(),
        }
    }

    #[test]
    fn paper_example_sequence_validates() {
        // Golden test: the exact proof sequence (3) from the paper.
        validate(&paper_triangle_proof()).unwrap();
    }

    #[test]
    fn lambda_two_without_scaling_fails() {
        // With λ = 2 but δ weights of 1/2 the proof produces only 1 unit.
        let mut p = paper_triangle_proof();
        p.lambda = rat(2, 1);
        assert_eq!(validate(&p), Err(ProofError::TargetNotReached));
    }

    #[test]
    fn negative_intermediate_detected() {
        let mut p = paper_triangle_proof();
        // bump the first step's weight beyond the available 1/2
        p.steps[0].weight = rat(2, 3);
        let err = validate(&p).unwrap_err();
        assert!(
            matches!(err, ProofError::NegativeCoefficient { index: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn malformed_steps_detected() {
        let mut p = paper_triangle_proof();
        p.steps[1].step = ProofStep::Mono {
            x: vs(&[0, 1]),
            y: vs(&[0]),
        }; // X ⊄ Y
        assert_eq!(validate(&p), Err(ProofError::MalformedStep(1)));

        let mut p2 = paper_triangle_proof();
        p2.steps[0].weight = Rat::zero();
        assert_eq!(validate(&p2), Err(ProofError::NonPositiveWeight(0)));
    }

    #[test]
    fn step_vectors_match_paper_semantics() {
        // d_{Y,X}: -1 at (∅,Y), +1 at (∅,X) and (X,Y) — the example given
        // below Eq. (3) in the paper.
        let d = ProofStep::Decomp {
            y: vs(&[1, 2]),
            x: vs(&[2]),
        };
        assert_eq!(d.consumes(), vec![Term::plain(vs(&[1, 2]))]);
        assert_eq!(
            d.produces(),
            vec![Term::plain(vs(&[2])), Term::cond(vs(&[2]), vs(&[1, 2]))]
        );
        let s = ProofStep::Sub {
            i: vs(&[0, 1]),
            j: vs(&[2]),
        };
        assert_eq!(s.consumes(), vec![Term::plain(vs(&[0, 1]))]);
        assert_eq!(s.produces(), vec![Term::cond(vs(&[2]), vs(&[0, 1, 2]))]);
    }

    #[test]
    fn mono_step_roundtrip() {
        // h(ABC) ≥ h(A): a one-step proof of a trivial inequality.
        let p = ShannonFlowProof {
            num_vars: 3,
            target: vs(&[0]),
            lambda: Rat::one(),
            delta: vec![(Term::plain(vs(&[0, 1, 2])), Rat::one())],
            steps: vec![WeightedStep {
                step: ProofStep::Mono {
                    x: vs(&[0]),
                    y: vs(&[0, 1, 2]),
                },
                weight: Rat::one(),
            }],
            order: vec![Var(0)],
            log_cost: Rat::zero(),
        };
        validate(&p).unwrap();
    }

    #[test]
    fn empty_sequence_needs_delta_at_target() {
        let p = ShannonFlowProof {
            num_vars: 2,
            target: vs(&[0, 1]),
            lambda: Rat::one(),
            delta: vec![(Term::plain(vs(&[0, 1])), Rat::one())],
            steps: vec![],
            order: vec![],
            log_cost: Rat::zero(),
        };
        validate(&p).unwrap();
        let p2 = ShannonFlowProof { delta: vec![], ..p };
        assert_eq!(validate(&p2), Err(ProofError::TargetNotReached));
    }
}
