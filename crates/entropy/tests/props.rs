//! Property tests for the bound/proof layer: on random constraint sets,
//! every constructed proof sequence must validate, its cost must dominate
//! the polymatroid bound (weak duality for certificates), and for
//! cardinality-only constraints it must *equal* the bound (the chain
//! construction subsumes the weighted AGM certificate).

use proptest::prelude::*;
use qec_bignum::Rat;
use qec_entropy::{polymatroid_bound, prove_bound, validate, BoundError, ChainProofError};
use qec_relation::{DcSet, DegreeConstraint, Var, VarSet};

fn vs(mask: u64) -> VarSet {
    VarSet(mask)
}

/// Random cardinality constraints over 3–4 variables with power-of-two
/// bounds; always includes a constraint covering each variable so the
/// bound is finite.
fn card_dc(n: u32) -> impl Strategy<Value = DcSet> {
    let full = (1u64 << n) - 1;
    let edges = prop::collection::vec((1..=full, 1u32..10), 1..5);
    edges.prop_map(move |es| {
        let mut v: Vec<DegreeConstraint> = es
            .into_iter()
            .map(|(mask, exp)| DegreeConstraint::cardinality(vs(mask & full), 1u64 << exp))
            .collect();
        // guarantee coverage: one constraint per variable
        for i in 0..n {
            v.push(DegreeConstraint::cardinality(
                VarSet::singleton(Var(i)),
                1 << 5,
            ));
        }
        DcSet::from_vec(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cardinality_only_chains_attain_the_bound(n in 3u32..5, dc in card_dc(4)) {
        let n = n.min(4);
        let target = VarSet::full(n);
        // restrict constraints to the first n variables
        let dc = DcSet::from_vec(
            dc.iter().filter(|c| c.of.is_subset(target)).copied().collect(),
        );
        if dc.is_empty() {
            return Ok(());
        }
        let bound = match polymatroid_bound(n, &dc, target) {
            Ok(b) => b,
            Err(BoundError::Unbounded) => return Ok(()),
            Err(e) => panic!("{e}"),
        };
        let proof = prove_bound(n, &dc, target, None).expect("cardinality chains always exist");
        validate(&proof).expect("constructed proofs validate");
        prop_assert_eq!(proof.log_cost, bound.log_value);
    }

    #[test]
    fn degree_constrained_proofs_validate_and_dominate(
        card_exp in 3u32..8,
        deg_exp in 0u32..6,
        on_a in any::<bool>(),
    ) {
        // triangle with a random degree constraint on one edge
        let ab = vs(0b011);
        let bc = vs(0b110);
        let ac = vs(0b101);
        let n_card = 1u64 << card_exp;
        let mut v = vec![
            DegreeConstraint::cardinality(ab, n_card),
            DegreeConstraint::cardinality(bc, n_card),
            DegreeConstraint::cardinality(ac, n_card),
        ];
        let on = if on_a { vs(0b010) } else { vs(0b100) };
        v.push(DegreeConstraint::degree(on, bc, 1u64 << deg_exp));
        let dc = DcSet::from_vec(v);
        let target = VarSet::full(3);
        let bound = polymatroid_bound(3, &dc, target).expect("finite");
        let proof = prove_bound(3, &dc, target, None).expect("chain exists");
        validate(&proof).expect("validates");
        // weak duality: any valid certificate costs at least the bound
        prop_assert!(proof.log_cost >= bound.log_value);
        // and on this family the chain is actually tight
        prop_assert_eq!(proof.log_cost, bound.log_value);
    }

    #[test]
    fn bag_targets_are_monotone(dc in card_dc(4)) {
        // h is monotone, so LOGDAPB over a subset target is ≤ over a superset
        let small = vs(0b0011);
        let large = vs(0b0111);
        let b_small = polymatroid_bound(4, &dc, small);
        let b_large = polymatroid_bound(4, &dc, large);
        if let (Ok(s), Ok(l)) = (b_small, b_large) {
            prop_assert!(s.log_value <= l.log_value);
        }
    }

    #[test]
    fn witness_attains_the_bound(dc in card_dc(3)) {
        let target = VarSet::full(3);
        if let Ok(b) = polymatroid_bound(3, &dc, target) {
            // the witness is a feasible polymatroid attaining the optimum
            prop_assert_eq!(b.h(target), b.log_value.clone());
            for c in dc.iter() {
                let used = &b.h(c.of) - &b.h(c.on);
                let cap = Rat::from(i64::from(qec_entropy::ceil_log2(c.bound)));
                prop_assert!(used <= cap, "constraint {c} violated by witness");
            }
        }
    }

    #[test]
    fn empty_target_always_trivial(dc in card_dc(3)) {
        let p = prove_bound(3, &dc, VarSet::EMPTY, None).expect("trivial");
        prop_assert!(p.steps.is_empty());
        prop_assert!(matches!(validate(&p), Ok(())));
    }
}

#[test]
fn uncovered_variable_is_unbounded_not_panicking() {
    let dc = DcSet::from_vec(vec![DegreeConstraint::cardinality(vs(0b01), 8)]);
    match prove_bound(2, &dc, VarSet::full(2), None) {
        Err(ChainProofError::Bound(BoundError::Unbounded)) => {}
        other => panic!("expected Unbounded, got {other:?}"),
    }
}
