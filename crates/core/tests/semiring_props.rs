//! Property tests: the commutative-semiring axioms for every
//! [`Semiring`], driven across ∞/overflow boundary values.
//!
//! Saturating word arithmetic keeps the axioms intact because
//! `sat(x) = min(x, u64::MAX)` commutes with `+`/`×`/`min`/`max`
//! chains: every law below holds exactly, not just below the boundary.
//! The one structural exception is `MaxTropical`, whose carrier ℕ has no
//! `-∞`; its `zero()` is the `⊕`-identity but not `⊗`-absorbing, which
//! `has_absorbing_zero()` records.

use proptest::prelude::*;
use qec_core::Semiring;

const ALL: [Semiring; 4] = [
    Semiring::Natural,
    Semiring::Boolean,
    Semiring::MinTropical,
    Semiring::MaxTropical,
];

/// Values biased toward the interesting edges: identities, small
/// naturals, powers of two, and the saturation boundary (∞ = u64::MAX).
fn boundary_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..8,
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX / 2),
        Just(1u64 << 32),
        Just(1u64 << 63),
    ]
}

proptest! {
    #[test]
    fn plus_is_commutative_and_associative(
        a in boundary_value(),
        b in boundary_value(),
        c in boundary_value(),
    ) {
        for sr in ALL {
            prop_assert_eq!(sr.plus(a, b), sr.plus(b, a), "{:?} ⊕ comm", sr);
            prop_assert_eq!(
                sr.plus(sr.plus(a, b), c),
                sr.plus(a, sr.plus(b, c)),
                "{:?} ⊕ assoc", sr
            );
        }
    }

    #[test]
    fn times_is_commutative_and_associative(
        a in boundary_value(),
        b in boundary_value(),
        c in boundary_value(),
    ) {
        for sr in ALL {
            prop_assert_eq!(sr.times(a, b), sr.times(b, a), "{:?} ⊗ comm", sr);
            prop_assert_eq!(
                sr.times(sr.times(a, b), c),
                sr.times(a, sr.times(b, c)),
                "{:?} ⊗ assoc", sr
            );
        }
    }

    #[test]
    fn identities(a in boundary_value()) {
        for sr in ALL {
            prop_assert_eq!(sr.plus(sr.zero(), a), a, "{:?} 0̄ ⊕ a", sr);
            prop_assert_eq!(sr.plus(a, sr.zero()), a, "{:?} a ⊕ 0̄", sr);
            prop_assert_eq!(sr.times(sr.one(), a), a, "{:?} 1̄ ⊗ a", sr);
            prop_assert_eq!(sr.times(a, sr.one()), a, "{:?} a ⊗ 1̄", sr);
        }
    }

    #[test]
    fn times_distributes_over_plus(
        a in boundary_value(),
        b in boundary_value(),
        c in boundary_value(),
    ) {
        for sr in ALL {
            prop_assert_eq!(
                sr.times(a, sr.plus(b, c)),
                sr.plus(sr.times(a, b), sr.times(a, c)),
                "{:?} distributivity", sr
            );
            prop_assert_eq!(
                sr.times(sr.plus(b, c), a),
                sr.plus(sr.times(b, a), sr.times(c, a)),
                "{:?} right distributivity", sr
            );
        }
    }

    #[test]
    fn zero_annihilates(a in boundary_value()) {
        for sr in ALL {
            if sr.has_absorbing_zero() {
                prop_assert_eq!(sr.times(sr.zero(), a), sr.zero(), "{:?} 0̄ ⊗ a", sr);
                prop_assert_eq!(sr.times(a, sr.zero()), sr.zero(), "{:?} a ⊗ 0̄", sr);
            } else {
                // MaxTropical: zero() is still the ⊗-identity (0 + a = a)
                prop_assert_eq!(sr.times(sr.zero(), a), a, "{:?} 0 ⊗ a", sr);
            }
        }
    }

    #[test]
    fn saturation_never_wraps(a in boundary_value(), b in boundary_value()) {
        // The release-mode wrap this replaces: a ⊕ b / a ⊗ b must never
        // come out *smaller* than both operands under Natural, and
        // MinTropical's ∞ must be a fixed point of ⊗.
        let n = Semiring::Natural;
        prop_assert!(n.plus(a, b) >= a.max(b));
        if a >= 1 && b >= 1 {
            prop_assert!(n.times(a, b) >= a.max(b));
        }
        let t = Semiring::MinTropical;
        prop_assert_eq!(t.times(Semiring::INF, a), Semiring::INF);
        prop_assert!(t.times(a, b) >= a.max(b));
    }
}
