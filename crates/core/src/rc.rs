//! Relational circuits with bounded wires (Sec. 4.3).
//!
//! A [`RelationalCircuit`] is a DAG of relational gates. Every wire
//! (node output) carries a relation bounded by a *capacity* that depends
//! only on the declared degree constraints — never on data — which is
//! what makes the later word-level lowering possible.
//!
//! Each circuit has three consumers:
//! * [`RelationalCircuit::evaluate_ram`] — a direct RAM interpretation
//!   (the reference semantics, with capacity checking);
//! * [`RelationalCircuit::lower`] — instantiation as an oblivious
//!   word-level circuit via `qec-circuit`, whose measured gate count the
//!   experiments compare against the paper's cost model;
//! * [`crate::paper_cost`] — the abstract cost of Sec. 4.3.

use std::collections::HashMap;

use qec_circuit::{
    aggregate as c_aggregate, decompose as c_decompose, join_degree_bounded, join_output_bounded,
    join_pk, project as c_project, select as c_select, semijoin as c_semijoin,
    truncate as c_truncate, union as c_union, AggOp, Builder, Circuit, CompileOptions, InputLayout,
    Mode, Pool, RelWires, SlotWires,
};
use qec_relation::{AggKind, Database, Relation, Var, VarSet};

/// Index of a node in a [`RelationalCircuit`].
pub type NodeId = usize;

/// Selection predicates expressible at the relational-gate level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcPred {
    /// `lo ≤ field(var) < hi`.
    FieldRange {
        /// The tested attribute.
        var: Var,
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    },
    /// `field(var) = value`.
    FieldEq {
        /// The tested attribute.
        var: Var,
        /// The constant compared against.
        value: u64,
    },
    /// `field(a) = field(b)` (an equality selection between columns).
    ColEq {
        /// First attribute.
        a: Var,
        /// Second attribute.
        b: Var,
    },
}

impl RcPred {
    fn vars(&self) -> Vec<Var> {
        match self {
            RcPred::FieldRange { var, .. } | RcPred::FieldEq { var, .. } => vec![*var],
            RcPred::ColEq { a, b } => vec![*a, *b],
        }
    }
}

/// A relational gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcOp {
    /// An input relation, bound by name at evaluation time.
    Input {
        /// Lookup name in the database.
        name: String,
    },
    /// Selection `σ_pred`.
    Select {
        /// Upstream node.
        input: NodeId,
        /// The predicate.
        pred: RcPred,
    },
    /// Projection with duplicate elimination.
    Project {
        /// Upstream node.
        input: NodeId,
        /// Attributes kept.
        onto: VarSet,
    },
    /// Group-by aggregation (Sec. 4.3's extension operator).
    Aggregate {
        /// Upstream node.
        input: NodeId,
        /// Group-by attributes.
        group: VarSet,
        /// Aggregate computed per group.
        agg: AggKind,
        /// Fresh output attribute.
        out: Var,
    },
    /// Union of two same-schema relations.
    Union {
        /// Left input.
        a: NodeId,
        /// Right input.
        b: NodeId,
    },
    /// Primary-key join (`b` keyed by the shared attributes).
    JoinPk {
        /// Probe side.
        a: NodeId,
        /// Keyed side.
        b: NodeId,
    },
    /// Degree-bounded join (Alg. 7): `deg_shared(b) ≤ deg`.
    JoinDegree {
        /// Probe side (`M` capacity).
        a: NodeId,
        /// Degree-bounded side.
        b: NodeId,
        /// The degree bound `N`.
        deg: u64,
    },
    /// Output-bounded join (Alg. 10): `|a ⋈ b| ≤ out_bound`.
    JoinOutput {
        /// Left input.
        a: NodeId,
        /// Right input (decomposed by the circuit).
        b: NodeId,
        /// The promised output bound.
        out_bound: u64,
    },
    /// Semijoin `a ⋉ b`.
    Semijoin {
        /// Filtered side.
        a: NodeId,
        /// Filter side.
        b: NodeId,
    },
    /// One part of a degree decomposition (Alg. 2) of `input` on `on`;
    /// parts `2i` and `2i+1` (0-based) hold tuples whose `on`-degree lies
    /// in `[2^i, 2^{i+1})`, split half-and-half.
    Decompose {
        /// Decomposed node.
        input: NodeId,
        /// The conditioning attributes `X`.
        on: VarSet,
        /// Part index `0 .. 2·(1+⌊log₂ cap⌋)`.
        part: usize,
    },
    /// The ordering operator `τ_F(R)` (Sec. 4.3): adds a rank column
    /// holding each tuple's 1-based position when sorted by `by` (ties
    /// broken by the remaining attributes, deterministically).
    Order {
        /// Upstream node.
        input: NodeId,
        /// Sort attributes.
        by: VarSet,
        /// Fresh rank column.
        out: Var,
    },
    /// Capacity truncation (asserts no real tuple is dropped).
    Truncate {
        /// Upstream node.
        input: NodeId,
        /// New capacity.
        capacity: u64,
    },
    /// Adds a constant-valued column (annotation bootstrap, Sec. 7).
    AttachConst {
        /// Upstream node.
        input: NodeId,
        /// New attribute.
        var: Var,
        /// Its value on every tuple.
        value: u64,
    },
    /// Attribute renaming `ρ` (a bijective relabeling). Pure re-wiring
    /// in the lowering — zero gates — because slot order is free: every
    /// downstream operator re-sorts internally and the RAM reference
    /// normalizes through `Relation::from_rows`.
    Rename {
        /// Upstream node.
        input: NodeId,
        /// `(old, new)` pairs, applied simultaneously; unlisted
        /// attributes keep their names.
        map: Vec<(Var, Var)>,
    },
    /// Combines two columns into a fresh one with a semiring `⊗`,
    /// dropping the sources (the map operator of Sec. 7 / Alg. 11).
    MapMul {
        /// Upstream node.
        input: NodeId,
        /// First operand column (dropped).
        a: Var,
        /// Second operand column (dropped).
        b: Var,
        /// Result column (added).
        out: Var,
        /// The combining operation.
        op: MapBinOp,
    },
}

/// Column-combining operations for [`RcOp::MapMul`] — the semiring
/// multiplications supported by the word-level lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapBinOp {
    /// Numeric product (the natural semiring's `⊗`).
    Mul,
    /// Numeric sum.
    Add,
    /// Saturating sum (the tropical semirings' `⊗`): clamps at
    /// `u64::MAX`, making `∞` absorbing instead of wrapping back into ℕ.
    SatAdd,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl MapBinOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            MapBinOp::Mul => a.wrapping_mul(b),
            MapBinOp::Add => a.wrapping_add(b),
            MapBinOp::SatAdd => a.saturating_add(b),
            MapBinOp::Min => a.min(b),
            MapBinOp::Max => a.max(b),
        }
    }
}

/// A node: its gate plus the derived wire bound.
#[derive(Clone, Debug)]
pub struct RcNode {
    /// The gate.
    pub op: RcOp,
    /// Output schema.
    pub schema: VarSet,
    /// Output capacity (the bounded-wire parameter).
    pub capacity: u64,
}

/// Evaluation failures (the RAM interpreter mirrors the word circuit's
/// assertion gates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RcError {
    /// A node produced more tuples than its declared capacity.
    CapacityExceeded {
        /// Offending node.
        node: NodeId,
        /// Tuples produced.
        len: usize,
        /// Declared capacity.
        capacity: u64,
    },
    /// The database lacks an input relation.
    MissingInput(String),
    /// An input relation's schema differs from the node's.
    InputSchemaMismatch(String),
}

impl std::fmt::Display for RcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RcError::CapacityExceeded {
                node,
                len,
                capacity,
            } => {
                write!(f, "node {node} produced {len} tuples, capacity {capacity}")
            }
            RcError::MissingInput(n) => write!(f, "missing input relation {n}"),
            RcError::InputSchemaMismatch(n) => write!(f, "input {n} schema mismatch"),
        }
    }
}

impl std::error::Error for RcError {}

/// A relational circuit: nodes in topological (construction) order plus
/// designated outputs.
#[derive(Clone, Debug, Default)]
pub struct RelationalCircuit {
    /// The gates.
    pub nodes: Vec<RcNode>,
    /// Output nodes.
    pub outputs: Vec<NodeId>,
}

impl RelationalCircuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: RcOp, schema: VarSet, capacity: u64) -> NodeId {
        self.nodes.push(RcNode {
            op,
            schema,
            capacity,
        });
        self.nodes.len() - 1
    }

    fn node(&self, id: NodeId) -> &RcNode {
        &self.nodes[id]
    }

    /// Declares an input relation.
    pub fn input(&mut self, name: impl Into<String>, schema: VarSet, capacity: u64) -> NodeId {
        self.push(RcOp::Input { name: name.into() }, schema, capacity)
    }

    /// Adds a selection gate.
    pub fn select(&mut self, input: NodeId, pred: RcPred) -> NodeId {
        let (s, c) = (self.node(input).schema, self.node(input).capacity);
        for v in pred.vars() {
            assert!(s.contains(v), "selection on missing attribute {v}");
        }
        self.push(RcOp::Select { input, pred }, s, c)
    }

    /// Adds a projection gate.
    pub fn project(&mut self, input: NodeId, onto: VarSet) -> NodeId {
        let n = self.node(input);
        assert!(onto.is_subset(n.schema), "projection onto non-attributes");
        let c = n.capacity;
        self.push(RcOp::Project { input, onto }, onto, c)
    }

    /// Adds an aggregation gate.
    pub fn aggregate(&mut self, input: NodeId, group: VarSet, agg: AggKind, out: Var) -> NodeId {
        let n = self.node(input);
        assert!(group.is_subset(n.schema), "group-by on non-attributes");
        assert!(!n.schema.contains(out), "aggregate output collides");
        let c = n.capacity;
        self.push(
            RcOp::Aggregate {
                input,
                group,
                agg,
                out,
            },
            group.with(out),
            c,
        )
    }

    /// Adds a union gate.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.node(a).schema, self.node(b).schema);
        assert_eq!(sa, sb, "union schema mismatch");
        let c = self.node(a).capacity + self.node(b).capacity;
        self.push(RcOp::Union { a, b }, sa, c)
    }

    /// Adds a primary-key join gate.
    pub fn join_pk(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let s = self.node(a).schema.union(self.node(b).schema);
        let c = self.node(a).capacity;
        self.push(RcOp::JoinPk { a, b }, s, c)
    }

    /// Adds a degree-bounded join gate.
    pub fn join_degree(&mut self, a: NodeId, b: NodeId, deg: u64) -> NodeId {
        assert!(deg >= 1);
        let s = self.node(a).schema.union(self.node(b).schema);
        let c = self.node(a).capacity.saturating_mul(deg);
        self.push(RcOp::JoinDegree { a, b, deg }, s, c)
    }

    /// Adds an output-bounded join gate.
    pub fn join_output(&mut self, a: NodeId, b: NodeId, out_bound: u64) -> NodeId {
        let s = self.node(a).schema.union(self.node(b).schema);
        self.push(RcOp::JoinOutput { a, b, out_bound }, s, out_bound)
    }

    /// Adds a semijoin gate.
    pub fn semijoin(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (s, c) = (self.node(a).schema, self.node(a).capacity);
        self.push(RcOp::Semijoin { a, b }, s, c)
    }

    /// Adds all `2·(1+⌊log₂ cap⌋)` parts of a decomposition of `input` on
    /// `on` (Alg. 2). Returns `(node, card_bound, deg_bound)` per part.
    pub fn decompose(&mut self, input: NodeId, on: VarSet) -> Vec<(NodeId, u64, u64)> {
        let n = self.node(input);
        assert!(
            on.is_subset(n.schema) && on != n.schema,
            "decomposition needs X ⊂ Y"
        );
        let cap = n.capacity.max(1);
        let schema = n.schema;
        let k = 1 + cap.ilog2();
        let part_cap = cap.div_ceil(2);
        let mut out = Vec::with_capacity(2 * k as usize);
        for i in 1..=k {
            let deg = 1u64 << (i - 1);
            let card = (cap / deg).max(1);
            for half in 0..2 {
                let part = ((i - 1) * 2 + half) as usize;
                let id = self.push(RcOp::Decompose { input, on, part }, schema, part_cap);
                out.push((id, card, deg));
            }
        }
        out
    }

    /// Adds an ordering (rank-assignment) gate.
    pub fn order_by(&mut self, input: NodeId, by: VarSet, out: Var) -> NodeId {
        let n = self.node(input);
        assert!(by.is_subset(n.schema), "order-by on non-attributes");
        assert!(!n.schema.contains(out), "rank column collides");
        let (s, c) = (n.schema.with(out), n.capacity);
        self.push(RcOp::Order { input, by, out }, s, c)
    }

    /// Adds a truncation gate.
    pub fn truncate(&mut self, input: NodeId, capacity: u64) -> NodeId {
        let s = self.node(input).schema;
        self.push(RcOp::Truncate { input, capacity }, s, capacity)
    }

    /// Adds a renaming gate (`ρ`): relabels attributes per `map`
    /// (simultaneously, so swaps are fine), keeping unlisted ones.
    /// Returns `input` unchanged for an identity map.
    pub fn rename(&mut self, input: NodeId, map: &[(Var, Var)]) -> NodeId {
        let n = self.node(input);
        let map: Vec<(Var, Var)> = map.iter().copied().filter(|(a, b)| a != b).collect();
        if map.is_empty() {
            return input;
        }
        let mut sources = VarSet::EMPTY;
        for &(from, _) in &map {
            assert!(n.schema.contains(from), "renaming missing attribute {from}");
            assert!(!sources.contains(from), "duplicate rename source {from}");
            sources = sources.with(from);
        }
        let mut schema = VarSet::EMPTY;
        for v in n.schema.iter() {
            let new = map
                .iter()
                .find(|(from, _)| *from == v)
                .map(|(_, to)| *to)
                .unwrap_or(v);
            assert!(!schema.contains(new), "rename target {new} collides");
            schema = schema.with(new);
        }
        let c = n.capacity;
        self.push(RcOp::Rename { input, map }, schema, c)
    }

    /// Adds a constant-column gate.
    pub fn attach_const(&mut self, input: NodeId, var: Var, value: u64) -> NodeId {
        let n = self.node(input);
        assert!(!n.schema.contains(var), "attached column collides");
        let (s, c) = (n.schema.with(var), n.capacity);
        self.push(RcOp::AttachConst { input, var, value }, s, c)
    }

    /// Adds a column-combining gate (`⊗`-map); see [`MapBinOp`].
    pub fn map_mul(&mut self, input: NodeId, a: Var, b: Var, out: Var) -> NodeId {
        self.map_bin(input, a, b, out, MapBinOp::Mul)
    }

    /// Adds a column-combining gate with an explicit operation.
    pub fn map_bin(&mut self, input: NodeId, a: Var, b: Var, out: Var, op: MapBinOp) -> NodeId {
        let n = self.node(input);
        assert!(
            n.schema.contains(a) && n.schema.contains(b) && a != b,
            "factors missing"
        );
        let s = n
            .schema
            .minus(VarSet::singleton(a))
            .minus(VarSet::singleton(b));
        assert!(!s.contains(out), "product column collides");
        let (s, c) = (s.with(out), n.capacity);
        self.push(
            RcOp::MapMul {
                input,
                a,
                b,
                out,
                op,
            },
            s,
            c,
        )
    }

    /// Marks a node as a circuit output.
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// RAM reference evaluation: interprets every gate with the
    /// `qec-relation` operators, enforcing each wire's capacity bound
    /// (the RAM analogue of the lowered circuit's assertion gates).
    /// Returns the relations at the output nodes.
    pub fn evaluate_ram(&self, db: &Database) -> Result<Vec<Relation>, RcError> {
        let mut vals: Vec<Relation> = Vec::with_capacity(self.nodes.len());
        for (id, n) in self.nodes.iter().enumerate() {
            let rel = match &n.op {
                RcOp::Input { name } => {
                    let r = db
                        .get(name)
                        .ok_or_else(|| RcError::MissingInput(name.clone()))?;
                    if r.vars() != n.schema {
                        return Err(RcError::InputSchemaMismatch(name.clone()));
                    }
                    r.clone()
                }
                RcOp::Select { input, pred } => {
                    let r = &vals[*input];
                    match pred {
                        RcPred::FieldRange { var, lo, hi } => {
                            let col = r.col(*var).expect("validated");
                            r.select(|row| (*lo..*hi).contains(&row[col]))
                        }
                        RcPred::FieldEq { var, value } => {
                            let col = r.col(*var).expect("validated");
                            r.select(|row| row[col] == *value)
                        }
                        RcPred::ColEq { a, b } => {
                            let (ca, cb) =
                                (r.col(*a).expect("validated"), r.col(*b).expect("validated"));
                            r.select(|row| row[ca] == row[cb])
                        }
                    }
                }
                RcOp::Project { input, onto } => vals[*input].project(*onto),
                RcOp::Aggregate {
                    input,
                    group,
                    agg,
                    out,
                } => vals[*input].aggregate(*group, *agg, *out),
                RcOp::Union { a, b } => vals[*a].union(&vals[*b]),
                RcOp::JoinPk { a, b }
                | RcOp::JoinDegree { a, b, .. }
                | RcOp::JoinOutput { a, b, .. } => vals[*a].natural_join(&vals[*b]),
                RcOp::Semijoin { a, b } => vals[*a].semijoin(&vals[*b]),
                RcOp::Decompose { input, on, part } => {
                    ram_decompose_part(&vals[*input], *on, *part)
                }
                RcOp::Order { input, by, out } => vals[*input].order_by(*by, *out),
                RcOp::Truncate { input, .. } => vals[*input].clone(),
                RcOp::Rename { input, map } => {
                    let r = &vals[*input];
                    let schema: Vec<Var> = r
                        .schema()
                        .iter()
                        .map(|v| {
                            map.iter()
                                .find(|(from, _)| from == v)
                                .map(|(_, to)| *to)
                                .unwrap_or(*v)
                        })
                        .collect();
                    Relation::from_rows(schema, r.iter().cloned().collect())
                }
                RcOp::AttachConst { input, var, value } => {
                    let r = &vals[*input];
                    let mut schema = r.schema().to_vec();
                    schema.push(*var);
                    let rows = r
                        .iter()
                        .map(|row| {
                            let mut t = row.clone();
                            t.push(*value);
                            t
                        })
                        .collect();
                    Relation::from_rows(schema, rows)
                }
                RcOp::MapMul {
                    input,
                    a,
                    b,
                    out,
                    op,
                } => {
                    let r = &vals[*input];
                    let (ca, cb) = (r.col(*a).expect("factor"), r.col(*b).expect("factor"));
                    let out_schema: Vec<Var> = n.schema.to_vec();
                    let rows = r
                        .iter()
                        .map(|row| {
                            out_schema
                                .iter()
                                .map(|v| {
                                    if v == out {
                                        op.apply(row[ca], row[cb])
                                    } else {
                                        row[r.col(*v).expect("kept column")]
                                    }
                                })
                                .collect()
                        })
                        .collect();
                    Relation::from_rows(out_schema, rows)
                }
            };
            if rel.len() as u64 > n.capacity {
                return Err(RcError::CapacityExceeded {
                    node: id,
                    len: rel.len(),
                    capacity: n.capacity,
                });
            }
            debug_assert_eq!(rel.vars(), n.schema, "node {id} schema drift");
            vals.push(rel);
        }
        Ok(self.outputs.iter().map(|&o| vals[o].clone()).collect())
    }

    /// Lowers the relational circuit to a word-level oblivious circuit
    /// (Sec. 5) under environment defaults (`QEC_THREADS`, `QEC_TRACE`):
    /// each gate becomes the corresponding `qec-circuit` construction
    /// sized by this circuit's wire bounds.
    pub fn lower(&self, mode: Mode) -> LoweredCircuit {
        self.lower_with(mode, &CompileOptions::from_env())
    }

    /// [`RelationalCircuit::lower`] under explicit [`CompileOptions`]:
    /// with a multi-worker pool the word builder runs in its parallel
    /// mode (sharded hash-consing plus deterministic replay), so
    /// per-operator circuit blocks can be emitted from multiple workers
    /// while the finished circuit stays byte-identical to the sequential
    /// build. When `opts.recorder` is enabled the whole word-circuit
    /// construction is recorded as a `build` span.
    pub fn lower_with(&self, mode: Mode, opts: &CompileOptions) -> LoweredCircuit {
        let _span = opts.recorder.span("build");
        let pool = opts.pool;
        let b = if pool.is_sequential() {
            Builder::new(mode)
        } else {
            Builder::with_pool(mode, pool)
        };
        self.lower_into(b)
    }

    /// Measurement baseline: the same lowering with the builder's online
    /// hash-consing disabled, so every gate is emitted verbatim. X24 uses
    /// this to quantify how much cross-iteration redundancy the online
    /// CSE collapses in unrolled fixpoint circuits — do not evaluate
    /// production circuits through it.
    pub fn lower_without_cse(&self, mode: Mode) -> LoweredCircuit {
        self.lower_into(Builder::without_cse(mode))
    }

    fn lower_into(&self, mut b: Builder) -> LoweredCircuit {
        let mut layout = InputLayout::new();
        // Declare inputs first (layout order = node order of Input gates).
        let mut wires: Vec<Option<RelWires>> = vec![None; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            if let RcOp::Input { name } = &n.op {
                layout.add(name.clone(), n.schema.to_vec(), n.capacity as usize);
                wires[id] = Some(qec_circuit::encode_relation(
                    &mut b,
                    n.schema.to_vec(),
                    n.capacity as usize,
                ));
            }
        }
        // Shared decompositions: one circuit per (input, on) pair.
        let mut decomps: HashMap<(NodeId, VarSet), Vec<qec_circuit::DecomposedPart>> =
            HashMap::new();
        for (id, n) in self.nodes.iter().enumerate() {
            let w = match &n.op {
                RcOp::Input { .. } => continue,
                RcOp::Select { input, pred } => {
                    let r = wires[*input].clone().expect("topological");
                    match pred {
                        RcPred::FieldRange { var, lo, hi } => {
                            let col = r.col(*var).expect("validated");
                            let (lo, hi) = (*lo, *hi);
                            c_select(&mut b, &r, |b, s: &SlotWires| {
                                let low = b.constant(lo);
                                let high = b.constant(hi);
                                let ge = {
                                    let lt = b.lt(s.fields[col], low);
                                    b.not(lt)
                                };
                                let lt_hi = b.lt(s.fields[col], high);
                                b.and(ge, lt_hi)
                            })
                        }
                        RcPred::FieldEq { var, value } => {
                            let col = r.col(*var).expect("validated");
                            let value = *value;
                            c_select(&mut b, &r, |b, s: &SlotWires| {
                                let v = b.constant(value);
                                b.eq(s.fields[col], v)
                            })
                        }
                        RcPred::ColEq { a, b: vb } => {
                            let (ca, cb) = (
                                r.col(*a).expect("validated"),
                                r.col(*vb).expect("validated"),
                            );
                            c_select(&mut b, &r, |b, s: &SlotWires| {
                                b.eq(s.fields[ca], s.fields[cb])
                            })
                        }
                    }
                }
                RcOp::Project { input, onto } => {
                    let r = wires[*input].clone().expect("topological");
                    c_project(&mut b, &r, *onto)
                }
                RcOp::Aggregate {
                    input,
                    group,
                    agg,
                    out,
                } => {
                    let r = wires[*input].clone().expect("topological");
                    let op = match agg {
                        AggKind::Count => AggOp::Count,
                        AggKind::Sum(v) => AggOp::Sum(*v),
                        AggKind::Min(v) => AggOp::Min(*v),
                        AggKind::Max(v) => AggOp::Max(*v),
                    };
                    c_aggregate(&mut b, &r, *group, op, *out)
                }
                RcOp::Union { a, b: rb } => {
                    let (ra, rbw) = (
                        wires[*a].clone().expect("topo"),
                        wires[*rb].clone().expect("topo"),
                    );
                    c_union(&mut b, &ra, &rbw)
                }
                RcOp::JoinPk { a, b: rb } => {
                    let (ra, rbw) = (
                        wires[*a].clone().expect("topo"),
                        wires[*rb].clone().expect("topo"),
                    );
                    join_pk(&mut b, &ra, &rbw)
                }
                RcOp::JoinDegree { a, b: rb, deg } => {
                    let (ra, rbw) = (
                        wires[*a].clone().expect("topo"),
                        wires[*rb].clone().expect("topo"),
                    );
                    join_degree_bounded(&mut b, &ra, &rbw, *deg as usize)
                }
                RcOp::JoinOutput {
                    a,
                    b: rb,
                    out_bound,
                } => {
                    let (ra, rbw) = (
                        wires[*a].clone().expect("topo"),
                        wires[*rb].clone().expect("topo"),
                    );
                    join_output_bounded(&mut b, &ra, &rbw, *out_bound as usize)
                }
                RcOp::Semijoin { a, b: rb } => {
                    let (ra, rbw) = (
                        wires[*a].clone().expect("topo"),
                        wires[*rb].clone().expect("topo"),
                    );
                    c_semijoin(&mut b, &ra, &rbw)
                }
                RcOp::Decompose { input, on, part } => {
                    let parts = decomps.entry((*input, *on)).or_insert_with(|| {
                        let r = wires[*input].clone().expect("topological");
                        c_decompose(&mut b, &r, *on)
                    });
                    // circuit part capacities are ceil(cap/2) slots taken
                    // by parity; match the RcNode capacity by truncation
                    let w = parts[*part].rel.clone();
                    c_truncate(&mut b, &w, self.nodes[id].capacity as usize)
                }
                RcOp::Order { input, by, out } => {
                    let r = wires[*input].clone().expect("topological");
                    // deterministic total order: `by`, then the remaining
                    // attributes — matches the RAM operator's tie-breaking
                    let mut cols: Vec<Var> = by.to_vec();
                    cols.extend(r.schema.iter().copied().filter(|v| !by.contains(*v)));
                    let sorted =
                        qec_circuit::sort_slots(&mut b, &r, &qec_circuit::SortKey::Columns(cols));
                    // non-dummies sort first, so slot index + 1 is the rank
                    let schema = self.nodes[id].schema.to_vec();
                    RelWires {
                        schema: schema.clone(),
                        slots: sorted
                            .slots
                            .iter()
                            .enumerate()
                            .map(|(rank, s)| {
                                let rank_w = b.constant(rank as u64 + 1);
                                SlotWires {
                                    fields: schema
                                        .iter()
                                        .map(|v| {
                                            if v == out {
                                                rank_w
                                            } else {
                                                s.fields[sorted.col(*v).expect("kept")]
                                            }
                                        })
                                        .collect(),
                                    valid: s.valid,
                                }
                            })
                            .collect(),
                    }
                }
                RcOp::Truncate { input, capacity } => {
                    let r = wires[*input].clone().expect("topological");
                    c_truncate(&mut b, &r, *capacity as usize)
                }
                RcOp::Rename { input, map } => {
                    let r = wires[*input].clone().expect("topological");
                    let schema = self.nodes[id].schema.to_vec();
                    // pure per-slot wire permutation: new sorted column v
                    // reads the old column it was renamed from
                    let old_of = |v: Var| {
                        map.iter()
                            .find(|(_, to)| *to == v)
                            .map(|(from, _)| *from)
                            .unwrap_or(v)
                    };
                    RelWires {
                        schema: schema.clone(),
                        slots: r
                            .slots
                            .iter()
                            .map(|s| SlotWires {
                                fields: schema
                                    .iter()
                                    .map(|v| s.fields[r.col(old_of(*v)).expect("renamed")])
                                    .collect(),
                                valid: s.valid,
                            })
                            .collect(),
                    }
                }
                RcOp::AttachConst { input, var, value } => {
                    let r = wires[*input].clone().expect("topological");
                    let schema = self.nodes[id].schema.to_vec();
                    let cw = b.constant(*value);
                    RelWires {
                        schema: schema.clone(),
                        slots: r
                            .slots
                            .iter()
                            .map(|s| SlotWires {
                                fields: schema
                                    .iter()
                                    .map(|v| {
                                        if v == var {
                                            cw
                                        } else {
                                            s.fields[r.col(*v).expect("kept")]
                                        }
                                    })
                                    .collect(),
                                valid: s.valid,
                            })
                            .collect(),
                    }
                }
                RcOp::MapMul {
                    input,
                    a,
                    b: fb,
                    out,
                    op,
                } => {
                    let r = wires[*input].clone().expect("topological");
                    let (ca, cb) = (r.col(*a).expect("factor"), r.col(*fb).expect("factor"));
                    let schema = self.nodes[id].schema.to_vec();
                    RelWires {
                        schema: schema.clone(),
                        slots: r
                            .slots
                            .iter()
                            .map(|s| {
                                let (fa, fbw) = (s.fields[ca], s.fields[cb]);
                                let prod = match op {
                                    MapBinOp::Mul => b.mul(fa, fbw),
                                    MapBinOp::Add => b.add(fa, fbw),
                                    MapBinOp::SatAdd => {
                                        // unsigned wrap-add overflows iff
                                        // the sum is below either operand
                                        let s = b.add(fa, fbw);
                                        let ovf = b.lt(s, fa);
                                        let maxw = b.constant(u64::MAX);
                                        b.mux(ovf, maxw, s)
                                    }
                                    MapBinOp::Min => {
                                        let lt = b.lt(fa, fbw);
                                        b.mux(lt, fa, fbw)
                                    }
                                    MapBinOp::Max => {
                                        let gt = b.lt(fbw, fa);
                                        b.mux(gt, fa, fbw)
                                    }
                                };
                                SlotWires {
                                    fields: schema
                                        .iter()
                                        .map(|v| {
                                            if v == out {
                                                prod
                                            } else {
                                                s.fields[r.col(*v).expect("kept")]
                                            }
                                        })
                                        .collect(),
                                    valid: s.valid,
                                }
                            })
                            .collect(),
                    }
                }
            };
            wires[id] = Some(w);
        }

        let mut out_wires = Vec::new();
        let mut out_meta = Vec::new();
        for &o in &self.outputs {
            let w = wires[o].as_ref().expect("output wired");
            let start = out_wires.len();
            out_wires.extend(w.flatten());
            out_meta.push((w.schema.clone(), start, out_wires.len() - start));
        }
        LoweredCircuit {
            circuit: b.finish(out_wires),
            layout,
            outputs: out_meta,
        }
    }

    /// Pool-selecting alias for [`RelationalCircuit::lower_with`], kept
    /// for source compatibility.
    #[deprecated(
        since = "0.1.0",
        note = "use `lower_with(mode, &CompileOptions::sequential().with_pool(pool))`"
    )]
    pub fn lower_with_pool(&self, mode: Mode, pool: Pool) -> LoweredCircuit {
        self.lower_with(mode, &CompileOptions::sequential().with_pool(pool))
    }
}

/// RAM mirror of one decomposition part (Alg. 2 semantics; tie-breaking
/// may differ from the bitonic network's, which is fine — all certified
/// bounds and the part union are identical).
fn ram_decompose_part(rel: &Relation, on: VarSet, part: usize) -> Relation {
    let bucket = part / 2;
    let half = part % 2;
    let lo = 1u64 << bucket;
    let hi = 1u64 << (bucket + 1);
    let cols: Vec<usize> = on.iter().map(|v| rel.col(v).expect("subset")).collect();
    let mut counts: HashMap<Vec<u64>, u64> = HashMap::new();
    for row in rel.iter() {
        let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let in_bucket: Vec<&Vec<u64>> = rel
        .iter()
        .filter(|row| {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            (lo..hi).contains(&counts[&key])
        })
        .collect();
    // rows are already lexicographically sorted (schema-first); sorting by
    // `on` then the rest matches τ_X with deterministic ties
    let mut sorted: Vec<&Vec<u64>> = in_bucket;
    sorted.sort_by(|x, y| {
        let kx: Vec<u64> = cols.iter().map(|&c| x[c]).collect();
        let ky: Vec<u64> = cols.iter().map(|&c| y[c]).collect();
        kx.cmp(&ky).then_with(|| x.cmp(y))
    });
    let rows = sorted
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == half)
        .map(|(_, r)| r.clone())
        .collect();
    Relation::from_rows(rel.schema().to_vec(), rows)
}

impl RelationalCircuit {
    /// Graphviz (DOT) rendering of the circuit DAG — the same picture the
    /// paper draws in Figures 1 and 2. Inputs are boxes, joins are
    /// ellipses, outputs are double-circled; edges follow dataflow.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph rc {\n  rankdir=BT;\n  node [fontsize=10];\n");
        let esc = |s: String| s.replace('"', "'");
        for (i, n) in self.nodes.iter().enumerate() {
            let (label, shape) = match &n.op {
                RcOp::Input { name } => (format!("{name}\\n{} ≤ {}", n.schema, n.capacity), "box"),
                RcOp::Select { .. } => (format!("σ\\n{}", n.schema), "ellipse"),
                RcOp::Project { onto, .. } => (format!("Π {onto}"), "ellipse"),
                RcOp::Aggregate { agg, .. } => (format!("Π agg {agg:?}"), "ellipse"),
                RcOp::Union { .. } => ("∪".to_string(), "ellipse"),
                RcOp::JoinPk { .. } => (format!("⋈ pk\\n{}", n.schema), "ellipse"),
                RcOp::JoinDegree { deg, .. } => (format!("⋈ deg≤{deg}\\n{}", n.schema), "ellipse"),
                RcOp::JoinOutput { out_bound, .. } => {
                    (format!("⋈ out≤{out_bound}\\n{}", n.schema), "ellipse")
                }
                RcOp::Semijoin { .. } => (format!("⋉\\n{}", n.schema), "ellipse"),
                RcOp::Decompose { part, .. } => (format!("decomp #{part}"), "hexagon"),
                RcOp::Order { by, .. } => (format!("τ {by}"), "ellipse"),
                RcOp::Truncate { capacity, .. } => (format!("trunc {capacity}"), "ellipse"),
                RcOp::Rename { .. } => (format!("ρ\\n{}", n.schema), "ellipse"),
                RcOp::AttachConst { var, value, .. } => (format!("{var} := {value}"), "ellipse"),
                RcOp::MapMul { out, op, .. } => (format!("map {op:?} → {out}"), "ellipse"),
            };
            let peripheries = if self.outputs.contains(&i) { 2 } else { 1 };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}, peripheries={peripheries}];",
                esc(label)
            );
            for dep in node_inputs(&n.op) {
                let _ = writeln!(out, "  n{dep} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Upstream node ids of a gate.
fn node_inputs(op: &RcOp) -> Vec<NodeId> {
    match op {
        RcOp::Input { .. } => vec![],
        RcOp::Select { input, .. }
        | RcOp::Project { input, .. }
        | RcOp::Aggregate { input, .. }
        | RcOp::Decompose { input, .. }
        | RcOp::Order { input, .. }
        | RcOp::Truncate { input, .. }
        | RcOp::Rename { input, .. }
        | RcOp::AttachConst { input, .. }
        | RcOp::MapMul { input, .. } => vec![*input],
        RcOp::Union { a, b }
        | RcOp::JoinPk { a, b }
        | RcOp::JoinDegree { a, b, .. }
        | RcOp::JoinOutput { a, b, .. }
        | RcOp::Semijoin { a, b } => vec![*a, *b],
    }
}

impl std::fmt::Display for RelationalCircuit {
    /// EXPLAIN-style plan listing: one line per gate with schema and
    /// capacity (wire bound).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            let op = match &n.op {
                RcOp::Input { name } => format!("Input \"{name}\""),
                RcOp::Select { input, pred } => match pred {
                    RcPred::FieldRange { var, lo, hi } => {
                        format!("Select(n{input}, {lo} ≤ {var} < {hi})")
                    }
                    RcPred::FieldEq { var, value } => format!("Select(n{input}, {var} = {value})"),
                    RcPred::ColEq { a, b } => format!("Select(n{input}, {a} = {b})"),
                },
                RcOp::Project { input, onto } => format!("Project(n{input} → {onto})"),
                RcOp::Aggregate {
                    input,
                    group,
                    agg,
                    out,
                } => {
                    format!("Aggregate(n{input} by {group}, {agg:?} → {out})")
                }
                RcOp::Union { a, b } => format!("Union(n{a}, n{b})"),
                RcOp::JoinPk { a, b } => format!("JoinPk(n{a}, n{b})"),
                RcOp::JoinDegree { a, b, deg } => format!("JoinDeg(n{a}, n{b}, deg ≤ {deg})"),
                RcOp::JoinOutput { a, b, out_bound } => {
                    format!("JoinOut(n{a}, n{b}, OUT ≤ {out_bound})")
                }
                RcOp::Semijoin { a, b } => format!("Semijoin(n{a} ⋉ n{b})"),
                RcOp::Decompose { input, on, part } => {
                    format!("Decompose(n{input} on {on}, part {part})")
                }
                RcOp::Order { input, by, out } => format!("Order(n{input} by {by} → {out})"),
                RcOp::Truncate { input, capacity } => format!("Truncate(n{input} → {capacity})"),
                RcOp::Rename { input, map } => {
                    let pairs: Vec<String> = map.iter().map(|(a, b)| format!("{a}→{b}")).collect();
                    format!("Rename(n{input}, {})", pairs.join(", "))
                }
                RcOp::AttachConst { input, var, value } => {
                    format!("Attach(n{input}, {var} := {value})")
                }
                RcOp::MapMul {
                    input,
                    a,
                    b,
                    out,
                    op,
                } => {
                    format!("Map(n{input}, {a} {op:?} {b} → {out})")
                }
            };
            let marker = if self.outputs.contains(&i) {
                " *out*"
            } else {
                ""
            };
            writeln!(
                f,
                "n{i:<4} [{} | cap {:>8}] {op}{marker}",
                n.schema, n.capacity
            )?;
        }
        Ok(())
    }
}

/// A lowered relational circuit.
pub struct LoweredCircuit {
    /// The word-level circuit.
    pub circuit: Circuit,
    /// Input layout for binding databases.
    pub layout: InputLayout,
    /// Output metadata: `(schema, start, len)` into the circuit outputs.
    pub outputs: Vec<(Vec<Var>, usize, usize)>,
}

impl LoweredCircuit {
    /// Evaluates on a database and decodes the output relations.
    pub fn run(&self, db: &Database) -> Result<Vec<Relation>, Box<dyn std::error::Error>> {
        let inputs = self.layout.values(db)?;
        let raw = self.circuit.evaluate(&inputs)?;
        Ok(self.decode(&raw))
    }

    /// Compiles the word-level circuit to a reusable evaluation tape
    /// (see [`qec_circuit::CompiledCircuit`]); the handle outlives this
    /// value and amortizes compilation over many [`Self::run_batch`]
    /// calls.
    pub fn compile_engine(&self) -> Result<qec_circuit::CompiledCircuit, qec_circuit::EvalError> {
        self.compile_engine_with(&CompileOptions::from_env())
            .map(|(eng, _)| eng)
    }

    /// [`Self::compile_engine`] under explicit [`CompileOptions`],
    /// returning the engine together with the pipeline's timing/metrics
    /// report.
    pub fn compile_engine_with(
        &self,
        opts: &CompileOptions,
    ) -> Result<(qec_circuit::CompiledCircuit, qec_circuit::PipelineReport), qec_circuit::EvalError>
    {
        qec_circuit::CompiledCircuit::compile_with(&self.circuit, opts)
    }

    /// Evaluates one circuit over many databases in a single batched
    /// tape pass — the oblivious-evaluation pattern the paper targets
    /// (the same topology serves every instance). Each database gets
    /// exactly the result [`Self::run`] would give it.
    pub fn run_batch(
        &self,
        dbs: &[Database],
    ) -> Result<Vec<Vec<Relation>>, Box<dyn std::error::Error>> {
        let engine = self.compile_engine()?;
        let inputs: Result<Vec<Vec<u64>>, _> =
            dbs.iter().map(|db| self.layout.values(db)).collect();
        let inputs = inputs?;
        engine
            .evaluate_batch(&inputs)
            .into_iter()
            .map(|lane| {
                let raw = lane?;
                Ok(self.decode(&raw))
            })
            .collect()
    }

    fn decode(&self, raw: &[u64]) -> Vec<Relation> {
        self.outputs
            .iter()
            .map(|(schema, start, len)| {
                qec_circuit::decode_relation(schema, &raw[*start..*start + *len])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_relation::random_relation;

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    /// A small plan: σ(R) ⋈deg S ∪ T, exercised through both evaluators.
    fn sample_circuit() -> RelationalCircuit {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 16);
        let s = rc.input("S", vs(&[1, 2]), 16);
        let sel = rc.select(
            r,
            RcPred::FieldRange {
                var: Var(0),
                lo: 0,
                hi: 20,
            },
        );
        let j = rc.join_degree(sel, s, 16);
        let p = rc.project(j, vs(&[0, 2]));
        rc.mark_output(p);
        rc
    }

    #[test]
    fn ram_and_lowered_agree() {
        let rc = sample_circuit();
        let lowered = rc.lower(Mode::Build);
        for seed in 0..4 {
            let mut db = Database::new();
            db.insert("R", random_relation(vec![Var(0), Var(1)], 14, seed));
            db.insert("S", random_relation(vec![Var(1), Var(2)], 14, seed + 5));
            let ram = rc.evaluate_ram(&db).unwrap();
            let circ = lowered.run(&db).unwrap();
            assert_eq!(ram, circ, "seed {seed}");
        }
    }

    #[test]
    fn run_batch_matches_run_per_database() {
        let rc = sample_circuit();
        let lowered = rc.lower(Mode::Build);
        let dbs: Vec<Database> = (0..6)
            .map(|seed| {
                let mut db = Database::new();
                db.insert("R", random_relation(vec![Var(0), Var(1)], 14, seed));
                db.insert("S", random_relation(vec![Var(1), Var(2)], 14, seed + 5));
                db
            })
            .collect();
        let batched = lowered.run_batch(&dbs).unwrap();
        assert_eq!(batched.len(), dbs.len());
        for (db, got) in dbs.iter().zip(batched) {
            assert_eq!(got, lowered.run(db).unwrap());
        }
    }

    #[test]
    fn capacity_violation_detected_in_ram() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 1);
        let s = rc.input("S", vs(&[1, 2]), 4);
        // declared degree 1, but data will have degree 2 — the join's
        // capacity (1·1) cannot hold the 2 result tuples
        let j = rc.join_degree(r, s, 1);
        rc.mark_output(j);
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 1]]),
        );
        db.insert(
            "S",
            Relation::from_rows(vec![Var(1), Var(2)], vec![vec![1, 5], vec![1, 6]]),
        );
        let err = rc.evaluate_ram(&db).unwrap_err();
        assert!(matches!(err, RcError::CapacityExceeded { .. }), "{err:?}");
        // and the lowered circuit fires an assertion on the same input
        let lowered = rc.lower(Mode::Build);
        assert!(lowered.run(&db).is_err());
    }

    #[test]
    fn decompose_parts_shared_in_lowering() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 16);
        let parts = rc.decompose(r, vs(&[0]));
        assert_eq!(parts.len(), 2 * (1 + 16u64.ilog2()) as usize);
        for &(id, _, _) in &parts {
            rc.mark_output(id);
        }
        let lowered = rc.lower(Mode::Build);
        let mut db = Database::new();
        let rel = qec_relation::zipf_relation(Var(0), Var(1), 14, 1.1, 2);
        db.insert("R", rel.clone());
        let outs = lowered.run(&db).unwrap();
        let mut acc = Relation::empty(vs(&[0, 1]));
        for o in &outs {
            acc = acc.union(o);
        }
        assert_eq!(acc, rel);
        // RAM decomposition also partitions
        let ram = rc.evaluate_ram(&db).unwrap();
        let mut acc2 = Relation::empty(vs(&[0, 1]));
        let mut total = 0;
        for o in &ram {
            total += o.len();
            acc2 = acc2.union(o);
        }
        assert_eq!(acc2, rel);
        assert_eq!(total, rel.len());
    }

    #[test]
    fn annotation_ops() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0]), 4);
        let a = rc.attach_const(r, Var(5), 3);
        let a2 = rc.attach_const(a, Var(6), 7);
        let m = rc.map_mul(a2, Var(5), Var(6), Var(7));
        rc.mark_output(m);
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(vec![Var(0)], vec![vec![1], vec![2]]),
        );
        let ram = rc.evaluate_ram(&db).unwrap();
        let expect = Relation::from_rows(vec![Var(0), Var(7)], vec![vec![1, 21], vec![2, 21]]);
        assert_eq!(ram[0], expect);
        let lowered = rc.lower(Mode::Build);
        assert_eq!(lowered.run(&db).unwrap()[0], expect);
    }

    #[test]
    fn rename_is_pure_rewiring() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 6);
        // swap the two columns, then rename one out of the way
        let swapped = rc.rename(r, &[(Var(0), Var(1)), (Var(1), Var(0))]);
        let m = rc.rename(swapped, &[(Var(1), Var(7))]);
        rc.mark_output(swapped);
        rc.mark_output(m);
        let mut db = Database::new();
        let rel = Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 2], vec![3, 4]]);
        db.insert("R", rel.clone());
        let ram = rc.evaluate_ram(&db).unwrap();
        assert_eq!(
            ram[0],
            rel.rename(Var(0), Var(9))
                .rename(Var(1), Var(0))
                .rename(Var(9), Var(1))
        );
        let lowered = rc.lower(Mode::Build);
        let circ = lowered.run(&db).unwrap();
        assert_eq!(circ, ram);
        // an identity rename adds no node
        let mut rc2 = RelationalCircuit::new();
        let r2 = rc2.input("R", vs(&[0, 1]), 6);
        assert_eq!(rc2.rename(r2, &[(Var(0), Var(0))]), r2);
        assert_eq!(rc2.nodes.len(), 1);
    }

    #[test]
    fn sat_add_map_saturates_in_both_evaluators() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 4);
        let m = rc.map_bin(r, Var(0), Var(1), Var(2), MapBinOp::SatAdd);
        rc.mark_output(m);
        let mut db = Database::new();
        // u64::MAX is the circuit dummy sentinel, so drive the boundary
        // from just below it: (MAX-1) + 5 must clamp, not wrap.
        db.insert(
            "R",
            Relation::from_rows(
                vec![Var(0), Var(1)],
                vec![vec![u64::MAX - 1, 5], vec![3, 4]],
            ),
        );
        let ram = rc.evaluate_ram(&db).unwrap();
        let expect = Relation::from_rows(vec![Var(2)], vec![vec![u64::MAX], vec![7]]);
        assert_eq!(ram[0], expect);
        let lowered = rc.lower(Mode::Build);
        assert_eq!(lowered.run(&db).unwrap()[0], expect);
    }

    #[test]
    fn equality_predicates() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 8);
        let eq = rc.select(
            r,
            RcPred::FieldEq {
                var: Var(1),
                value: 7,
            },
        );
        let diag = rc.select(
            r,
            RcPred::ColEq {
                a: Var(0),
                b: Var(1),
            },
        );
        rc.mark_output(eq);
        rc.mark_output(diag);
        let mut db = Database::new();
        let rel = Relation::from_rows(
            vec![Var(0), Var(1)],
            vec![vec![7, 7], vec![1, 7], vec![2, 3]],
        );
        db.insert("R", rel.clone());
        let ram = rc.evaluate_ram(&db).unwrap();
        assert_eq!(ram[0], rel.select(|row| row[1] == 7));
        assert_eq!(ram[1], rel.select(|row| row[0] == row[1]));
        let lowered = rc.lower(Mode::Build);
        let circ = lowered.run(&db).unwrap();
        assert_eq!(circ, ram);
    }

    #[test]
    fn order_gate_ranks_consistently() {
        let mut rc = RelationalCircuit::new();
        let r = rc.input("R", vs(&[0, 1]), 6);
        let o = rc.order_by(r, vs(&[1]), Var(9));
        rc.mark_output(o);
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(
                vec![Var(0), Var(1)],
                vec![vec![5, 3], vec![1, 9], vec![2, 3]],
            ),
        );
        let ram = rc.evaluate_ram(&db).unwrap();
        let lowered = rc.lower(Mode::Build);
        let circ = lowered.run(&db).unwrap();
        assert_eq!(ram[0], circ[0]);
        // ranks follow B order with A tie-break: (2,3)→1? no: (2,3) vs (5,3)
        // tie on B=3 broken by A: (2,3)→1, (5,3)→2, (1,9)→3
        let rank_col = ram[0].col(Var(9)).unwrap();
        let rows: Vec<(u64, u64)> = ram[0].iter().map(|row| (row[0], row[rank_col])).collect();
        assert!(rows.contains(&(2, 1)) && rows.contains(&(5, 2)) && rows.contains(&(1, 3)));
    }

    #[test]
    fn missing_input_errors() {
        let rc = sample_circuit();
        let db = Database::new();
        assert!(matches!(
            rc.evaluate_ram(&db),
            Err(RcError::MissingInput(_))
        ));
    }
}
