//! Baseline relational circuits: the classical `O(N^m)` construction and
//! the hand-built heavy/light triangle circuit of Figure 1.

use qec_query::Cq;
use qec_relation::{DcSet, Var, VarSet};

use crate::panda::CompileError;
use crate::rc::{NodeId, RcPred, RelationalCircuit};

/// The classical circuit (Abiteboul–Hull–Vianu, Sec. 1): join the atoms
/// left to right with no degree information, i.e. every join is sized for
/// the full cross product. Cost `O(N^m)` — the baseline every experiment
/// compares PANDA-C against.
pub fn naive_circuit(cq: &Cq, dc: &DcSet) -> Result<(RelationalCircuit, NodeId), CompileError> {
    let mut rc = RelationalCircuit::new();
    let mut acc: Option<NodeId> = None;
    for atom in &cq.atoms {
        let cap = dc
            .cardinality_of(atom.vars)
            .ok_or_else(|| CompileError::UnguardedAtom(atom.name.clone()))?;
        let node = rc.input(atom.name.clone(), atom.vars, cap);
        acc = Some(match acc {
            None => node,
            // degree bound = the full cardinality: always valid, never
            // informative — exactly the naive sizing
            Some(prev) => rc.join_degree(prev, node, cap),
        });
    }
    let mut out = acc.expect("query has at least one atom");
    if !cq.is_full() {
        out = rc.project(out, cq.free);
    }
    rc.mark_output(out);
    Ok((rc, out))
}

/// The hand-built triangle circuit of Figure 1 (Example 1): split the
/// `C` values of `S(B,C)` into heavy (degree `> √N`) and light, join the
/// light side with `T(A,C)` under the degree bound and the heavy side's
/// (few) `C` values with `R(A,B)` as a bounded cross product, filter false
/// positives, and union. All wires are bounded by `O(N^{3/2})`.
///
/// Inputs are named `R(A,B)`, `S(B,C)`, `T(A,C)`, each with cardinality
/// bound `n`.
pub fn triangle_heavy_light(n: u64) -> (RelationalCircuit, NodeId) {
    assert!(n >= 4, "threshold needs n ≥ 4");
    let (a, b_, c) = (Var(0), Var(1), Var(2));
    let ab: VarSet = [a, b_].into_iter().collect();
    let bc: VarSet = [b_, c].into_iter().collect();
    let ac: VarSet = [a, c].into_iter().collect();
    let cnt = Var(60);
    let t = (n as f64).sqrt().floor() as u64; // heavy threshold √N

    let mut rc = RelationalCircuit::new();
    let r = rc.input("R", ab, n);
    let s = rc.input("S", bc, n);
    let tt = rc.input("T", ac, n);

    // degree of each C value in S
    let counts = rc.aggregate(s, VarSet::singleton(c), qec_relation::AggKind::Count, cnt);
    let s_annot = rc.join_pk(s, counts);

    // light: degree ≤ t
    let light = rc.select(
        s_annot,
        RcPred::FieldRange {
            var: cnt,
            lo: 1,
            hi: t + 1,
        },
    );
    let light = rc.project(light, bc);
    // J_light = T(A,C) ⋈ S_light(B,C): deg_C(S_light) ≤ t ⇒ capacity n·t
    let j_light = rc.join_degree(tt, light, t);
    let j_light = rc.semijoin(j_light, r);

    // heavy: degree > t ⇒ at most n/(t+1) distinct C values
    let heavy = rc.select(
        s_annot,
        RcPred::FieldRange {
            var: cnt,
            lo: t + 1,
            hi: n + 1,
        },
    );
    let heavy_c = rc.project(heavy, VarSet::singleton(c));
    let heavy_c = rc.truncate(heavy_c, n / (t + 1) + 1);
    // J_heavy = R(A,B) × heavy C values: capacity n·(n/(t+1)+1) ≈ n^{3/2}
    let cross = rc.join_degree(r, heavy_c, n / (t + 1) + 1);
    let cross = rc.semijoin(cross, s);
    let j_heavy = rc.semijoin(cross, tt);

    let out = rc.union(j_light, j_heavy);
    rc.mark_output(out);
    (rc, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_cost;
    use qec_bignum::Int;
    use qec_circuit::Mode;
    use qec_query::{baseline::evaluate_pairwise, triangle};
    use qec_relation::{
        agm_worst_case_triangle, random_relation, zipf_relation, Database, DegreeConstraint,
    };

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn triangle_dc(n: u64) -> DcSet {
        DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), n),
            DegreeConstraint::cardinality(vs(&[1, 2]), n),
            DegreeConstraint::cardinality(vs(&[0, 2]), n),
        ])
    }

    fn triangle_db(n: usize, seed: u64) -> Database {
        let mut db = Database::new();
        db.insert("R", random_relation(vec![Var(0), Var(1)], n, seed));
        db.insert("S", random_relation(vec![Var(1), Var(2)], n, seed + 1));
        db.insert("T", random_relation(vec![Var(0), Var(2)], n, seed + 2));
        db
    }

    #[test]
    fn naive_circuit_is_correct_but_cubic() {
        let q = triangle();
        let (rc, _) = naive_circuit(&q, &triangle_dc(16)).unwrap();
        for seed in 0..3 {
            let db = triangle_db(14, seed);
            assert_eq!(
                rc.evaluate_ram(&db).unwrap()[0],
                evaluate_pairwise(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
        // cost Ω(N³)
        assert!(paper_cost(&rc) >= Int::from(16u64 * 16 * 16));
    }

    #[test]
    fn heavy_light_matches_baseline() {
        let q = triangle();
        let (rc, _) = triangle_heavy_light(32);
        for seed in 0..4 {
            let db = triangle_db(28, seed);
            assert_eq!(
                rc.evaluate_ram(&db).unwrap()[0],
                evaluate_pairwise(&q, &db).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn heavy_light_handles_skew() {
        let q = triangle();
        let (rc, _) = triangle_heavy_light(64);
        let mut db = Database::new();
        db.insert("S", zipf_relation(Var(1), Var(2), 60, 1.3, 5));
        db.insert("R", random_relation(vec![Var(0), Var(1)], 60, 1));
        db.insert("T", random_relation(vec![Var(0), Var(2)], 60, 2));
        assert_eq!(
            rc.evaluate_ram(&db).unwrap()[0],
            evaluate_pairwise(&q, &db).unwrap()
        );
    }

    #[test]
    fn heavy_light_agm_worst_case_and_cost() {
        let (rc, _) = triangle_heavy_light(16);
        let (r, s, t) = agm_worst_case_triangle(Var(0), Var(1), Var(2), 16);
        let mut db = Database::new();
        db.insert("R", r);
        db.insert("S", s);
        db.insert("T", t);
        let out = rc.evaluate_ram(&db).unwrap();
        assert_eq!(out[0].len(), 64);
        // cost O(N^{1.5}) up to constants: far below the naive N³
        let hl = paper_cost(&rc).to_f64();
        assert!(hl < 16f64.powi(3), "heavy/light cost {hl}");
    }

    #[test]
    fn heavy_light_lowered_matches() {
        let (rc, _) = triangle_heavy_light(8);
        let lowered = rc.lower(Mode::Build);
        let db = triangle_db(7, 3);
        assert_eq!(
            lowered.run(&db).unwrap()[0],
            rc.evaluate_ram(&db).unwrap()[0]
        );
    }
}
