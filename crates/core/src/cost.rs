//! The relational-gate cost model of Sec. 4.3.

use qec_bignum::Int;

use crate::{RcOp, RelationalCircuit};

/// Total cost of a relational circuit under the paper's model:
///
/// * selection / projection / aggregation / sorting / truncation / map
///   gates cost their input capacity `N`;
/// * a union gate costs `M + N`;
/// * a primary-key join or semijoin costs `M + N'`;
/// * a degree-bounded join costs `M·N + N'`;
/// * an output-bounded join costs `M + N + OUT`;
/// * each decomposition part costs its input capacity (the whole
///   decomposition is `Õ(N)` — Alg. 2).
///
/// The lowered word circuit's gate count is this cost times a polylog
/// factor; experiment X4 measures the ratio.
pub fn paper_cost(rc: &RelationalCircuit) -> Int {
    let mut total = Int::zero();
    let cap = |id: usize| Int::from(rc.nodes[id].capacity);
    for n in &rc.nodes {
        let c = match &n.op {
            RcOp::Input { .. } => Int::zero(),
            RcOp::Select { input, .. }
            | RcOp::Project { input, .. }
            | RcOp::Aggregate { input, .. }
            | RcOp::Order { input, .. }
            | RcOp::Decompose { input, .. }
            | RcOp::Truncate { input, .. }
            | RcOp::Rename { input, .. }
            | RcOp::AttachConst { input, .. }
            | RcOp::MapMul { input, .. } => cap(*input),
            RcOp::Union { a, b } | RcOp::JoinPk { a, b } | RcOp::Semijoin { a, b } => {
                &cap(*a) + &cap(*b)
            }
            RcOp::JoinDegree { a, b, deg } => &(&cap(*a) * &Int::from(*deg)) + &cap(*b),
            RcOp::JoinOutput { a, b, out_bound } => &(&cap(*a) + &cap(*b)) + &Int::from(*out_bound),
        };
        total = &total + &c;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_relation::{Var, VarSet};

    #[test]
    fn cost_matches_hand_count() {
        let mut rc = RelationalCircuit::new();
        let vs = |bits: &[u32]| -> VarSet { bits.iter().map(|&i| Var(i)).collect() };
        let r = rc.input("R", vs(&[0, 1]), 10); // 0
        let s = rc.input("S", vs(&[1, 2]), 20); // 0
        let p = rc.project(r, vs(&[1])); // 10
        let j = rc.join_degree(p, s, 3); // 10·3 + 20 = 50
        let u = rc.union(j, j); // 30 + 30 = 60
        let t = rc.truncate(u, 5); // 60
        rc.mark_output(t);
        assert_eq!(paper_cost(&rc), qec_bignum::Int::from(180u64));
    }
}
