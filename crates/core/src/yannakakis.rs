//! Output-sensitive circuits (Sec. 6): Reduce-C (Alg. 8), Yannakakis-C
//! (Alg. 9), and the OUT-computation circuit (Alg. 11).
//!
//! An *output-sensitive circuit* is two uniform circuit families: one,
//! parameterized by the degree constraints alone, computes
//! `OUT = |Q(D)|`; the second, parameterized additionally by `OUT`,
//! computes `Q(D)` with size `Õ(N + 2^{da-fhtw} + OUT)` (Theorem 5). The
//! applications in Sec. 1 (MPC, outsourced querying) evaluate the first
//! circuit, read off `OUT`, and then build and evaluate the second.

use std::collections::HashMap;

use qec_bignum::Rat;
use qec_entropy::{polymatroid_bound, BoundError};
use qec_query::{enumerate_ghds, Cq, Ghd};
use qec_relation::{AggKind, Database, DcSet, Relation, Var, VarSet};

use crate::panda::{compile_target, CompileError};
use crate::rc::{MapBinOp, NodeId, RcError, RelationalCircuit};

/// The per-tuple annotation column used by the counting circuit
/// (queries must keep their variables below 60).
const CNT: Var = Var(62);
/// Scratch column for child-count sums.
const TMP: Var = Var(61);

/// Construction failures.
#[derive(Debug)]
pub enum YannakakisError {
    /// No free-connex GHD with a finite width exists under the
    /// constraints.
    NoGhd,
    /// Bag compilation failed.
    Compile(CompileError),
    /// A bag's polymatroid bound is infinite.
    Bound(BoundError),
    /// RAM evaluation failed.
    Eval(RcError),
    /// The query (or an annotation column) uses a variable that collides
    /// with the reserved internal scratch columns `Var(61)`/`Var(62)`.
    ReservedVariable(Var),
    /// An annotation column is not a fresh variable (it appears among the
    /// query's variables or is not below the reserved range).
    BadAnnotation(Var),
}

impl std::fmt::Display for YannakakisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YannakakisError::NoGhd => write!(f, "no finite-width free-connex GHD"),
            YannakakisError::Compile(e) => write!(f, "bag compilation failed: {e}"),
            YannakakisError::Bound(e) => write!(f, "bag bound failed: {e}"),
            YannakakisError::Eval(e) => write!(f, "evaluation failed: {e}"),
            YannakakisError::ReservedVariable(v) => write!(
                f,
                "query variable {v} collides with the reserved internal scratch columns (variables 61/62)"
            ),
            YannakakisError::BadAnnotation(v) => write!(
                f,
                "annotation column {v} must be a fresh variable below 61"
            ),
        }
    }
}

impl std::error::Error for YannakakisError {}

/// Finds a free-connex GHD minimizing the maximum bag polymatroid bound —
/// the degree-aware fractional hypertree width functional of Eq. (6).
/// Returns the decomposition and `da-fhtw` in log₂ units.
pub fn da_fhtw(cq: &Cq, dc: &DcSet, ghd_limit: usize) -> Result<(Ghd, Rat), YannakakisError> {
    let h = cq.hypergraph();
    let ghds = enumerate_ghds(&h, cq.free, ghd_limit);
    let mut cache: HashMap<VarSet, Option<Rat>> = HashMap::new();
    let mut best: Option<(Ghd, Rat)> = None;
    for g in ghds {
        let mut width = Rat::zero();
        let mut finite = true;
        for node in &g.nodes {
            let entry = cache.entry(node.bag).or_insert_with(|| {
                match polymatroid_bound(cq.num_vars(), dc, node.bag) {
                    Ok(b) => Some(b.log_value),
                    Err(_) => None,
                }
            });
            match entry {
                Some(v) => width = width.max(v.clone()),
                None => {
                    finite = false;
                    break;
                }
            }
        }
        if !finite {
            continue;
        }
        let better = match &best {
            None => true,
            Some((bg, bw)) => width < *bw || (width == *bw && g.nodes.len() < bg.nodes.len()),
        };
        if better {
            best = Some((g, width));
        }
    }
    best.ok_or(YannakakisError::NoGhd)
}

/// A working tree node during/after the reduce phase.
struct RNode {
    bag: VarSet,
    t: NodeId,
    parent: Option<usize>,
    alive: bool,
}

/// The reduce phase output: a circuit under construction plus the alive
/// free-variable tree.
struct Reduced {
    rc: RelationalCircuit,
    nodes: Vec<RNode>,
    bottom_up: Vec<usize>,
    root: usize,
}

/// An output-sensitive circuit family for a conjunctive query.
pub struct OutputSensitive {
    cq: Cq,
    dc: DcSet,
    ghd: Ghd,
    /// `da-fhtw(Q)` in log₂ units — the intrinsic width the circuit sizes
    /// its bags by.
    pub width: Rat,
}

impl OutputSensitive {
    /// Chooses a GHD and prepares the family. `ghd_limit` caps the GHD
    /// search (elimination orders tried).
    pub fn build(cq: &Cq, dc: &DcSet, ghd_limit: usize) -> Result<Self, YannakakisError> {
        let (ghd, width) = da_fhtw(cq, dc, ghd_limit)?;
        Ok(OutputSensitive {
            cq: cq.clone(),
            dc: dc.clone(),
            ghd,
            width,
        })
    }

    #[allow(clippy::needless_range_loop)] // re-parenting mutates `nodes` while indexing
    /// Runs Reduce-C (Alg. 8): per-bag PANDA-C (with false-positive
    /// filtering), then the bottom-up pass that removes bound variables by
    /// semijoins and projections.
    fn reduce(&self) -> Result<Reduced, YannakakisError> {
        let mut rc = RelationalCircuit::new();
        let mut inputs = Vec::new();
        for atom in &self.cq.atoms {
            let cap = self.dc.cardinality_of(atom.vars).ok_or_else(|| {
                YannakakisError::Compile(CompileError::UnguardedAtom(atom.name.clone()))
            })?;
            let node = rc.input(atom.name.clone(), atom.vars, cap);
            inputs.push((atom.name.clone(), atom.vars, node));
        }
        // Alg. 8 lines 2–6: a PANDA-C circuit per bag.
        let mut nodes: Vec<RNode> = Vec::with_capacity(self.ghd.nodes.len());
        for gn in &self.ghd.nodes {
            let (t, _, _, _) =
                compile_target(&mut rc, &inputs, &self.dc, gn.bag, self.cq.num_vars())
                    .map_err(YannakakisError::Compile)?;
            nodes.push(RNode {
                bag: gn.bag,
                t,
                parent: gn.parent,
                alive: true,
            });
        }
        // Alg. 8 lines 7–16: bottom-up reduction.
        let bottom_up = self.ghd.bottom_up();
        let root = self.ghd.root;
        for &v in &bottom_up {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("non-root has a parent");
            let free_part = nodes[v].bag.intersect(self.cq.free);
            if free_part.is_subset(nodes[p].bag) {
                let merged = rc.semijoin(nodes[p].t, nodes[v].t);
                nodes[p].t = merged;
                nodes[v].alive = false;
                // re-parent any alive children of v onto p
                for i in 0..nodes.len() {
                    if nodes[i].alive && nodes[i].parent == Some(v) {
                        nodes[i].parent = Some(p);
                    }
                }
            } else if free_part != nodes[v].bag {
                nodes[v].t = rc.project(nodes[v].t, free_part);
                nodes[v].bag = free_part;
            }
        }
        // the root keeps only its free part
        let root_free = nodes[root].bag.intersect(self.cq.free);
        if root_free != nodes[root].bag {
            nodes[root].t = rc.project(nodes[root].t, root_free);
            nodes[root].bag = root_free;
        }
        let bottom_up = bottom_up.into_iter().filter(|&i| nodes[i].alive).collect();
        Ok(Reduced {
            rc,
            nodes,
            bottom_up,
            root,
        })
    }

    /// The first circuit family (Alg. 11): computes `OUT = |Q(D)|` as a
    /// single-tuple relation over the column `Var(61)` (empty relation ⇔
    /// `OUT = 0`). Size `Õ(N + 2^{da-fhtw})`.
    #[allow(clippy::needless_range_loop)] // attaches columns in place
    pub fn count_circuit(&self) -> Result<RelationalCircuit, YannakakisError> {
        let Reduced {
            mut rc,
            mut nodes,
            bottom_up,
            root,
        } = self.reduce()?;
        // attach the unit annotation (line 2)
        for i in 0..nodes.len() {
            if nodes[i].alive {
                nodes[i].t = rc.attach_const(nodes[i].t, CNT, 1);
            }
        }
        // bottom-up: sum child counts per shared key, multiply into the
        // parent (lines 3–8)
        for &v in &bottom_up {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive non-root has parent");
            let shared = nodes[v].bag.intersect(nodes[p].bag);
            let w = rc.aggregate(nodes[v].t, shared, AggKind::Sum(CNT), TMP);
            let joined = rc.join_pk(nodes[p].t, w);
            nodes[p].t = rc.map_bin(joined, CNT, TMP, CNT, MapBinOp::Mul);
        }
        // global sum at the root (line 9)
        let total = rc.aggregate(nodes[root].t, VarSet::EMPTY, AggKind::Sum(CNT), TMP);
        rc.mark_output(total);
        Ok(rc)
    }

    /// The second circuit family (Algs. 8–9), parameterized by
    /// `out_bound = OUT`: computes `Q(D)` with size
    /// `Õ(N + 2^{da-fhtw} + OUT)`.
    pub fn query_circuit(&self, out_bound: u64) -> Result<RelationalCircuit, YannakakisError> {
        let out_bound = out_bound.max(1);
        let Reduced {
            mut rc,
            mut nodes,
            bottom_up,
            root,
        } = self.reduce()?;
        // Alg. 9 lines 2–5: bottom-up semijoins.
        for &v in &bottom_up {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive non-root has parent");
            nodes[p].t = rc.semijoin(nodes[p].t, nodes[v].t);
        }
        // Alg. 9 lines 6–9: top-down semijoins — no dangling tuples remain.
        for &v in bottom_up.iter().rev() {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive non-root has parent");
            nodes[v].t = rc.semijoin(nodes[v].t, nodes[p].t);
        }
        // Alg. 9 lines 10–16: bottom-up output-bounded joins.
        for &v in &bottom_up {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive non-root has parent");
            if nodes[v].bag.is_subset(nodes[p].bag) {
                // the child carries no new columns; the semijoins already
                // applied its filter
                continue;
            }
            let cap_product = rc.nodes[nodes[p].t]
                .capacity
                .saturating_mul(rc.nodes[nodes[v].t].capacity);
            let out_t = out_bound.min(cap_product);
            let shared = nodes[p].bag.intersect(nodes[v].bag);
            let joined = if shared.is_empty() {
                // disconnected components: a plain cross product, sized by
                // the child's capacity as its trivial degree bound
                let j = rc.join_degree(nodes[p].t, nodes[v].t, rc.nodes[nodes[v].t].capacity);
                rc.truncate(j, out_t)
            } else {
                rc.join_output(nodes[p].t, nodes[v].t, out_t)
            };
            nodes[p].t = joined;
            nodes[p].bag = nodes[p].bag.union(nodes[v].bag);
        }
        rc.mark_output(nodes[root].t);
        Ok(rc)
    }

    /// For a Boolean query: a circuit whose output is the unit relation
    /// `{()}` iff `Q(D)` is non-empty. At the word level the output is a
    /// **single wire** — the minimal-leakage artifact for secure
    /// evaluation (Sec. 1): two parties can learn "is there a triangle
    /// across our joint data?" and nothing else.
    ///
    /// Size `Õ(N + 2^{da-fhtw})` — a BCQ needs no output-size parameter
    /// (Sec. 6.1: every GHD is free-connex and `|Q(D)| = 1`).
    ///
    /// # Panics
    /// Panics if the query has free variables.
    pub fn boolean_circuit(&self) -> Result<RelationalCircuit, YannakakisError> {
        assert!(self.cq.is_boolean(), "boolean_circuit expects a BCQ");
        let Reduced {
            mut rc,
            nodes,
            bottom_up,
            root,
        } = self.reduce()?;
        // For a BCQ every bag's free part is ∅ ⊆ parent, so the reduce
        // phase semijoins everything into the root and projects it to the
        // empty schema; a unit-capacity truncation leaves one wire.
        debug_assert_eq!(bottom_up, vec![root], "BCQ reduce leaves only the root");
        debug_assert!(nodes[root].bag.is_empty());
        let out = rc.truncate(nodes[root].t, 1);
        rc.mark_output(out);
        Ok(rc)
    }

    /// Convenience: runs both families on a database via the RAM
    /// interpreter (count, then evaluate with `OUT` as the parameter).
    pub fn evaluate_ram(&self, db: &Database) -> Result<Relation, YannakakisError> {
        let out = self.count_ram(db)?;
        let rc = self.query_circuit(out)?;
        let res = rc.evaluate_ram(db).map_err(YannakakisError::Eval)?;
        Ok(res.into_iter().next().expect("one output"))
    }

    /// Runs the counting family on a database via the RAM interpreter.
    pub fn count_ram(&self, db: &Database) -> Result<u64, YannakakisError> {
        let rc = self.count_circuit()?;
        let res = rc.evaluate_ram(db).map_err(YannakakisError::Eval)?;
        let out = res[0].iter().next().map(|row| row[0]);
        Ok(out.unwrap_or(0))
    }

    /// The chosen GHD (for reporting).
    pub fn ghd(&self) -> &Ghd {
        &self.ghd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::Mode;
    use qec_query::baseline::evaluate_pairwise;
    use qec_query::{k_path, parse_cq, snowflake, triangle};
    use qec_relation::{random_relation, DegreeConstraint};

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn dc_for(cq: &Cq, n: u64) -> DcSet {
        DcSet::from_vec(
            cq.atoms
                .iter()
                .map(|a| DegreeConstraint::cardinality(a.vars, n))
                .collect(),
        )
    }

    fn db_for(cq: &Cq, n: usize, seed: u64) -> Database {
        let mut db = Database::new();
        for (i, a) in cq.atoms.iter().enumerate() {
            db.insert(
                a.name.clone(),
                random_relation(a.vars.to_vec(), n, seed * 31 + i as u64),
            );
        }
        db
    }

    #[test]
    fn dafhtw_path_is_log_n() {
        // acyclic full query: width = log N (one relation per bag)
        let q = k_path(3);
        let (_, w) = da_fhtw(&q, &dc_for(&q, 1 << 8), 10_000).unwrap();
        assert_eq!(w, qec_bignum::rat(8, 1));
    }

    #[test]
    fn dafhtw_triangle_is_1_5_log_n() {
        let q = triangle();
        let (_, w) = da_fhtw(&q, &dc_for(&q, 1 << 8), 10_000).unwrap();
        assert_eq!(w, qec_bignum::rat(12, 1));
    }

    #[test]
    fn full_acyclic_query_end_to_end() {
        let q = k_path(3);
        let dc = dc_for(&q, 32);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        for seed in 0..3 {
            let db = db_for(&q, 28, seed);
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(
                os.count_ram(&db).unwrap(),
                expect.len() as u64,
                "seed {seed}"
            );
            assert_eq!(os.evaluate_ram(&db).unwrap(), expect, "seed {seed}");
        }
    }

    #[test]
    fn projection_query_end_to_end() {
        // Q(x0, x1) over a snowflake: bound petals must not multiply the
        // count
        let q0 = snowflake(2);
        let q = Cq {
            free: vs(&[0, 1]),
            ..q0
        };
        let dc = dc_for(&q, 32);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        for seed in 0..3 {
            let db = db_for(&q, 24, seed + 7);
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(
                os.count_ram(&db).unwrap(),
                expect.len() as u64,
                "seed {seed}"
            );
            assert_eq!(os.evaluate_ram(&db).unwrap(), expect, "seed {seed}");
        }
    }

    #[test]
    fn boolean_query_end_to_end() {
        let q = parse_cq("Q() :- R(x, y), S(y, z)").unwrap();
        let dc = dc_for(&q, 16);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        for seed in 0..3 {
            let db = db_for(&q, 12, seed);
            let expect = evaluate_pairwise(&q, &db).unwrap();
            let got = os.evaluate_ram(&db).unwrap();
            assert_eq!(got.len(), expect.len(), "seed {seed}");
            assert_eq!(os.count_ram(&db).unwrap(), expect.len() as u64);
        }
    }

    #[test]
    fn cyclic_query_with_projection() {
        // Q(a) over a triangle: bag = triangle (PANDA inside), then project
        let q0 = triangle();
        let q = Cq {
            free: vs(&[0]),
            ..q0
        };
        let dc = dc_for(&q, 24);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        for seed in 0..3 {
            let db = db_for(&q, 20, seed + 3);
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(os.evaluate_ram(&db).unwrap(), expect, "seed {seed}");
            assert_eq!(
                os.count_ram(&db).unwrap(),
                expect.len() as u64,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lowered_output_sensitive_matches() {
        let q0 = k_path(2); // R(x0,x1), S(x1,x2)
        let q = Cq {
            free: vs(&[0, 2]),
            ..q0
        };
        let dc = dc_for(&q, 12);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        let db = db_for(&q, 10, 5);
        let expect = evaluate_pairwise(&q, &db).unwrap();
        // family 1 lowered
        let count_rc = os.count_circuit().unwrap();
        let lowered = count_rc.lower(Mode::Build);
        let out_rel = &lowered.run(&db).unwrap()[0];
        let out = out_rel.iter().next().map_or(0, |r| r[0]);
        assert_eq!(out, expect.len() as u64);
        // family 2 lowered with OUT as parameter
        let query_rc = os.query_circuit(out).unwrap();
        let lowered2 = query_rc.lower(Mode::Build);
        assert_eq!(lowered2.run(&db).unwrap()[0], expect);
    }

    #[test]
    fn wrong_out_bound_fires_capacity_check() {
        let q = k_path(2);
        let dc = dc_for(&q, 12);
        let os = OutputSensitive::build(&q, &dc, 5_000).unwrap();
        let db = db_for(&q, 10, 1);
        let expect = evaluate_pairwise(&q, &db).unwrap();
        if expect.len() > 2 {
            let rc = os.query_circuit(1).unwrap();
            assert!(matches!(
                rc.evaluate_ram(&db),
                Err(RcError::CapacityExceeded { .. })
            ));
        }
    }
}
