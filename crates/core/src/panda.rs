//! PANDA-C: compiling a proof sequence into a relational circuit
//! (Sec. 4.4, Alg. 1).
//!
//! PANDA-C is a *query compiler*: it consumes only the query, the degree
//! constraints, and a proof sequence — never the data — and emits a
//! relational circuit of `Õ(1)` gates whose cost is `Õ(N + DAPB(Q))`
//! (Theorem 3). The run mirrors Alg. 1:
//!
//! * submodularity steps re-associate which constraint *supports* which
//!   in-flight conditional term (no gates);
//! * monotonicity steps project a guard relation (one projection gate);
//! * decomposition steps split a guard by degree (Alg. 2) and branch the
//!   compilation into one sub-state per part;
//! * composition steps join two guards with a degree-bounded join —
//!   unless the product bound exceeds `DAPB`, in which case the
//!   Shannon-flow inequality is re-proved under the current (augmented)
//!   constraints and compilation continues with the fresh sequence
//!   (Alg. 1 lines 28–31);
//! * a branch terminates as soon as some available relation covers the
//!   target (Alg. 1 lines 1–2).
//!
//! Branch outputs may contain false positives (Example 2); they are
//! removed by semijoining the union against every input relation inside
//! the target.

use std::collections::BTreeMap;

use qec_bignum::Rat;
use qec_entropy::{
    polymatroid_bound, prove_bound_opts, Bound, ChainProofError, ProofStep, ProveOpts,
    ShannonFlowProof, Term, WeightedStep,
};
use qec_query::Cq;
use qec_relation::{DcSet, DegreeConstraint, VarSet};

use crate::rc::{NodeId, RelationalCircuit};

/// Compilation failures.
#[derive(Debug)]
pub enum CompileError {
    /// No proof sequence could be constructed.
    Chain(ChainProofError),
    /// An atom has no cardinality constraint, so its wire cannot be
    /// bounded.
    UnguardedAtom(String),
    /// A degree constraint has no relation (atom or projection of one)
    /// that can guard it.
    NoGuard {
        /// Conditioning set of the orphaned constraint.
        on: VarSet,
        /// Constrained set of the orphaned constraint.
        of: VarSet,
    },
    /// The truncation re-proof recursion exceeded its depth cap.
    TruncationDepth,
    /// Internal invariant violation (a bug, surfaced instead of emitting
    /// an unsound circuit).
    Internal(&'static str),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Chain(e) => write!(f, "proof construction failed: {e}"),
            CompileError::UnguardedAtom(a) => {
                write!(f, "atom {a} has no cardinality constraint")
            }
            CompileError::NoGuard { on, of } => {
                write!(f, "degree constraint ({of}|{on}) has no guard relation")
            }
            CompileError::TruncationDepth => write!(f, "truncation re-proof recursion too deep"),
            CompileError::Internal(m) => write!(f, "internal compiler invariant violated: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled PANDA-C circuit.
pub struct PandaCircuit {
    /// The relational circuit; its single output is the target relation
    /// after false-positive filtering.
    pub rc: RelationalCircuit,
    /// Output node.
    pub output: NodeId,
    /// The polymatroid bound the circuit was sized for.
    pub bound: Bound,
    /// The proof sequence that drove compilation.
    pub proof: ShannonFlowProof,
    /// Number of leaf branches the compilation produced (the polylog
    /// factor of Theorem 3's circuit size).
    pub branches: usize,
}

/// One guarded constraint of the evolving `DC'` set.
#[derive(Clone, Debug)]
struct CEntry {
    on: VarSet,
    of: VarSet,
    bound: u64,
    guard: NodeId,
}

/// A compilation state: available relations, guarded constraints, and the
/// support map from in-flight proof terms to constraint entries.
#[derive(Clone)]
struct State {
    rels: Vec<(VarSet, NodeId)>,
    dc: Vec<CEntry>,
    supports: BTreeMap<Term, Vec<(usize, Rat)>>,
}

impl State {
    fn take_support(&mut self, term: Term, weight: &Rat) -> Result<usize, CompileError> {
        let entries = self
            .supports
            .get_mut(&term)
            .ok_or(CompileError::Internal("support missing for term"))?;
        // consume `weight` across entries; report the entry holding the
        // largest share as the representative guard
        let mut remaining = weight.clone();
        let mut best: Option<(usize, Rat)> = None;
        for (idx, w) in entries.iter_mut() {
            if remaining.is_zero() {
                break;
            }
            if !w.is_positive() {
                continue;
            }
            let used = if *w < remaining {
                w.clone()
            } else {
                remaining.clone()
            };
            if best.as_ref().is_none_or(|(_, bw)| used > *bw) {
                best = Some((*idx, used.clone()));
            }
            *w = &*w - &used;
            remaining = &remaining - &used;
        }
        if !remaining.is_zero() {
            return Err(CompileError::Internal("support exhausted"));
        }
        Ok(best.expect("positive weight consumed").0)
    }

    fn add_support(&mut self, term: Term, entry: usize, weight: Rat) {
        self.supports.entry(term).or_default().push((entry, weight));
    }

    fn find_cardinality(&self, of: VarSet) -> Option<usize> {
        // tightest cardinality entry with the exact schema
        self.dc
            .iter()
            .enumerate()
            .filter(|(_, e)| e.on.is_empty() && e.of == of)
            .min_by_key(|(_, e)| e.bound)
            .map(|(i, _)| i)
    }

    fn covering_relation(&self, target: VarSet) -> Option<(VarSet, NodeId)> {
        self.rels
            .iter()
            .copied()
            .find(|(s, _)| target.is_subset(*s))
    }

    /// Adds implied degree entries `(X, F, N_F)` for every cardinality
    /// entry, so a fresh proof's terms always find a guarded constraint.
    fn add_implied(&mut self) {
        let cards: Vec<CEntry> = self
            .dc
            .iter()
            .filter(|e| e.on.is_empty() && e.of.len() >= 2)
            .cloned()
            .collect();
        for e in cards {
            for x in e.of.subsets() {
                if x.is_empty() || x == e.of {
                    continue;
                }
                let exists = self
                    .dc
                    .iter()
                    .any(|d| d.on == x && d.of == e.of && d.bound <= e.bound);
                if !exists {
                    self.dc.push(CEntry {
                        on: x,
                        of: e.of,
                        bound: e.bound,
                        guard: e.guard,
                    });
                }
            }
        }
    }

    fn to_dcset(&self) -> DcSet {
        DcSet::from_vec(
            self.dc
                .iter()
                .map(|e| DegreeConstraint {
                    on: e.on,
                    of: e.of,
                    bound: e.bound,
                })
                .collect(),
        )
    }
}

/// Compiles PANDA-C for an arbitrary target (a full query's variable set
/// or a GHD bag), given input atoms and degree constraints. Returns the
/// circuit fragment's output node appended to `rc`.
pub(crate) fn compile_target(
    rc: &mut RelationalCircuit,
    inputs: &[(String, VarSet, NodeId)],
    dc: &DcSet,
    target: VarSet,
    num_vars: u32,
) -> Result<(NodeId, Bound, ShannonFlowProof, usize), CompileError> {
    let bound = polymatroid_bound(num_vars, dc, target)
        .map_err(|e| CompileError::Chain(ChainProofError::Bound(e)))?;
    let proof = prove_bound_opts(
        num_vars,
        dc,
        target,
        ProveOpts {
            known_bound: Some(bound.log_value.clone()),
            ..ProveOpts::default()
        },
    )
    .map_err(CompileError::Chain)?;

    // Initial state: atoms as relations; every constraint guarded either
    // by an atom with the exact schema or by a fresh projection of a
    // covering atom (Sec. 3.1's pre-computation).
    let mut state = State {
        rels: Vec::new(),
        dc: Vec::new(),
        supports: BTreeMap::new(),
    };
    for (_, schema, node) in inputs {
        state.rels.push((*schema, *node));
    }
    // Guard every constraint, including the implied degree constraints the
    // proof may reference (same augmentation as `prove_bound`). Guards for
    // constraints without an exact-schema atom are projections of a
    // covering atom (Sec. 3.1's pre-computation), shared per schema.
    let augmented = qec_entropy::with_implied_degrees(dc);
    let mut guard_cache: BTreeMap<VarSet, NodeId> = BTreeMap::new();
    for c in augmented.iter() {
        let guard = match guard_cache.get(&c.of) {
            Some(&g) => g,
            None => {
                let g = match inputs.iter().find(|(_, s, _)| *s == c.of) {
                    Some((_, _, node)) => *node,
                    None => match inputs.iter().find(|(_, s, _)| c.of.is_subset(*s)) {
                        Some((_, _, node)) => {
                            let p = rc.project(*node, c.of);
                            state.rels.push((c.of, p));
                            p
                        }
                        None => return Err(CompileError::NoGuard { on: c.on, of: c.of }),
                    },
                };
                guard_cache.insert(c.of, g);
                g
            }
        };
        state.dc.push(CEntry {
            on: c.on,
            of: c.of,
            bound: c.bound,
            guard,
        });
    }
    // Supports from the proof's δ.
    init_supports(&mut state, &proof)?;

    // DAPB in tuple units, inflated to the chain certificate if the chain
    // was not tight (keeps the line-23 check consistent with the wires we
    // can actually afford).
    let log_budget = bound.log_value.clone().max(proof.log_cost.clone());
    let dapb: u128 = {
        let e = log_budget.ceil().to_i64().unwrap_or(127).clamp(0, 127) as u32;
        1u128 << e
    };

    let mut branches = 0usize;
    let ctx = Ctx {
        target,
        num_vars,
        dapb,
        log_budget,
    };
    let outputs = compile_rec(rc, state, &proof.steps, &ctx, 0, &mut branches)?;
    if outputs.is_empty() {
        return Err(CompileError::Internal("no branch produced the target"));
    }
    // Union all branch outputs, then filter false positives against every
    // input relation inside the target.
    let mut acc = outputs[0];
    for &o in &outputs[1..] {
        acc = rc.union(acc, o);
    }
    for (_, schema, node) in inputs {
        if schema.is_subset(target) {
            acc = rc.semijoin(acc, *node);
        }
    }
    Ok((acc, bound, proof, branches))
}

fn init_supports(state: &mut State, proof: &ShannonFlowProof) -> Result<(), CompileError> {
    state.supports.clear();
    for (term, w) in &proof.delta {
        let entry = state
            .dc
            .iter()
            .enumerate()
            .filter(|(_, e)| e.on == term.on && e.of == term.of)
            .min_by_key(|(_, e)| e.bound)
            .map(|(i, _)| i)
            .ok_or(CompileError::Internal("δ term without matching constraint"))?;
        state.add_support(*term, entry, w.clone());
    }
    Ok(())
}

/// Immutable compilation context threaded through the recursion.
struct Ctx {
    target: VarSet,
    num_vars: u32,
    /// `DAPB` in tuples (the Alg. 1 line-23 budget).
    dapb: u128,
    /// `log₂ DAPB` — the acceptance threshold for truncation re-proofs.
    log_budget: Rat,
}

fn compile_rec(
    rc: &mut RelationalCircuit,
    mut state: State,
    steps: &[WeightedStep],
    ctx: &Ctx,
    depth: usize,
    branches: &mut usize,
) -> Result<Vec<NodeId>, CompileError> {
    let target = ctx.target;
    let dapb = ctx.dapb;
    // Alg. 1 lines 1–2: a covering relation terminates the branch.
    if let Some((schema, node)) = state.covering_relation(target) {
        *branches += 1;
        let out = if schema == target {
            node
        } else {
            rc.project(node, target)
        };
        return Ok(vec![out]);
    }
    let Some((ws, rest)) = steps.split_first() else {
        return Err(CompileError::Internal(
            "proof exhausted before covering the target",
        ));
    };
    match ws.step {
        ProofStep::Sub { i, j } => {
            // Re-associate support from (I∩J, I) to (J, I∪J); no gates.
            let from = Term {
                on: i.intersect(j),
                of: i,
            };
            let to = Term {
                on: j,
                of: i.union(j),
            };
            let entry = state.take_support(from, &ws.weight)?;
            state.add_support(to, entry, ws.weight.clone());
            compile_rec(rc, state, rest, ctx, depth, branches)
        }
        ProofStep::Mono { x, y } => {
            // Lines 7–11 (modified): project the guard, N_X := N_Y.
            let entry = state.take_support(Term::plain(y), &ws.weight)?;
            let e = state.dc[entry].clone();
            let p = rc.project(e.guard, x);
            state.rels.push((x, p));
            state.dc.push(CEntry {
                on: VarSet::EMPTY,
                of: x,
                bound: e.bound,
                guard: p,
            });
            let new_entry = state.dc.len() - 1;
            state.add_support(Term::plain(x), new_entry, ws.weight.clone());
            compile_rec(rc, state, rest, ctx, depth, branches)
        }
        ProofStep::Decomp { y, x } => {
            // Lines 12–19: decompose the guard, branch per part.
            let entry = state.take_support(Term::plain(y), &ws.weight)?;
            let guard = state.dc[entry].guard;
            let parts = rc.decompose(guard, x);
            let mut outputs = Vec::new();
            for (part, card, deg) in parts {
                let mut child = state.clone();
                let mut proj = rc.project(part, x);
                // condition (4c): |Π_X(R^{(j)})| ≤ N_X^{(j)} — shrink the
                // wire so downstream joins are sized by the certified
                // bound, not the part's slot count
                if card < rc.nodes[proj].capacity {
                    proj = rc.truncate(proj, card);
                }
                child.rels.push((x, proj));
                child.rels.push((y, part));
                child.dc.push(CEntry {
                    on: VarSet::EMPTY,
                    of: x,
                    bound: card,
                    guard: proj,
                });
                let card_entry = child.dc.len() - 1;
                child.dc.push(CEntry {
                    on: x,
                    of: y,
                    bound: deg,
                    guard: part,
                });
                let deg_entry = child.dc.len() - 1;
                child.add_support(Term::plain(x), card_entry, ws.weight.clone());
                child.add_support(Term::cond(x, y), deg_entry, ws.weight.clone());
                outputs.extend(compile_rec(rc, child, rest, ctx, depth, branches)?);
            }
            Ok(outputs)
        }
        ProofStep::Comp { x, y } => {
            // Lines 20–31.
            let x_entry = state.find_cardinality(x).ok_or(CompileError::Internal(
                "composition without cardinality guard",
            ))?;
            let sup_entry = state.take_support(Term::cond(x, y), &ws.weight)?;
            // also consume the (∅, X) weight to keep books balanced
            let _ = state.take_support(Term::plain(x), &ws.weight)?;
            let xe = state.dc[x_entry].clone();
            let we = state.dc[sup_entry].clone();
            debug_assert!(we.on.is_subset(x) && x.union(we.of) == y, "support shape");
            let product = u128::from(xe.bound) * u128::from(we.bound);
            if product <= dapb {
                // Line 24: T_Y ← R_X ⋈ R_W with deg bound N_{W|Z}.
                let t = rc.join_degree(xe.guard, we.guard, we.bound);
                state.rels.push((y, t));
                state.dc.push(CEntry {
                    on: VarSet::EMPTY,
                    of: y,
                    bound: xe.bound.saturating_mul(we.bound),
                    guard: t,
                });
                let new_entry = state.dc.len() - 1;
                state.add_support(Term::plain(y), new_entry, ws.weight.clone());
                compile_rec(rc, state, rest, ctx, depth, branches)
            } else {
                // Lines 28–31: re-prove under the current constraints and
                // continue with the fresh sequence.
                if depth >= 24 {
                    return Err(CompileError::TruncationDepth);
                }
                let dc_now = state.to_dcset();
                let fresh = prove_bound_opts(
                    ctx.num_vars,
                    &dc_now,
                    target,
                    ProveOpts {
                        accept_at: Some(ctx.log_budget.clone()),
                        ..ProveOpts::default()
                    },
                )
                .map_err(CompileError::Chain)?;
                state.add_implied();
                init_supports(&mut state, &fresh)?;
                compile_rec(rc, state, &fresh.steps, ctx, depth + 1, branches)
            }
        }
    }
}

/// Compiles a full conjunctive query (every variable free) into a
/// relational circuit computing `Q(D)` exactly, sized by the degree
/// constraints (Theorem 3). Every atom must carry a cardinality
/// constraint in `dc`.
///
/// ```
/// use qec_core::compile_fcq;
/// use qec_query::parse_cq;
/// use qec_relation::{DcSet, DegreeConstraint};
///
/// let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)").unwrap();
/// let dc = DcSet::from_vec(
///     q.atoms.iter().map(|a| DegreeConstraint::cardinality(a.vars, 64)).collect(),
/// );
/// let compiled = compile_fcq(&q, &dc).unwrap();
/// // AGM bound: output ≤ N^{3/2} = 2^9
/// assert_eq!(compiled.bound.log_value, qec_bignum::rat(9, 1));
/// // Õ(1) relational gates, 2(1+log₂ 64) parallel branches
/// assert!(compiled.rc.nodes.len() < 200);
/// assert_eq!(compiled.branches, 14);
/// ```
pub fn compile_fcq(cq: &Cq, dc: &DcSet) -> Result<PandaCircuit, CompileError> {
    assert!(
        cq.is_full(),
        "compile_fcq expects a full CQ; use OutputSensitive otherwise"
    );
    let mut rc = RelationalCircuit::new();
    let mut inputs = Vec::new();
    for atom in &cq.atoms {
        let cap = dc
            .cardinality_of(atom.vars)
            .ok_or_else(|| CompileError::UnguardedAtom(atom.name.clone()))?;
        let node = rc.input(atom.name.clone(), atom.vars, cap);
        inputs.push((atom.name.clone(), atom.vars, node));
    }
    let (output, bound, proof, branches) =
        compile_target(&mut rc, &inputs, dc, cq.all_vars(), cq.num_vars())?;
    rc.mark_output(output);
    Ok(PandaCircuit {
        rc,
        output,
        bound,
        proof,
        branches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::Mode;
    use qec_query::{baseline::evaluate_pairwise, k_cycle, parse_cq, triangle};
    use qec_relation::{
        agm_worst_case_triangle, random_relation, Database, DegreeConstraint, Relation, Var,
    };

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn triangle_dc(n: u64) -> DcSet {
        DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), n),
            DegreeConstraint::cardinality(vs(&[1, 2]), n),
            DegreeConstraint::cardinality(vs(&[0, 2]), n),
        ])
    }

    fn triangle_db(n: usize, seed: u64) -> Database {
        let mut db = Database::new();
        db.insert("R", random_relation(vec![Var(0), Var(1)], n, seed));
        db.insert("S", random_relation(vec![Var(1), Var(2)], n, seed + 1));
        db.insert("T", random_relation(vec![Var(0), Var(2)], n, seed + 2));
        db
    }

    #[test]
    fn triangle_compiles_and_matches_baseline_ram() {
        let q = triangle();
        let p = compile_fcq(&q, &triangle_dc(32)).unwrap();
        // Õ(1) relational gates: a couple hundred at N = 32, not Ω(N)
        assert!(p.rc.nodes.len() < 600, "gates: {}", p.rc.nodes.len());
        // branch count = 2·(1 + log N) — one decomposition, like Example 2
        assert_eq!(p.branches, 2 * (1 + 32u64.ilog2()) as usize);
        for seed in 0..4 {
            let db = triangle_db(30, seed);
            let got = p.rc.evaluate_ram(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn triangle_lowered_circuit_matches_baseline() {
        let q = triangle();
        let p = compile_fcq(&q, &triangle_dc(16)).unwrap();
        let lowered = p.rc.lower(Mode::Build);
        for seed in 0..3 {
            let db = triangle_db(14, seed * 7);
            let got = lowered.run(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn triangle_agm_worst_case() {
        let q = triangle();
        let p = compile_fcq(&q, &triangle_dc(16)).unwrap();
        let (r, s, t) = agm_worst_case_triangle(Var(0), Var(1), Var(2), 16);
        let mut db = Database::new();
        db.insert("R", r);
        db.insert("S", s);
        db.insert("T", t);
        let got = p.rc.evaluate_ram(&db).unwrap();
        assert_eq!(got[0].len(), 64); // 16^{1.5}
        let expect = evaluate_pairwise(&q, &db).unwrap();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn triangle_with_degree_constraint() {
        let q = triangle();
        let mut dc = triangle_dc(32);
        dc.add(DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 4));
        let p = compile_fcq(&q, &dc).unwrap();
        for seed in 0..3 {
            let mut db = triangle_db(30, seed);
            // enforce the degree constraint on S
            let s = qec_relation::random_degree_bounded(Var(1), Var(2), 30, 4, seed + 40);
            db.insert("S", s);
            // R and T keys must overlap S's group space for joins to fire
            let r = Relation::from_rows(
                vec![Var(0), Var(1)],
                (0..20u64).map(|i| vec![i % 6, i % 8]).collect(),
            );
            db.insert("R", r);
            let got = p.rc.evaluate_ram(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn functional_dependency_query() {
        // Q(a,b,c) :- R(a,b), S(b,c) with FD b→c: output ≤ N.
        let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)").unwrap();
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 32),
            DegreeConstraint::cardinality(vs(&[1, 2]), 32),
            DegreeConstraint::fd(vs(&[1]), vs(&[1, 2])),
        ]);
        let p = compile_fcq(&q, &dc).unwrap();
        assert_eq!(p.bound.log_value, qec_bignum::rat(5, 1));
        for seed in 0..3 {
            let mut db = Database::new();
            db.insert("R", random_relation(vec![Var(0), Var(1)], 30, seed));
            db.insert(
                "S",
                qec_relation::random_degree_bounded(Var(1), Var(2), 30, 1, seed + 3),
            );
            let got = p.rc.evaluate_ram(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn four_cycle_compiles() {
        let q = k_cycle(4);
        let mut cs = Vec::new();
        for a in &q.atoms {
            cs.push(DegreeConstraint::cardinality(a.vars, 24));
        }
        let p = compile_fcq(&q, &DcSet::from_vec(cs)).unwrap();
        for seed in 0..3 {
            let mut db = Database::new();
            for a in &q.atoms {
                db.insert(
                    a.name.clone(),
                    random_relation(a.vars.to_vec(), 20, seed * 11 + a.vars.0),
                );
            }
            let got = p.rc.evaluate_ram(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn two_path_join_compiles() {
        // the plain binary join Q(a,b,c) :- R(a,b), S(b,c)
        let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c)").unwrap();
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 16),
            DegreeConstraint::cardinality(vs(&[1, 2]), 16),
        ]);
        let p = compile_fcq(&q, &dc).unwrap();
        for seed in 0..3 {
            let mut db = Database::new();
            db.insert("R", random_relation(vec![Var(0), Var(1)], 14, seed));
            db.insert("S", random_relation(vec![Var(1), Var(2)], 14, seed + 5));
            let got = p.rc.evaluate_ram(&db).unwrap();
            let expect = evaluate_pairwise(&q, &db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn missing_cardinality_is_an_error() {
        let q = triangle();
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 16),
            DegreeConstraint::cardinality(vs(&[1, 2]), 16),
        ]);
        assert!(matches!(
            compile_fcq(&q, &dc),
            Err(CompileError::UnguardedAtom(_))
        ));
    }
}
