//! Join-aggregate (FAQ/AJAR) queries over semirings by circuits (Sec. 7).
//!
//! Each input tuple carries an annotation from a commutative semiring;
//! the query computes, for every output tuple, the `⊕`-aggregate over all
//! of its derivations of the `⊗`-product of the contributing annotations.
//! Following the paper, this is Yannakakis-C with every projection
//! replaced by an `⊕`-aggregation and every join followed by a `⊗`-map —
//! neither changes the asymptotic depth or size, so Theorem 5 carries
//! over (with `da-fhtw`, not `da-subw`; see Sec. 7).

use qec_bignum::Rat;
use qec_query::{Cq, Ghd};
use qec_relation::{AggKind, Database, DcSet, Relation, Var, VarSet};

use crate::panda::{compile_target, CompileError};
use crate::rc::{MapBinOp, RelationalCircuit};
use crate::yannakakis::{da_fhtw, YannakakisError};

/// The annotation column in circuit outputs.
pub const ANNOT: Var = Var(62);
/// Scratch column.
const TMP: Var = Var(61);

/// Commutative semirings with a word-level implementation.
///
/// Elements are `u64` words. `MinTropical`'s `∞` is [`Semiring::INF`]
/// (`u64::MAX`): it is the additive identity (`min(∞, x) = x`) and `⊗`
/// saturates so that `∞ ⊗ x = ∞`. `Natural` arithmetic saturates at
/// `u64::MAX` instead of wrapping — the axioms survive saturation
/// because `sat(x) = min(x, MAX)` commutes with `+`/`×`/`min`/`max`
/// chains, so results are exact whenever the true value fits in a word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semiring {
    /// `(ℕ, +, ×)` — counting; all-one annotations count derivations.
    Natural,
    /// `(𝔹, ∨, ∧)` — Boolean provenance.
    Boolean,
    /// `(ℕ ∪ {∞}, min, +)` — shortest derivations.
    MinTropical,
    /// `(ℕ, max, +)` — heaviest derivations.
    MaxTropical,
}

impl Semiring {
    /// The `∞` element of [`Semiring::MinTropical`]. Reference-semantics
    /// only: stored relations never materialize `∞` (it coincides with
    /// the circuit layer's dummy-slot sentinel), they encode it as tuple
    /// absence.
    pub const INF: u64 = u64::MAX;

    /// Multiplicative identity.
    pub fn one(self) -> u64 {
        match self {
            Semiring::Natural | Semiring::Boolean => 1,
            Semiring::MinTropical | Semiring::MaxTropical => 0,
        }
    }

    /// Additive identity: the annotation of an absent tuple. For
    /// `MinTropical` this is `∞` ([`Semiring::INF`]); for the others, 0.
    pub fn zero(self) -> u64 {
        match self {
            Semiring::Natural | Semiring::Boolean | Semiring::MaxTropical => 0,
            Semiring::MinTropical => Self::INF,
        }
    }

    /// Whether `zero() ⊗ x = zero()` holds (true semiring annihilation).
    /// `MaxTropical` over `ℕ` lacks a `-∞`, so its `zero()` is only the
    /// `⊕`-identity, not absorbing for `⊗`.
    pub fn has_absorbing_zero(self) -> bool {
        !matches!(self, Semiring::MaxTropical)
    }

    /// The `⊕`-fold as a grouped aggregation over column `v`.
    pub fn plus_agg(self, v: Var) -> AggKind {
        match self {
            Semiring::Natural => AggKind::Sum(v),
            Semiring::Boolean | Semiring::MaxTropical => AggKind::Max(v),
            Semiring::MinTropical => AggKind::Min(v),
        }
    }

    /// The word-level `⊗` gate. Tropical `⊗` lowers to a *saturating*
    /// add so `∞ ⊗ x = ∞` holds bit-for-bit with the reference
    /// semantics.
    pub fn times_op(self) -> MapBinOp {
        match self {
            Semiring::Natural | Semiring::Boolean => MapBinOp::Mul,
            Semiring::MinTropical | Semiring::MaxTropical => MapBinOp::SatAdd,
        }
    }

    /// `a ⊕ b` (reference semantics). Saturating: never wraps, and
    /// `MinTropical`'s `∞` behaves as the identity.
    pub fn plus(self, a: u64, b: u64) -> u64 {
        match self {
            Semiring::Natural => a.saturating_add(b),
            Semiring::Boolean | Semiring::MaxTropical => a.max(b),
            Semiring::MinTropical => a.min(b),
        }
    }

    /// `a ⊗ b` (reference semantics). Saturating: never wraps, and
    /// `MinTropical`'s `∞` is absorbing (`∞ ⊗ x = ∞`).
    pub fn times(self, a: u64, b: u64) -> u64 {
        match self {
            Semiring::Natural | Semiring::Boolean => a.saturating_mul(b),
            Semiring::MinTropical | Semiring::MaxTropical => a.saturating_add(b),
        }
    }
}

/// A join-aggregate query: a CQ, a semiring, and (optionally) one
/// annotation attribute per atom. The stored relation for an annotated
/// atom has schema `atom.vars ∪ {annotation}` with the atom's variables a
/// key; unannotated atoms contribute `1̄`.
pub struct AggregateQuery {
    cq: Cq,
    dc: DcSet,
    semiring: Semiring,
    annotations: Vec<Option<Var>>,
    ghd: Ghd,
    /// `da-fhtw(Q)` in log₂ units.
    pub width: Rat,
}

impl AggregateQuery {
    /// Prepares the query. `annotations[i]` names atom `i`'s annotation
    /// column (must be outside the query's variables).
    pub fn new(
        cq: &Cq,
        dc: &DcSet,
        semiring: Semiring,
        annotations: Vec<Option<Var>>,
        ghd_limit: usize,
    ) -> Result<Self, YannakakisError> {
        assert_eq!(
            annotations.len(),
            cq.atoms.len(),
            "one annotation slot per atom"
        );
        // The circuit hardcodes TMP = Var(61) / ANNOT = Var(62) as scratch
        // columns; a query (or annotation) actually using them would
        // silently collide — reject with a typed error instead. `all_vars`
        // only covers named variables, so also scan the atoms themselves
        // (a programmatic Cq can use sparse indices without names).
        let used: VarSet = cq.atoms.iter().fold(cq.free, |acc, a| acc.union(a.vars));
        for v in [TMP, ANNOT] {
            if used.contains(v) {
                return Err(YannakakisError::ReservedVariable(v));
            }
        }
        for a in annotations.iter().flatten() {
            if used.contains(*a) || cq.all_vars().contains(*a) || a.0 >= TMP.0 {
                return Err(YannakakisError::BadAnnotation(*a));
            }
        }
        let (ghd, width) = da_fhtw(cq, dc, ghd_limit)?;
        Ok(AggregateQuery {
            cq: cq.clone(),
            dc: dc.clone(),
            semiring,
            annotations,
            ghd,
            width,
        })
    }

    #[allow(clippy::needless_range_loop)] // re-parenting mutates `nodes` while indexing
    /// Builds the aggregate circuit, parameterized by the free-join output
    /// bound (from the counting family, Sec. 6.4). Output schema:
    /// `free ∪ {ANNOT}`.
    pub fn circuit(&self, out_bound: u64) -> Result<RelationalCircuit, YannakakisError> {
        let out_bound = out_bound.max(1);
        let sr = self.semiring;
        let mut rc = RelationalCircuit::new();

        // Inputs carry annotations; PANDA sees their projections.
        let mut inputs = Vec::new();
        let mut annotated_nodes = Vec::new();
        for (atom, annot) in self.cq.atoms.iter().zip(self.annotations.iter()) {
            let cap = self.dc.cardinality_of(atom.vars).ok_or_else(|| {
                YannakakisError::Compile(CompileError::UnguardedAtom(atom.name.clone()))
            })?;
            let schema = match annot {
                Some(a) => atom.vars.with(*a),
                None => atom.vars,
            };
            let node = rc.input(atom.name.clone(), schema, cap);
            let plain = if annot.is_some() {
                rc.project(node, atom.vars)
            } else {
                node
            };
            inputs.push((atom.name.clone(), atom.vars, plain));
            annotated_nodes.push((atom.vars, *annot, node));
        }

        // Bags: PANDA-C, then attach the ⊗-product of the annotations of
        // the atoms assigned to this bag (each atom to exactly one bag).
        let mut assigned = vec![false; self.cq.atoms.len()];
        struct Node {
            bag: VarSet,
            t: crate::rc::NodeId,
            parent: Option<usize>,
            alive: bool,
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(self.ghd.nodes.len());
        for gn in &self.ghd.nodes {
            let (mut t, _, _, _) =
                compile_target(&mut rc, &inputs, &self.dc, gn.bag, self.cq.num_vars())
                    .map_err(YannakakisError::Compile)?;
            t = rc.attach_const(t, ANNOT, sr.one());
            for (i, (vars, annot, node)) in annotated_nodes.iter().enumerate() {
                if assigned[i] || !vars.is_subset(gn.bag) {
                    continue;
                }
                assigned[i] = true;
                if let Some(a) = annot {
                    // the atom's variables are a key ⇒ primary-key join
                    let joined = rc.join_pk(t, *node);
                    t = rc.map_bin(joined, ANNOT, *a, ANNOT, sr.times_op());
                }
            }
            nodes.push(Node {
                bag: gn.bag,
                t,
                parent: gn.parent,
                alive: true,
            });
        }

        // Reduce with ⊕-aggregation messages (Alg. 8 + Sec. 7): children
        // aggregate over the shared key and multiply into the parent.
        let bottom_up = self.ghd.bottom_up();
        let root = self.ghd.root;
        for &v in &bottom_up {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("non-root parent");
            let free_part = nodes[v].bag.intersect(self.cq.free);
            if free_part.is_subset(nodes[p].bag) {
                let shared = nodes[v].bag.intersect(nodes[p].bag);
                let w = rc.aggregate(nodes[v].t, shared, sr.plus_agg(ANNOT), TMP);
                let joined = rc.join_pk(nodes[p].t, w);
                nodes[p].t = rc.map_bin(joined, ANNOT, TMP, ANNOT, sr.times_op());
                nodes[v].alive = false;
                for i in 0..nodes.len() {
                    if nodes[i].alive && nodes[i].parent == Some(v) {
                        nodes[i].parent = Some(p);
                    }
                }
            } else if free_part != nodes[v].bag {
                let agg = rc.aggregate(nodes[v].t, free_part, sr.plus_agg(ANNOT), TMP);
                // rename TMP back to ANNOT via a ⊗ with 1̄
                let one = rc.attach_const(agg, ANNOT, sr.one());
                nodes[v].t = rc.map_bin(one, ANNOT, TMP, ANNOT, sr.times_op());
                nodes[v].bag = free_part;
            }
        }
        {
            let root_free = nodes[root].bag.intersect(self.cq.free);
            if root_free != nodes[root].bag {
                let agg = rc.aggregate(nodes[root].t, root_free, sr.plus_agg(ANNOT), TMP);
                let one = rc.attach_const(agg, ANNOT, sr.one());
                nodes[root].t = rc.map_bin(one, ANNOT, TMP, ANNOT, sr.times_op());
                nodes[root].bag = root_free;
            }
        }

        // Semijoin passes on the free tree (annotation-free projections).
        let alive: Vec<usize> = bottom_up
            .iter()
            .copied()
            .filter(|&i| nodes[i].alive)
            .collect();
        for &v in &alive {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive parent");
            let keys = rc.project(nodes[v].t, nodes[v].bag);
            nodes[p].t = rc.semijoin(nodes[p].t, keys);
        }
        for &v in alive.iter().rev() {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive parent");
            let keys = rc.project(nodes[p].t, nodes[p].bag);
            nodes[v].t = rc.semijoin(nodes[v].t, keys);
        }

        // Bottom-up output-bounded joins with ⊗-maps.
        for &v in &alive {
            if v == root {
                continue;
            }
            let p = nodes[v].parent.expect("alive parent");
            // move the child's annotation out of the way of the join
            let renamed = rc.aggregate(nodes[v].t, nodes[v].bag, sr.plus_agg(ANNOT), TMP);
            let cap_product = rc.nodes[nodes[p].t]
                .capacity
                .saturating_mul(rc.nodes[renamed].capacity);
            let out_t = out_bound.min(cap_product);
            let shared = nodes[p].bag.intersect(nodes[v].bag);
            let joined = if shared.is_empty() {
                let j = rc.join_degree(nodes[p].t, renamed, rc.nodes[renamed].capacity);
                rc.truncate(j, out_t)
            } else {
                rc.join_output(nodes[p].t, renamed, out_t)
            };
            nodes[p].t = rc.map_bin(joined, ANNOT, TMP, ANNOT, sr.times_op());
            nodes[p].bag = nodes[p].bag.union(nodes[v].bag);
        }
        rc.mark_output(nodes[root].t);
        Ok(rc)
    }

    /// Computes the output bound `OUT` for [`AggregateQuery::circuit`]
    /// the proper way (Sec. 6.4): strip the annotation columns and run the
    /// counting family over the plain relations.
    pub fn output_bound_ram(&self, db: &Database) -> Result<u64, YannakakisError> {
        let mut plain = Database::new();
        for (atom, annot) in self.cq.atoms.iter().zip(self.annotations.iter()) {
            let rel = db.get(&atom.name).ok_or_else(|| {
                YannakakisError::Eval(crate::rc::RcError::MissingInput(atom.name.clone()))
            })?;
            let rel = if annot.is_some() {
                rel.project(atom.vars)
            } else {
                rel.clone()
            };
            plain.insert(atom.name.clone(), rel);
        }
        let os = crate::yannakakis::OutputSensitive::build(&self.cq, &self.dc, 4_000)?;
        os.count_ram(&plain)
    }

    /// Brute-force reference semantics (for validation): enumerate the
    /// full join and fold annotations.
    pub fn reference(&self, db: &Database) -> Result<Relation, YannakakisError> {
        let sr = self.semiring;
        // join all annotated relations
        let mut acc = Relation::boolean(true);
        for (atom, annot) in self.cq.atoms.iter().zip(self.annotations.iter()) {
            let rel = db
                .get(&atom.name)
                .ok_or_else(|| {
                    YannakakisError::Eval(crate::rc::RcError::MissingInput(atom.name.clone()))
                })?
                .clone();
            let _ = annot;
            acc = acc.natural_join(&rel);
        }
        let annot_cols: Vec<Var> = self.annotations.iter().flatten().copied().collect();
        let free_vars: Vec<Var> = self.cq.free.to_vec();
        let mut groups: std::collections::BTreeMap<Vec<u64>, u64> =
            std::collections::BTreeMap::new();
        for row in acc.iter() {
            let key: Vec<u64> = free_vars
                .iter()
                .map(|v| row[acc.col(*v).expect("free var")])
                .collect();
            let mut prod = sr.one();
            for a in &annot_cols {
                prod = sr.times(prod, row[acc.col(*a).expect("annotation")]);
            }
            groups
                .entry(key)
                .and_modify(|acc_v| *acc_v = sr.plus(*acc_v, prod))
                .or_insert(prod);
        }
        let schema: Vec<Var> = {
            let mut s = free_vars.clone();
            s.push(ANNOT);
            s
        };
        let rows = groups
            .into_iter()
            .map(|(k, v)| {
                let mut r = k;
                r.push(v);
                r
            })
            .collect();
        Ok(Relation::from_rows(schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_query::{parse_cq, triangle};
    use qec_relation::{random_relation, DegreeConstraint};
    use rand::{Rng, SeedableRng};

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn dc_for(cq: &Cq, n: u64) -> DcSet {
        DcSet::from_vec(
            cq.atoms
                .iter()
                .map(|a| DegreeConstraint::cardinality(a.vars, n))
                .collect(),
        )
    }

    /// Attaches random annotations in [1, 4] to a relation.
    fn annotate(rel: &Relation, var: Var, seed: u64) -> Relation {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut schema = rel.schema().to_vec();
        schema.push(var);
        let rows = rel
            .iter()
            .map(|r| {
                let mut t = r.clone();
                t.push(rng.gen_range(1..=4));
                t
            })
            .collect();
        Relation::from_rows(schema, rows)
    }

    #[test]
    fn min_tropical_has_a_real_infinity() {
        let sr = Semiring::MinTropical;
        let inf = Semiring::INF;
        assert_eq!(sr.zero(), inf);
        // ∞ is the ⊕-identity ...
        assert_eq!(sr.plus(inf, 17), 17);
        assert_eq!(sr.plus(17, inf), 17);
        assert_eq!(sr.plus(inf, inf), inf);
        // ... and absorbing for ⊗ (no wrap-around back into ℕ)
        assert_eq!(sr.times(inf, 17), inf);
        assert_eq!(sr.times(17, inf), inf);
        assert_eq!(sr.times(inf, inf), inf);
        assert_eq!(sr.times(inf, sr.one()), inf);
        // near-boundary sums saturate instead of wrapping
        assert_eq!(sr.times(inf - 1, 2), inf);
        assert_eq!(sr.times(inf - 1, 1), inf);
    }

    #[test]
    fn natural_saturates_instead_of_wrapping() {
        let sr = Semiring::Natural;
        let max = u64::MAX;
        // release-mode wrapping would give 0 / small values here
        assert_eq!(sr.plus(max, 1), max);
        assert_eq!(sr.plus(max, max), max);
        assert_eq!(sr.times(max, 2), max);
        assert_eq!(sr.times(1 << 32, 1 << 32), max);
        // exact below the boundary
        assert_eq!(sr.plus(max - 1, 1), max);
        assert_eq!(sr.times(1 << 31, 1 << 31), 1 << 62);
        assert_eq!(sr.times(sr.zero(), max), 0);
    }

    #[test]
    fn max_tropical_saturates() {
        let sr = Semiring::MaxTropical;
        assert_eq!(sr.times(u64::MAX - 1, 5), u64::MAX);
        assert_eq!(sr.plus(sr.zero(), 9), 9);
        assert!(!sr.has_absorbing_zero());
    }

    #[test]
    fn reserved_variable_collision_is_a_typed_error() {
        // A CQ that actually uses Var(61)/Var(62) must be rejected, not
        // silently collide with the TMP/ANNOT scratch columns.
        for reserved in [61, 62] {
            let cq = Cq {
                var_names: Vec::new(),
                free: vs(&[reserved]),
                atoms: vec![qec_query::Atom {
                    name: "R".into(),
                    vars: vs(&[reserved, 1]),
                }],
            };
            let dc = dc_for(&cq, 8);
            let err = AggregateQuery::new(&cq, &dc, Semiring::Natural, vec![None], 400)
                .err()
                .expect("reserved variable must be rejected");
            assert!(
                matches!(err, YannakakisError::ReservedVariable(v) if v.0 == reserved),
                "{err}"
            );
        }
        // ... and an annotation column inside the query's variables (or in
        // the reserved range) is equally typed, not an assert.
        let cq = parse_cq("Q(a) :- R(a, b)").unwrap();
        let dc = dc_for(&cq, 8);
        for bad in [Var(1), Var(61), Var(62)] {
            let err = AggregateQuery::new(&cq, &dc, Semiring::Natural, vec![Some(bad)], 400)
                .err()
                .expect("bad annotation must be rejected");
            assert!(
                matches!(err, YannakakisError::BadAnnotation(v) if v == bad),
                "{err}"
            );
        }
    }

    #[test]
    fn counting_per_free_tuple() {
        // #paths from x0 through x1 to x2, grouped by x0 (Natural, 1̄)
        let q0 = parse_cq("Q(a) :- R(a, b), S(b, c)").unwrap();
        let dc = dc_for(&q0, 24);
        let aq = AggregateQuery::new(&q0, &dc, Semiring::Natural, vec![None, None], 4000).unwrap();
        for seed in 0..3 {
            let mut db = Database::new();
            // parser: a=0 (free), b=1... check indices: head Q(a): a=0; R(a,b): b=1; S(b,c): c=2
            db.insert("R", random_relation(vec![Var(0), Var(1)], 20, seed));
            db.insert("S", random_relation(vec![Var(1), Var(2)], 20, seed + 9));
            let expect = aq.reference(&db).unwrap();
            let out_bound = expect.len().max(1) as u64;
            let rc = aq.circuit(out_bound).unwrap();
            let got = rc.evaluate_ram(&db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn annotated_sum_over_join() {
        let q0 = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        // parser indices: a=0, c=1 free; b=2
        let dc = dc_for(&q0, 24);
        let aq = AggregateQuery::new(
            &q0,
            &dc,
            Semiring::Natural,
            vec![Some(Var(40)), Some(Var(41))],
            4000,
        )
        .unwrap();
        for seed in 0..3 {
            let mut db = Database::new();
            let r = random_relation(vec![Var(0), Var(2)], 18, seed);
            let s = random_relation(vec![Var(2), Var(1)], 18, seed + 4);
            db.insert("R", annotate(&r, Var(40), seed + 100));
            db.insert("S", annotate(&s, Var(41), seed + 200));
            let expect = aq.reference(&db).unwrap();
            let rc = aq.circuit(expect.len().max(1) as u64).unwrap();
            let got = rc.evaluate_ram(&db).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn tropical_shortest_two_hop() {
        // min-cost 2-hop path per (a, c)
        let q0 = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        let dc = dc_for(&q0, 24);
        let aq = AggregateQuery::new(
            &q0,
            &dc,
            Semiring::MinTropical,
            vec![Some(Var(40)), Some(Var(41))],
            4000,
        )
        .unwrap();
        let mut db = Database::new();
        let r = random_relation(vec![Var(0), Var(2)], 16, 2);
        let s = random_relation(vec![Var(2), Var(1)], 16, 3);
        db.insert("R", annotate(&r, Var(40), 10));
        db.insert("S", annotate(&s, Var(41), 11));
        let expect = aq.reference(&db).unwrap();
        let rc = aq.circuit(expect.len().max(1) as u64).unwrap();
        assert_eq!(rc.evaluate_ram(&db).unwrap()[0], expect);
    }

    #[test]
    fn boolean_provenance_triangle_count() {
        // Boolean semiring over a cyclic query: does each a participate in
        // a triangle?
        let q0 = triangle();
        let q = Cq {
            free: vs(&[0]),
            ..q0
        };
        let dc = dc_for(&q, 20);
        let aq =
            AggregateQuery::new(&q, &dc, Semiring::Boolean, vec![None, None, None], 4000).unwrap();
        let mut db = Database::new();
        db.insert("R", random_relation(vec![Var(0), Var(1)], 18, 1));
        db.insert("S", random_relation(vec![Var(1), Var(2)], 18, 2));
        db.insert("T", random_relation(vec![Var(0), Var(2)], 18, 3));
        let expect = aq.reference(&db).unwrap();
        let rc = aq.circuit(expect.len().max(1) as u64).unwrap();
        assert_eq!(rc.evaluate_ram(&db).unwrap()[0], expect);
    }

    #[test]
    fn output_bound_matches_reference_size() {
        let q0 = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        let dc = dc_for(&q0, 24);
        let aq = AggregateQuery::new(
            &q0,
            &dc,
            Semiring::Natural,
            vec![Some(Var(40)), Some(Var(41))],
            4000,
        )
        .unwrap();
        let mut db = Database::new();
        let r = random_relation(vec![Var(0), Var(2)], 18, 7);
        let s = random_relation(vec![Var(2), Var(1)], 18, 8);
        db.insert("R", annotate(&r, Var(40), 1));
        db.insert("S", annotate(&s, Var(41), 2));
        let expect = aq.reference(&db).unwrap();
        let out = aq.output_bound_ram(&db).unwrap();
        assert_eq!(out as usize, expect.len());
        // and the circuit parameterized by that OUT evaluates correctly
        let rc = aq.circuit(out.max(1)).unwrap();
        assert_eq!(rc.evaluate_ram(&db).unwrap()[0], expect);
    }

    #[test]
    fn lowered_semiring_circuit_matches_reference() {
        use qec_circuit::Mode;
        let q0 = parse_cq("Q(a) :- R(a, b), S(b, c)").unwrap();
        let dc = dc_for(&q0, 12);
        let aq = AggregateQuery::new(&q0, &dc, Semiring::Natural, vec![Some(Var(40)), None], 4000)
            .unwrap();
        let mut db = Database::new();
        let r = random_relation(vec![Var(0), Var(1)], 10, 3);
        db.insert("R", annotate(&r, Var(40), 77));
        db.insert("S", random_relation(vec![Var(1), Var(2)], 10, 4));
        let expect = aq.reference(&db).unwrap();
        let rc = aq.circuit(expect.len().max(1) as u64).unwrap();
        let lowered = rc.lower(Mode::Build);
        let got = lowered.run(&db).unwrap();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn triangle_counting_per_vertex() {
        // Natural semiring: number of triangles through each a — the
        // motivating workload for Sec. 7.
        let q0 = triangle();
        let q = Cq {
            free: vs(&[0]),
            ..q0
        };
        let dc = dc_for(&q, 20);
        let aq =
            AggregateQuery::new(&q, &dc, Semiring::Natural, vec![None, None, None], 4000).unwrap();
        for seed in 0..2 {
            let mut db = Database::new();
            db.insert("R", random_relation(vec![Var(0), Var(1)], 16, seed));
            db.insert("S", random_relation(vec![Var(1), Var(2)], 16, seed + 5));
            db.insert("T", random_relation(vec![Var(0), Var(2)], 16, seed + 6));
            let expect = aq.reference(&db).unwrap();
            let rc = aq.circuit(expect.len().max(1) as u64).unwrap();
            assert_eq!(rc.evaluate_ram(&db).unwrap()[0], expect, "seed {seed}");
        }
    }
}
