//! The paper's primary contribution: relational circuits with bounded
//! wires, the PANDA-C compiler (Sec. 4.4, Alg. 1), Yannakakis-C and
//! output-sensitive circuits (Sec. 6, Algs. 8–11), and the semiring
//! join-aggregate extension (Sec. 7).
//!
//! Pipeline:
//!
//! ```text
//! CQ + degree constraints
//!   │  qec-entropy: polymatroid bound + proof sequence (Thms 1–2)
//!   ▼
//! PANDA-C (this crate)            — a *relational circuit*: Õ(1) gates,
//!   │                               wires bounded by (cardinality, degree)
//!   │                               parameters; cost Õ(N + DAPB) (Thm 3)
//!   ▼
//! lowering (qec-circuit)          — a word-level oblivious circuit of
//!   │                               size Õ(N + DAPB), depth Õ(1) (Thm 4)
//!   ▼
//! bit lowering (qec-circuit)      — AND/XOR/NOT gates for MPC/garbling
//! ```
//!
//! For non-full queries, [`OutputSensitive`] implements the two-family
//! construction of Sec. 6: one circuit computing `OUT = |Q(D)|`
//! (Alg. 11), and, parameterized by `OUT`, a Yannakakis-C circuit
//! (Algs. 8–9) of size `Õ(N + 2^{da-fhtw} + OUT)` (Thm 5).

mod cost;
mod naive;
mod panda;
mod rc;
mod semiring;
mod yannakakis;

pub use cost::paper_cost;
pub use naive::{naive_circuit, triangle_heavy_light};
pub use panda::{compile_fcq, CompileError, PandaCircuit};
pub use rc::{LoweredCircuit, MapBinOp, NodeId, RcError, RcNode, RcOp, RcPred, RelationalCircuit};
pub use semiring::{AggregateQuery, Semiring};
pub use yannakakis::{da_fhtw, OutputSensitive, YannakakisError};
