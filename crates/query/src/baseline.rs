//! RAM baseline evaluators.
//!
//! These are the reference implementations every circuit in the workspace
//! is validated against, and the comparison points for the experiment
//! harness:
//!
//! * [`evaluate_pairwise`] — a textbook left-to-right binary join plan
//!   (can suffer intermediate blow-up; always correct);
//! * [`generic_join`] — a worst-case-optimal variable-at-a-time join in the
//!   style of NPRR / LeapFrog TrieJoin (`Õ(N^{ρ*})` on cardinality
//!   constraints);
//! * [`yannakakis`] — the classical Yannakakis algorithm \[34\] on a join
//!   tree of an α-acyclic query, with full semijoin reduction.

use qec_relation::{Database, Relation, Var, VarSet};

use crate::{Cq, CqError};

/// Evaluates `Q(D)` with a left-to-right pairwise join plan followed by a
/// projection onto the free variables.
pub fn evaluate_pairwise(cq: &Cq, db: &Database) -> Result<Relation, CqError> {
    let rels = cq.bind(db)?;
    let mut acc = Relation::boolean(true);
    for r in rels {
        acc = acc.natural_join(r);
    }
    Ok(acc.project(cq.free))
}

/// Output size `|Q(D)|`.
pub fn count_output(cq: &Cq, db: &Database) -> Result<usize, CqError> {
    Ok(evaluate_pairwise(cq, db)?.len())
}

/// Worst-case-optimal generic join: binds variables one at a time, always
/// intersecting the candidate sets of every atom containing the variable.
pub fn generic_join(cq: &Cq, db: &Database) -> Result<Relation, CqError> {
    let rels = cq.bind(db)?;
    let atoms: Vec<(VarSet, Relation)> = cq
        .atoms
        .iter()
        .map(|a| a.vars)
        .zip(rels.into_iter().cloned())
        .collect();
    let order: Vec<Var> = cq.all_vars().to_vec();
    let mut out_rows: Vec<Vec<u64>> = Vec::new();
    let mut partial: Vec<u64> = Vec::new();
    recurse(&atoms, &order, 0, &mut partial, &mut out_rows);
    let full = Relation::from_rows(order.clone(), out_rows);
    return Ok(full.project(cq.free));

    fn recurse(
        atoms: &[(VarSet, Relation)],
        order: &[Var],
        depth: usize,
        partial: &mut Vec<u64>,
        out: &mut Vec<Vec<u64>>,
    ) {
        if depth == order.len() {
            out.push(partial.clone());
            return;
        }
        let v = order[depth];
        // candidate values: intersection over atoms containing v, starting
        // from the smallest candidate set
        let mut candidate_sets: Vec<Vec<u64>> = Vec::new();
        for (vars, rel) in atoms.iter().filter(|(vars, _)| vars.contains(v)) {
            let col = rel.col(v).expect("atom schema");
            let mut vals: Vec<u64> = rel.iter().map(|row| row[col]).collect();
            vals.sort_unstable();
            vals.dedup();
            candidate_sets.push(vals);
            let _ = vars;
        }
        if candidate_sets.is_empty() {
            // variable not covered (ruled out by Cq::new); nothing to bind
            return;
        }
        candidate_sets.sort_by_key(Vec::len);
        let mut candidates = candidate_sets[0].clone();
        for s in &candidate_sets[1..] {
            candidates.retain(|v| s.binary_search(v).is_ok());
        }
        for value in candidates {
            // restrict every atom containing v to rows with v = value
            let restricted: Vec<(VarSet, Relation)> = atoms
                .iter()
                .map(|(vars, rel)| {
                    if vars.contains(v) {
                        let col = rel.col(v).expect("atom schema");
                        (*vars, rel.select(|row| row[col] == value))
                    } else {
                        (*vars, rel.clone())
                    }
                })
                .collect();
            if restricted.iter().any(|(_, r)| r.is_empty()) {
                continue;
            }
            partial.push(value);
            recurse(&restricted, order, depth + 1, partial, out);
            partial.pop();
        }
    }
}

/// A join tree over the atoms of an α-acyclic query: `parent[i]` is the
/// parent atom index (`None` for the root, index 0 of the returned order).
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// Parent per atom.
    pub parent: Vec<Option<usize>>,
    /// Atom indices, children always after parents.
    pub top_down: Vec<usize>,
}

/// Builds a join tree by maximum-weight spanning tree on shared-variable
/// counts — a join tree exists and is found this way iff the hypergraph is
/// α-acyclic. Returns `None` for cyclic queries.
#[allow(clippy::needless_range_loop)] // Prim over two parallel arrays
pub fn join_tree(cq: &Cq) -> Option<JoinTree> {
    let h = cq.hypergraph();
    if !h.is_acyclic() {
        return None;
    }
    let m = cq.atoms.len();
    let mut parent = vec![None; m];
    let mut in_tree = vec![false; m];
    let mut top_down = vec![0usize];
    in_tree[0] = true;
    // Prim's algorithm maximizing |shared vars|
    for _ in 1..m {
        let mut best: Option<(usize, usize, u32)> = None; // (new, attach_to, weight)
        for i in 0..m {
            if in_tree[i] {
                continue;
            }
            for j in 0..m {
                if !in_tree[j] {
                    continue;
                }
                let w = cq.atoms[i].vars.intersect(cq.atoms[j].vars).len();
                if best.is_none_or(|(_, _, bw)| w > bw) {
                    best = Some((i, j, w));
                }
            }
        }
        let (i, j, _) = best.expect("m atoms need m-1 attachments");
        parent[i] = Some(j);
        in_tree[i] = true;
        top_down.push(i);
    }
    Some(JoinTree { parent, top_down })
}

/// The Yannakakis algorithm \[34\] for α-acyclic queries: full semijoin
/// reduction (bottom-up + top-down) followed by bottom-up joins with early
/// projection onto variables still needed above.
///
/// Returns `None` if the query is cyclic.
pub fn yannakakis(cq: &Cq, db: &Database) -> Result<Option<Relation>, CqError> {
    let Some(tree) = join_tree(cq) else {
        return Ok(None);
    };
    let rels = cq.bind(db)?;
    let mut tables: Vec<Relation> = rels.into_iter().cloned().collect();

    let bottom_up: Vec<usize> = tree.top_down.iter().rev().copied().collect();
    // Phase 1: bottom-up semijoin
    for &i in &bottom_up {
        if let Some(p) = tree.parent[i] {
            tables[p] = tables[p].semijoin(&tables[i]);
        }
    }
    // Phase 2: top-down semijoin — after both passes no dangling tuples
    // remain.
    for &i in &tree.top_down {
        if let Some(p) = tree.parent[i] {
            tables[i] = tables[i].semijoin(&tables[p]);
        }
    }
    // Phase 3: bottom-up joins. Project each intermediate onto free
    // variables plus variables shared with anything still unjoined above.
    let mut alive: Vec<VarSet> = cq.atoms.iter().map(|a| a.vars).collect();
    for &i in &bottom_up {
        if let Some(p) = tree.parent[i] {
            let joined = tables[p].natural_join(&tables[i]);
            // variables needed later: free, or occurring in atoms not yet
            // merged into p
            let mut needed = cq.free;
            for (k, vars) in alive.iter().enumerate() {
                if k != i && k != p {
                    needed = needed.union(*vars);
                }
            }
            let keep = joined.vars().intersect(needed);
            tables[p] = joined.project(keep);
            alive[p] = tables[p].vars();
            alive[i] = VarSet::EMPTY;
        }
    }
    let root = tree.top_down[0];
    Ok(Some(tables[root].project(cq.free)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{k_path, parse_cq, snowflake, triangle};
    use qec_relation::{random_relation, Relation};

    fn triangle_db(n: usize, seed: u64) -> Database {
        let mut db = Database::new();
        db.insert("R", random_relation(vec![Var(0), Var(1)], n, seed));
        db.insert("S", random_relation(vec![Var(1), Var(2)], n, seed + 1));
        db.insert("T", random_relation(vec![Var(0), Var(2)], n, seed + 2));
        db
    }

    #[test]
    fn generic_join_matches_pairwise_on_triangle() {
        let q = triangle();
        for seed in 0..5 {
            let db = triangle_db(60, seed);
            let a = evaluate_pairwise(&q, &db).unwrap();
            let b = generic_join(&q, &db).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn generic_join_handles_projections() {
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        let mut db = Database::new();
        // R over (a=Var0, b=Var2), S over (b=Var2, c=Var1)
        db.insert("R", random_relation(vec![Var(0), Var(2)], 50, 1));
        db.insert("S", random_relation(vec![Var(2), Var(1)], 50, 2));
        let a = evaluate_pairwise(&q, &db).unwrap();
        let b = generic_join(&q, &db).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn join_tree_only_for_acyclic() {
        assert!(join_tree(&triangle()).is_none());
        assert!(join_tree(&k_path(4)).is_some());
        let t = join_tree(&snowflake(3)).unwrap();
        assert_eq!(t.top_down.len(), 4);
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
    }

    #[test]
    fn yannakakis_matches_pairwise_on_acyclic_corpus() {
        for (q, names) in [
            (k_path(3), vec!["E0", "E1", "E2"]),
            (snowflake(2), vec!["F", "P0", "P1"]),
        ] {
            for seed in 0..4 {
                let mut db = Database::new();
                for (i, a) in q.atoms.iter().enumerate() {
                    let schema: Vec<Var> = a.vars.to_vec();
                    db.insert(names[i], random_relation(schema, 40, seed * 10 + i as u64));
                }
                let expect = evaluate_pairwise(&q, &db).unwrap();
                let got = yannakakis(&q, &db).unwrap().expect("acyclic");
                assert_eq!(expect, got, "{q} seed {seed}");
            }
        }
    }

    #[test]
    fn yannakakis_with_projection() {
        let q = parse_cq("Q(x0) :- E0(x0, x1), E1(x1, x2)").unwrap();
        // note: parser indices: x0=0 (free), x1=1, x2=2
        let mut db = Database::new();
        db.insert("E0", random_relation(vec![Var(0), Var(1)], 40, 9));
        db.insert("E1", random_relation(vec![Var(1), Var(2)], 40, 10));
        let expect = evaluate_pairwise(&q, &db).unwrap();
        let got = yannakakis(&q, &db).unwrap().expect("acyclic");
        assert_eq!(expect, got);
    }

    #[test]
    fn yannakakis_returns_none_for_cyclic() {
        let db = triangle_db(10, 0);
        assert!(yannakakis(&triangle(), &db).unwrap().is_none());
    }

    #[test]
    fn empty_relation_short_circuits() {
        let q = triangle();
        let mut db = triangle_db(20, 3);
        db.insert("S", Relation::empty(q.atoms[1].vars));
        assert_eq!(generic_join(&q, &db).unwrap().len(), 0);
        assert_eq!(evaluate_pairwise(&q, &db).unwrap().len(), 0);
    }
}
