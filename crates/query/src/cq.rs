//! Conjunctive query and hypergraph types.

use std::fmt;

use qec_relation::{Database, Relation, Var, VarSet};

/// Errors raised by query construction and evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CqError {
    /// An atom mentions no variables or repeats a variable.
    MalformedAtom(String),
    /// A free variable does not occur in any atom.
    UnboundFreeVariable(String),
    /// Evaluation could not find a relation for an atom.
    MissingRelation(String),
    /// A relation's schema does not match its atom.
    SchemaMismatch {
        atom: String,
        expected: VarSet,
        got: VarSet,
    },
    /// Parse error with a human-readable message.
    Parse(String),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::MalformedAtom(a) => write!(f, "malformed atom: {a}"),
            CqError::UnboundFreeVariable(v) => {
                write!(f, "free variable {v} does not occur in any atom")
            }
            CqError::MissingRelation(a) => write!(f, "no relation bound to atom {a}"),
            CqError::SchemaMismatch {
                atom,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation for {atom} has schema {got}, expected {expected}"
                )
            }
            CqError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CqError {}

/// A query hypergraph `H = ([n], E)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    /// Number of variables `n`.
    pub num_vars: u32,
    /// Hyperedges (each a non-empty subset of `[n]`).
    pub edges: Vec<VarSet>,
}

impl Hypergraph {
    /// All variables `[n]`.
    pub fn all_vars(&self) -> VarSet {
        VarSet::full(self.num_vars)
    }

    /// Variables adjacent to `v` in the primal graph (co-occurring in some
    /// edge), excluding `v` itself.
    pub fn neighbors(&self, v: Var) -> VarSet {
        self.edges
            .iter()
            .filter(|e| e.contains(v))
            .fold(VarSet::EMPTY, |acc, e| acc.union(*e))
            .minus(VarSet::singleton(v))
    }

    /// GYO reduction: returns `true` iff the hypergraph is α-acyclic.
    pub fn is_acyclic(&self) -> bool {
        let mut edges: Vec<VarSet> = self.edges.clone();
        loop {
            let mut changed = false;
            // Remove ears: an edge contained in another edge.
            let mut i = 0;
            while i < edges.len() {
                let contained = edges
                    .iter()
                    .enumerate()
                    .any(|(j, e)| j != i && edges[i].is_subset(*e));
                if contained {
                    edges.swap_remove(i);
                    changed = true;
                } else {
                    i += 1;
                }
            }
            // Remove isolated variables: occurring in exactly one edge.
            for v in self.all_vars().iter() {
                let occurrences: Vec<usize> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.contains(v))
                    .map(|(i, _)| i)
                    .collect();
                if occurrences.len() == 1 {
                    let i = occurrences[0];
                    let reduced = edges[i].minus(VarSet::singleton(v));
                    if reduced != edges[i] {
                        edges[i] = reduced;
                        changed = true;
                    }
                }
            }
            edges.retain(|e| !e.is_empty());
            if edges.len() <= 1 {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }
}

/// A relation atom `R(A_F)` in a query body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name, used to look up data in a [`Database`].
    pub name: String,
    /// The hyperedge `F` this atom covers.
    pub vars: VarSet,
}

/// A conjunctive query (Sec. 3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cq {
    /// Human-readable variable names; index `i` names `Var(i)`.
    pub var_names: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
    /// Free (output) variables; the rest are existentially quantified.
    pub free: VarSet,
}

impl Cq {
    /// Builds a query, validating that atoms are non-empty and free
    /// variables occur somewhere.
    pub fn new(var_names: Vec<String>, atoms: Vec<Atom>, free: VarSet) -> Result<Cq, CqError> {
        let mut covered = VarSet::EMPTY;
        for a in &atoms {
            if a.vars.is_empty() {
                return Err(CqError::MalformedAtom(a.name.clone()));
            }
            covered = covered.union(a.vars);
        }
        for v in free.iter() {
            if !covered.contains(v) {
                return Err(CqError::UnboundFreeVariable(
                    var_names
                        .get(v.index())
                        .cloned()
                        .unwrap_or_else(|| format!("{v}")),
                ));
            }
        }
        Ok(Cq {
            var_names,
            atoms,
            free,
        })
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> u32 {
        self.var_names.len() as u32
    }

    /// All variables `[n]`.
    pub fn all_vars(&self) -> VarSet {
        VarSet::full(self.num_vars())
    }

    /// Bound (existential) variables.
    pub fn bound_vars(&self) -> VarSet {
        self.all_vars().minus(self.free)
    }

    /// The query hypergraph.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph {
            num_vars: self.num_vars(),
            edges: self.atoms.iter().map(|a| a.vars).collect(),
        }
    }

    /// `true` iff every variable is free (an FCQ).
    pub fn is_full(&self) -> bool {
        self.free == self.all_vars()
    }

    /// `true` iff no variable is free (a BCQ).
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// The same query with all variables free (its *full* version).
    pub fn to_full(&self) -> Cq {
        Cq {
            var_names: self.var_names.clone(),
            atoms: self.atoms.clone(),
            free: self.all_vars(),
        }
    }

    /// Looks up each atom's relation in `db`, checking schemas.
    pub fn bind<'a>(&self, db: &'a Database) -> Result<Vec<&'a Relation>, CqError> {
        self.atoms
            .iter()
            .map(|a| {
                let rel = db
                    .get(&a.name)
                    .ok_or_else(|| CqError::MissingRelation(a.name.clone()))?;
                if rel.vars() != a.vars {
                    return Err(CqError::SchemaMismatch {
                        atom: a.name.clone(),
                        expected: a.vars,
                        got: rel.vars(),
                    });
                }
                Ok(rel)
            })
            .collect()
    }

    /// Display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(v))?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.name)?;
            for (j, v) in a.vars.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var_name(v))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    fn triangle() -> Cq {
        Cq::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                Atom {
                    name: "R".into(),
                    vars: vs(&[0, 1]),
                },
                Atom {
                    name: "S".into(),
                    vars: vs(&[1, 2]),
                },
                Atom {
                    name: "T".into(),
                    vars: vs(&[0, 2]),
                },
            ],
            vs(&[0, 1, 2]),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_classification() {
        let q = triangle();
        assert!(q.is_full());
        assert!(!q.is_boolean());
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.bound_vars(), VarSet::EMPTY);
        assert_eq!(q.to_string(), "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)");
    }

    #[test]
    fn free_variable_validation() {
        let err = Cq::new(
            vec!["x".into(), "y".into()],
            vec![Atom {
                name: "R".into(),
                vars: vs(&[0]),
            }],
            vs(&[1]),
        )
        .unwrap_err();
        assert_eq!(err, CqError::UnboundFreeVariable("y".into()));
    }

    #[test]
    fn acyclicity() {
        // path R(a,b), S(b,c) is acyclic
        let path = Hypergraph {
            num_vars: 3,
            edges: vec![vs(&[0, 1]), vs(&[1, 2])],
        };
        assert!(path.is_acyclic());
        // triangle is cyclic
        assert!(!triangle().hypergraph().is_acyclic());
        // 4-cycle is cyclic
        let c4 = Hypergraph {
            num_vars: 4,
            edges: vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3]), vs(&[0, 3])],
        };
        assert!(!c4.is_acyclic());
        // triangle + covering edge is acyclic
        let covered = Hypergraph {
            num_vars: 3,
            edges: vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[0, 2]), vs(&[0, 1, 2])],
        };
        assert!(covered.is_acyclic());
        // star is acyclic
        let star = Hypergraph {
            num_vars: 4,
            edges: vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[0, 3])],
        };
        assert!(star.is_acyclic());
    }

    #[test]
    fn neighbors() {
        let h = triangle().hypergraph();
        assert_eq!(h.neighbors(Var(0)), vs(&[1, 2]));
    }

    #[test]
    fn bind_checks_schema() {
        use qec_relation::Relation;
        let q = triangle();
        let mut db = Database::new();
        db.insert(
            "R",
            Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 2]]),
        );
        db.insert(
            "S",
            Relation::from_rows(vec![Var(1), Var(2)], vec![vec![2, 3]]),
        );
        // T missing
        assert!(matches!(q.bind(&db), Err(CqError::MissingRelation(_))));
        // T with wrong schema
        db.insert(
            "T",
            Relation::from_rows(vec![Var(1), Var(2)], vec![vec![2, 3]]),
        );
        assert!(matches!(q.bind(&db), Err(CqError::SchemaMismatch { .. })));
        db.insert(
            "T",
            Relation::from_rows(vec![Var(0), Var(2)], vec![vec![1, 3]]),
        );
        assert_eq!(q.bind(&db).unwrap().len(), 3);
    }
}
