//! The query corpus used across tests, examples, and experiments.
//!
//! Each constructor returns a *full* CQ (every variable free); callers that
//! need projections or Boolean versions adjust `free`.

use qec_relation::{Var, VarSet};

use crate::{Atom, Cq};

fn vars(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn atom(name: impl Into<String>, vs: &[u32]) -> Atom {
    Atom {
        name: name.into(),
        vars: vs.iter().map(|&i| Var(i)).collect(),
    }
}

/// The triangle query `Q(a,b,c) :- R(a,b), S(b,c), T(a,c)` — the paper's
/// running example (Figures 1 and 2).
pub fn triangle() -> Cq {
    Cq::new(
        vec!["a".into(), "b".into(), "c".into()],
        vec![atom("R", &[0, 1]), atom("S", &[1, 2]), atom("T", &[0, 2])],
        VarSet::full(3),
    )
    .expect("triangle is well-formed")
}

/// The `k`-cycle query over variables `x0..x_{k-1}` with edges
/// `E_i(x_i, x_{i+1 mod k})`.
///
/// # Panics
/// Panics if `k < 3`.
pub fn k_cycle(k: usize) -> Cq {
    assert!(k >= 3, "cycles need at least 3 vertices");
    let atoms = (0..k)
        .map(|i| atom(format!("E{i}"), &[i as u32, ((i + 1) % k) as u32]))
        .collect();
    Cq::new(vars(k, "x"), atoms, VarSet::full(k as u32)).expect("cycle is well-formed")
}

/// The `k`-edge path query `E0(x0,x1), …, E_{k-1}(x_{k-1}, x_k)`.
///
/// # Panics
/// Panics if `k < 1`.
pub fn k_path(k: usize) -> Cq {
    assert!(k >= 1);
    let atoms = (0..k)
        .map(|i| atom(format!("E{i}"), &[i as u32, i as u32 + 1]))
        .collect();
    Cq::new(vars(k + 1, "x"), atoms, VarSet::full(k as u32 + 1)).expect("path is well-formed")
}

/// The `k`-leaf star query `E0(x0,x1), …, E_{k-1}(x0,x_k)` (centre `x0`).
///
/// # Panics
/// Panics if `k < 1`.
pub fn k_star(k: usize) -> Cq {
    assert!(k >= 1);
    let atoms = (0..k)
        .map(|i| atom(format!("E{i}"), &[0, i as u32 + 1]))
        .collect();
    Cq::new(vars(k + 1, "x"), atoms, VarSet::full(k as u32 + 1)).expect("star is well-formed")
}

/// The bowtie: two triangles sharing vertex `x0` (5 variables, 6 edges).
pub fn bowtie() -> Cq {
    let atoms = vec![
        atom("R0", &[0, 1]),
        atom("R1", &[1, 2]),
        atom("R2", &[0, 2]),
        atom("S0", &[0, 3]),
        atom("S1", &[3, 4]),
        atom("S2", &[0, 4]),
    ];
    Cq::new(vars(5, "x"), atoms, VarSet::full(5)).expect("bowtie is well-formed")
}

/// The Loomis–Whitney query `LW(n)`: `n` atoms, each over all variables
/// except one. `LW(3)` is the triangle.
///
/// # Panics
/// Panics if `n < 3`.
pub fn loomis_whitney(n: usize) -> Cq {
    assert!(n >= 3);
    let all: Vec<u32> = (0..n as u32).collect();
    let atoms = (0..n)
        .map(|skip| {
            let vs: Vec<u32> = all.iter().copied().filter(|&v| v != skip as u32).collect();
            atom(format!("R{skip}"), &vs)
        })
        .collect();
    Cq::new(vars(n, "x"), atoms, VarSet::full(n as u32)).expect("LW is well-formed")
}

/// A star whose centre is an edge: `F(x0, x1)` plus `k` petals
/// `P_i(x1, y_i)` — an acyclic "snowflake" used in the output-sensitive
/// experiments (its free-connex structure is interesting when only
/// `x0, x1` are free).
pub fn snowflake(k: usize) -> Cq {
    assert!(k >= 1);
    let mut names = vec!["x0".to_string(), "x1".to_string()];
    names.extend((0..k).map(|i| format!("y{i}")));
    let mut atoms = vec![atom("F", &[0, 1])];
    for i in 0..k {
        atoms.push(atom(format!("P{i}"), &[1, i as u32 + 2]));
    }
    Cq::new(names, atoms, VarSet::full(k as u32 + 2)).expect("snowflake is well-formed")
}

/// A star with every petal relation also holding the centre pair:
/// `R(x0, x1, x2)` covering edge plus binary petals — a query whose
/// hypergraph is acyclic with a non-trivial join tree.
pub fn full_star() -> Cq {
    let atoms = vec![
        atom("R", &[0, 1, 2]),
        atom("S", &[1, 3]),
        atom("T", &[2, 4]),
    ];
    Cq::new(vars(5, "x"), atoms, VarSet::full(5)).expect("full star is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shapes() {
        assert_eq!(triangle().atoms.len(), 3);
        assert_eq!(k_cycle(5).atoms.len(), 5);
        assert_eq!(k_cycle(5).num_vars(), 5);
        assert_eq!(k_path(4).num_vars(), 5);
        assert_eq!(k_star(6).atoms.len(), 6);
        assert_eq!(bowtie().num_vars(), 5);
        assert_eq!(loomis_whitney(4).atoms[0].vars.len(), 3);
        assert_eq!(snowflake(3).num_vars(), 5);
        assert!(k_path(3).hypergraph().is_acyclic());
        assert!(k_star(3).hypergraph().is_acyclic());
        assert!(snowflake(2).hypergraph().is_acyclic());
        assert!(full_star().hypergraph().is_acyclic());
        assert!(!k_cycle(4).hypergraph().is_acyclic());
        assert!(!bowtie().hypergraph().is_acyclic());
        assert!(!loomis_whitney(4).hypergraph().is_acyclic());
    }

    #[test]
    fn lw3_is_triangle_shaped() {
        let lw = loomis_whitney(3);
        let t = triangle();
        assert_eq!(
            lw.hypergraph()
                .edges
                .iter()
                .collect::<std::collections::BTreeSet<_>>(),
            t.hypergraph()
                .edges
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
}
