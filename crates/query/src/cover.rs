//! Fractional edge covers (the AGM bound's certificate).

use qec_bignum::Rat;
use qec_lp::{LpBuilder, LpError, Relation as LpRel};
use qec_relation::{Var, VarSet};

use crate::Hypergraph;

/// An optimal fractional edge cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeCover {
    /// Weight `u_F` per hyperedge, aligned with `Hypergraph::edges`.
    pub weights: Vec<Rat>,
    /// The cover number `ρ* = Σ u_F`.
    pub rho_star: Rat,
}

/// Why no fractional edge cover was produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// A target variable occurs in no hyperedge, so no cover exists.
    Uncoverable(Var),
    /// The LP solver failed (iteration limit, or an outcome that
    /// contradicts the covering-LP structure).
    Lp(LpError),
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::Uncoverable(v) => {
                write!(f, "variable {v} occurs in no hyperedge; no cover exists")
            }
            CoverError::Lp(e) => write!(f, "edge-cover LP failed: {e}"),
        }
    }
}

impl std::error::Error for CoverError {}

impl From<LpError> for CoverError {
    fn from(e: LpError) -> CoverError {
        CoverError::Lp(e)
    }
}

/// Minimum fractional edge cover of all variables of `h`.
///
/// Fails with [`CoverError::Uncoverable`] if some variable occurs in no
/// edge.
pub fn fractional_edge_cover(h: &Hypergraph) -> Result<EdgeCover, CoverError> {
    fractional_cover_of(h, h.all_vars())
}

/// Minimum fractional edge cover of the variable set `target` using the
/// edges of `h` (each edge may be used fractionally; covering requirement
/// `Σ_{F ∋ v} u_F ≥ 1` is imposed only for `v ∈ target`).
///
/// This is the bag-cost functional of the *fractional hypertree width*:
/// `fhtw = min over GHDs of max over bags of ρ*(bag)`.
pub fn fractional_cover_of(h: &Hypergraph, target: VarSet) -> Result<EdgeCover, CoverError> {
    let m = h.edges.len();
    let mut lp = LpBuilder::minimize(m);
    for (i, _) in h.edges.iter().enumerate() {
        lp.obj(i, Rat::one());
    }
    for v in target.iter() {
        let coeffs: Vec<(usize, Rat)> = h
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains(v))
            .map(|(i, _)| (i, Rat::one()))
            .collect();
        if coeffs.is_empty() {
            return Err(CoverError::Uncoverable(v));
        }
        lp.constraint(coeffs, LpRel::Ge, Rat::one());
    }
    // Covering LPs with non-empty coefficient rows are feasible and
    // bounded below by 0, so a non-optimal outcome is a solver failure
    // and surfaces as a typed error rather than a panic.
    let s = lp.solve_optimal()?;
    Ok(EdgeCover {
        weights: s.primal,
        rho_star: s.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{k_cycle, k_path, k_star, loomis_whitney, triangle};
    use qec_bignum::rat;
    use qec_relation::Var;

    #[test]
    fn triangle_rho_star_is_three_halves() {
        let c = fractional_edge_cover(&triangle().hypergraph()).unwrap();
        assert_eq!(c.rho_star, rat(3, 2));
        assert_eq!(c.weights, vec![rat(1, 2), rat(1, 2), rat(1, 2)]);
    }

    #[test]
    fn even_cycle_rho_star() {
        // ρ*(C_k) = k/2
        for k in [4u32, 5, 6, 7] {
            let c = fractional_edge_cover(&k_cycle(k as usize).hypergraph()).unwrap();
            assert_eq!(c.rho_star, rat(k as i64, 2), "cycle length {k}");
        }
    }

    #[test]
    fn path_rho_star_is_ceil_half() {
        // P_k with k edges over k+1 vars: ρ* = ⌈(k+1)/2⌉ via alternating edges
        for k in [2usize, 3, 4, 5] {
            let c = fractional_edge_cover(&k_path(k).hypergraph()).unwrap();
            assert_eq!(c.rho_star, rat(((k + 2) / 2) as i64, 1), "path length {k}");
        }
    }

    #[test]
    fn star_rho_star_is_leaf_count() {
        // star with k leaves: every leaf needs its own edge with weight 1
        let c = fractional_edge_cover(&k_star(4).hypergraph()).unwrap();
        assert_eq!(c.rho_star, rat(4, 1));
    }

    #[test]
    fn loomis_whitney_rho_star() {
        // LW(n): n edges, each of size n-1; ρ* = n/(n-1)
        for n in [3usize, 4, 5] {
            let c = fractional_edge_cover(&loomis_whitney(n).hypergraph()).unwrap();
            assert_eq!(c.rho_star, rat(n as i64, (n - 1) as i64), "LW({n})");
        }
    }

    #[test]
    fn uncoverable_variable_yields_typed_error() {
        let h = Hypergraph {
            num_vars: 2,
            edges: vec![VarSet::singleton(Var(0))],
        };
        assert_eq!(
            fractional_edge_cover(&h).unwrap_err(),
            CoverError::Uncoverable(Var(1))
        );
    }

    #[test]
    fn subset_cover_is_cheaper() {
        let h = triangle().hypergraph();
        let sub = fractional_cover_of(&h, VarSet::from(vec![Var(0), Var(1)])).unwrap();
        assert_eq!(sub.rho_star, Rat::one()); // single edge covers {A,B}
    }
}
