//! A small datalog-style parser for conjunctive queries and (recursive)
//! Datalog programs.
//!
//! CQ grammar (whitespace-insensitive):
//!
//! ```text
//! query  := head ":-" body "."?
//! head   := ident "(" varlist? ")"
//! body   := atom ("," atom)*
//! atom   := ident "(" varlist ")"
//! varlist:= ident ("," ident)*
//! ```
//!
//! Example: `Q(a, c) :- R(a, b), S(b, c)` — `b` is existentially
//! quantified because it does not appear in the head.
//!
//! Program grammar ([`parse_program`]) — a sequence of rules, possibly
//! recursive, with optional per-rule semiring annotations and annotated
//! EDB atoms:
//!
//! ```text
//! program := rule+
//! rule    := head ":-" atom ("," atom)* ("@" semiring)? "."
//! atom    := ident "*"? "(" varlist ")"
//! semiring:= "bool" | "nat" | "min" | "max"
//! ```
//!
//! `edge*(x, y)` marks an annotated EDB atom: its stored relation
//! carries one extra annotation column after the listed key variables.
//! The final rule's `.` may be omitted.

use qec_relation::{Var, VarSet};

use crate::{Atom, Cq, CqError};

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
    At,
    Star,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn next(&mut self) -> Result<Tok, CqError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::Eof);
        }
        let c = bytes[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'.' => {
                self.pos += 1;
                Ok(Tok::Dot)
            }
            b'@' => {
                self.pos += 1;
                Ok(Tok::At)
            }
            b'*' => {
                self.pos += 1;
                Ok(Tok::Star)
            }
            b':' => {
                if bytes.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Ok(Tok::Turnstile)
                } else {
                    Err(CqError::Parse(format!(
                        "expected ':-' at byte {}",
                        self.pos
                    )))
                }
            }
            _ if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            _ => Err(CqError::Parse(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Tok>,
}

impl<'a> Parser<'a> {
    fn peek(&mut self) -> Result<&Tok, CqError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next()?);
        }
        // Just filled above; the fallback keeps this path panic-free.
        Ok(self.peeked.as_ref().unwrap_or(&Tok::Eof))
    }

    fn bump(&mut self) -> Result<Tok, CqError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), CqError> {
        let got = self.bump()?;
        if got == want {
            Ok(())
        } else {
            Err(CqError::Parse(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, CqError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            got => Err(CqError::Parse(format!(
                "expected identifier, found {got:?}"
            ))),
        }
    }

    fn varlist(&mut self) -> Result<Vec<String>, CqError> {
        let mut vars = Vec::new();
        if self.peek()? == &Tok::RParen {
            return Ok(vars);
        }
        loop {
            vars.push(self.ident()?);
            if self.peek()? == &Tok::Comma {
                self.bump()?;
            } else {
                return Ok(vars);
            }
        }
    }
}

/// Parses a conjunctive query from datalog-style syntax.
///
/// Variable indices are assigned in order of first occurrence, head first —
/// so the head variables are `Var(0..k)`, matching the paper's convention
/// that `A_1..A_k` are free.
///
/// ```
/// use qec_query::parse_cq;
/// let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
/// assert_eq!(q.num_vars(), 3);
/// assert_eq!(q.free.len(), 2);
/// assert!(!q.is_full());
/// assert!(q.hypergraph().is_acyclic());
/// ```
pub fn parse_cq(src: &str) -> Result<Cq, CqError> {
    let mut p = Parser {
        lexer: Lexer::new(src),
        peeked: None,
    };

    let _head_name = p.ident()?;
    p.expect(Tok::LParen)?;
    let head_vars = p.varlist()?;
    p.expect(Tok::RParen)?;
    p.expect(Tok::Turnstile)?;

    let mut var_names: Vec<String> = Vec::new();
    let var_of = |name: &str, var_names: &mut Vec<String>| -> Result<Var, CqError> {
        if let Some(i) = var_names.iter().position(|n| n == name) {
            return Ok(Var(i as u32));
        }
        if var_names.len() >= 60 {
            // variables 60–63 are reserved for internal rank/count/
            // annotation columns in the circuit compilers
            return Err(CqError::Parse("more than 60 variables".into()));
        }
        var_names.push(name.to_string());
        Ok(Var(var_names.len() as u32 - 1))
    };

    let mut free = VarSet::EMPTY;
    let mut head_seen = std::collections::HashSet::new();
    for name in &head_vars {
        if !head_seen.insert(name.clone()) {
            return Err(CqError::Parse(format!("repeated head variable {name}")));
        }
        free = free.with(var_of(name, &mut var_names)?);
    }

    let mut atoms = Vec::new();
    loop {
        let name = p.ident()?;
        p.expect(Tok::LParen)?;
        let vars = p.varlist()?;
        p.expect(Tok::RParen)?;
        if vars.is_empty() {
            return Err(CqError::MalformedAtom(name));
        }
        let mut set = VarSet::EMPTY;
        for v in &vars {
            let var = var_of(v, &mut var_names)?;
            if set.contains(var) {
                return Err(CqError::MalformedAtom(format!(
                    "{name} repeats variable {v}"
                )));
            }
            set = set.with(var);
        }
        atoms.push(Atom { name, vars: set });
        match p.bump()? {
            Tok::Comma => continue,
            Tok::Dot => {
                p.expect(Tok::Eof)?;
                break;
            }
            Tok::Eof => break,
            got => {
                return Err(CqError::Parse(format!(
                    "expected ',' or end, found {got:?}"
                )))
            }
        }
    }

    Cq::new(var_names, atoms, free)
}

/// The semiring named by a rule annotation (`@bool` / `@nat` / `@min` /
/// `@max`). The query layer only records the name; `qec-core` owns the
/// arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemiringAnnot {
    /// `@bool` — Boolean provenance (the default when unannotated).
    Boolean,
    /// `@nat` — counting.
    Natural,
    /// `@min` — min-tropical (shortest derivations).
    MinTropical,
    /// `@max` — max-tropical (heaviest derivations).
    MaxTropical,
}

impl SemiringAnnot {
    fn from_name(name: &str) -> Option<SemiringAnnot> {
        match name {
            "bool" => Some(SemiringAnnot::Boolean),
            "nat" => Some(SemiringAnnot::Natural),
            "min" => Some(SemiringAnnot::MinTropical),
            "max" => Some(SemiringAnnot::MaxTropical),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SemiringAnnot::Boolean => "bool",
            SemiringAnnot::Natural => "nat",
            SemiringAnnot::MinTropical => "min",
            SemiringAnnot::MaxTropical => "max",
        }
    }
}

/// One atom of a Datalog rule: a predicate applied to named variables,
/// optionally `*`-marked as carrying a stored annotation column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramAtom {
    /// Predicate name.
    pub name: String,
    /// Argument variable names, positionally.
    pub vars: Vec<String>,
    /// `true` for `name*(...)`: the stored EDB relation has one extra
    /// annotation column after the key columns.
    pub annotated: bool,
}

/// One rule `head :- body [@semiring].` of a Datalog program. Variable
/// scope is per-rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramRule {
    /// Head atom (never `*`-annotated; IDB annotations are implicit).
    pub head: ProgramAtom,
    /// Body atoms, in source order.
    pub body: Vec<ProgramAtom>,
    /// The rule's semiring annotation, if written.
    pub semiring: Option<SemiringAnnot>,
}

/// A parsed (possibly recursive) Datalog program: rules in source order.
/// Predicates that appear in some head are IDBs; the rest are EDBs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<ProgramRule>,
}

impl Program {
    /// Predicate names appearing in some head (IDB), in first-head order.
    pub fn idb_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.name.as_str()) {
                out.push(&r.head.name);
            }
        }
        out
    }

    /// Alpha-canonical source text: per-rule variables renamed to
    /// `v0, v1, ...` in order of first occurrence (head first), rules in
    /// source order, one trailing `.` each. Two programs differing only
    /// in variable spelling or whitespace canonicalize identically —
    /// this is the plan-cache key text for served Datalog programs.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn pos_of(n: &str, order: &mut Vec<String>) -> usize {
            if let Some(i) = order.iter().position(|x| x == n) {
                i
            } else {
                order.push(n.to_string());
                order.len() - 1
            }
        }
        fn fmt_atom(a: &ProgramAtom, order: &mut Vec<String>) -> String {
            let vars: Vec<String> = a
                .vars
                .iter()
                .map(|v| format!("v{}", pos_of(v, order)))
                .collect();
            format!(
                "{}{}({})",
                a.name,
                if a.annotated { "*" } else { "" },
                vars.join(", ")
            )
        }
        for r in &self.rules {
            let mut order: Vec<String> = Vec::new();
            let head = fmt_atom(&r.head, &mut order);
            let body: Vec<String> = r.body.iter().map(|a| fmt_atom(a, &mut order)).collect();
            let _ = write!(out, "{} :- {}", head, body.join(", "));
            if let Some(sr) = r.semiring {
                let _ = write!(out, " @{}", sr.name());
            }
            out.push_str(". ");
        }
        out.trim_end().to_string()
    }
}

/// Parses a recursive Datalog program; see the module docs for the
/// grammar. Validates, per rule, that atoms are non-empty, no atom
/// repeats a variable, every head variable occurs in the body (range
/// restriction), and at most 48 distinct variables appear (columns 48+
/// are reserved for the fixpoint compiler's annotation scratch space);
/// and, across rules, that each predicate keeps one arity, that `*`
/// marks are consistent per predicate, and that IDB predicates (those
/// appearing in a head) are never `*`-marked — their annotations are
/// implicit in the semiring.
///
/// ```
/// use qec_query::parse_program;
/// let p = parse_program(
///     "path(x, y) :- edge(x, y). path(x, z) :- path(x, y), edge(y, z).",
/// )
/// .unwrap();
/// assert_eq!(p.rules.len(), 2);
/// assert_eq!(p.idb_names(), vec!["path"]);
/// ```
pub fn parse_program(src: &str) -> Result<Program, CqError> {
    let mut p = Parser {
        lexer: Lexer::new(src),
        peeked: None,
    };
    let mut rules = Vec::new();
    loop {
        if p.peek()? == &Tok::Eof {
            break;
        }
        rules.push(parse_rule(&mut p)?);
    }
    if rules.is_empty() {
        return Err(CqError::Parse("empty program".into()));
    }
    validate_program(&rules)?;
    Ok(Program { rules })
}

fn parse_atom(p: &mut Parser<'_>) -> Result<ProgramAtom, CqError> {
    let name = p.ident()?;
    let annotated = if p.peek()? == &Tok::Star {
        p.bump()?;
        true
    } else {
        false
    };
    p.expect(Tok::LParen)?;
    let vars = p.varlist()?;
    p.expect(Tok::RParen)?;
    if vars.is_empty() {
        return Err(CqError::MalformedAtom(name));
    }
    let mut seen = std::collections::HashSet::new();
    for v in &vars {
        if !seen.insert(v.clone()) {
            return Err(CqError::MalformedAtom(format!(
                "{name} repeats variable {v}"
            )));
        }
    }
    Ok(ProgramAtom {
        name,
        vars,
        annotated,
    })
}

fn parse_rule(p: &mut Parser<'_>) -> Result<ProgramRule, CqError> {
    let head = parse_atom(p)?;
    if head.annotated {
        return Err(CqError::Parse(format!(
            "head atom {} cannot be '*'-annotated (IDB annotations are implicit)",
            head.name
        )));
    }
    p.expect(Tok::Turnstile)?;
    let mut body = vec![parse_atom(p)?];
    while p.peek()? == &Tok::Comma {
        p.bump()?;
        body.push(parse_atom(p)?);
    }
    let semiring = if p.peek()? == &Tok::At {
        p.bump()?;
        let name = p.ident()?;
        Some(SemiringAnnot::from_name(&name).ok_or_else(|| {
            CqError::Parse(format!(
                "unknown semiring annotation @{name} (expected bool, nat, min, or max)"
            ))
        })?)
    } else {
        None
    };
    match p.bump()? {
        Tok::Dot => {}
        Tok::Eof => {
            // final '.' is optional, but only at the very end
            p.peeked = Some(Tok::Eof);
        }
        got => {
            return Err(CqError::Parse(format!(
                "expected '.' after rule, found {got:?}"
            )))
        }
    }
    // range restriction + per-rule variable budget
    let mut rule_vars: Vec<&String> = Vec::new();
    for a in std::iter::once(&head).chain(body.iter()) {
        for v in &a.vars {
            if !rule_vars.contains(&v) {
                rule_vars.push(v);
            }
        }
    }
    if rule_vars.len() > 48 {
        return Err(CqError::Parse(format!(
            "rule {} uses {} variables; at most 48 are supported (columns 48+ \
             are reserved for annotation scratch space)",
            head.name,
            rule_vars.len()
        )));
    }
    for v in &head.vars {
        if !body.iter().any(|a| a.vars.contains(v)) {
            return Err(CqError::Parse(format!(
                "head variable {v} of {} does not occur in the rule body",
                head.name
            )));
        }
    }
    Ok(ProgramRule {
        head,
        body,
        semiring,
    })
}

fn validate_program(rules: &[ProgramRule]) -> Result<(), CqError> {
    use std::collections::HashMap;
    let idb: std::collections::HashSet<&str> = rules.iter().map(|r| r.head.name.as_str()).collect();
    let mut arity: HashMap<&str, usize> = HashMap::new();
    let mut starred: HashMap<&str, bool> = HashMap::new();
    for r in rules {
        for a in std::iter::once(&r.head).chain(r.body.iter()) {
            match arity.entry(a.name.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != a.vars.len() {
                        return Err(CqError::Parse(format!(
                            "predicate {} used with arities {} and {}",
                            a.name,
                            e.get(),
                            a.vars.len()
                        )));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(a.vars.len());
                }
            }
            if a.annotated && idb.contains(a.name.as_str()) {
                return Err(CqError::Parse(format!(
                    "IDB predicate {} cannot be '*'-annotated",
                    a.name
                )));
            }
            match starred.entry(a.name.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // heads are never starred; only compare body uses
                    if !idb.contains(a.name.as_str()) && *e.get() != a.annotated {
                        return Err(CqError::Parse(format!(
                            "predicate {} is '*'-annotated in some atoms but not others",
                            a.name
                        )));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    if !idb.contains(a.name.as_str()) {
                        e.insert(a.annotated);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triangle() {
        let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c).").unwrap();
        assert_eq!(q.num_vars(), 3);
        assert!(q.is_full());
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.to_string(), "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)");
    }

    #[test]
    fn parse_projection_assigns_head_vars_first() {
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        // head vars first: a = Var(0), c = Var(1), then b = Var(2)
        assert_eq!(q.var_names, vec!["a", "c", "b"]);
        assert_eq!(q.free, VarSet::from(vec![Var(0), Var(1)]));
        assert_eq!(q.bound_vars(), VarSet::singleton(Var(2)));
    }

    #[test]
    fn parse_boolean_query() {
        let q = parse_cq("Q() :- R(x, y), S(y, x)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_cq("Q(a) :- ").is_err());
        assert!(parse_cq("Q(a) :- R()").is_err());
        assert!(parse_cq("Q(a, a) :- R(a)").is_err());
        assert!(parse_cq("Q(a) :- R(a, a)").is_err());
        assert!(parse_cq("Q(a) : R(a)").is_err());
        assert!(parse_cq("Q(z) :- R(a)").is_err()); // unbound free var
        assert!(parse_cq("Q(a) :- R(a) extra").is_err());
        assert!(parse_cq("Q(a) :- R(a)!").is_err());
    }

    #[test]
    fn parse_unicode_rejected_cleanly() {
        assert!(parse_cq("Q(α) :- R(α)").is_err());
    }

    #[test]
    fn parse_transitive_closure_program() {
        let p = parse_program("path(x, y) :- edge(x, y). path(x, z) :- path(x, y), edge(y, z).")
            .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_names(), vec!["path"]);
        assert!(p.rules.iter().all(|r| r.semiring.is_none()));
        assert_eq!(p.rules[1].body[0].name, "path");
    }

    #[test]
    fn parse_annotated_shortest_path_program() {
        let p = parse_program(
            "dist(x, y) :- edge*(x, y) @min.\n\
             dist(x, z) :- dist(x, y), edge*(y, z) @min.",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body[0].annotated);
        assert_eq!(p.rules[0].semiring, Some(SemiringAnnot::MinTropical));
        // final '.' optional
        let q = parse_program("reach(y) :- source(y) @bool").unwrap();
        assert_eq!(q.rules[0].semiring, Some(SemiringAnnot::Boolean));
    }

    #[test]
    fn canonical_text_is_alpha_invariant() {
        let a = parse_program("path(x, y) :- edge(x, y). path(x, z) :- path(x, y), edge(y, z).")
            .unwrap();
        let b = parse_program(
            "path(src, dst)   :- edge(src, dst).\n\
             path(src, far)   :- path(src, mid), edge(mid, far).",
        )
        .unwrap();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(
            a.canonical_text(),
            "path(v0, v1) :- edge(v0, v1). path(v0, v1) :- path(v0, v2), edge(v2, v1)."
        );
    }

    #[test]
    fn program_parse_errors() {
        // facts (empty bodies) are not supported
        assert!(parse_program("path(x, y) :- .").is_err());
        // head variable missing from the body (range restriction)
        assert!(parse_program("p(x, z) :- e(x, y)").is_err());
        // inconsistent arity
        assert!(parse_program("p(x) :- e(x, y). p(x, y) :- e(x, y).").is_err());
        // starred head
        assert!(parse_program("p*(x, y) :- e(x, y)").is_err());
        // starred IDB in a body
        assert!(parse_program("p(x, y) :- e(x, y). q(x, z) :- p*(x, z).").is_err());
        // inconsistent star marks on an EDB
        assert!(parse_program("p(x, y) :- e*(x, y). q(x, y) :- e(x, y).").is_err());
        // unknown semiring annotation
        assert!(parse_program("p(x, y) :- e(x, y) @tropical.").is_err());
        // repeated variable within an atom
        assert!(parse_program("p(x) :- e(x, x)").is_err());
        // empty program
        assert!(parse_program("").is_err());
        // trailing garbage
        assert!(parse_program("p(x, y) :- e(x, y). extra").is_err());
    }

    #[test]
    fn cq_parser_rejects_program_tokens() {
        // '*' and '@' lex now, but stay invalid in plain CQ syntax
        assert!(parse_cq("Q(a) :- R*(a, b)").is_err());
        assert!(parse_cq("Q(a) :- R(a, b) @min").is_err());
    }
}
