//! A small datalog-style parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := head ":-" body "."?
//! head   := ident "(" varlist? ")"
//! body   := atom ("," atom)*
//! atom   := ident "(" varlist ")"
//! varlist:= ident ("," ident)*
//! ```
//!
//! Example: `Q(a, c) :- R(a, b), S(b, c)` — `b` is existentially
//! quantified because it does not appear in the head.

use qec_relation::{Var, VarSet};

use crate::{Atom, Cq, CqError};

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Dot,
    Eof,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn next(&mut self) -> Result<Tok, CqError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::Eof);
        }
        let c = bytes[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b'.' => {
                self.pos += 1;
                Ok(Tok::Dot)
            }
            b':' => {
                if bytes.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Ok(Tok::Turnstile)
                } else {
                    Err(CqError::Parse(format!(
                        "expected ':-' at byte {}",
                        self.pos
                    )))
                }
            }
            _ if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            _ => Err(CqError::Parse(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Tok>,
}

impl<'a> Parser<'a> {
    fn peek(&mut self) -> Result<&Tok, CqError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next()?);
        }
        // Just filled above; the fallback keeps this path panic-free.
        Ok(self.peeked.as_ref().unwrap_or(&Tok::Eof))
    }

    fn bump(&mut self) -> Result<Tok, CqError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), CqError> {
        let got = self.bump()?;
        if got == want {
            Ok(())
        } else {
            Err(CqError::Parse(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, CqError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            got => Err(CqError::Parse(format!(
                "expected identifier, found {got:?}"
            ))),
        }
    }

    fn varlist(&mut self) -> Result<Vec<String>, CqError> {
        let mut vars = Vec::new();
        if self.peek()? == &Tok::RParen {
            return Ok(vars);
        }
        loop {
            vars.push(self.ident()?);
            if self.peek()? == &Tok::Comma {
                self.bump()?;
            } else {
                return Ok(vars);
            }
        }
    }
}

/// Parses a conjunctive query from datalog-style syntax.
///
/// Variable indices are assigned in order of first occurrence, head first —
/// so the head variables are `Var(0..k)`, matching the paper's convention
/// that `A_1..A_k` are free.
///
/// ```
/// use qec_query::parse_cq;
/// let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
/// assert_eq!(q.num_vars(), 3);
/// assert_eq!(q.free.len(), 2);
/// assert!(!q.is_full());
/// assert!(q.hypergraph().is_acyclic());
/// ```
pub fn parse_cq(src: &str) -> Result<Cq, CqError> {
    let mut p = Parser {
        lexer: Lexer::new(src),
        peeked: None,
    };

    let _head_name = p.ident()?;
    p.expect(Tok::LParen)?;
    let head_vars = p.varlist()?;
    p.expect(Tok::RParen)?;
    p.expect(Tok::Turnstile)?;

    let mut var_names: Vec<String> = Vec::new();
    let var_of = |name: &str, var_names: &mut Vec<String>| -> Result<Var, CqError> {
        if let Some(i) = var_names.iter().position(|n| n == name) {
            return Ok(Var(i as u32));
        }
        if var_names.len() >= 60 {
            // variables 60–63 are reserved for internal rank/count/
            // annotation columns in the circuit compilers
            return Err(CqError::Parse("more than 60 variables".into()));
        }
        var_names.push(name.to_string());
        Ok(Var(var_names.len() as u32 - 1))
    };

    let mut free = VarSet::EMPTY;
    let mut head_seen = std::collections::HashSet::new();
    for name in &head_vars {
        if !head_seen.insert(name.clone()) {
            return Err(CqError::Parse(format!("repeated head variable {name}")));
        }
        free = free.with(var_of(name, &mut var_names)?);
    }

    let mut atoms = Vec::new();
    loop {
        let name = p.ident()?;
        p.expect(Tok::LParen)?;
        let vars = p.varlist()?;
        p.expect(Tok::RParen)?;
        if vars.is_empty() {
            return Err(CqError::MalformedAtom(name));
        }
        let mut set = VarSet::EMPTY;
        for v in &vars {
            let var = var_of(v, &mut var_names)?;
            if set.contains(var) {
                return Err(CqError::MalformedAtom(format!(
                    "{name} repeats variable {v}"
                )));
            }
            set = set.with(var);
        }
        atoms.push(Atom { name, vars: set });
        match p.bump()? {
            Tok::Comma => continue,
            Tok::Dot => {
                p.expect(Tok::Eof)?;
                break;
            }
            Tok::Eof => break,
            got => {
                return Err(CqError::Parse(format!(
                    "expected ',' or end, found {got:?}"
                )))
            }
        }
    }

    Cq::new(var_names, atoms, free)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triangle() {
        let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c).").unwrap();
        assert_eq!(q.num_vars(), 3);
        assert!(q.is_full());
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.to_string(), "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)");
    }

    #[test]
    fn parse_projection_assigns_head_vars_first() {
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        // head vars first: a = Var(0), c = Var(1), then b = Var(2)
        assert_eq!(q.var_names, vec!["a", "c", "b"]);
        assert_eq!(q.free, VarSet::from(vec![Var(0), Var(1)]));
        assert_eq!(q.bound_vars(), VarSet::singleton(Var(2)));
    }

    #[test]
    fn parse_boolean_query() {
        let q = parse_cq("Q() :- R(x, y), S(y, x)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_cq("Q(a) :- ").is_err());
        assert!(parse_cq("Q(a) :- R()").is_err());
        assert!(parse_cq("Q(a, a) :- R(a)").is_err());
        assert!(parse_cq("Q(a) :- R(a, a)").is_err());
        assert!(parse_cq("Q(a) : R(a)").is_err());
        assert!(parse_cq("Q(z) :- R(a)").is_err()); // unbound free var
        assert!(parse_cq("Q(a) :- R(a) extra").is_err());
        assert!(parse_cq("Q(a) :- R(a)!").is_err());
    }

    #[test]
    fn parse_unicode_rejected_cleanly() {
        assert!(parse_cq("Q(α) :- R(α)").is_err());
    }
}
