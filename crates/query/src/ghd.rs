//! Generalized hypertree decompositions (Def. 1 of the paper).

use std::collections::BTreeSet;

use qec_bignum::Rat;
use qec_relation::{Var, VarSet};

use crate::Hypergraph;

/// One node of a GHD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhdNode {
    /// The bag `χ(t)`.
    pub bag: VarSet,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
}

/// A generalized hypertree decomposition `(T, χ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ghd {
    /// Nodes; `nodes[root]` is the root.
    pub nodes: Vec<GhdNode>,
    /// Root node index.
    pub root: usize,
}

impl Ghd {
    /// Checks Def. 1: every hyperedge inside some bag, and for each
    /// variable the nodes whose bags contain it form a connected subtree.
    pub fn is_valid(&self, h: &Hypergraph) -> bool {
        // edge coverage
        for e in &h.edges {
            if !self.nodes.iter().any(|n| e.is_subset(n.bag)) {
                return false;
            }
        }
        // running intersection: for each var, the occurrence set must be
        // connected in T
        for v in h.all_vars().iter() {
            let occ: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].bag.contains(v))
                .collect();
            if occ.is_empty() {
                continue;
            }
            // BFS within occurrence-induced subgraph
            let inset: BTreeSet<usize> = occ.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut stack = vec![occ[0]];
            while let Some(i) = stack.pop() {
                if !seen.insert(i) {
                    continue;
                }
                let n = &self.nodes[i];
                let mut adj: Vec<usize> = n.children.clone();
                if let Some(p) = n.parent {
                    adj.push(p);
                }
                for j in adj {
                    if inset.contains(&j) && !seen.contains(&j) {
                        stack.push(j);
                    }
                }
            }
            if seen.len() != occ.len() {
                return false;
            }
        }
        true
    }

    /// Checks free-connexity: some connected set of nodes has bag-union
    /// exactly `free` (trivially true for `free = ∅`).
    pub fn is_free_connex(&self, free: VarSet) -> bool {
        if free.is_empty() {
            return true;
        }
        // candidate nodes: bags entirely inside `free`
        let cand: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].bag.is_subset(free))
            .collect();
        if cand.is_empty() {
            return false;
        }
        let inset: BTreeSet<usize> = cand.iter().copied().collect();
        let mut remaining: BTreeSet<usize> = inset.clone();
        while let Some(&start) = remaining.iter().next() {
            let mut seen = BTreeSet::new();
            let mut stack = vec![start];
            let mut union = VarSet::EMPTY;
            while let Some(i) = stack.pop() {
                if !seen.insert(i) {
                    continue;
                }
                union = union.union(self.nodes[i].bag);
                let n = &self.nodes[i];
                let mut adj: Vec<usize> = n.children.clone();
                if let Some(p) = n.parent {
                    adj.push(p);
                }
                for j in adj {
                    if inset.contains(&j) && !seen.contains(&j) {
                        stack.push(j);
                    }
                }
            }
            if union == free {
                return true;
            }
            for i in &seen {
                remaining.remove(i);
            }
        }
        false
    }

    /// Max bag cost under a caller-supplied cost functional. With
    /// `cost = ρ*(bag)` this is the fractional hypertree width of this
    /// decomposition; with the degree-aware polymatroid bound it is the
    /// `da-fhtw` functional of Eq. (6).
    pub fn width_by(&self, mut cost: impl FnMut(VarSet) -> Rat) -> Rat {
        let mut w = Rat::zero();
        for n in &self.nodes {
            w = w.max(cost(n.bag));
        }
        w
    }

    /// Node indices in bottom-up order (every node after all its children).
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // iterative post-order from the root
        let mut stack = vec![(self.root, false)];
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                order.push(i);
            } else {
                stack.push((i, true));
                for &c in &self.nodes[i].children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The distinct bags, sorted.
    pub fn bags(&self) -> Vec<VarSet> {
        let mut b: Vec<VarSet> = self.nodes.iter().map(|n| n.bag).collect();
        b.sort();
        b.dedup();
        b
    }

    /// Canonical signature for deduplication: sorted bags plus sorted
    /// parent-child bag pairs.
    fn signature(&self) -> (Vec<VarSet>, Vec<(VarSet, VarSet)>) {
        let bags = self.bags();
        let mut edges: Vec<(VarSet, VarSet)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.parent.map(|p| {
                    let (a, b) = (self.nodes[p].bag, self.nodes[i].bag);
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
            })
            .collect();
        edges.sort();
        edges.dedup();
        (bags, edges)
    }

    /// Builds a GHD from a variable elimination order (the classical
    /// triangulation construction). Bags are the elimination cliques;
    /// node `i` corresponds to `order[i]`, its parent is the node of the
    /// earliest variable eliminated after it that appears in its bag.
    pub fn from_elimination_order(h: &Hypergraph, order: &[Var]) -> Ghd {
        assert_eq!(
            order.len() as u32,
            h.num_vars,
            "order must cover all variables"
        );
        let mut current: Vec<VarSet> = h.edges.clone();
        if current.is_empty() {
            current.push(VarSet::EMPTY);
        }
        let mut bags: Vec<VarSet> = Vec::with_capacity(order.len());
        for &v in order {
            let mut bag = VarSet::singleton(v);
            let mut rest: Vec<VarSet> = Vec::with_capacity(current.len());
            for e in current.drain(..) {
                if e.contains(v) {
                    bag = bag.union(e);
                } else {
                    rest.push(e);
                }
            }
            let residual = bag.minus(VarSet::singleton(v));
            if !residual.is_empty() {
                rest.push(residual);
            }
            current = rest;
            bags.push(bag);
        }
        // parent of node i = node of the earliest-later-eliminated variable
        // in bag_i \ {order[i]}
        let pos_of = |v: Var| order.iter().position(|&o| o == v).expect("var in order");
        let mut nodes: Vec<GhdNode> = bags
            .iter()
            .map(|&bag| GhdNode {
                bag,
                parent: None,
                children: Vec::new(),
            })
            .collect();
        let root = nodes.len() - 1;
        for i in 0..nodes.len() {
            let v = order[i];
            let later = bags[i]
                .minus(VarSet::singleton(v))
                .iter()
                .map(pos_of)
                .filter(|&p| p > i)
                .min();
            if let Some(p) = later {
                nodes[i].parent = Some(p);
                nodes[p].children.push(i);
            } else if i != root {
                nodes[i].parent = Some(root);
                nodes[root].children.push(i);
            }
        }
        Ghd { nodes, root }
    }
}

fn permutations<T: Copy>(items: &[T]) -> Vec<Vec<T>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest: Vec<T> = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Enumerates distinct GHDs of `h` via elimination orders, restricted to
/// orders that eliminate bound variables before free ones. Every returned
/// GHD is valid and free-connex with respect to `free`.
///
/// `limit` caps the number of *orders tried* (the query size is a
/// constant, but `n!` still deserves a seatbelt). Results are deduplicated
/// by bag structure.
pub fn enumerate_ghds(h: &Hypergraph, free: VarSet, limit: usize) -> Vec<Ghd> {
    let bound: Vec<Var> = h.all_vars().minus(free).to_vec();
    let free_vars: Vec<Var> = free.to_vec();
    let mut out: Vec<Ghd> = Vec::new();
    let mut seen = BTreeSet::new();
    let mut tried = 0usize;
    'outer: for bp in permutations(&bound) {
        for fp in permutations(&free_vars) {
            if tried >= limit {
                break 'outer;
            }
            tried += 1;
            let mut order = bp.clone();
            order.extend(fp.iter().copied());
            let g = Ghd::from_elimination_order(h, &order);
            debug_assert!(g.is_valid(h), "elimination GHD must be valid");
            debug_assert!(
                g.is_free_connex(free),
                "bound-first elimination GHD must be free-connex"
            );
            if seen.insert(g.signature()) {
                out.push(g);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractional_cover_of;
    use crate::{k_cycle, k_path, snowflake, triangle};
    use qec_bignum::rat;

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    #[test]
    fn elimination_ghd_for_triangle_is_single_bag_tree() {
        let h = triangle().hypergraph();
        let g = Ghd::from_elimination_order(&h, &[Var(0), Var(1), Var(2)]);
        assert!(g.is_valid(&h));
        // eliminating A merges AB and AC into bag ABC
        assert!(g.nodes.iter().any(|n| n.bag == VarSet::full(3)));
    }

    #[test]
    fn path_ghd_has_width_one() {
        let q = k_path(3);
        let h = q.hypergraph();
        let g = Ghd::from_elimination_order(&h, &[Var(0), Var(3), Var(1), Var(2)]);
        assert!(g.is_valid(&h));
        let w = g.width_by(|bag| fractional_cover_of(&h, bag).unwrap().rho_star);
        assert_eq!(w, rat(1, 1));
    }

    #[test]
    fn cycle4_fhtw_is_two_ish() {
        // fhtw(C4) = 2 over elimination-order GHDs
        let q = k_cycle(4);
        let h = q.hypergraph();
        let ghds = enumerate_ghds(&h, h.all_vars(), 10_000);
        assert!(!ghds.is_empty());
        let best = ghds
            .iter()
            .map(|g| g.width_by(|bag| fractional_cover_of(&h, bag).unwrap().rho_star))
            .min()
            .unwrap();
        assert_eq!(best, rat(2, 1));
    }

    #[test]
    fn bottom_up_respects_children() {
        let h = k_path(4).hypergraph();
        let g = Ghd::from_elimination_order(&h, &(0..5).map(Var).collect::<Vec<_>>());
        let order = g.bottom_up();
        assert_eq!(order.len(), g.nodes.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (rank, &i) in order.iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for (i, n) in g.nodes.iter().enumerate() {
            for &c in &n.children {
                assert!(pos[c] < pos[i], "child {c} must precede parent {i}");
            }
        }
        assert_eq!(*order.last().unwrap(), g.root);
    }

    #[test]
    fn free_connex_detection() {
        // Q(x0, x2) over path x0-x1-x2: eliminating bound x1 first gives a
        // free-connex GHD; eliminating it last does not (bag {x0,x1,x2}
        // never has a pure-free connected cover... it does not even have a
        // node with bag ⊆ {x0, x2} covering both).
        let h = k_path(2).hypergraph();
        let free = vs(&[0, 2]);
        let good = Ghd::from_elimination_order(&h, &[Var(1), Var(0), Var(2)]);
        assert!(good.is_valid(&h));
        assert!(good.is_free_connex(free));
        let bad = Ghd::from_elimination_order(&h, &[Var(0), Var(2), Var(1)]);
        assert!(bad.is_valid(&h));
        assert!(!bad.is_free_connex(free));
        // Boolean queries: trivially free-connex
        assert!(bad.is_free_connex(VarSet::EMPTY));
    }

    #[test]
    fn enumerate_ghds_are_valid_and_free_connex() {
        let q = snowflake(3);
        let h = q.hypergraph();
        let free = vs(&[0, 1]);
        let ghds = enumerate_ghds(&h, free, 5_000);
        assert!(!ghds.is_empty());
        for g in &ghds {
            assert!(g.is_valid(&h));
            assert!(g.is_free_connex(free));
        }
        // dedup actually dedups: far fewer GHDs than orders
        assert!(ghds.len() < 5_000);
    }

    #[test]
    fn enumeration_respects_limit() {
        let h = k_cycle(5).hypergraph();
        let ghds = enumerate_ghds(&h, h.all_vars(), 7);
        assert!(ghds.len() <= 7);
    }
}
