//! CQ canonicalization: deterministic variable/atom renaming so
//! alpha-equivalent queries share one representation.
//!
//! The plan cache in `qec-serve` keys compiled circuits by query text;
//! two clients writing `Q(a,b) :- R(a,b)` and `Q(x,y) :- R(x,y)` must
//! land on the same entry or the 40-second compile is paid twice. A
//! conjunctive query is determined up to *alpha-equivalence* — any
//! bijective renaming of its variables (and any reordering of its body
//! atoms) denotes the same query — so the cache key has to be a
//! canonical form, not the source text.
//!
//! [`canonicalize`] computes one: a relabeling of the variables to
//! `v0..v{n-1}` plus a sorting of the atoms such that every
//! alpha-variant of the query produces the *identical* [`Cq`] (and
//! therefore identical [`CanonicalCq::text`]). Atom names are semantic
//! (they bind database relations) and are never renamed.
//!
//! The algorithm is the classic two-phase canonical-labeling scheme,
//! sized for queries (the parser caps them at 60 variables, real ones
//! have a handful):
//!
//! 1. **Color refinement.** Variables start colored by freeness and are
//!    iteratively recolored by the multiset of `(atom name, co-variable
//!    colors)` incidences until the partition stabilizes. Every step is
//!    computed from renaming-invariant data only.
//! 2. **Minimal-labeling search.** Refinement classes are ordered by
//!    their (invariant) color; within classes — where true symmetry can
//!    survive, e.g. a cycle query — every assignment is tried and the
//!    lexicographically smallest encoded query wins. The search space is
//!    the product of class factorials; it is capped at
//!    [`CANON_SEARCH_CAP`] assignments (far above anything refinement
//!    leaves on real queries), beyond which the refined order itself is
//!    used — still deterministic for a given input, just no longer
//!    guaranteed invariant for adversarially symmetric 9+-variable
//!    orbits.

use qec_relation::{Var, VarSet};

use crate::{Atom, Cq};

/// Upper bound on assignments the minimal-labeling search will try
/// before falling back to refinement order (8! = 40320).
pub const CANON_SEARCH_CAP: u64 = 40_320;

/// The result of [`canonicalize`]: the canonical query plus the
/// variable bijection connecting it to the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalCq {
    /// The canonical query: variables named `v0..`, atoms sorted by
    /// `(name, variable set)` under the canonical numbering.
    pub cq: Cq,
    /// `cq.to_string()` — the string a plan cache should key on.
    pub text: String,
    /// Maps an input variable (by index) to its canonical variable.
    pub to_canon: Vec<Var>,
    /// Maps a canonical variable (by index) back to the input variable.
    pub from_canon: Vec<Var>,
}

impl CanonicalCq {
    /// Maps a [`VarSet`] over input variables into canonical space.
    pub fn map_set(&self, s: VarSet) -> VarSet {
        s.iter().map(|v| self.to_canon[v.index()]).collect()
    }
}

/// One atom under a candidate labeling: `(name, sorted mapped vars)`.
type AtomCode = (String, Vec<u32>);

/// The full encoding of a labeling: sorted atom codes plus the mapped
/// free set. Lexicographic comparison over this tuple defines
/// "canonical".
type Encoding = (Vec<AtomCode>, Vec<u32>);

fn encode(cq: &Cq, assign: &[u32]) -> Encoding {
    let mut atoms: Vec<AtomCode> = cq
        .atoms
        .iter()
        .map(|a| {
            let mut vs: Vec<u32> = a.vars.iter().map(|v| assign[v.index()]).collect();
            vs.sort_unstable();
            (a.name.clone(), vs)
        })
        .collect();
    atoms.sort();
    let mut free: Vec<u32> = cq.free.iter().map(|v| assign[v.index()]).collect();
    free.sort_unstable();
    (atoms, free)
}

/// Refines variable colors to a fixpoint. Returns one color per
/// variable; equal colors mean "indistinguishable by iterated invariant
/// structure". Colors are ranks of sorted signatures, so they are
/// themselves invariant under renaming.
/// One variable's refinement signature: (current color, sorted
/// incidences), where an incidence is (atom name, sorted colors of the
/// atom's vars).
type Signature = (u32, Vec<(String, Vec<u32>)>);

fn refine_colors(cq: &Cq) -> Vec<u32> {
    let n = cq.num_vars() as usize;
    let mut color: Vec<u32> = (0..n)
        .map(|i| u32::from(cq.free.contains(Var(i as u32))))
        .collect();
    loop {
        let mut sigs: Vec<Signature> = Vec::with_capacity(n);
        for i in 0..n {
            let v = Var(i as u32);
            let mut inc: Vec<(String, Vec<u32>)> = cq
                .atoms
                .iter()
                .filter(|a| a.vars.contains(v))
                .map(|a| {
                    let mut cs: Vec<u32> = a.vars.iter().map(|w| color[w.index()]).collect();
                    cs.sort_unstable();
                    (a.name.clone(), cs)
                })
                .collect();
            inc.sort();
            sigs.push((color[i], inc));
        }
        let mut uniq: Vec<&Signature> = sigs.iter().collect();
        uniq.sort();
        uniq.dedup();
        let next: Vec<u32> = sigs
            .iter()
            .map(|s| uniq.binary_search(&s).expect("own signature present") as u32)
            .collect();
        if next == color {
            return color;
        }
        color = next;
    }
}

/// Canonicalizes a conjunctive query. See the module docs for the
/// contract: `canonicalize(q) == canonicalize(rename(q))` for any
/// variable renaming / atom reordering `rename` (up to the search cap).
pub fn canonicalize(cq: &Cq) -> CanonicalCq {
    let n = cq.num_vars() as usize;
    let color = refine_colors(cq);

    // Group variable indices into classes ordered by color.
    let mut classes: Vec<(u32, Vec<usize>)> = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (color[i], i));
    for &i in &order {
        match classes.last_mut() {
            Some((c, members)) if *c == color[i] => members.push(i),
            _ => classes.push((color[i], vec![i])),
        }
    }

    // Search-space size: product of class factorials.
    let mut space: u64 = 1;
    for (_, members) in &classes {
        for k in 2..=members.len() as u64 {
            space = space.saturating_mul(k);
        }
    }

    let mut assign: Vec<u32> = vec![0; n];
    if space <= CANON_SEARCH_CAP {
        // Exhaustive search over within-class permutations for the
        // lexicographically minimal encoding.
        let mut best: Option<(Encoding, Vec<u32>)> = None;
        let mut work: Vec<u32> = vec![0; n];
        search(cq, &classes, 0, 0, &mut work, &mut best);
        let (_, winner) = best.expect("at least one labeling exists");
        assign.copy_from_slice(&winner);
    } else {
        // Fallback: refined order, original index as tie-break.
        for (canon_idx, &orig) in order.iter().enumerate() {
            assign[orig] = canon_idx as u32;
        }
    }

    let to_canon: Vec<Var> = assign.iter().map(|&c| Var(c)).collect();
    let mut from_canon: Vec<Var> = vec![Var(0); n];
    for (orig, &c) in assign.iter().enumerate() {
        from_canon[c as usize] = Var(orig as u32);
    }

    // Materialize the canonical query with the winning labeling.
    let (atom_codes, _) = encode(cq, &assign);
    let atoms: Vec<Atom> = atom_codes
        .into_iter()
        .map(|(name, vs)| Atom {
            name,
            vars: vs.into_iter().map(Var).collect(),
        })
        .collect();
    let free: VarSet = cq.free.iter().map(|v| to_canon[v.index()]).collect();
    let var_names: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
    let canon = Cq::new(var_names, atoms, free)
        .expect("canonical relabeling preserves query well-formedness");
    let text = canon.to_string();
    CanonicalCq {
        cq: canon,
        text,
        to_canon,
        from_canon,
    }
}

/// Depth-first over classes: class `ci` occupies canonical indices
/// `[base, base + |class|)`; every within-class order is tried.
fn search(
    cq: &Cq,
    classes: &[(u32, Vec<usize>)],
    ci: usize,
    base: u32,
    work: &mut Vec<u32>,
    best: &mut Option<(Encoding, Vec<u32>)>,
) {
    if ci == classes.len() {
        let enc = encode(cq, work);
        match best {
            Some((b, _)) if *b <= enc => {}
            _ => *best = Some((enc, work.clone())),
        }
        return;
    }
    let members = &classes[ci].1;
    let mut perm: Vec<usize> = members.clone();
    // Heap's-algorithm-free simple recursion: permute `perm` in place.
    permute(cq, classes, ci, base, &mut perm, 0, work, best);
}

#[allow(clippy::too_many_arguments)]
fn permute(
    cq: &Cq,
    classes: &[(u32, Vec<usize>)],
    ci: usize,
    base: u32,
    perm: &mut Vec<usize>,
    k: usize,
    work: &mut Vec<u32>,
    best: &mut Option<(Encoding, Vec<u32>)>,
) {
    if k == perm.len() {
        for (off, &orig) in perm.iter().enumerate() {
            work[orig] = base + off as u32;
        }
        search(cq, classes, ci + 1, base + perm.len() as u32, work, best);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(cq, classes, ci, base, perm, k + 1, work, best);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;

    /// Applies a variable-index permutation (and optionally reverses
    /// atom order) to build an alpha-variant of `cq`.
    fn rename(cq: &Cq, perm: &[u32], reverse_atoms: bool) -> Cq {
        let n = cq.num_vars() as usize;
        assert_eq!(perm.len(), n);
        let mut var_names = vec![String::new(); n];
        for (i, name) in cq.var_names.iter().enumerate() {
            var_names[perm[i] as usize] = name.clone();
        }
        let mut atoms: Vec<Atom> = cq
            .atoms
            .iter()
            .map(|a| Atom {
                name: a.name.clone(),
                vars: a.vars.iter().map(|v| Var(perm[v.index()])).collect(),
            })
            .collect();
        if reverse_atoms {
            atoms.reverse();
        }
        let free: VarSet = cq.free.iter().map(|v| Var(perm[v.index()])).collect();
        Cq::new(var_names, atoms, free).unwrap()
    }

    #[test]
    fn canon_is_invariant_under_renaming() {
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c), T(a, c)").unwrap();
        let base = canonicalize(&q);
        for perm in [[1u32, 2, 0], [2, 0, 1], [0, 2, 1], [1, 0, 2], [2, 1, 0]] {
            for rev in [false, true] {
                let variant = rename(&q, &perm, rev);
                let c = canonicalize(&variant);
                assert_eq!(c.text, base.text, "perm {perm:?} rev {rev}");
                assert_eq!(c.cq, base.cq);
            }
        }
    }

    #[test]
    fn canon_matches_across_differently_spelled_sources() {
        let a = canonicalize(&parse_cq("Q(x, z) :- R(x, y), S(y, z)").unwrap());
        let b = canonicalize(&parse_cq("Q(p, q) :- S(m, q), R(p, m)").unwrap());
        assert_eq!(a.text, b.text);
        assert_eq!(a.cq, b.cq);
    }

    #[test]
    fn canon_separates_genuinely_different_queries() {
        let path = canonicalize(&parse_cq("Q(a, c) :- R(a, b), S(b, c)").unwrap());
        let fork = canonicalize(&parse_cq("Q(a, c) :- R(a, b), R(b, c)").unwrap());
        assert_ne!(path.text, fork.text, "atom names matter");
        let other_free = canonicalize(&parse_cq("Q(a, b) :- R(a, b), S(b, c)").unwrap());
        assert_ne!(path.text, other_free.text, "free set matters");
    }

    #[test]
    fn symmetric_cycle_needs_the_search_phase() {
        // A 4-cycle with one relation name: refinement cannot split the
        // variables (all are structurally identical), so only the
        // minimal-labeling search keeps rotations/reflections together.
        let cycle = |order: &[(u32, u32)]| {
            let atoms = order
                .iter()
                .map(|&(x, y)| Atom {
                    name: "E".into(),
                    vars: [Var(x), Var(y)].into_iter().collect(),
                })
                .collect();
            Cq::new(
                vec!["a".into(), "b".into(), "c".into(), "d".into()],
                atoms,
                VarSet::EMPTY,
            )
            .unwrap()
        };
        let base = canonicalize(&cycle(&[(0, 1), (1, 2), (2, 3), (3, 0)]));
        // A rotation of the cycle: a→b→c→d→a relabeled b→c→d→a→b.
        let rotated = canonicalize(&cycle(&[(1, 2), (2, 3), (3, 0), (0, 1)]));
        assert_eq!(base.text, rotated.text);
        let perm_variant = rename(
            &cycle(&[(0, 1), (1, 2), (2, 3), (3, 0)]),
            &[2, 3, 0, 1],
            true,
        );
        assert_eq!(canonicalize(&perm_variant).text, base.text);
    }

    #[test]
    fn maps_are_mutually_inverse_and_canonical_text_reparses() {
        let q = parse_cq("Q(a) :- R(a, b), S(b, c), T(c, a)").unwrap();
        let c = canonicalize(&q);
        for i in 0..q.num_vars() as usize {
            assert_eq!(c.from_canon[c.to_canon[i].index()], Var(i as u32));
        }
        // The canonical text is valid parse_cq input, and canonicalizing
        // its parse lands back on the same canonical form.
        let reparsed = parse_cq(&c.text).unwrap();
        assert_eq!(canonicalize(&reparsed).text, c.text);
    }

    #[test]
    fn boolean_and_single_atom_queries_canonicalize() {
        let b = canonicalize(&parse_cq("Q() :- R(x, y), R(y, x)").unwrap());
        let b2 = canonicalize(&parse_cq("Q() :- R(u, w), R(w, u)").unwrap());
        assert_eq!(b.text, b2.text);
        let s = canonicalize(&parse_cq("Q(a, b) :- R(a, b)").unwrap());
        assert_eq!(s.text, "Q(v0, v1) :- R(v0, v1)");
    }
}
