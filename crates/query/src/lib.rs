//! Conjunctive queries: hypergraphs, a small datalog-style parser,
//! fractional edge covers, generalized hypertree decompositions (GHDs),
//! free-connex GHDs, and RAM baseline evaluators.
//!
//! This crate models Sec. 3.1 and Sec. 6.1 of the paper:
//!
//! * a CQ `Q(A_1..A_k) ← ∃(A_{k+1}..A_n) ⋀_F R_F(A_F)` over a hypergraph
//!   `H = ([n], E)` ([`Cq`], [`Hypergraph`]);
//! * the fractional edge cover number `ρ*` behind the AGM bound
//!   ([`fractional_edge_cover`]);
//! * GHDs and free-connex GHDs with width functionals supplied by the
//!   caller ([`Ghd`], [`enumerate_ghds`]) — the entropy crate plugs in the
//!   degree-aware polymatroid bound to obtain `da-fhtw` (Eq. 6);
//! * RAM baselines ([`baseline`]) the circuits are validated against:
//!   pairwise join plans, a worst-case-optimal generic join, and the
//!   textbook Yannakakis algorithm.

pub mod baseline;
mod canon;
mod corpus;
mod cover;
mod cq;
mod ghd;
mod parser;

pub use canon::{canonicalize, CanonicalCq, CANON_SEARCH_CAP};
pub use corpus::{bowtie, full_star, k_cycle, k_path, k_star, loomis_whitney, snowflake, triangle};
pub use cover::{fractional_cover_of, fractional_edge_cover, CoverError, EdgeCover};
pub use cq::{Atom, Cq, CqError, Hypergraph};
pub use ghd::{enumerate_ghds, Ghd, GhdNode};
pub use parser::{parse_cq, parse_program, Program, ProgramAtom, ProgramRule, SemiringAnnot};
