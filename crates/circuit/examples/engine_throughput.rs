//! Compile a degree-bounded join circuit once, then stream batches of
//! databases through it — the engine's intended usage pattern.
//!
//! ```text
//! cargo run -p qec-circuit --release --example engine_throughput \
//!     [cap] [batch] [--no-opt] [--threads <n>] [--trace-out <path>]
//! ```
//!
//! `--no-opt` compiles the raw circuit (`optimize: false`), skipping the
//! optimizer pass, so the cost of not optimizing is directly measurable;
//! `--threads <n>` runs the batch on `n` worker threads, and `--threads 0`
//! auto-detects the machine's parallelism. `--trace-out <path>` writes a
//! Chrome trace-event document for the compile (load it in
//! `chrome://tracing` or Perfetto); combine with `QEC_TRACE=1` to also
//! capture pool and builder counters from the process-global recorder.
//!
//! Prints the compiled tape's statistics (per-kind gate counts, level
//! widths, peak registers) and the measured throughput of the batched
//! engine against the per-instance interpreter.

use qec_circuit::{
    encode_relation, join_degree_bounded, Builder, CompileOptions, CompiledCircuit, Mode,
};
use qec_relation::Var;

fn main() {
    let mut cap: usize = 48;
    let mut batch: usize = 64;
    let mut no_opt = false;
    let mut trace_out: Option<String> = None;
    let mut threads: usize = 1;
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-opt" => no_opt = true,
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path argument");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads needs a non-negative integer argument");
                    std::process::exit(2);
                });
                // 0 means "use every core the OS will give us".
                threads = if n == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    n
                };
            }
            other => {
                let v: usize = other.parse().unwrap_or_else(|_| {
                    eprintln!("unexpected argument {other:?}; usage: [cap] [batch] [--no-opt] [--threads <n>] [--trace-out <path>]");
                    std::process::exit(2);
                });
                match positional {
                    0 => cap = v,
                    1 => batch = v,
                    _ => {
                        eprintln!("too many positional arguments");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }

    // R(a, b) ⋈ S(b, c), each with `cap` slots, degree bound 4.
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], cap);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], cap);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let circuit = b.finish(j.flatten());

    // When a trace is requested, force an enabled recorder even without
    // QEC_TRACE=1 so the compile spans land somewhere exportable.
    let opts = CompileOptions::from_env().with_optimize(!no_opt);
    let opts = if trace_out.is_some() && !opts.recorder.is_enabled() {
        opts.with_metrics(true)
    } else {
        opts
    };
    let (engine, report) =
        CompiledCircuit::compile_with(&circuit, &opts).expect("build-mode circuit");
    let stats = engine.stats();
    println!(
        "circuit: {} gates, depth {}",
        stats.circuit_size, stats.circuit_depth
    );
    if let Some(opt) = &stats.opt {
        println!(
            "opt:     {} gates, depth {} ({:.1}% gates removed)",
            stats.optimized_size,
            stats.optimized_depth,
            100.0 * opt.gate_reduction()
        );
    } else {
        println!("opt:     skipped (--no-opt)");
    }
    println!(
        "tape:    {} instructions in {} levels (widest {})",
        stats.tape_len,
        stats.num_levels,
        stats.max_level_width()
    );
    println!(
        "regs:    {} peak ({}x smaller than the {}-wire value buffer)",
        stats.peak_registers,
        stats.circuit_wires / stats.peak_registers.max(1),
        stats.circuit_wires
    );
    for (kind, count) in stats.gate_count_pairs() {
        println!("         {kind:<12} {count}");
    }
    println!(
        "compile: {:.2} ms total ({:.0}% in measured stages)",
        report.total_ns as f64 / 1e6,
        100.0 * report.coverage()
    );
    if let Some(path) = &trace_out {
        std::fs::write(path, report.chrome_trace()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        });
        println!("trace:   wrote Chrome trace events to {path}");
    }

    // One synthetic instance per lane: tuples (i, i % 7), all valid.
    let instances: Vec<Vec<u64>> = (0..batch)
        .map(|lane| {
            let mut inp = Vec::with_capacity(circuit.num_inputs());
            for rel in 0..2 {
                for slot in 0..cap {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1] // a, b, valid
                    } else {
                        [key, slot as u64, 1] // b, c, valid
                    });
                }
            }
            inp
        })
        .collect();

    // Interpreter: one pass per instance.
    let t0 = std::time::Instant::now();
    let reference: Vec<_> = instances.iter().map(|i| circuit.evaluate(i)).collect();
    let interp_ns = t0.elapsed().as_nanos();

    // Engine: one tape pass for the whole batch.
    let (got, metrics) = engine.evaluate_batch_metered(&instances, threads);
    assert_eq!(got, reference, "engine must match the interpreter");

    println!(
        "interpreter: {:>9.1} µs/instance",
        interp_ns as f64 / 1e3 / batch as f64
    );
    println!(
        "engine:      {:>9.1} µs/instance at batch {batch}, {threads} thread(s) — {:.2}x, {:.2e} gate-evals/s, ~{} MiB touched",
        metrics.ns_per_instance() / 1e3,
        interp_ns as f64 / metrics.eval_ns as f64,
        metrics.gate_evals_per_sec(),
        metrics.bytes_touched >> 20,
    );
}
