//! Property tests pinning the parallel compile pipeline to its
//! sequential reference on random gate DAGs: `Builder::with_pool` +
//! `fork_join`, `lower_with`, `optimize_with`, and `optimize_bits_with`
//! under a multi-worker `CompileOptions` must each produce
//! **byte-identical** results — gate lists, outputs, depths, AND counts, `OptStats`
//! (including `assert_origin`), and the first-failing-assert index — at
//! every worker count from 1 to 8. A 16-thread stress variant runs
//! under `--ignored`.

use proptest::prelude::*;
use qec_circuit::lower::BGate;
use qec_circuit::{
    lower_with, optimize_bits_with, optimize_with, Builder, Circuit, CompileOptions, Mode, Pool,
};

/// Raw material for one random gate: kind selector plus operand seeds,
/// reduced modulo the live wire count at build time.
type GateSeed = (u8, u32, u32, u32, u64);

/// Emits one random gate into `b`, drawing operands from `wires`.
/// Returns the new wire, or `None` for assert seeds (which emit but
/// produce no further operand).
fn emit_seed(
    b: &mut Builder,
    wires: &[qec_circuit::WireId],
    seed: GateSeed,
) -> Option<qec_circuit::WireId> {
    let (kind, a, bb, s, v) = seed;
    let pick = |x: u32| wires[x as usize % wires.len()];
    let (wa, wb, ws) = (pick(a), pick(bb), pick(s));
    Some(match kind % 13 {
        0 => b.add(wa, wb),
        1 => b.sub(wa, wb),
        2 => b.mul(wa, wb),
        3 => b.eq(wa, wb),
        4 => b.lt(wa, wb),
        5 => b.and(wa, wb),
        6 => b.or(wa, wb),
        7 => b.xor(wa, wb),
        8 => b.not(wa),
        9 => b.mux(ws, wa, wb),
        10 => b.constant(v),
        11 | 12 => {
            // assert on a masked comparison so random inputs mix
            // passing and failing evaluations
            let c = b.constant(v & 0x7);
            let e = b.eq(wa, c);
            b.assert_zero(e); // fires when wa == v & 7
            return None;
        }
        _ => unreachable!(),
    })
}

/// Builds a circuit whose gate emission actually fans out: the seed
/// list is split into chunks, each chunk built by a `fork_join` worker
/// over the shared input wires, and the per-chunk results are combined
/// sequentially at the root. With a sequential builder the exact same
/// code runs in plain index order, so one construction function serves
/// as both the parallel subject and its reference.
fn build_forked(mut b: Builder, num_inputs: usize, seeds: &[GateSeed]) -> Circuit {
    let inputs: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    let chunks: Vec<&[GateSeed]> = seeds.chunks(8.max(seeds.len() / 7)).collect();
    let chunk_outs = b.fork_join(chunks.len(), |i, bb| {
        let mut wires = inputs.clone();
        for &seed in chunks[i] {
            if let Some(w) = emit_seed(bb, &wires, seed) {
                wires.push(w);
            }
        }
        // a few representative wires per chunk
        let mut outs: Vec<_> = wires.iter().copied().step_by(5).collect();
        outs.push(*wires.last().unwrap());
        outs
    });
    // Combine across chunks at the root so the forked work is entangled.
    let mut acc = inputs[0];
    let mut outputs = Vec::new();
    for outs in chunk_outs {
        for w in &outs {
            acc = b.xor(acc, *w);
        }
        outputs.extend(outs);
    }
    outputs.push(acc);
    b.finish(outputs)
}

/// Sequentially builds a random DAG without hash-consing (maximally raw
/// material for the optimizer passes).
fn build_random(mode: Mode, num_inputs: usize, seeds: &[GateSeed]) -> Circuit {
    let mut b = Builder::without_cse(mode);
    let mut wires: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &seed in seeds {
        if let Some(w) = emit_seed(&mut b, &wires, seed) {
            wires.push(w);
        }
    }
    let outputs: Vec<_> = wires
        .iter()
        .copied()
        .step_by(3)
        .chain(wires.last().copied())
        .collect();
    b.finish(outputs)
}

/// Asserts two circuits are byte-identical: same gate list, outputs,
/// size/depth accounting — not merely equivalent.
fn assert_same_circuit(seq: &Circuit, par: &Circuit, tag: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(seq.gates(), par.gates(), "{}: gate lists diverge", tag);
    prop_assert_eq!(seq.outputs(), par.outputs(), "{}: outputs diverge", tag);
    prop_assert_eq!(seq.num_inputs(), par.num_inputs(), "{}", tag);
    prop_assert_eq!(seq.num_wires(), par.num_wires(), "{}", tag);
    prop_assert_eq!(seq.size(), par.size(), "{}", tag);
    prop_assert_eq!(seq.depth(), par.depth(), "{}", tag);
    Ok(())
}

fn and_count(gates: &[BGate]) -> usize {
    gates
        .iter()
        .filter(|g| matches!(g, BGate::And(_, _)))
        .count()
}

/// The shared body for the 1–8 worker sweep and the `--ignored`
/// 16-thread stress run.
fn check_all_stages(
    num_inputs: usize,
    seeds: &[GateSeed],
    raw_instances: &[Vec<u64>],
    threads: &[usize],
) -> Result<(), TestCaseError> {
    let instances: Vec<Vec<u64>> = raw_instances
        .iter()
        .map(|vals| {
            (0..num_inputs)
                .map(|i| vals.get(i).copied().unwrap_or(3))
                .collect()
        })
        .collect();

    // Stage 1: parallel construction (sharded hash-consing + replay).
    let built_seq = build_forked(Builder::new(Mode::Build), num_inputs, seeds);
    let counted_seq = build_forked(Builder::new(Mode::Count), num_inputs, seeds);

    // Stages 2–4 reference: lowering and both optimizer passes.
    let raw = build_random(Mode::Build, num_inputs, seeds);
    let seq_opts = CompileOptions::sequential();
    let bc = lower_with(&raw, 8, &seq_opts);
    let (opt_seq, st_seq) = optimize_with(&raw, &seq_opts);
    let (bopt_seq, bst_seq) = optimize_bits_with(&bc, &seq_opts);

    for &t in threads {
        let pool = Pool::new(t);
        let par_opts = CompileOptions::sequential().with_pool(pool);

        let built_par = build_forked(Builder::with_pool(Mode::Build, pool), num_inputs, seeds);
        assert_same_circuit(&built_seq, &built_par, "build")?;
        for inst in &instances {
            prop_assert_eq!(
                built_seq.evaluate(inst),
                built_par.evaluate(inst),
                "build outcome diverged at {} threads",
                t
            );
        }
        let counted_par = build_forked(Builder::with_pool(Mode::Count, pool), num_inputs, seeds);
        prop_assert_eq!(counted_seq.size(), counted_par.size(), "count-mode size");
        prop_assert_eq!(counted_seq.depth(), counted_par.depth(), "count-mode depth");

        let bc_par = lower_with(&raw, 8, &par_opts);
        prop_assert_eq!(bc.gates(), bc_par.gates(), "lowered gate lists diverge");
        prop_assert_eq!(bc.outputs(), bc_par.outputs());
        prop_assert_eq!(bc.num_inputs(), bc_par.num_inputs());
        prop_assert_eq!(and_count(bc.gates()), and_count(bc_par.gates()));

        let (opt_par, st_par) = optimize_with(&raw, &par_opts);
        assert_same_circuit(&opt_seq, &opt_par, "optimize")?;
        prop_assert_eq!(
            format!("{st_seq:?}"),
            format!("{st_par:?}"),
            "OptStats (incl. assert_origin) diverge at {} threads",
            t
        );
        for inst in &instances {
            // Err equality covers the first-failing-assert index + value.
            prop_assert_eq!(raw.evaluate(inst).is_ok(), opt_par.evaluate(inst).is_ok());
            prop_assert_eq!(opt_seq.evaluate(inst), opt_par.evaluate(inst));
        }

        let (bopt_par, bst_par) = optimize_bits_with(&bc, &par_opts);
        prop_assert_eq!(
            bopt_seq.gates(),
            bopt_par.gates(),
            "bit-opt gate lists diverge"
        );
        prop_assert_eq!(bopt_seq.outputs(), bopt_par.outputs());
        prop_assert_eq!(and_count(bopt_seq.gates()), and_count(bopt_par.gates()));
        prop_assert_eq!(format!("{bst_seq:?}"), format!("{bst_par:?}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every parallel stage is byte-identical to its sequential
    /// reference at 1–8 workers.
    #[test]
    fn parallel_pipeline_matches_sequential(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 8..80),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..8), 1..6),
    ) {
        check_all_stages(num_inputs, &seeds, &raw_instances, &[1, 2, 3, 8])?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Oversubscribed stress: 16 workers on a larger DAG. Run with
    /// `cargo test -p qec-circuit --test par_props -- --ignored`.
    #[test]
    #[ignore = "16-thread stress sweep; run explicitly"]
    fn parallel_pipeline_matches_sequential_at_16_threads(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 64..320),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..8), 1..4),
    ) {
        check_all_stages(num_inputs, &seeds, &raw_instances, &[16])?;
    }
}
