//! Property tests pinning the optimizer to the reference interpreter:
//! `optimize(c)` must be observationally identical to `c` on random gate
//! DAGs — outputs, arity errors, and assertion-failure semantics (a
//! failing circuit never optimizes into a passing one, and the reported
//! first-failing assert corresponds through `OptStats::assert_origin`).
//! The compiled engine, which optimizes internally, must report the
//! exact source-level lowest-gate-index failure for 1–8 threads.

use proptest::prelude::*;
use qec_circuit::{
    lower_with, optimize_bits_with, optimize_with, Builder, Circuit, CompileOptions,
    CompiledCircuit, EvalError, Mode,
};

/// Raw material for one random gate: kind selector plus operand seeds,
/// reduced modulo the live wire count at build time.
type GateSeed = (u8, u32, u32, u32, u64);

/// Builds a random circuit from seeds. Hash-consing is disabled so the
/// source keeps every structural duplicate — the offline pass gets raw
/// material to chew on, and the equivalence claim is tested against the
/// least-preprocessed circuit we can build.
fn build_random(mode: Mode, num_inputs: usize, seeds: &[GateSeed]) -> Circuit {
    let mut b = Builder::without_cse(mode);
    let mut wires: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &(kind, a, bb, s, v) in seeds {
        let pick = |x: u32| wires[x as usize % wires.len()];
        let (wa, wb, ws) = (pick(a), pick(bb), pick(s));
        let w = match kind % 13 {
            0 => b.add(wa, wb),
            1 => b.sub(wa, wb),
            2 => b.mul(wa, wb),
            3 => b.eq(wa, wb),
            4 => b.lt(wa, wb),
            5 => b.and(wa, wb),
            6 => b.or(wa, wb),
            7 => b.xor(wa, wb),
            8 => b.not(wa),
            9 => b.mux(ws, wa, wb),
            10 => b.constant(v),
            11 | 12 => {
                // assert on a masked comparison so random inputs mix
                // passing and failing evaluations
                let c = b.constant(v & 0x7);
                let e = b.eq(wa, c);
                b.assert_zero(e); // fires when wa == v & 7
                continue;
            }
            _ => unreachable!(),
        };
        wires.push(w);
    }
    let outputs: Vec<_> = wires
        .iter()
        .copied()
        .step_by(3)
        .chain(wires.last().copied())
        .collect();
    b.finish(outputs)
}

/// Asserts the optimized circuit's outcome matches the source outcome,
/// mapping reported assert gates through `assert_origin`.
fn assert_same_outcome(
    src: &Result<Vec<u64>, EvalError>,
    opt: &Result<Vec<u64>, EvalError>,
    origin_of: impl Fn(u32) -> Option<u32>,
) -> Result<(), TestCaseError> {
    match (src, opt) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
        (
            Err(EvalError::AssertionFailed {
                gate: sg,
                value: sv,
            }),
            Err(EvalError::AssertionFailed {
                gate: og,
                value: ov,
            }),
        ) => {
            prop_assert_eq!(sv, ov, "failing assert must observe the same value");
            prop_assert_eq!(
                origin_of(*og as u32),
                Some(*sg as u32),
                "optimized assert must map back to the source's first failing gate"
            );
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        (a, b) => prop_assert!(false, "outcome diverged: source {a:?} vs optimized {b:?}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `optimize(c)` is gate-for-gate equivalent to `c`: same outputs,
    /// same assertion outcomes (index-correspondent, value-identical),
    /// never larger.
    #[test]
    fn optimize_matches_interpreter(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..120),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..8), 1..10),
    ) {
        let c = build_random(Mode::Build, num_inputs, &seeds);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        prop_assert!(opt.size() <= c.size(), "optimization never grows the circuit");
        prop_assert!(opt.depth() <= c.depth(), "optimization never deepens the circuit");
        prop_assert_eq!(opt.num_inputs(), c.num_inputs());
        prop_assert_eq!(st.gates_after, opt.size());
        for vals in &raw_instances {
            let inst: Vec<u64> =
                (0..num_inputs).map(|i| vals.get(i).copied().unwrap_or(3)).collect();
            assert_same_outcome(&c.evaluate(&inst), &opt.evaluate(&inst), |g| st.origin_of(g))?;
        }
        // arity errors are preserved verbatim
        let short = vec![0u64; num_inputs - 1];
        prop_assert_eq!(c.evaluate(&short).err(), opt.evaluate(&short).err());
    }

    /// Count-only circuits pass through with identical size/depth
    /// accounting and still refuse evaluation.
    #[test]
    fn count_circuits_pass_through(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..60),
    ) {
        let c = build_random(Mode::Count, num_inputs, &seeds);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        prop_assert!(!opt.is_evaluable());
        prop_assert_eq!(opt.size(), c.size());
        prop_assert_eq!(opt.depth(), c.depth());
        prop_assert_eq!(st.gates_before, st.gates_after);
        prop_assert_eq!(opt.evaluate(&vec![0; num_inputs]).err(), Some(EvalError::CountOnly));
    }

    /// The engine compiles through the optimizer yet reports the same
    /// lowest-gate-index assertion failure as the source interpreter,
    /// for every thread count 1–8.
    #[test]
    fn compiled_optimized_engine_reports_source_failures(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..100),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..8), 1..10),
    ) {
        let c = build_random(Mode::Build, num_inputs, &seeds);
        let (eng, _) = CompiledCircuit::compile_with(&c, &CompileOptions::from_env())
            .expect("build-mode circuits compile");
        prop_assert!(eng.stats().tape_len <= c.num_wires());
        prop_assert!(eng.stats().opt.is_some(), "compile runs the optimizer");
        let instances: Vec<Vec<u64>> = raw_instances
            .iter()
            .map(|vals| (0..num_inputs).map(|i| vals.get(i).copied().unwrap_or(3)).collect())
            .collect();
        let expected: Vec<_> = instances.iter().map(|i| c.evaluate(i)).collect();
        for threads in 1..=8usize {
            let got = eng.evaluate_batch_threaded(&instances, threads);
            // exact equality: outputs AND source-level gate indices/values
            prop_assert_eq!(&got, &expected, "threads = {}", threads);
        }
    }

    /// Bit-level: `optimize_bits` over a lowered circuit is
    /// observationally equivalent and never AND-larger.
    #[test]
    fn optimize_bits_matches_bit_interpreter(
        num_inputs in 1usize..5,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..40),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..6), 1..6),
    ) {
        let c = build_random(Mode::Build, num_inputs, &seeds);
        let bc = lower_with(&c, 8, &CompileOptions::sequential());
        let (opt, st) = optimize_bits_with(&bc, &CompileOptions::sequential());
        prop_assert!(st.and_after <= st.and_before);
        prop_assert!(st.gates_after <= st.gates_before);
        prop_assert!(st.and_depth_after <= st.and_depth_before);
        for vals in &raw_instances {
            let inst: Vec<u64> =
                (0..num_inputs).map(|i| vals.get(i).copied().unwrap_or(3)).collect();
            let src = bc.evaluate(&bc.pack_inputs(&inst));
            let got = opt.evaluate(&opt.pack_inputs(&inst));
            match (src, got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    bc.unpack_outputs(&a),
                    opt.unpack_outputs(&b),
                    "inputs {:?}", inst
                ),
                (Err(_), Err(_)) => {} // both fail an assert
                (a, b) => prop_assert!(false, "bit outcome diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
