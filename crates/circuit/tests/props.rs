//! Property tests: every operator circuit must agree with the RAM
//! reference operator on random instances, and count-mode totals must
//! match build-mode totals.

use proptest::prelude::*;
use qec_circuit::{
    aggregate, decode_relation, join_degree_bounded, join_pk, project, select, semijoin,
    sort_slots, truncate, union, AggOp, Builder, Mode, SortKey,
};
use qec_relation::{AggKind, Relation, Var, VarSet};

fn rel_strategy(vars: &'static [u32], max_rows: usize) -> impl Strategy<Value = Relation> {
    let arity = vars.len();
    prop::collection::vec(prop::collection::vec(0u64..6, arity..=arity), 0..max_rows)
        .prop_map(move |rows| Relation::from_rows(vars.iter().map(|&i| Var(i)).collect(), rows))
}

fn vs(bits: &[u32]) -> VarSet {
    bits.iter().map(|&i| Var(i)).collect()
}

fn eval_unary(
    r: &Relation,
    capacity: usize,
    f: impl FnOnce(&mut Builder, &qec_circuit::RelWires) -> qec_circuit::RelWires,
) -> Relation {
    let mut b = Builder::new(Mode::Build);
    let w = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), capacity);
    let out = f(&mut b, &w);
    let schema = out.schema.clone();
    let c = b.finish(out.flatten());
    let vals = relation_values(r, capacity);
    decode_relation(&schema, &c.evaluate(&vals).unwrap())
}

fn eval_binary(
    r: &Relation,
    s: &Relation,
    caps: (usize, usize),
    f: impl FnOnce(
        &mut Builder,
        &qec_circuit::RelWires,
        &qec_circuit::RelWires,
    ) -> qec_circuit::RelWires,
) -> Relation {
    let mut b = Builder::new(Mode::Build);
    let rw = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), caps.0);
    let sw = qec_circuit::encode_relation(&mut b, s.schema().to_vec(), caps.1);
    let out = f(&mut b, &rw, &sw);
    let schema = out.schema.clone();
    let c = b.finish(out.flatten());
    let mut vals = relation_values(r, caps.0);
    vals.extend(relation_values(s, caps.1));
    decode_relation(&schema, &c.evaluate(&vals).unwrap())
}

fn relation_values(r: &Relation, capacity: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for row in r.iter() {
        out.extend_from_slice(row);
        out.push(1);
    }
    for _ in r.len()..capacity {
        out.extend(std::iter::repeat_n(0, r.arity()));
        out.push(0);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn select_matches_ram(r in rel_strategy(&[0, 1], 16)) {
        let got = eval_unary(&r, 16, |b, w| {
            select(b, w, |b, s| {
                let three = b.constant(3);
                b.lt(s.fields[0], three)
            })
        });
        prop_assert_eq!(got, r.select(|row| row[0] < 3));
    }

    #[test]
    fn project_matches_ram(r in rel_strategy(&[0, 1, 2], 16)) {
        for cols in [vs(&[0]), vs(&[1, 2]), vs(&[0, 2])] {
            let got = eval_unary(&r, 16, |b, w| project(b, w, cols));
            prop_assert_eq!(got, r.project(cols));
        }
    }

    #[test]
    fn union_matches_ram(r in rel_strategy(&[0, 1], 12), s in rel_strategy(&[0, 1], 12)) {
        let got = eval_binary(&r, &s, (12, 12), union);
        prop_assert_eq!(got, r.union(&s));
    }

    #[test]
    fn aggregate_matches_ram(r in rel_strategy(&[0, 1], 16)) {
        for (op, kind) in [
            (AggOp::Count, AggKind::Count),
            (AggOp::Sum(Var(1)), AggKind::Sum(Var(1))),
            (AggOp::Min(Var(1)), AggKind::Min(Var(1))),
            (AggOp::Max(Var(1)), AggKind::Max(Var(1))),
        ] {
            let got = eval_unary(&r, 16, |b, w| aggregate(b, w, vs(&[0]), op, Var(9)));
            prop_assert_eq!(got, r.aggregate(vs(&[0]), kind, Var(9)));
        }
    }

    #[test]
    fn sort_is_lossless(r in rel_strategy(&[0, 1], 16)) {
        let got = eval_unary(&r, 16, |b, w| sort_slots(b, w, &SortKey::Columns(vec![Var(1)])));
        prop_assert_eq!(got, r);
    }

    #[test]
    fn truncate_to_exact_size_is_lossless(r in rel_strategy(&[0, 1], 16)) {
        let n = r.len();
        let got = eval_unary(&r, 16, |b, w| truncate(b, w, n.max(1)));
        prop_assert_eq!(got, r);
    }

    #[test]
    fn semijoin_matches_ram(r in rel_strategy(&[0, 1], 12), s in rel_strategy(&[1, 2], 12)) {
        let got = eval_binary(&r, &s, (12, 12), semijoin);
        prop_assert_eq!(got, r.semijoin(&s));
    }

    #[test]
    fn pk_join_matches_ram_on_keyed_data(
        r in rel_strategy(&[0, 1], 12),
        s_keys in prop::collection::btree_set(0u64..6, 0..6),
    ) {
        // build S with unique B keys
        let s = Relation::from_rows(
            vec![Var(1), Var(2)],
            s_keys.iter().map(|&k| vec![k, 10 + k]).collect(),
        );
        let got = eval_binary(&r, &s, (12, 6), join_pk);
        prop_assert_eq!(got, r.natural_join(&s));
    }

    #[test]
    fn degree_bounded_join_matches_ram(
        r in rel_strategy(&[0, 1], 10),
        s in rel_strategy(&[1, 2], 14),
    ) {
        let deg = s.degree(vs(&[1])).max(1);
        let got = eval_binary(&r, &s, (10, 14), |b, rw, sw| {
            join_degree_bounded(b, rw, sw, deg)
        });
        prop_assert_eq!(got, r.natural_join(&s));
    }

    #[test]
    fn count_mode_always_matches_build_mode(r in rel_strategy(&[0, 1], 10), s in rel_strategy(&[1, 2], 10)) {
        fn metrics(mode: Mode, r: &Relation, s: &Relation) -> (u64, u32) {
            let mut b = Builder::new(mode);
            let rw = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), 10);
            let sw = qec_circuit::encode_relation(&mut b, s.schema().to_vec(), 10);
            let j = join_degree_bounded(&mut b, &rw, &sw, 3);
            let c = b.finish(j.flatten());
            (c.size(), c.depth())
        }
        prop_assert_eq!(metrics(Mode::Build, &r, &s), metrics(Mode::Count, &r, &s));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn levelized_evaluator_matches_sequential(r in rel_strategy(&[0, 1], 12), s in rel_strategy(&[1, 2], 12), threads in 1usize..5) {
        let mut b = Builder::new(Mode::Build);
        let rw = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), 12);
        let sw = qec_circuit::encode_relation(&mut b, s.schema().to_vec(), 12);
        let j = semijoin(&mut b, &rw, &sw);
        let c = b.finish(j.flatten());
        let mut vals = relation_values(&r, 12);
        vals.extend(relation_values(&s, 12));
        let seq = c.evaluate(&vals).unwrap();
        let par = qec_circuit::evaluate_levelized(&c, &vals, threads).unwrap();
        prop_assert_eq!(seq, par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn netlist_roundtrips_random_operator_circuits(
        r in rel_strategy(&[0, 1], 8),
        s in rel_strategy(&[1, 2], 8),
        which in 0usize..3,
    ) {
        let mut b = Builder::new(Mode::Build);
        let rw = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), 8);
        let sw = qec_circuit::encode_relation(&mut b, s.schema().to_vec(), 8);
        let out = match which {
            // pk join needs unique keys: join against the projected key set
            0 => {
                let keys = project(&mut b, &sw, vs(&[1]));
                join_pk(&mut b, &rw, &keys)
            }
            1 => semijoin(&mut b, &rw, &sw),
            _ => union(&mut b, &rw, &rw.clone()),
        };
        let c = b.finish(out.flatten());
        let text = qec_circuit::write_netlist(&c);
        let back = qec_circuit::read_netlist(&text).unwrap();
        let mut vals = relation_values(&r, 8);
        vals.extend(relation_values(&s, 8));
        prop_assert_eq!(c.evaluate(&vals).unwrap(), back.evaluate(&vals).unwrap());
        // determinism: serializing the parsed circuit reproduces the text
        prop_assert_eq!(qec_circuit::write_netlist(&back), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bit_lowering_agrees_with_word_circuits(
        r in rel_strategy(&[0, 1], 6),
        s in rel_strategy(&[1, 2], 6),
    ) {
        use qec_circuit::{lower_with, CompileOptions};
        let mut b = Builder::new(Mode::Build);
        let rw = qec_circuit::encode_relation(&mut b, r.schema().to_vec(), 6);
        let sw = qec_circuit::encode_relation(&mut b, s.schema().to_vec(), 6);
        let j = semijoin(&mut b, &rw, &sw);
        let c = b.finish(j.flatten());
        let mut vals = relation_values(&r, 6);
        vals.extend(relation_values(&s, 6));
        // compare *decoded relations*: dummy-slot garbage fields may hold
        // QMARK (u64::MAX), which legitimately truncates under a 16-bit
        // lowering — only valid slots carry meaning
        let schema = r.schema().to_vec();
        let word = decode_relation(&schema, &c.evaluate(&vals).unwrap());
        let bc = lower_with(&c, 16, &CompileOptions::sequential());
        let bits = bc.pack_inputs(&vals);
        let bit_words = bc.unpack_outputs(&bc.evaluate(&bits).unwrap());
        prop_assert_eq!(decode_relation(&schema, &bit_words), word);
    }
}
