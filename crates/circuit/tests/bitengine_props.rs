//! Property tests pinning the bitsliced [`CompiledBitCircuit`] to the
//! reference interpreter: for random lowered circuits and random
//! batches, every kernel must reproduce per-instance
//! [`BitCircuit::evaluate`] lane for lane — outputs, input-arity
//! errors, and the gate index of the first failing assertion — at
//! every batch size, including ragged final blocks and batches that
//! straddle lane-word boundaries.

use proptest::prelude::*;
use qec_circuit::lower::BitCircuit;
use qec_circuit::{
    compile_bits_with, lower_with, BitEvalScratch, BitKernel, Builder, CompileOptions,
    CompiledBitCircuit, Mode,
};

/// Raw material for one random word gate (same recipe as
/// `engine_props.rs`): kind selector plus operand seeds, reduced modulo
/// the live wire count at build time.
type GateSeed = (u8, u32, u32, u32, u64);

/// Builds a random word circuit and lowers it at `width`. Deterministic
/// in its arguments, so the interpreter and the engine see the
/// identical bit circuit.
fn build_random_bits(num_inputs: usize, seeds: &[GateSeed], width: u32) -> BitCircuit {
    let mut b = Builder::new(Mode::Build);
    let mut wires: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &(kind, a, bb, s, v) in seeds {
        let pick = |x: u32| wires[x as usize % wires.len()];
        let (wa, wb, ws) = (pick(a), pick(bb), pick(s));
        let w = match kind % 12 {
            0 => b.add(wa, wb),
            1 => b.sub(wa, wb),
            2 => b.mul(wa, wb),
            3 => b.eq(wa, wb),
            4 => b.lt(wa, wb),
            5 => b.and(wa, wb),
            6 => b.or(wa, wb),
            7 => b.xor(wa, wb),
            8 => b.not(wa),
            9 => b.mux(ws, wa, wb),
            10 => b.constant(v),
            11 => {
                // assert on a masked value so batches mix passing and
                // failing lanes instead of failing everywhere
                let c = b.constant(v & 0x3);
                let e = b.eq(wa, c);
                b.assert_zero(e); // fires when wa == v & 3
                continue;
            }
            _ => unreachable!(),
        };
        wires.push(w);
    }
    let outputs: Vec<_> = wires
        .iter()
        .copied()
        .step_by(2)
        .chain(wires.last().copied())
        .collect();
    let c = b.finish(outputs);
    lower_with(&c, width, &CompileOptions::sequential())
}

/// Deterministic pseudo-random bit instances (xorshift), with every
/// `7`-th instance given a wrong arity so error lanes interleave with
/// good ones.
fn random_instances(bits: &BitCircuit, count: usize, mut state: u64) -> Vec<Vec<bool>> {
    (0..count)
        .map(|i| {
            let arity = if i % 7 == 6 {
                bits.num_inputs() + 1
            } else {
                bits.num_inputs()
            };
            (0..arity)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Per-instance reference results via the scratch-buffered interpreter.
fn reference(
    bits: &BitCircuit,
    instances: &[Vec<bool>],
) -> Vec<Result<Vec<bool>, qec_circuit::EvalError>> {
    let mut scratch = BitEvalScratch::default();
    instances
        .iter()
        .map(|inst| bits.evaluate_with(inst, &mut scratch).map(<[bool]>::to_vec))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched bitsliced evaluation equals per-instance interpretation
    /// on every lane, for every available kernel, at batch sizes that
    /// cover singleton, one-under/at/over a lane word, and multi-block
    /// with ragged tails.
    #[test]
    fn bitengine_matches_interpreter(
        num_inputs in 1usize..5,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..80),
        width in 1u32..9,
        state in any::<u64>(),
    ) {
        let bits = build_random_bits(num_inputs, &seeds, width);
        let eng = CompiledBitCircuit::compile(&bits);
        prop_assert!(eng.stats().peak_registers <= bits.gates().len());
        prop_assert_eq!(eng.stats().tape_len, bits.gates().len());

        let all = random_instances(&bits, 512, state | 1);
        let want_all = reference(&bits, &all);
        let mut scratch = eng.scratch();
        for batch in [1usize, 63, 64, 65, 512] {
            let instances = &all[..batch];
            let want = &want_all[..batch];
            for kernel in BitKernel::available() {
                let got = eng.evaluate_batch_kernel(instances, kernel, &mut scratch);
                prop_assert_eq!(&got, want, "kernel {} batch {}", kernel.name(), batch);
            }
        }
    }

    /// Ragged final blocks: sizes around every lane-count boundary
    /// (64/256/512 ± 1) agree with sequential interpretation, and a
    /// batch is always answered instance-for-instance in order.
    #[test]
    fn ragged_final_blocks(
        seeds in prop::collection::vec(any::<GateSeed>(), 1..40),
        state in any::<u64>(),
    ) {
        let bits = build_random_bits(2, &seeds, 6);
        let eng = CompiledBitCircuit::compile(&bits);
        let all = random_instances(&bits, 513, state | 1);
        let want_all = reference(&bits, &all);
        let mut scratch = eng.scratch();
        for batch in [63usize, 65, 127, 255, 257, 511, 513] {
            let got = eng.evaluate_batch_with(&all[..batch], &mut scratch);
            prop_assert_eq!(got.len(), batch);
            prop_assert_eq!(&got, &want_all[..batch], "batch {}", batch);
        }
    }

    /// Circuits whose outputs are all constants (no inputs read) still
    /// evaluate correctly — the constant-broadcast path must not leak
    /// padding lanes into results or assertions.
    #[test]
    fn all_constant_circuits(vals in prop::collection::vec(any::<u64>(), 1..6), batch in 1usize..130) {
        let mut b = Builder::new(Mode::Build);
        let consts: Vec<_> = vals.iter().map(|&v| b.constant(v)).collect();
        let c = b.finish(consts);
        let bits = lower_with(&c, 8, &CompileOptions::sequential());
        let eng = CompiledBitCircuit::compile(&bits);
        let instances = vec![Vec::new(); batch];
        let want = bits.evaluate(&[]).expect("constants never fail");
        for r in eng.evaluate_batch(&instances) {
            prop_assert_eq!(r.as_ref().expect("constants never fail"), &want);
        }
    }

    /// Scalar-vs-AVX parity on wide batches, driven through the driver
    /// entry point (`compile_bits_with`) so the obs/validate paths are
    /// exercised too. Vacuously scalar-vs-scalar where the CPU lacks
    /// the wide kernels.
    #[test]
    fn scalar_vs_avx_kernel_parity(
        seeds in prop::collection::vec(any::<GateSeed>(), 1..60),
        state in any::<u64>(),
    ) {
        let bits = build_random_bits(3, &seeds, 8);
        let opts = CompileOptions::from_env().with_validate(true);
        let (eng, _report) = compile_bits_with(&bits, &opts).expect("valid lowering");
        let instances = random_instances(&bits, 300, state | 1);
        let mut scratch = eng.scratch();
        let base = eng.evaluate_batch_kernel(&instances, BitKernel::Scalar, &mut scratch);
        for kernel in BitKernel::available() {
            let got = eng.evaluate_batch_kernel(&instances, kernel, &mut scratch);
            prop_assert_eq!(&got, &base, "kernel {} vs scalar", kernel.name());
        }
    }

    /// The word-level entry point agrees with pack → interpret → unpack
    /// per instance.
    #[test]
    fn evaluate_words_matches_interpreter(
        seeds in prop::collection::vec(any::<GateSeed>(), 1..60),
        raw in prop::collection::vec(prop::collection::vec(any::<u64>(), 2), 1..80),
    ) {
        let bits = build_random_bits(2, &seeds, 8);
        let eng = CompiledBitCircuit::compile(&bits);
        let got = eng.evaluate_words(&raw);
        for (inst, g) in raw.iter().zip(&got) {
            let want = bits
                .evaluate(&bits.pack_inputs(inst))
                .map(|b| bits.unpack_outputs(&b));
            prop_assert_eq!(g.as_ref().ok(), want.as_ref().ok());
            prop_assert_eq!(g.is_err(), want.is_err());
        }
    }
}
