//! Property tests pinning the compiled engine to the reference
//! interpreter: for random gate DAGs and random input batches,
//! [`CompiledCircuit`] must reproduce [`Circuit::evaluate`]
//! gate-for-gate — outputs, input-arity errors, and the index/value of
//! the first failing assertion — on every lane and for every thread
//! count.

use proptest::prelude::*;
use qec_circuit::{
    evaluate_levelized, Builder, Circuit, CompileOptions, CompiledCircuit, EvalError, Mode,
};

/// Raw material for one random gate: kind selector plus operand seeds,
/// reduced modulo the live wire count at build time.
type GateSeed = (u8, u32, u32, u32, u64);

/// Builds a random circuit from seeds. Deterministic in its arguments,
/// so the interpreter and the engine see the identical circuit.
fn build_random(mode: Mode, num_inputs: usize, seeds: &[GateSeed]) -> Circuit {
    let mut b = Builder::new(mode);
    let mut wires: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &(kind, a, bb, s, v) in seeds {
        let pick = |x: u32| wires[x as usize % wires.len()];
        let (wa, wb, ws) = (pick(a), pick(bb), pick(s));
        let w = match kind % 13 {
            0 => b.add(wa, wb),
            1 => b.sub(wa, wb),
            2 => b.mul(wa, wb),
            3 => b.eq(wa, wb),
            4 => b.lt(wa, wb),
            5 => b.and(wa, wb),
            6 => b.or(wa, wb),
            7 => b.xor(wa, wb),
            8 => b.not(wa),
            9 => b.mux(ws, wa, wb),
            10 => b.constant(v),
            11 | 12 => {
                // assert on a masked value so batches mix passing and
                // failing lanes instead of failing everywhere
                let c = b.constant(v & 0x7);
                let e = b.eq(wa, c);
                b.assert_zero(e); // fires when wa == v & 7
                continue;
            }
            _ => unreachable!(),
        };
        wires.push(w);
    }
    // take a spread of wires as outputs, always including the last
    let outputs: Vec<_> = wires
        .iter()
        .copied()
        .step_by(3)
        .chain(wires.last().copied())
        .collect();
    b.finish(outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched engine evaluation equals per-instance interpretation on
    /// every lane — including lanes that fail assertions mid-batch and
    /// lanes with wrong input arity.
    #[test]
    fn engine_matches_interpreter(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..120),
        raw_instances in prop::collection::vec(
            (prop::collection::vec(0u64..16, 0..8), any::<bool>()), 1..12),
    ) {
        let c = build_random(Mode::Build, num_inputs, &seeds);
        let eng = CompiledCircuit::compile_with(&c, &CompileOptions::from_env())
            .expect("build-mode circuits compile")
            .0;

        // register allocation must beat the interpreter's O(wires) buffer
        // whenever there is anything to reuse; never exceed it. The tape
        // covers the *optimized* circuit, so it can only be shorter.
        prop_assert!(eng.stats().peak_registers <= c.num_wires());
        prop_assert!(eng.stats().tape_len <= c.num_wires());

        // instances: right arity unless the flag says to corrupt it
        let instances: Vec<Vec<u64>> = raw_instances
            .iter()
            .map(|(vals, corrupt)| {
                let mut inst: Vec<u64> =
                    (0..num_inputs).map(|i| vals.get(i).copied().unwrap_or(3)).collect();
                if *corrupt {
                    inst.push(0); // arity num_inputs + 1
                }
                inst
            })
            .collect();

        let batch = eng.evaluate_batch(&instances);
        prop_assert_eq!(batch.len(), instances.len());
        for (inst, got) in instances.iter().zip(&batch) {
            prop_assert_eq!(got.clone(), c.evaluate(inst));
        }

        // threaded batch path: identical to the sequential batch
        for threads in [2, 5] {
            prop_assert_eq!(eng.evaluate_batch_threaded(&instances, threads), batch.clone());
        }

        // single-instance conveniences agree too
        prop_assert_eq!(eng.evaluate(&instances[0]), c.evaluate(&instances[0]));
        for threads in [1, 3] {
            prop_assert_eq!(
                evaluate_levelized(&c, &instances[0], threads),
                c.evaluate(&instances[0])
            );
        }
    }

    /// Count-mode circuits (gate lists elided) refuse to compile with
    /// the same error the interpreter raises.
    #[test]
    fn count_only_circuits_refuse_compilation(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 1..40),
    ) {
        let c = build_random(Mode::Count, num_inputs, &seeds);
        prop_assert_eq!(
            CompiledCircuit::compile_with(&c, &CompileOptions::from_env()).err(),
            Some(EvalError::CountOnly)
        );
        prop_assert_eq!(c.evaluate(&vec![0; num_inputs]).err(), Some(EvalError::CountOnly));
    }
}

/// Non-random pin: a batch where a middle lane fails an assertion while
/// its neighbours succeed, and two assertions race in one level.
#[test]
fn mid_batch_assertion_failure_is_isolated() {
    let mut b = Builder::new(Mode::Build);
    let x = b.input();
    let y = b.input();
    b.assert_zero(x); // gate 2
    b.assert_zero(y); // gate 3
    let s = b.add(x, y);
    let c = b.finish(vec![s]);
    let (eng, _) = CompiledCircuit::compile_with(&c, &CompileOptions::from_env()).unwrap();
    let instances: Vec<Vec<u64>> = vec![vec![0, 0], vec![9, 9], vec![0, 4]];
    let got = eng.evaluate_batch(&instances);
    assert_eq!(got[0], Ok(vec![0]));
    assert_eq!(
        got[1],
        Err(EvalError::AssertionFailed { gate: 2, value: 9 })
    );
    assert_eq!(
        got[2],
        Err(EvalError::AssertionFailed { gate: 3, value: 4 })
    );
    for (inst, got) in instances.iter().zip(got) {
        assert_eq!(got, c.evaluate(inst));
    }
}

/// Empty-circuit edge: no gates, no outputs — every well-formed lane
/// yields an empty output row.
#[test]
fn empty_circuit_batches() {
    let b = Builder::new(Mode::Build);
    let c = b.finish(vec![]);
    let (eng, _) = CompiledCircuit::compile_with(&c, &CompileOptions::from_env()).unwrap();
    let instances: Vec<Vec<u64>> = vec![vec![], vec![1], vec![]];
    let got = eng.evaluate_batch(&instances);
    assert_eq!(got[0], Ok(vec![]));
    assert_eq!(
        got[1],
        Err(EvalError::InputArity {
            expected: 0,
            got: 1
        })
    );
    assert_eq!(got[2], Ok(vec![]));
}
