//! Property tests pinning the observability layer to zero behavioral
//! footprint: compiling with tracing enabled (an enabled `Recorder`, or
//! `collect_metrics`) must produce **byte-identical** results — gate
//! lists, outputs, `OptStats` (including `assert_origin` and the
//! per-pass `phase_gates` breakdown), and per-instance evaluation
//! outcomes — to the untraced compile, at every worker count from 1
//! to 8. The exporter round-trip tests validate that both output
//! formats (the versioned metrics document and the Chrome trace-event
//! document) are well-formed JSON carrying the recorded spans.

use proptest::prelude::*;
use qec_circuit::{
    lower_with, optimize_bits_with, optimize_with, Builder, Circuit, CompileOptions,
    CompiledCircuit, Mode, Pool,
};
use qec_obs::Recorder;

/// Raw material for one random gate: kind selector plus operand seeds,
/// reduced modulo the live wire count at build time.
type GateSeed = (u8, u32, u32, u32, u64);

/// Emits one random gate into `b`, drawing operands from `wires`.
fn emit_seed(
    b: &mut Builder,
    wires: &[qec_circuit::WireId],
    seed: GateSeed,
) -> Option<qec_circuit::WireId> {
    let (kind, a, bb, s, v) = seed;
    let pick = |x: u32| wires[x as usize % wires.len()];
    let (wa, wb, ws) = (pick(a), pick(bb), pick(s));
    Some(match kind % 13 {
        0 => b.add(wa, wb),
        1 => b.sub(wa, wb),
        2 => b.mul(wa, wb),
        3 => b.eq(wa, wb),
        4 => b.lt(wa, wb),
        5 => b.and(wa, wb),
        6 => b.or(wa, wb),
        7 => b.xor(wa, wb),
        8 => b.not(wa),
        9 => b.mux(ws, wa, wb),
        10 => b.constant(v),
        11 | 12 => {
            let c = b.constant(v & 0x7);
            let e = b.eq(wa, c);
            b.assert_zero(e); // fires when wa == v & 7
            return None;
        }
        _ => unreachable!(),
    })
}

/// Sequentially builds a random DAG without hash-consing (maximally raw
/// material for the optimizer passes).
fn build_random(num_inputs: usize, seeds: &[GateSeed]) -> Circuit {
    let mut b = Builder::without_cse(Mode::Build);
    let mut wires: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &seed in seeds {
        if let Some(w) = emit_seed(&mut b, &wires, seed) {
            wires.push(w);
        }
    }
    let outputs: Vec<_> = wires
        .iter()
        .copied()
        .step_by(3)
        .chain(wires.last().copied())
        .collect();
    b.finish(outputs)
}

fn assert_same_circuit(plain: &Circuit, traced: &Circuit, tag: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(plain.gates(), traced.gates(), "{}: gate lists diverge", tag);
    prop_assert_eq!(
        plain.outputs(),
        traced.outputs(),
        "{}: outputs diverge",
        tag
    );
    prop_assert_eq!(plain.size(), traced.size(), "{}", tag);
    prop_assert_eq!(plain.depth(), traced.depth(), "{}", tag);
    Ok(())
}

/// The traced variants under test: a caller-supplied enabled recorder,
/// and the `collect_metrics` substitute recorder.
fn traced_variants(base: &CompileOptions) -> Vec<(&'static str, CompileOptions)> {
    vec![
        ("recorder", base.clone().with_recorder(Recorder::new(true))),
        ("collect_metrics", base.clone().with_metrics(true)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tracing changes nothing observable: every pipeline stage yields
    /// byte-identical artifacts with and without an enabled recorder,
    /// at 1–8 workers.
    #[test]
    fn tracing_is_behaviorally_invisible(
        num_inputs in 1usize..6,
        seeds in prop::collection::vec(any::<GateSeed>(), 8..64),
        raw_instances in prop::collection::vec(
            prop::collection::vec(0u64..16, 0..8), 1..5),
    ) {
        let instances: Vec<Vec<u64>> = raw_instances
            .iter()
            .map(|vals| {
                (0..num_inputs)
                    .map(|i| vals.get(i).copied().unwrap_or(3))
                    .collect()
            })
            .collect();
        let raw = build_random(num_inputs, &seeds);

        for t in [1usize, 2, 3, 8] {
            let plain = CompileOptions::sequential().with_pool(Pool::new(t));

            // Reference artifacts, untraced.
            let (opt_c, opt_st) = optimize_with(&raw, &plain);
            let bc = lower_with(&raw, 8, &plain);
            let (bopt, bst) = optimize_bits_with(&bc, &plain);
            let (eng, _) = CompiledCircuit::compile_with(&raw, &plain).expect("evaluable");
            let outs: Vec<_> = instances.iter().map(|i| eng.evaluate(i)).collect();

            for (tag, topts) in traced_variants(&plain) {
                let (opt_c2, opt_st2) = optimize_with(&raw, &topts);
                assert_same_circuit(&opt_c, &opt_c2, tag)?;
                prop_assert_eq!(
                    format!("{opt_st:?}"),
                    format!("{opt_st2:?}"),
                    "OptStats (incl. assert_origin, phase_gates) diverge under {} at {} workers",
                    tag, t
                );

                let bc2 = lower_with(&raw, 8, &topts);
                prop_assert_eq!(bc.gates(), bc2.gates(), "{}: lowered gates diverge", tag);
                prop_assert_eq!(bc.outputs(), bc2.outputs());

                let (bopt2, bst2) = optimize_bits_with(&bc, &topts);
                prop_assert_eq!(bopt.gates(), bopt2.gates(), "{}: bit-opt gates diverge", tag);
                prop_assert_eq!(format!("{bst:?}"), format!("{bst2:?}"));

                let (eng2, report) =
                    CompiledCircuit::compile_with(&raw, &topts).expect("evaluable");
                prop_assert_eq!(eng.stats().tape_len, eng2.stats().tape_len, "{}", tag);
                prop_assert_eq!(
                    eng.stats().peak_registers,
                    eng2.stats().peak_registers,
                    "{}", tag
                );
                for (inst, want) in instances.iter().zip(&outs) {
                    // Err equality covers the reported source assert gate.
                    prop_assert_eq!(&eng2.evaluate(inst), want, "{} at {} workers", tag, t);
                }

                // The traced run must actually have traced something.
                prop_assert!(report.recorder.is_enabled(), "{}", tag);
                prop_assert!(report.recorder.span_total_ns("compile") > 0, "{}", tag);
            }
        }
    }
}

/// Both exporter formats round-trip through a JSON parser and carry the
/// spans and counters of a real compile.
#[test]
fn exporters_round_trip() {
    let seeds: Vec<GateSeed> = (0..40u32)
        .map(|i| (i as u8, i * 7 + 1, i * 13 + 2, i * 3, u64::from(i) * 11))
        .collect();
    let raw = build_random(3, &seeds);
    let opts = CompileOptions::sequential().with_recorder(Recorder::new(true));
    let (_, report) = CompiledCircuit::compile_with(&raw, &opts).expect("evaluable");

    // Metrics document: versioned, with span + counter sections.
    let doc = qec_obs::json::parse(&report.metrics_json()).expect("metrics_json parses");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_f64()),
        Some(f64::from(qec_obs::METRICS_SCHEMA_VERSION))
    );
    let spans = doc.get("spans").expect("spans section").as_array().unwrap();
    let span_names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    for want in ["compile", "optimize", "tape"] {
        assert!(
            span_names.contains(&want),
            "missing span {want:?}: {span_names:?}"
        );
    }
    for s in spans {
        assert!(s.get("start_ns").unwrap().as_f64().is_some());
        assert!(s.get("dur_ns").unwrap().as_f64().unwrap() >= 0.0);
        assert!(s.get("tid").unwrap().as_f64().is_some());
    }
    let counters = doc.get("counters").expect("counters section");
    assert!(
        counters.get("opt.gates_before").is_some(),
        "optimizer counters missing: {:?}",
        counters.keys()
    );

    // Chrome trace document: an object with traceEvents, each event a
    // complete ("X") or counter ("C") record with the required fields.
    let trace = qec_obs::json::parse(&report.chrome_trace()).expect("chrome_trace parses");
    let events = trace
        .get("traceEvents")
        .expect("traceEvents array")
        .as_array()
        .unwrap();
    assert!(!events.is_empty());
    let mut saw_compile = false;
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(ph == "X" || ph == "C", "unexpected phase {ph:?}");
        assert!(ev.get("name").is_some());
        assert!(ev.get("ts").unwrap().as_f64().is_some());
        if ph == "X" {
            assert!(ev.get("dur").unwrap().as_f64().is_some());
            if ev.get("name").unwrap().as_str() == Some("compile") {
                saw_compile = true;
            }
        }
    }
    assert!(saw_compile, "compile span missing from trace events");
}
