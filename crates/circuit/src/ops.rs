//! Selection, projection (Alg. 3), aggregation (Alg. 5), union, and
//! truncation circuits.

use qec_relation::{Var, VarSet};

use crate::rel::{RelWires, SlotWires};
use crate::sort::{sort_slots, SortKey};
use crate::{scan::segmented_scan, Builder, WireId};

/// Selection `σ_φ(R)` (Sec. 5): every slot flows through; slots failing
/// the predicate are set to dummy. `Õ(K)` size, `Õ(1)` depth.
pub fn select(
    b: &mut Builder,
    rel: &RelWires,
    mut pred: impl FnMut(&mut Builder, &SlotWires) -> WireId,
) -> RelWires {
    let slots = rel
        .slots
        .iter()
        .map(|s| {
            let p = pred(b, s);
            let valid = b.and(s.valid, p);
            SlotWires {
                fields: s.fields.clone(),
                valid,
            }
        })
        .collect();
    RelWires {
        schema: rel.schema.clone(),
        slots,
    }
}

/// Truncation (Sec. 5.3): sorts non-dummy tuples to the front and drops
/// the tail slots. The caller must guarantee at most `new_capacity`
/// non-dummy tuples; an [`crate::Gate::AssertZero`] per dropped slot turns a violated
/// guarantee into an evaluation error instead of silent data loss.
pub fn truncate(b: &mut Builder, rel: &RelWires, new_capacity: usize) -> RelWires {
    if new_capacity >= rel.capacity() {
        return rel.clone();
    }
    let sorted = sort_slots(b, rel, &SortKey::ValidFirst);
    for s in &sorted.slots[new_capacity..] {
        b.assert_zero(s.valid);
    }
    RelWires {
        schema: sorted.schema,
        slots: sorted.slots[..new_capacity].to_vec(),
    }
}

/// Projection `Π_F(R)` with duplicate elimination (Alg. 3): drop columns,
/// sort by the remaining ones, mark each tuple equal to its predecessor
/// dummy. `Õ(K)` size (dominated by the sort), `Õ(1)` depth.
pub fn project(b: &mut Builder, rel: &RelWires, onto: VarSet) -> RelWires {
    assert!(onto.is_subset(rel.vars()), "projection onto non-attributes");
    let cols: Vec<usize> = onto.iter().map(|v| rel.col(v).expect("subset")).collect();
    let schema: Vec<Var> = onto.to_vec();
    let slots: Vec<SlotWires> = rel
        .slots
        .iter()
        .map(|s| SlotWires {
            fields: cols.iter().map(|&c| s.fields[c]).collect(),
            valid: s.valid,
        })
        .collect();
    let narrowed = RelWires {
        schema: schema.clone(),
        slots,
    };
    let sorted = sort_slots(b, &narrowed, &SortKey::Columns(schema.clone()));
    dedup_sorted(b, &sorted)
}

/// Marks tuples equal to their (valid) predecessor dummy; input must be
/// sorted by all columns.
fn dedup_sorted(b: &mut Builder, rel: &RelWires) -> RelWires {
    let mut slots = Vec::with_capacity(rel.capacity());
    for (i, s) in rel.slots.iter().enumerate() {
        if i == 0 {
            slots.push(s.clone());
            continue;
        }
        let prev = &rel.slots[i - 1];
        let eq = b.vec_eq(&s.fields, &prev.fields);
        let both = b.and(s.valid, prev.valid);
        let dup = b.and(eq, both);
        let keep = b.not(dup);
        let valid = b.and(s.valid, keep);
        slots.push(SlotWires {
            fields: s.fields.clone(),
            valid,
        });
    }
    RelWires {
        schema: rel.schema.clone(),
        slots,
    }
}

/// Union `R ∪ S` (Sec. 5): concatenates the slot arrays and deduplicates
/// via the projection circuit onto all attributes. Output capacity
/// `K + L`.
///
/// # Panics
/// Panics if the schemas differ.
pub fn union(b: &mut Builder, r: &RelWires, s: &RelWires) -> RelWires {
    assert_eq!(r.schema, s.schema, "union schema mismatch");
    let mut slots = r.slots.clone();
    slots.extend(s.slots.iter().cloned());
    let cat = RelWires {
        schema: r.schema.clone(),
        slots,
    };
    project(b, &cat, cat.vars())
}

/// Aggregate operators for [`aggregate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Tuples per group.
    Count,
    /// Sum of an attribute per group.
    Sum(Var),
    /// Minimum of an attribute per group.
    Min(Var),
    /// Maximum of an attribute per group.
    Max(Var),
}

/// Group-by aggregation `Π_{G, agg}(R)` (Alg. 5): sort by the group key,
/// run an `agg`-segmented-scan, keep the last tuple of each group (which
/// holds the inclusive total). Output schema `G ∪ {out}`, same capacity.
///
/// # Panics
/// Panics if `out` collides with the schema or the aggregated attribute is
/// missing.
pub fn aggregate(b: &mut Builder, rel: &RelWires, group: VarSet, op: AggOp, out: Var) -> RelWires {
    assert!(group.is_subset(rel.vars()), "group-by on non-attributes");
    assert!(
        !rel.vars().contains(out),
        "aggregate output column collides"
    );
    let gcols: Vec<Var> = group.to_vec();
    let sorted = sort_slots(b, rel, &SortKey::Columns(gcols.clone()));

    // scan values
    let zero = b.constant(0);
    let vals: Vec<Vec<WireId>> = sorted
        .slots
        .iter()
        .map(|s| {
            let v = match op {
                AggOp::Count => s.valid, // contributes 1 when real
                AggOp::Sum(a) | AggOp::Min(a) | AggOp::Max(a) => {
                    s.fields[sorted.col(a).expect("aggregated attribute present")]
                }
            };
            vec![v]
        })
        .collect();
    // segment keys: group fields with dummies forced to QMARK (so dummy
    // slots form a trailing segment of their own)
    let keys: Vec<Vec<WireId>> = sorted
        .slots
        .iter()
        .map(|s| {
            let qm = b.constant(crate::rel::QMARK);
            let mut k: Vec<WireId> = Vec::with_capacity(gcols.len().max(1));
            for v in &gcols {
                let c = sorted.col(*v).expect("subset");
                k.push(b.mux(s.valid, s.fields[c], qm));
            }
            if k.is_empty() {
                // global aggregate: one segment for real tuples, one for
                // dummies
                k.push(b.mux(s.valid, zero, qm));
            }
            k
        })
        .collect();

    let scanned = segmented_scan(b, &keys, &vals, &mut |b, a, x| match op {
        AggOp::Count | AggOp::Sum(_) => vec![b.add(a[0], x[0])],
        AggOp::Min(_) => {
            let lt = b.lt(a[0], x[0]);
            vec![b.mux(lt, a[0], x[0])]
        }
        AggOp::Max(_) => {
            let gt = b.lt(x[0], a[0]);
            vec![b.mux(gt, a[0], x[0])]
        }
    });

    // keep only the last slot of each segment (Alg. 5 lines 4–6)
    let out_vars = group.with(out);
    let out_schema: Vec<Var> = out_vars.to_vec();
    let out_pos = out_schema.iter().position(|&v| v == out).expect("out var");
    let n = sorted.capacity();
    let mut slots = Vec::with_capacity(n);
    for i in 0..n {
        let s = &sorted.slots[i];
        let is_last = if i + 1 < n {
            let next = &sorted.slots[i + 1];
            let same = b.vec_eq(&keys[i], &keys[i + 1]);
            let next_real = b.and(next.valid, same);
            b.not(next_real)
        } else {
            b.constant(1)
        };
        let valid = b.and(s.valid, is_last);
        let mut fields = Vec::with_capacity(out_schema.len());
        for (pos, v) in out_schema.iter().enumerate() {
            if pos == out_pos {
                fields.push(scanned[i][0]);
            } else {
                fields.push(s.fields[sorted.col(*v).expect("group var")]);
            }
        }
        slots.push(SlotWires { fields, valid });
    }
    RelWires {
        schema: out_schema,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::Mode;
    use qec_relation::{AggKind, Relation};

    fn rel2(rows: &[&[u64]]) -> Relation {
        Relation::from_rows(
            vec![Var(0), Var(1)],
            rows.iter().map(|r| r.to_vec()).collect(),
        )
    }

    fn run_unary<F>(r: &Relation, capacity: usize, f: F) -> Relation
    where
        F: FnOnce(&mut Builder, &RelWires) -> RelWires,
    {
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, r.schema().to_vec(), capacity);
        let out = f(&mut b, &w);
        let schema = out.schema.clone();
        let c = b.finish(out.flatten());
        let res = c
            .evaluate(&relation_to_values(r, capacity).unwrap())
            .unwrap();
        decode_relation(&schema, &res)
    }

    #[test]
    fn select_filters() {
        let r = rel2(&[&[1, 10], &[2, 20], &[3, 10]]);
        let got = run_unary(&r, 5, |b, w| {
            select(b, w, |b, s| {
                let ten = b.constant(10);
                b.eq(s.fields[1], ten)
            })
        });
        assert_eq!(got, r.select(|row| row[1] == 10));
    }

    #[test]
    fn project_dedups() {
        let r = rel2(&[&[1, 10], &[2, 10], &[3, 20]]);
        let got = run_unary(&r, 6, |b, w| project(b, w, VarSet::singleton(Var(1))));
        assert_eq!(got, r.project(VarSet::singleton(Var(1))));
    }

    #[test]
    fn project_to_empty_schema_is_boolean() {
        let r = rel2(&[&[1, 10], &[2, 20]]);
        let got = run_unary(&r, 4, |b, w| project(b, w, VarSet::EMPTY));
        assert_eq!(got.len(), 1); // the unit tuple: "non-empty"
        let empty = rel2(&[]);
        let got = run_unary(&empty, 4, |b, w| project(b, w, VarSet::EMPTY));
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn truncate_keeps_valid_tuples() {
        let r = rel2(&[&[5, 5], &[1, 1]]);
        let got = run_unary(&r, 8, |b, w| truncate(b, w, 3));
        assert_eq!(got, r);
    }

    #[test]
    fn truncate_assertion_fires_on_overflow() {
        let r = rel2(&[&[1, 1], &[2, 2], &[3, 3]]);
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, r.schema().to_vec(), 4);
        let t = truncate(&mut b, &w, 2);
        let c = b.finish(t.flatten());
        let err = c.evaluate(&relation_to_values(&r, 4).unwrap()).unwrap_err();
        assert!(matches!(err, crate::EvalError::AssertionFailed { .. }));
    }

    #[test]
    fn union_dedups_across_sides() {
        let r = rel2(&[&[1, 1], &[2, 2]]);
        let s = rel2(&[&[2, 2], &[3, 3]]);
        let mut b = Builder::new(Mode::Build);
        let rw = encode_relation(&mut b, r.schema().to_vec(), 3);
        let sw = encode_relation(&mut b, s.schema().to_vec(), 3);
        let u = union(&mut b, &rw, &sw);
        assert_eq!(u.capacity(), 6);
        let c = b.finish(u.flatten());
        let mut vals = relation_to_values(&r, 3).unwrap();
        vals.extend(relation_to_values(&s, 3).unwrap());
        let got = decode_relation(r.schema(), &c.evaluate(&vals).unwrap());
        assert_eq!(got, r.union(&s));
    }

    #[test]
    fn aggregate_count_sum_min_max() {
        let r = rel2(&[&[1, 10], &[1, 20], &[2, 5], &[2, 7], &[3, 1]]);
        for (op, kind) in [
            (AggOp::Count, AggKind::Count),
            (AggOp::Sum(Var(1)), AggKind::Sum(Var(1))),
            (AggOp::Min(Var(1)), AggKind::Min(Var(1))),
            (AggOp::Max(Var(1)), AggKind::Max(Var(1))),
        ] {
            let got = run_unary(&r, 8, |b, w| {
                aggregate(b, w, VarSet::singleton(Var(0)), op, Var(5))
            });
            let expect = r.aggregate(VarSet::singleton(Var(0)), kind, Var(5));
            assert_eq!(got, expect, "{op:?}");
        }
    }

    #[test]
    fn global_aggregate() {
        let r = rel2(&[&[1, 10], &[2, 20], &[3, 30]]);
        let got = run_unary(&r, 5, |b, w| {
            aggregate(b, w, VarSet::EMPTY, AggOp::Count, Var(5))
        });
        assert_eq!(got, r.aggregate(VarSet::EMPTY, AggKind::Count, Var(5)));
    }

    #[test]
    fn aggregate_on_empty_relation() {
        let r = rel2(&[]);
        let got = run_unary(&r, 4, |b, w| {
            aggregate(b, w, VarSet::singleton(Var(0)), AggOp::Count, Var(5))
        });
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn project_cost_linear_up_to_polylog() {
        fn cost(n: usize) -> u64 {
            let mut b = Builder::new(Mode::Count);
            let w = encode_relation(&mut b, vec![Var(0), Var(1)], n);
            let p = project(&mut b, &w, VarSet::singleton(Var(0)));
            b.finish(p.flatten()).size()
        }
        let ratio = cost(1024) as f64 / cost(128) as f64;
        // 8× data; N log²N ⇒ ≈ 8 · (10/7)² ≈ 16×; accept < 24×
        assert!(ratio < 24.0, "ratio {ratio}");
    }
}
