//! Shared-memory primitives for parallel circuit construction: a sharded
//! insert-only intern table (the concurrent hash-cons) and paged
//! write-once atomic stores (the compact struct-of-arrays gate arena).
//!
//! Both the word-level `Builder` and the bit-level `Lowerer` use these
//! with their own key encodings: a gate is packed into a non-zero `u128`
//! (kind tag in the low bits, operand ids above), interned into a table
//! sharded by the key hash's high bits, and its payload is written into
//! per-column pages *before* the key is published, so any thread that
//! finds the key also sees the payload (the per-shard mutex orders the
//! two). Wire ids come from a single atomic counter; dedup makes the set
//! of allocated gates schedule-independent even though the id order is
//! not — a deterministic replay (see `ir.rs`) restores sequential
//! numbering for materialized circuits.
//!
//! Storage is paged (`Pages<T>`): a fixed directory of lazily allocated
//! fixed-size pages, so concurrent writers never reallocate or move
//! entries, and count-mode builds that never touch a column pay nothing
//! for it. Entries are 4-byte operand indices and 1-byte kind tags —
//! ~13 bytes per materialized gate plus ~21 bytes of intern table at the
//! default load factor, which is what makes the N=1024 count-mode sweep
//! (≈1.4 billion wires) feasible in tens of GB instead of hundreds.

use std::sync::{Mutex, OnceLock};

/// log2 of entries per page: 1Mi entries. A page of `AtomicU32` is 4 MiB.
const PAGE_BITS: usize = 20;
const PAGE_LEN: usize = 1 << PAGE_BITS;
const PAGE_MASK: usize = PAGE_LEN - 1;
/// Pages in the directory: 4096 × 1Mi = 2³² entries, the full `WireId`
/// range. The directory itself is 64 KiB of `OnceLock`s.
const MAX_PAGES: usize = 1 << (32 - PAGE_BITS);

/// A fixed directory of lazily allocated pages. Indexing never moves
/// entries, so `&T` references handed out are stable for the lifetime of
/// the structure and concurrent writers need no coordination beyond the
/// per-entry atomics they store into.
pub(crate) struct Pages<T> {
    pages: Box<[OnceLock<Box<[T]>>]>,
}

impl<T: Default> Pages<T> {
    pub(crate) fn new() -> Self {
        let pages: Box<[OnceLock<Box<[T]>>]> = (0..MAX_PAGES).map(|_| OnceLock::new()).collect();
        Pages { pages }
    }

    /// The entry at `i`, allocating its page (zeroed / `Default`) on
    /// first touch.
    pub(crate) fn at(&self, i: u32) -> &T {
        let i = i as usize;
        let page = self.pages[i >> PAGE_BITS]
            .get_or_init(|| (0..PAGE_LEN).map(|_| T::default()).collect());
        &page[i & PAGE_MASK]
    }
}

/// Splitmix64 finalizer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn hash128(key: u128) -> u64 {
    mix((key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ mix((key >> 64) as u64))
}

/// One shard: open-addressed, insert-only, parallel key/id arrays
/// (a `(u128, u32)` tuple would pad to 32 bytes; split arrays cost 20).
/// Key `0` marks an empty slot — gate encodings start their kind tags at
/// 1, so no legal key is 0.
struct Shard {
    keys: Vec<u128>,
    ids: Vec<u32>,
    len: usize,
    /// Lookups that found an existing key (the hash-cons doing its job).
    hits: u64,
    /// Lookups that created a new entry.
    misses: u64,
}

const SHARD_INIT_CAP: usize = 16;

impl Shard {
    fn new() -> Self {
        Shard {
            keys: vec![0; SHARD_INIT_CAP],
            ids: vec![0; SHARD_INIT_CAP],
            len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Linear-probe slot for `key`: either its current position or the
    /// empty slot where it belongs.
    fn slot(&self, key: u128, h: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == 0 || k == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Doubles the arrays when load reaches 3/4.
    fn maybe_grow(&mut self) {
        if self.len * 4 < self.keys.len() * 3 {
            return;
        }
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_ids = std::mem::replace(&mut self.ids, vec![0; new_cap]);
        for (k, id) in old_keys.into_iter().zip(old_ids) {
            if k == 0 {
                continue;
            }
            let i = self.slot(k, hash128(k));
            self.keys[i] = k;
            self.ids[i] = id;
        }
    }
}

/// Number of shards (must be a power of two). 256 keeps lock contention
/// negligible at 8–16 workers while the per-shard mutexes stay cheap.
const NUM_SHARDS: usize = 256;

/// The sharded intern table: `u128` gate key → `u32` wire id, insert-only.
pub(crate) struct InternTable {
    shards: Box<[Mutex<Shard>]>,
}

impl InternTable {
    pub(crate) fn new() -> Self {
        let shards: Box<[Mutex<Shard>]> =
            (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new())).collect();
        InternTable { shards }
    }

    /// Looks up `key`; if absent, runs `create` *under the shard lock* to
    /// allocate and record the gate, then publishes `key → id`. Returns
    /// the id and whether this call created it. Because payload writes in
    /// `create` happen before the key is published and the same lock
    /// guards lookups, any thread that observes the key also observes the
    /// payload.
    pub(crate) fn intern_with(&self, key: u128, create: impl FnOnce() -> u32) -> (u32, bool) {
        debug_assert_ne!(key, 0, "key 0 is the empty-slot sentinel");
        let h = hash128(key);
        let shard = &self.shards[(h >> 56) as usize & (NUM_SHARDS - 1)];
        let mut s = shard.lock().unwrap();
        s.maybe_grow();
        let i = s.slot(key, h);
        if s.keys[i] != 0 {
            s.hits += 1;
            return (s.ids[i], false);
        }
        s.misses += 1;
        let id = create();
        s.keys[i] = key;
        s.ids[i] = id;
        s.len += 1;
        (id, true)
    }

    /// `(hits, misses)` summed over all shards since construction. Hits
    /// are dedup lookups that returned an existing wire; the hit *rate*
    /// `hits / (hits + misses)` is the online-CSE effectiveness the
    /// observability layer exports. Counted under the shard locks the
    /// lookups already take, so the untraced cost is one integer add.
    pub(crate) fn hit_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in self.shards.iter() {
            let s = s.lock().unwrap();
            hits += s.hits;
            misses += s.misses;
        }
        (hits, misses)
    }

    /// Total interned entries (test/diagnostic use).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn pages_store_and_read_across_page_boundaries() {
        let p: Pages<AtomicU32> = Pages::new();
        for &i in &[
            0u32,
            1,
            7,
            (PAGE_LEN - 1) as u32,
            PAGE_LEN as u32,
            3 * PAGE_LEN as u32 + 5,
        ] {
            p.at(i).store(i ^ 0xdead_beef, Ordering::Release);
        }
        for &i in &[
            0u32,
            1,
            7,
            (PAGE_LEN - 1) as u32,
            PAGE_LEN as u32,
            3 * PAGE_LEN as u32 + 5,
        ] {
            assert_eq!(p.at(i).load(Ordering::Acquire), i ^ 0xdead_beef);
        }
        // untouched entries read as default
        assert_eq!(p.at(12345).load(Ordering::Acquire), 0);
    }

    #[test]
    fn intern_dedups_sequentially() {
        let t = InternTable::new();
        let next = AtomicU32::new(0);
        let mk = || next.fetch_add(1, Ordering::Relaxed);
        let (a, created_a) = t.intern_with(100, mk);
        let (b, created_b) = t.intern_with(100, mk);
        let (c, created_c) = t.intern_with(200, mk);
        assert!(created_a && !created_b && created_c);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn intern_dedups_under_contention() {
        let t = InternTable::new();
        let next = AtomicU32::new(0);
        // 8 workers × 4k keys with heavy overlap: every key must map to
        // exactly one id, and the id set must be dense.
        qec_par::Pool::new(8).run_chunks(8 * 4096, 64, |r| {
            for i in r {
                let key = 1 + (i % 4096) as u128;
                t.intern_with(key, || next.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert_eq!(t.len(), 4096);
        assert_eq!(next.load(Ordering::Relaxed), 4096);
        // re-interning returns stable ids
        let (id0, created) = t.intern_with(1, || unreachable!());
        assert!(!created);
        assert!(id0 < 4096);
    }

    #[test]
    fn shards_grow_past_initial_capacity() {
        let t = InternTable::new();
        let next = AtomicU32::new(0);
        for k in 1..=100_000u128 {
            t.intern_with(k, || next.fetch_add(1, Ordering::Relaxed));
        }
        assert_eq!(t.len(), 100_000);
        for k in 1..=100_000u128 {
            let (_, created) = t.intern_with(k, || unreachable!());
            assert!(!created);
        }
    }
}
