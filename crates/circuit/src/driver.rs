//! The unified compile driver: one options struct, one entry point, one
//! report.
//!
//! Before this module existed every stage of the pipeline grew its own
//! `foo` / `foo_with_pool` pair and every caller picked its own pool
//! plumbing. [`CompileOptions`] replaces those ad-hoc knobs with a
//! single value that travels the whole pipeline — worker pool, whether
//! the optimizer runs, and where observability data goes — and
//! [`CompiledCircuit::compile_with`] is the one driver that consumes it,
//! returning the engine plus a [`PipelineReport`] describing where the
//! compile time went.
//!
//! Observability has two sinks by design:
//!
//! * **Driver stages** (optimize, tape, and the word-circuit build when
//!   entered through `RelCircuit::lower_with`) record spans and counters
//!   on `CompileOptions::recorder`.
//! * **Low-level layers** (the `qec-par` pool regions, the builder
//!   hash-cons) flush to the process-global recorder
//!   ([`qec_obs::global`]), because threading a handle through every hot
//!   worker closure would tax the untraced path.
//!
//! Setting `QEC_TRACE=1` unifies the two: [`CompileOptions::from_env`]
//! uses the global recorder, so driver spans and pool counters land in
//! the same document. Programmatic users who want the same unification
//! call [`qec_obs::install`] with their recorder.

use std::time::Instant;

use qec_obs::Recorder;
use qec_par::Pool;

use crate::engine::CompiledCircuit;
use crate::ir::{Circuit, EvalError};
use crate::opt::OptStats;

/// Options consumed by every pipeline entry point: the worker pool, the
/// optimizer switch, and the observability sink. Construct with
/// [`CompileOptions::from_env`] (honours `QEC_THREADS` / `QEC_TRACE`) or
/// [`CompileOptions::sequential`], then refine with the `with_*`
/// builders.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Worker pool used by the parallel build/optimize/lower passes. All
    /// passes are byte-identical across worker counts, so this is purely
    /// a throughput knob.
    pub pool: Pool,
    /// Run the word-level optimizer before taping (`true` everywhere
    /// except raw A/B measurements).
    pub optimize: bool,
    /// Populate the [`PipelineReport`] with a full metrics snapshot even
    /// when `recorder` is disabled: the driver substitutes a private
    /// enabled recorder for the duration of the call.
    pub collect_metrics: bool,
    /// Run the structural validator ([`crate::validate`]) on the circuit
    /// after every driver stage (on the source before anything runs, and
    /// on the optimizer's output together with its assertion-provenance
    /// map). A violation aborts the compile with
    /// [`EvalError::Invalid`]. Off by default — it is a harness/debug
    /// knob, also reachable via `QEC_VALIDATE=1` in the environment.
    pub validate: bool,
    /// Span/counter sink for the driver stages. Disabled by default —
    /// the fast path costs one boolean check per stage.
    pub recorder: Recorder,
}

impl CompileOptions {
    /// Environment-driven options: `QEC_THREADS` sizes the pool and
    /// `QEC_TRACE` selects the process-global recorder (enabled iff the
    /// variable is set to a non-empty value other than `0`), so driver
    /// spans and low-level pool/builder counters share one document.
    pub fn from_env() -> CompileOptions {
        CompileOptions {
            pool: Pool::from_env(),
            optimize: true,
            collect_metrics: false,
            validate: std::env::var("QEC_VALIDATE").is_ok_and(|v| !v.is_empty() && v != "0"),
            recorder: qec_obs::global(),
        }
    }

    /// Single-threaded, optimizing, untraced — the deterministic
    /// baseline every parity test compares against.
    pub fn sequential() -> CompileOptions {
        CompileOptions {
            pool: Pool::sequential(),
            optimize: true,
            collect_metrics: false,
            validate: false,
            recorder: Recorder::disabled(),
        }
    }

    /// Replaces the worker pool.
    pub fn with_pool(mut self, pool: Pool) -> CompileOptions {
        self.pool = pool;
        self
    }

    /// Switches the word-level optimizer on or off.
    pub fn with_optimize(mut self, optimize: bool) -> CompileOptions {
        self.optimize = optimize;
        self
    }

    /// Requests a full metrics snapshot in the report even without an
    /// enabled recorder.
    pub fn with_metrics(mut self, collect_metrics: bool) -> CompileOptions {
        self.collect_metrics = collect_metrics;
        self
    }

    /// Switches the after-every-stage structural validator on or off.
    pub fn with_validate(mut self, validate: bool) -> CompileOptions {
        self.validate = validate;
        self
    }

    /// Replaces the observability sink.
    pub fn with_recorder(mut self, recorder: Recorder) -> CompileOptions {
        self.recorder = recorder;
        self
    }

    /// The recorder the driver actually records into: the configured one
    /// when enabled, a fresh private enabled recorder when
    /// `collect_metrics` asks for a snapshot anyway, and the disabled
    /// no-op otherwise.
    pub fn effective_recorder(&self) -> Recorder {
        if self.recorder.is_enabled() || !self.collect_metrics {
            self.recorder.clone()
        } else {
            Recorder::new(true)
        }
    }
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions::from_env()
    }
}

/// Where one [`CompiledCircuit::compile_with`] call spent its time, plus
/// the optimizer counters and the recorder that captured the run.
///
/// Stage wall times are measured by the driver with plain monotonic
/// reads — they are always present, even with tracing disabled, because
/// three clock reads per compile are free. The recorder-backed exports
/// ([`PipelineReport::metrics_json`], [`PipelineReport::chrome_trace`])
/// carry data only when the effective recorder was enabled.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// `(stage name, wall nanoseconds)` in execution order. Stages:
    /// `"optimize"` (when the optimizer ran) and `"tape"`.
    pub stages: Vec<(&'static str, u64)>,
    /// Wall nanoseconds for the whole `compile_with` call.
    pub total_ns: u64,
    /// Optimizer counters, when the optimizer ran.
    pub opt: Option<OptStats>,
    /// The effective recorder for the run (disabled unless tracing or
    /// `collect_metrics` was on).
    pub recorder: Recorder,
}

impl PipelineReport {
    /// Wall nanoseconds of the named stage (0 when it did not run).
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, ns)| ns)
    }

    /// Fraction of `total_ns` accounted for by the named stages, in
    /// `[0, 1]`. The acceptance gate for the observability layer is that
    /// the instrumented stages cover ≥ 95 % of end-to-end compile time.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        let covered: u64 = self.stages.iter().map(|&(_, ns)| ns).sum();
        (covered as f64 / self.total_ns as f64).min(1.0)
    }

    /// The versioned JSON metrics document from the run's recorder.
    pub fn metrics_json(&self) -> String {
        self.recorder.metrics_json()
    }

    /// The Chrome trace-event document (`chrome://tracing`, Perfetto)
    /// from the run's recorder.
    pub fn chrome_trace(&self) -> String {
        self.recorder.chrome_trace()
    }
}

impl CompiledCircuit {
    /// Compiles `c` into a register-allocated instruction tape under
    /// `opts` — the single compile entry point.
    /// When `opts.optimize` is set the word-level optimizer runs
    /// first (on `opts.pool`; byte-identical for every worker count) and
    /// assertion failures keep reporting **source** gate indices via
    /// [`OptStats::assert_origin`]. Fails with [`EvalError::CountOnly`]
    /// for circuits built in count-only mode.
    pub fn compile_with(
        c: &Circuit,
        opts: &CompileOptions,
    ) -> Result<(CompiledCircuit, PipelineReport), EvalError> {
        if !c.is_evaluable() {
            return Err(EvalError::CountOnly);
        }
        if opts.validate {
            crate::validate::validate(c).map_err(EvalError::Invalid)?;
        }
        let recorder = opts.effective_recorder();
        let eff = opts.clone().with_recorder(recorder.clone());
        let root = recorder.span("compile");
        let t_total = Instant::now();
        let mut stages: Vec<(&'static str, u64)> = Vec::new();

        let optimized = if eff.optimize {
            let t = Instant::now();
            let (opt_c, st) = crate::opt::optimize_with(c, &eff);
            if eff.validate {
                crate::validate::validate(&opt_c).map_err(EvalError::Invalid)?;
                crate::validate::validate_opt(c, &opt_c, &st).map_err(EvalError::Invalid)?;
            }
            stages.push(("optimize", t.elapsed().as_nanos() as u64));
            Some((opt_c, st))
        } else {
            None
        };

        let t = Instant::now();
        let tape_span = recorder.span("tape");
        let mut eng = match &optimized {
            Some((opt_c, st)) => Self::compile_inner(opt_c, Some(st))?,
            None => Self::compile_inner(c, None)?,
        };
        drop(tape_span);
        stages.push(("tape", t.elapsed().as_nanos() as u64));

        let opt_stats = if let Some((_, st)) = optimized {
            // Report size/depth/wires of the *source* circuit: the
            // engine's observable behavior is defined against it.
            eng.stats.circuit_size = c.size();
            eng.stats.circuit_depth = c.depth();
            eng.stats.circuit_wires = c.num_wires();
            eng.stats.opt = Some(st.clone());
            Some(st)
        } else {
            None
        };

        if recorder.is_enabled() {
            recorder.gauge_max("engine.peak_registers", eng.stats.peak_registers as u64);
            recorder.gauge_max("engine.tape_len", eng.stats.tape_len as u64);
        }
        drop(root);
        let report = PipelineReport {
            stages,
            total_ns: t_total.elapsed().as_nanos() as u64,
            opt: opt_stats,
            recorder,
        };
        Ok((eng, report))
    }

    /// Compiles a flat [`WordTape`](crate::tape::WordTape) — typically
    /// one loaded from disk — into the evaluation engine: the
    /// compile-once / load-and-evaluate-many path. The tape is decoded
    /// (recorded as a `tape.decode` span) and handed to
    /// [`CompiledCircuit::compile_with`]; a decoded tape is structurally
    /// identical to the circuit it was encoded from, so evaluation
    /// results — including failing-assert gate indices — match the
    /// in-process pipeline exactly.
    pub fn compile_tape_with(
        tape: &crate::tape::WordTape,
        opts: &CompileOptions,
    ) -> Result<(CompiledCircuit, PipelineReport), EvalError> {
        let recorder = opts.effective_recorder();
        let span = recorder.span("tape.decode");
        let c = tape.decode().map_err(EvalError::Tape)?;
        drop(span);
        Self::compile_with(&c, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Builder, Mode};

    fn sample() -> Circuit {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let z = b.constant(0);
        let s2 = b.add(s, z); // folds away
        let p = b.mul(s2, s2);
        b.finish(vec![p])
    }

    #[test]
    fn compile_with_matches_legacy_compile() {
        let c = sample();
        let (eng, report) =
            CompiledCircuit::compile_with(&c, &CompileOptions::sequential()).expect("evaluable");
        assert!(report.opt.is_some());
        assert!(report.total_ns > 0);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].0, "optimize");
        assert_eq!(report.stages[1].0, "tape");
        let out = eng.evaluate(&[3, 4]).unwrap();
        assert_eq!(out, vec![49]);
    }

    #[test]
    fn raw_compile_skips_the_optimizer() {
        let c = sample();
        let opts = CompileOptions::sequential().with_optimize(false);
        let (eng, report) = CompiledCircuit::compile_with(&c, &opts).expect("evaluable");
        assert!(report.opt.is_none());
        assert_eq!(report.stage_ns("optimize"), 0);
        assert!(report.stage_ns("tape") > 0);
        assert_eq!(eng.evaluate(&[3, 4]).unwrap(), vec![49]);
    }

    #[test]
    fn collect_metrics_substitutes_an_enabled_recorder() {
        let c = sample();
        let opts = CompileOptions::sequential().with_metrics(true);
        assert!(!opts.recorder.is_enabled());
        let (_, report) = CompiledCircuit::compile_with(&c, &opts).expect("evaluable");
        assert!(report.recorder.is_enabled());
        assert!(report.recorder.span_total_ns("compile") > 0);
        assert!(report.recorder.span_total_ns("optimize") > 0);
        assert!(report.recorder.span_total_ns("tape") > 0);
        let doc = qec_obs::json::parse(&report.metrics_json()).expect("valid metrics JSON");
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_f64()),
            Some(f64::from(qec_obs::METRICS_SCHEMA_VERSION))
        );
    }

    #[test]
    fn count_only_circuits_are_rejected() {
        let mut b = Builder::new(Mode::Count);
        let x = b.input();
        let y = b.add(x, x);
        let c = b.finish(vec![y]);
        let err = CompiledCircuit::compile_with(&c, &CompileOptions::sequential());
        assert!(matches!(err, Err(EvalError::CountOnly)));
    }

    #[test]
    fn coverage_accounts_for_stage_time() {
        let c = sample();
        let (_, report) = CompiledCircuit::compile_with(&c, &CompileOptions::sequential()).unwrap();
        let cov = report.coverage();
        assert!((0.0..=1.0).contains(&cov), "coverage {cov} out of range");
    }
}
