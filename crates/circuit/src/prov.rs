//! Provenance circuits: hash-consed `⊕`/`⊗` DAGs over tuple leaves —
//! the factorised output mode for Datalog fixpoints.
//!
//! A [`ProvCircuit`] is the free-semiring analogue of the word circuit:
//! leaves are input-tuple identities, internal nodes are n-ary `⊕` and
//! `⊗`. Nodes are interned (hash-consed), so re-derivations collapse
//! structurally, and `⊕` deduplicates its children — sound for the
//! *idempotent* semirings the fixpoint compiler supports (Boolean and
//! the tropicals), where `x ⊕ x = x`. The DAG node count is the
//! factorised representation size measured against the Berkholz-style
//! bounds in X24; [`ProvCircuit::monomials`] counts the flat polynomial
//! expansion it avoids.

use std::collections::HashMap;

/// Index of a node in a [`ProvCircuit`].
pub type ProvId = u32;

/// Flattening cap for nested `Plus`/`Times` children. Inlining an
/// associative child's list is what canonicalizes `⊗(⊗(a,b),c)` and
/// `⊗(a,⊗(b,c))` to one node, but inlining a *shared* child duplicates
/// its list — repeated squaring (`d ← d⊗d`) would double the flat
/// vector per level, rebuilding exactly the exponential expansion the
/// DAG exists to avoid. Past the cap a node keeps its children nested
/// (still identity-cleaned and sorted), trading canonical flatness for
/// linear memory. Fixpoint provenance stays far under the cap (child
/// widths track rule-body and derivation counts), so real workloads
/// flatten identically.
const FLATTEN_CAP: usize = 1024;

/// One provenance gate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProvNode {
    /// The `⊕`-identity: the annotation of an absent tuple.
    Zero,
    /// The `⊗`-identity: the annotation of an unannotated atom.
    One,
    /// An input tuple, by caller-assigned id.
    Leaf(u32),
    /// n-ary `⊕` (children sorted, deduplicated, `Zero`-free).
    Plus(Vec<ProvId>),
    /// n-ary `⊗` (children sorted, `One`-free).
    Times(Vec<ProvId>),
}

/// A hash-consed provenance DAG. `Zero` and `One` are pre-interned as
/// ids 0 and 1.
#[derive(Clone, Debug, Default)]
pub struct ProvCircuit {
    nodes: Vec<ProvNode>,
    cons: HashMap<ProvNode, ProvId>,
}

impl ProvCircuit {
    /// An empty circuit (holding just the two identities).
    pub fn new() -> Self {
        let mut pc = ProvCircuit {
            nodes: Vec::new(),
            cons: HashMap::new(),
        };
        pc.intern(ProvNode::Zero);
        pc.intern(ProvNode::One);
        pc
    }

    fn intern(&mut self, n: ProvNode) -> ProvId {
        if let Some(&id) = self.cons.get(&n) {
            return id;
        }
        let id = self.nodes.len() as ProvId;
        self.nodes.push(n.clone());
        self.cons.insert(n, id);
        id
    }

    /// The `⊕`-identity.
    pub fn zero(&self) -> ProvId {
        0
    }

    /// The `⊗`-identity.
    pub fn one(&self) -> ProvId {
        1
    }

    /// Interns an input-tuple leaf.
    pub fn leaf(&mut self, id: u32) -> ProvId {
        self.intern(ProvNode::Leaf(id))
    }

    /// Interns `⊕(children)`: drops `Zero`s, flattens nested `Plus` (up
    /// to [`FLATTEN_CAP`]), sorts, and deduplicates (idempotence).
    /// Empty → `Zero`, singleton → the child itself.
    pub fn plus(&mut self, children: impl IntoIterator<Item = ProvId>) -> ProvId {
        let kept: Vec<ProvId> = children
            .into_iter()
            .filter(|&c| !matches!(self.nodes[c as usize], ProvNode::Zero))
            .collect();
        let mut flat: Vec<ProvId> = Vec::new();
        let mut overflow = false;
        for &c in &kept {
            match &self.nodes[c as usize] {
                ProvNode::Plus(inner) if flat.len() + inner.len() <= FLATTEN_CAP => {
                    flat.extend_from_slice(inner)
                }
                ProvNode::Plus(_) => {
                    overflow = true;
                    break;
                }
                _ => flat.push(c),
            }
        }
        let mut flat = if overflow { kept } else { flat };
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.zero(),
            1 => flat[0],
            _ => self.intern(ProvNode::Plus(flat)),
        }
    }

    /// Interns `⊗(children)`: drops `One`s, annihilates on `Zero`,
    /// flattens nested `Times` (up to [`FLATTEN_CAP`]), and sorts
    /// (commutativity). Empty → `One`, singleton → the child itself.
    pub fn times(&mut self, children: impl IntoIterator<Item = ProvId>) -> ProvId {
        let mut kept: Vec<ProvId> = Vec::new();
        for c in children {
            match &self.nodes[c as usize] {
                ProvNode::Zero => return self.zero(),
                ProvNode::One => {}
                _ => kept.push(c),
            }
        }
        let mut flat: Vec<ProvId> = Vec::new();
        let mut overflow = false;
        for &c in &kept {
            match &self.nodes[c as usize] {
                ProvNode::Times(inner) if flat.len() + inner.len() <= FLATTEN_CAP => {
                    flat.extend_from_slice(inner)
                }
                ProvNode::Times(_) => {
                    overflow = true;
                    break;
                }
                _ => flat.push(c),
            }
        }
        let mut flat = if overflow { kept } else { flat };
        flat.sort_unstable();
        match flat.len() {
            0 => self.one(),
            1 => flat[0],
            _ => self.intern(ProvNode::Times(flat)),
        }
    }

    /// Total interned nodes (including the identities).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the identities exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The node table, topologically ordered (children precede parents).
    pub fn nodes(&self) -> &[ProvNode] {
        &self.nodes
    }

    /// Number of DAG nodes reachable from `roots` (the factorised
    /// representation size of those polynomials).
    pub fn dag_size(&self, roots: &[ProvId]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<ProvId> = roots.to_vec();
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            count += 1;
            match &self.nodes[id as usize] {
                ProvNode::Plus(cs) | ProvNode::Times(cs) => stack.extend_from_slice(cs),
                _ => {}
            }
        }
        count
    }

    /// Number of monomials in the flat polynomial expansion of `root`
    /// (`Zero` → 0, leaves/`One` → 1, `⊕` sums, `⊗` multiplies), or
    /// `None` once the count exceeds `cap` — the blow-up the factorised
    /// form avoids.
    pub fn monomials(&self, root: ProvId, cap: u64) -> Option<u64> {
        // bottom-up over the (topologically ordered) node table
        let mut counts: Vec<Option<u64>> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let c = match n {
                ProvNode::Zero => Some(0),
                ProvNode::One | ProvNode::Leaf(_) => Some(1),
                ProvNode::Plus(cs) => cs.iter().try_fold(0u64, |acc, &c| {
                    counts[c as usize].and_then(|v| acc.checked_add(v))
                }),
                ProvNode::Times(cs) => cs.iter().try_fold(1u64, |acc, &c| {
                    counts[c as usize].and_then(|v| acc.checked_mul(v))
                }),
            };
            counts.push(c.filter(|&v| v <= cap));
        }
        counts[root as usize]
    }

    /// Evaluates every node under a concrete semiring given by its two
    /// identities, `⊕`, `⊗`, and per-leaf values; returns one value per
    /// node (index by [`ProvId`]). Validation hook: evaluating a
    /// fixpoint's provenance must reproduce the annotations the word
    /// evaluator computed.
    pub fn eval(
        &self,
        zero: u64,
        one: u64,
        plus: impl Fn(u64, u64) -> u64,
        times: impl Fn(u64, u64) -> u64,
        leaf: impl Fn(u32) -> u64,
    ) -> Vec<u64> {
        let mut vals: Vec<u64> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let v = match n {
                ProvNode::Zero => zero,
                ProvNode::One => one,
                ProvNode::Leaf(t) => leaf(*t),
                ProvNode::Plus(cs) => cs.iter().map(|&c| vals[c as usize]).fold(zero, &plus),
                ProvNode::Times(cs) => cs.iter().map(|&c| vals[c as usize]).fold(one, &times),
            };
            vals.push(v);
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consing_collapses_rederivations() {
        let mut pc = ProvCircuit::new();
        let (a, b, c) = (pc.leaf(0), pc.leaf(1), pc.leaf(2));
        let ab = pc.times([a, b]);
        let ab2 = pc.times([b, a]); // commutativity → same node
        assert_eq!(ab, ab2);
        let s1 = pc.plus([ab, c]);
        let s2 = pc.plus([c, ab, ab]); // idempotence → same node
        assert_eq!(s1, s2);
        let before = pc.len();
        let _ = pc.plus([ab, c]);
        assert_eq!(pc.len(), before, "re-derivation added no node");
    }

    #[test]
    fn identities_simplify() {
        let mut pc = ProvCircuit::new();
        let a = pc.leaf(7);
        let zero = pc.zero();
        let one = pc.one();
        assert_eq!(pc.plus([zero, a]), a);
        assert_eq!(pc.times([one, a]), a);
        assert_eq!(pc.times([zero, a]), zero);
        assert_eq!(pc.plus([]), zero);
        assert_eq!(pc.times([]), one);
    }

    #[test]
    fn eval_and_monomials() {
        // (l0 ⊗ l1) ⊕ l2 under (ℕ, +, ×) with leaf i ↦ i + 2
        let mut pc = ProvCircuit::new();
        let (a, b, c) = (pc.leaf(0), pc.leaf(1), pc.leaf(2));
        let ab = pc.times([a, b]);
        let s = pc.plus([ab, c]);
        let vals = pc.eval(0, 1, |x, y| x + y, |x, y| x * y, |t| u64::from(t) + 2);
        assert_eq!(vals[s as usize], 2 * 3 + 4);
        assert_eq!(pc.monomials(s, 1000), Some(2));
        // and a deep shared chain expands multiplicatively
        let mut deep = pc.plus([a, b]);
        for _ in 0..40 {
            deep = pc.times([deep, deep]);
        }
        assert_eq!(
            pc.monomials(deep, 1_000_000),
            None,
            "flat count overflows the cap"
        );
        assert!(pc.dag_size(&[deep]) < 50, "factorised form stays tiny");
    }
}
