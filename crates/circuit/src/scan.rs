//! Scan (prefix sums) and segmented scan circuits (Sec. 5.1, Alg. 4).

use crate::{Builder, WireId};

/// A binary combining operator over wire vectors, as used by the scan
/// circuits: `op(builder, a, x) = a ⊕ x`.
pub type ScanOp<'a> = &'a mut dyn FnMut(&mut Builder, &[WireId], &[WireId]) -> Vec<WireId>;

/// The classical `⊕`-scan circuit (Hillis–Steele, Alg. 4): given elements
/// `x_1..x_K` (each a wire vector) and an associative operator, produces
/// the inclusive prefix combination at every position. `O(K log K)`
/// applications of `⊕`, `O(log K)` levels.
///
/// `op(b, a, x)` must combine `a ⊕ x` into a new wire vector of the same
/// shape.
pub fn scan(b: &mut Builder, elems: &[Vec<WireId>], op: ScanOp<'_>) -> Vec<Vec<WireId>> {
    let n = elems.len();
    let mut cur: Vec<Vec<WireId>> = elems.to_vec();
    let mut offset = 1usize;
    while offset < n {
        let prev = cur.clone();
        for j in offset..n {
            cur[j] = op(b, &prev[j - offset], &prev[j]);
        }
        offset *= 2;
    }
    cur
}

/// The `⊕̄`-segmented scan (Sec. 5.1): prefix combinations restarted at
/// every change of `key`. Implemented exactly as in the paper by running a
/// plain scan with the derived operator
/// `(a₁,b₁) ⊕̄ (a₂,b₂) = (a₂, a₁=a₂ ? b₁⊕b₂ : b₂)`,
/// which is associative.
pub fn segmented_scan(
    b: &mut Builder,
    keys: &[Vec<WireId>],
    vals: &[Vec<WireId>],
    op: ScanOp<'_>,
) -> Vec<Vec<WireId>> {
    assert_eq!(
        keys.len(),
        vals.len(),
        "segmented scan key/value length mismatch"
    );
    let n = keys.len();
    if n == 0 {
        return Vec::new();
    }
    let klen = keys[0].len();
    // element = key ++ val
    let elems: Vec<Vec<WireId>> = keys
        .iter()
        .zip(vals.iter())
        .map(|(k, v)| {
            let mut e = k.clone();
            e.extend_from_slice(v);
            e
        })
        .collect();
    let mut barred = |b: &mut Builder, a: &[WireId], x: &[WireId]| -> Vec<WireId> {
        let (ka, va) = a.split_at(klen);
        let (kx, vx) = x.split_at(klen);
        let same = b.vec_eq(ka, kx);
        let combined = op(b, va, vx);
        let picked = b.vec_mux(same, &combined, vx);
        let mut e = kx.to_vec();
        e.extend(picked);
        e
    };
    scan(b, &elems, &mut barred)
        .into_iter()
        .map(|e| e[klen..].to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn sum_scan_matches_prefix_sums() {
        let mut b = Builder::new(Mode::Build);
        let xs: Vec<Vec<WireId>> = (0..7).map(|_| vec![b.input()]).collect();
        let out = scan(&mut b, &xs, &mut |b, a, x| vec![b.add(a[0], x[0])]);
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        let res = c.evaluate(&[3, 1, 4, 1, 5, 9, 2]).unwrap();
        assert_eq!(res, vec![3, 4, 8, 9, 14, 23, 25]);
    }

    #[test]
    fn max_scan() {
        let mut b = Builder::new(Mode::Build);
        let xs: Vec<Vec<WireId>> = (0..5).map(|_| vec![b.input()]).collect();
        let out = scan(&mut b, &xs, &mut |b, a, x| {
            let gt = b.lt(x[0], a[0]);
            vec![b.mux(gt, a[0], x[0])]
        });
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        assert_eq!(c.evaluate(&[2, 7, 1, 6, 9]).unwrap(), vec![2, 7, 7, 7, 9]);
    }

    #[test]
    fn scan_of_single_element_is_identity() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let out = scan(&mut b, &[vec![x]], &mut |b, a, v| vec![b.add(a[0], v[0])]);
        let c = b.finish(vec![out[0][0]]);
        assert_eq!(c.evaluate(&[42]).unwrap(), vec![42]);
    }

    #[test]
    fn segmented_sum_restarts_at_key_change() {
        let mut b = Builder::new(Mode::Build);
        let keys: Vec<Vec<WireId>> = (0..6).map(|_| vec![b.input()]).collect();
        let vals: Vec<Vec<WireId>> = (0..6).map(|_| vec![b.input()]).collect();
        let out = segmented_scan(&mut b, &keys, &vals, &mut |b, a, x| vec![b.add(a[0], x[0])]);
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        // keys: 1 1 1 2 2 3 ; vals: 1 2 3 10 20 5
        let mut inputs = vec![1, 1, 1, 2, 2, 3];
        inputs.extend([1, 2, 3, 10, 20, 5]);
        assert_eq!(c.evaluate(&inputs).unwrap(), vec![1, 3, 6, 10, 30, 5]);
    }

    #[test]
    fn segmented_scan_with_composite_keys() {
        let mut b = Builder::new(Mode::Build);
        let keys: Vec<Vec<WireId>> = (0..4).map(|_| vec![b.input(), b.input()]).collect();
        let vals: Vec<Vec<WireId>> = (0..4).map(|_| vec![b.input()]).collect();
        let out = segmented_scan(&mut b, &keys, &vals, &mut |b, a, x| vec![b.add(a[0], x[0])]);
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        // keys: (1,1) (1,1) (1,2) (2,2); vals 1 1 1 1
        let inputs = vec![1, 1, 1, 1, 1, 2, 2, 2, /* vals */ 1, 1, 1, 1];
        assert_eq!(c.evaluate(&inputs).unwrap(), vec![1, 2, 1, 1]);
    }

    #[test]
    fn repetition_operator_copies_segment_head() {
        // ⊕ = "keep first" (the primary-key join's copy operator)
        let mut b = Builder::new(Mode::Build);
        let keys: Vec<Vec<WireId>> = (0..5).map(|_| vec![b.input()]).collect();
        let vals: Vec<Vec<WireId>> = (0..5).map(|_| vec![b.input()]).collect();
        let out = segmented_scan(&mut b, &keys, &vals, &mut |_b, a, _x| vec![a[0]]);
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        // keys 1 1 2 2 2; vals 7 0 9 0 0 → 7 7 9 9 9
        let mut inputs = vec![1, 1, 2, 2, 2];
        inputs.extend([7, 0, 9, 0, 0]);
        assert_eq!(c.evaluate(&inputs).unwrap(), vec![7, 7, 9, 9, 9]);
    }

    #[test]
    fn scan_size_is_n_log_n() {
        fn cost(n: usize) -> u64 {
            let mut b = Builder::new(Mode::Count);
            let xs: Vec<Vec<WireId>> = (0..n).map(|_| vec![b.input()]).collect();
            let out = scan(&mut b, &xs, &mut |b, a, x| vec![b.add(a[0], x[0])]);
            b.finish(out.into_iter().map(|v| v[0]).collect()).size()
        }
        let (c64, c512) = (cost(64), cost(512));
        // N log N: 512·9/(64·6) = 12× — accept 6..20
        let ratio = c512 as f64 / c64 as f64;
        assert!((6.0..20.0).contains(&ratio), "ratio {ratio}");
    }
}
