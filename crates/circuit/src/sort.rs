//! Sorting networks over relation slots.
//!
//! The paper allows any `Õ(N)`-size, `Õ(1)`-depth sorting network
//! (Sec. 5, "Ordering"); we provide Batcher's two networks — odd–even
//! mergesort (default; fewer comparators) and the bitonic sorter — both
//! `O(K log² K)` compare-exchange units and `O(log² K)` depth. The
//! `O(N log N)` AKS network has galactic constants (see `DESIGN.md`).
//! Non-power-of-two capacities are padded with dummy slots that sort to
//! the end and are discarded afterwards, so the visible capacity is
//! unchanged.

use qec_relation::Var;

use crate::rel::{RelWires, SlotWires, QMARK};
use crate::{Builder, WireId};

/// How to order slots. All orderings place dummy slots last, which
/// implements the paper's convention that "all non-dummy tuples are placed
/// before the dummy tuples" so rank numbers are correct (Sec. 5).
#[derive(Clone, Debug)]
pub enum SortKey {
    /// Order by the given columns lexicographically (dummies last).
    Columns(Vec<Var>),
    /// Order by columns, with an extra tie-break wire *after* the columns
    /// (smaller tie-break value first). Used by the primary-key join
    /// (Alg. 6 line 4: tuples with `C ≠ ?` first within a `B` group).
    ColumnsThen(Vec<Var>, usize),
    /// Only move dummies last, otherwise preserve nothing in particular
    /// (used by truncation).
    ValidFirst,
}

fn key_wires(
    b: &mut Builder,
    rel: &RelWires,
    slot: usize,
    key: &SortKey,
    extra: &[Vec<WireId>],
) -> Vec<WireId> {
    let s = &rel.slots[slot];
    // leading component: !valid, so dummies (0-valid ⇒ 1) sort last
    let invalid = b.not(s.valid);
    let mut k = vec![invalid];
    match key {
        SortKey::ValidFirst => {}
        SortKey::Columns(cols) => {
            for &v in cols {
                let c = rel.col(v).expect("sort column in schema");
                // dummies carry arbitrary fields; force them to QMARK so
                // equal keys cannot straddle the valid/dummy boundary
                let qm = b.constant(QMARK);
                let f = b.mux(s.valid, s.fields[c], qm);
                k.push(f);
            }
        }
        SortKey::ColumnsThen(cols, tie_idx) => {
            for &v in cols {
                let c = rel.col(v).expect("sort column in schema");
                let qm = b.constant(QMARK);
                let f = b.mux(s.valid, s.fields[c], qm);
                k.push(f);
            }
            k.push(extra[*tie_idx][slot]);
        }
    }
    k
}

/// Which comparator network to instantiate. Both are Batcher networks
/// with `Θ(K log² K)` comparators and `Θ(log² K)` depth; odd–even
/// mergesort uses roughly half the comparators (`~K/4·log²K` vs
/// `~K/2·log²K`) at identical depth, so it is the default. The choice is
/// an ablation knob for experiment X12.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SortNetwork {
    /// Batcher odd–even mergesort (fewer comparators).
    #[default]
    OddEvenMerge,
    /// Batcher bitonic sorter (the textbook two-loop network).
    Bitonic,
}

/// Comparator schedule `(i, j, ascending)` for a power-of-two size.
fn comparators(network: SortNetwork, m: usize) -> Vec<(usize, usize, bool)> {
    let mut out = Vec::new();
    match network {
        SortNetwork::Bitonic => {
            let mut stage = 2usize;
            while stage <= m {
                let mut step = stage / 2;
                while step >= 1 {
                    for i in 0..m {
                        let j = i ^ step;
                        if j > i {
                            out.push((i, j, (i & stage) == 0));
                        }
                    }
                    step /= 2;
                }
                stage *= 2;
            }
        }
        SortNetwork::OddEvenMerge => {
            // Batcher odd–even mergesort, iterative form.
            let mut p = 1usize;
            while p < m {
                let mut k = p;
                while k >= 1 {
                    for j in (k % p..m - k).step_by(2 * k) {
                        for i in 0..k.min(m - j - k) {
                            if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                                out.push((i + j, i + j + k, true));
                            }
                        }
                    }
                    k /= 2;
                }
                p *= 2;
            }
        }
    }
    out
}

/// Sorts the slots of `rel` with a Batcher comparator network (see
/// [`SortNetwork`]), returning a new relation wire bundle of the same
/// capacity. `extra` supplies auxiliary per-slot wire columns referenced
/// by [`SortKey::ColumnsThen`]; they are permuted alongside the slots and
/// returned.
pub fn sort_slots_with(
    b: &mut Builder,
    rel: &RelWires,
    key: &SortKey,
    extra: &[Vec<WireId>],
) -> (RelWires, Vec<Vec<WireId>>) {
    sort_slots_network(b, rel, key, extra, SortNetwork::default())
}

/// [`sort_slots_with`] with an explicit network choice.
pub fn sort_slots_network(
    b: &mut Builder,
    rel: &RelWires,
    key: &SortKey,
    extra: &[Vec<WireId>],
    network: SortNetwork,
) -> (RelWires, Vec<Vec<WireId>>) {
    let n = rel.capacity();
    for col in extra {
        assert_eq!(col.len(), n, "extra column capacity mismatch");
    }
    if n <= 1 {
        return (rel.clone(), extra.to_vec());
    }
    let padded = n.next_power_of_two();

    // Element = (slot wires, extra wires, key wires). Padding elements are
    // dummy slots whose key (leading !valid = 1, fields = QMARK) sorts
    // after every real slot's key.
    struct Elem {
        fields: Vec<WireId>,
        valid: WireId,
        extra: Vec<WireId>,
        key: Vec<WireId>,
    }
    let mut elems: Vec<Elem> = (0..n)
        .map(|i| Elem {
            fields: rel.slots[i].fields.clone(),
            valid: rel.slots[i].valid,
            extra: extra.iter().map(|col| col[i]).collect(),
            key: key_wires(b, rel, i, key, extra),
        })
        .collect();
    let key_len = elems[0].key.len();
    let zero = b.constant(0);
    let qm = b.constant(QMARK);
    let one = b.constant(1);
    for _ in n..padded {
        let mut k = vec![one];
        k.extend(std::iter::repeat_n(qm, key_len - 1));
        elems.push(Elem {
            fields: vec![zero; rel.arity()],
            valid: zero,
            extra: vec![zero; extra.len()],
            key: k,
        });
    }

    // Instantiate the comparator schedule; each comparator is a
    // lexicographic compare plus a mux per carried wire. A comparator
    // depends only on the latest earlier comparator touching either of
    // its lanes, so a greedy pass groups the schedule into conflict-free
    // layers: the data-flow DAG is unchanged, and `fork_join` can emit
    // each layer's comparators from multiple workers (on a sequential
    // builder the layers simply run in order).
    let schedule = comparators(network, padded);
    let mut layer_of = vec![0usize; schedule.len()];
    let mut last_on_lane = vec![usize::MAX; padded];
    let mut num_layers = 0usize;
    for (k, &(i, j, _)) in schedule.iter().enumerate() {
        let after = |lane: usize| match last_on_lane[lane] {
            usize::MAX => 0,
            prev => layer_of[prev] + 1,
        };
        let l = after(i).max(after(j));
        layer_of[k] = l;
        last_on_lane[i] = k;
        last_on_lane[j] = k;
        num_layers = num_layers.max(l + 1);
    }
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); num_layers];
    for (k, &l) in layer_of.iter().enumerate() {
        layers[l].push(k);
    }

    for layer in &layers {
        let swapped = b.fork_join(layer.len(), |t, bb| {
            let (i, j, ascending) = schedule[layer[t]];
            let (ei, ej) = (&elems[i], &elems[j]);
            let swap_raw = bb.lex_lt(&ej.key, &ei.key);
            let swap = if ascending {
                swap_raw
            } else {
                bb.not(swap_raw)
            };
            let new_i = Elem {
                fields: bb.vec_mux(swap, &ej.fields, &ei.fields),
                valid: bb.mux(swap, ej.valid, ei.valid),
                extra: bb.vec_mux(swap, &ej.extra, &ei.extra),
                key: bb.vec_mux(swap, &ej.key, &ei.key),
            };
            let new_j = Elem {
                fields: bb.vec_mux(swap, &ei.fields, &ej.fields),
                valid: bb.mux(swap, ei.valid, ej.valid),
                extra: bb.vec_mux(swap, &ei.extra, &ej.extra),
                key: bb.vec_mux(swap, &ei.key, &ej.key),
            };
            (new_i, new_j)
        });
        for (t, (new_i, new_j)) in swapped.into_iter().enumerate() {
            let (i, j, _) = schedule[layer[t]];
            elems[i] = new_i;
            elems[j] = new_j;
        }
    }

    // Real slots all sort before padding (padding keys are maximal), so
    // truncating back to n keeps every real tuple.
    let slots: Vec<SlotWires> = elems[..n]
        .iter()
        .map(|e| SlotWires {
            fields: e.fields.clone(),
            valid: e.valid,
        })
        .collect();
    let out_extra: Vec<Vec<WireId>> = (0..extra.len())
        .map(|c| elems[..n].iter().map(|e| e.extra[c]).collect())
        .collect();
    (
        RelWires {
            schema: rel.schema.clone(),
            slots,
        },
        out_extra,
    )
}

/// [`sort_slots_with`] without auxiliary columns.
pub fn sort_slots(b: &mut Builder, rel: &RelWires, key: &SortKey) -> RelWires {
    sort_slots_with(b, rel, key, &[]).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::Mode;
    use qec_relation::Relation;

    fn run_sort(rows: &[&[u64]], capacity: usize, cols: &[u32]) -> Vec<Vec<u64>> {
        let schema = vec![Var(0), Var(1)];
        let r = Relation::from_rows(schema.clone(), rows.iter().map(|r| r.to_vec()).collect());
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, schema.clone(), capacity);
        let key = SortKey::Columns(cols.iter().map(|&i| Var(i)).collect());
        let sorted = sort_slots(&mut b, &w, &key);
        let c = b.finish(sorted.flatten());
        let out = c
            .evaluate(&relation_to_values(&r, capacity).unwrap())
            .unwrap();
        // return raw slots (value rows with valid flag) to check placement
        out.chunks(3).map(|ch| ch.to_vec()).collect()
    }

    #[test]
    fn sorts_by_column_with_dummies_last() {
        let slots = run_sort(&[&[3, 1], &[1, 2], &[2, 3]], 5, &[0]);
        let valid: Vec<u64> = slots.iter().map(|s| s[2]).collect();
        assert_eq!(valid, vec![1, 1, 1, 0, 0]);
        let a: Vec<u64> = slots[..3].iter().map(|s| s[0]).collect();
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn sort_by_second_column() {
        let slots = run_sort(&[&[1, 9], &[2, 4], &[3, 7]], 4, &[1]);
        let bcol: Vec<u64> = slots[..3].iter().map(|s| s[1]).collect();
        assert_eq!(bcol, vec![4, 7, 9]);
    }

    #[test]
    fn non_power_of_two_capacity() {
        for cap in [3usize, 5, 6, 7, 9] {
            let slots = run_sort(&[&[9, 0], &[4, 0], &[7, 0]], cap, &[0]);
            let reals: Vec<u64> = slots.iter().filter(|s| s[2] == 1).map(|s| s[0]).collect();
            assert_eq!(reals, vec![4, 7, 9], "capacity {cap}");
            assert_eq!(slots.len(), cap);
        }
    }

    #[test]
    fn sort_preserves_multiset() {
        let schema = vec![Var(0), Var(1)];
        let r = Relation::from_rows(
            schema.clone(),
            vec![vec![5, 5], vec![1, 1], vec![3, 3], vec![2, 2]],
        );
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, schema.clone(), 6);
        let sorted = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
        let c = b.finish(sorted.flatten());
        let out = c.evaluate(&relation_to_values(&r, 6).unwrap()).unwrap();
        assert_eq!(decode_relation(&schema, &out), r);
    }

    #[test]
    fn tie_break_extra_column_orders_within_group() {
        // two tuples with equal sort column; tie wire orders them
        let schema = vec![Var(0)];
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, schema.clone(), 2);
        let tie0 = b.input();
        let tie1 = b.input();
        let key = SortKey::ColumnsThen(vec![Var(0)], 0);
        let (sorted, extras) = sort_slots_with(&mut b, &w, &key, &[vec![tie0, tie1]]);
        let mut outs = sorted.flatten();
        outs.extend(extras[0].clone());
        let c = b.finish(outs);
        // rows: (7) tie=1, (7) tie=0 → after sort the tie=0 row first
        let out = c.evaluate(&[7, 1, 7, 1, 1, 0]).unwrap();
        assert_eq!(out[4..6], [0, 1]); // permuted tie column
    }

    #[test]
    fn odd_even_network_sorts() {
        // exhaustive 0/1 check (Knuth's 0-1 principle) on 8 elements
        for mask in 0u32..256 {
            let vals: Vec<u64> = (0..8).map(|i| u64::from((mask >> i) & 1)).collect();
            let schema = vec![Var(0)];
            let r = Relation::from_rows(
                schema.clone(),
                vals.iter()
                    .enumerate()
                    .map(|(i, &v)| vec![v * 100 + i as u64])
                    .collect(),
            );
            let mut b = Builder::new(Mode::Build);
            let w = encode_relation(&mut b, schema.clone(), 8);
            let (sorted, _) = sort_slots_network(
                &mut b,
                &w,
                &SortKey::Columns(vec![Var(0)]),
                &[],
                SortNetwork::OddEvenMerge,
            );
            let c = b.finish(sorted.flatten());
            let out = c.evaluate(&relation_to_values(&r, 8).unwrap()).unwrap();
            let got: Vec<u64> = out.chunks(2).map(|ch| ch[0] / 100).collect();
            let mut expect: Vec<u64> = vals.clone();
            expect.sort_unstable();
            assert_eq!(got, expect, "mask {mask:#b}");
        }
    }

    #[test]
    fn odd_even_uses_fewer_comparators_than_bitonic() {
        for e in [4u32, 6, 8] {
            let m = 1usize << e;
            let oe = comparators(SortNetwork::OddEvenMerge, m).len();
            let bi = comparators(SortNetwork::Bitonic, m).len();
            assert!(oe < bi, "m={m}: odd-even {oe} vs bitonic {bi}");
            // both are Θ(m log² m)
            let bound = m * (e as usize) * (e as usize);
            assert!(oe <= bound && bi <= bound, "m={m}");
        }
    }

    #[test]
    fn size_scales_as_n_log2_n() {
        fn cost(n: usize) -> u64 {
            let mut b = Builder::new(Mode::Count);
            let w = encode_relation(&mut b, vec![Var(0)], n);
            let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
            let c = b.finish(s.flatten());
            c.size()
        }
        let (c64, c256) = (cost(64), cost(256));
        // N log²N: 256·64 / (64·36) ≈ 7.1× — allow generous band 4×..12×
        let ratio = c256 as f64 / c64 as f64;
        assert!((4.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn depth_scales_as_log2_n() {
        fn depth(n: usize) -> u32 {
            let mut b = Builder::new(Mode::Count);
            let w = encode_relation(&mut b, vec![Var(0)], n);
            let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
            b.finish(s.flatten()).depth()
        }
        // log²: stages·steps comparisons; each comparator is O(1) depth
        let (d16, d256) = (depth(16), depth(256));
        assert!(
            d256 < d16 * 8,
            "depth should grow polylogarithmically: {d16} → {d256}"
        );
    }
}
