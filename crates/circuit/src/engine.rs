//! Compiled, batched circuit evaluation engine.
//!
//! [`Circuit::evaluate`] walks the gate list with a match per gate and
//! an `O(size)` value buffer — fine for one instance, wasteful for the
//! paper's real promise (Sec. 1): a circuit's *static topology* can be
//! compiled once and then streamed over arbitrarily many inputs. This
//! module adds that missing layer:
//!
//! 1. **Compilation** ([`CompiledCircuit::compile`]): the gate DAG is
//!    reordered into a level-major instruction tape (all gates of equal
//!    depth are adjacent) and run through a **wire-liveness register
//!    allocator**. A wire's register is recycled once the last level
//!    reading it has executed, so the working set shrinks from
//!    `O(size)` slots to `O(peak live width)` registers — the hot data
//!    fits in cache instead of streaming the whole value buffer per
//!    instance.
//! 2. **Batched evaluation** ([`CompiledCircuit::evaluate_batch`]):
//!    registers hold `B` lanes (structure-of-arrays), so each
//!    instruction dispatch is amortized over `B` input vectors and the
//!    per-lane inner loops are straight-line word ops the compiler
//!    autovectorizes.
//! 3. **Level-parallel evaluation**
//!    ([`CompiledCircuit::evaluate_batch_threaded`]): Brent's-theorem
//!    scheduling across OS threads (each level's instructions are split
//!    over workers, one barrier per level) *combined* with batching
//!    within each worker. [`crate::evaluate_levelized`] is rebased on
//!    this path.
//! 4. **Observability** ([`EngineStats`], [`EvalMetrics`]): per-kind
//!    gate counts, level widths, peak register count, nanoseconds and
//!    bytes touched per evaluation — the numbers the bench harness
//!    exports next to circuit size/depth.
//!
//! Assertion semantics match [`Circuit::evaluate`] exactly and
//! deterministically: every lane reports the **lowest-index** failing
//! [`Gate::AssertZero`], independent of thread count or tape order,
//! because gate values are pure functions of the inputs so the engine
//! can keep evaluating past a failure and take the minimum.

use crate::ir::{Circuit, EvalError, Gate, WireId};
use crate::opt::OptStats;

/// Register index in the compiled tape.
type Reg = u32;

/// One compiled instruction: operation + source registers + destination
/// register. Sources always refer to registers written in strictly
/// earlier levels, destinations never alias a same-level source (the
/// allocator frees registers only at level boundaries), which is what
/// makes the threaded path race-free.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `dst ← inputs[idx]` (per lane).
    Input { dst: Reg, idx: u32 },
    /// `dst ← v` (all lanes).
    Const { dst: Reg, v: u64 },
    /// Binary word op; `kind` indexes [`BinKind`].
    Bin {
        dst: Reg,
        kind: BinKind,
        a: Reg,
        b: Reg,
    },
    /// `dst ← (a == 0)`.
    Not { dst: Reg, a: Reg },
    /// `dst ← s ≠ 0 ? a : b`.
    Mux { dst: Reg, s: Reg, a: Reg, b: Reg },
    /// Checks `a == 0`; records `(gate, value)` per failing lane and
    /// writes `0` to `dst` (matching the interpreter).
    AssertZero { dst: Reg, a: Reg, gate: u32 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Eq,
    Lt,
    And,
    Or,
    Xor,
}

/// Gate-kind slots for [`EngineStats::gate_counts`], in a fixed order.
pub const GATE_KINDS: [&str; 13] = [
    "input",
    "const",
    "add",
    "sub",
    "mul",
    "eq",
    "lt",
    "and",
    "or",
    "xor",
    "not",
    "mux",
    "assert_zero",
];

/// The [`GATE_KINDS`] slot of `g`. Shared with the flat tape encoding
/// ([`crate::tape`]), whose opcodes are `kind_index + 1` — one table, so
/// the engine's stats, the tape format, and the netlist mnemonics can
/// never drift apart.
pub(crate) fn kind_index(g: &Gate) -> usize {
    match g {
        Gate::Input(_) => 0,
        Gate::Const(_) => 1,
        Gate::Add(..) => 2,
        Gate::Sub(..) => 3,
        Gate::Mul(..) => 4,
        Gate::Eq(..) => 5,
        Gate::Lt(..) => 6,
        Gate::And(..) => 7,
        Gate::Or(..) => 8,
        Gate::Xor(..) => 9,
        Gate::Not(..) => 10,
        Gate::Mux(..) => 11,
        Gate::AssertZero(..) => 12,
    }
}

/// Static facts about a compiled tape — everything known before the
/// first input arrives.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Logic-gate count of the source circuit (its `size()`).
    pub circuit_size: u64,
    /// Depth of the source circuit.
    pub circuit_depth: u32,
    /// Total wires (inputs + constants + gates) in the source circuit.
    pub circuit_wires: usize,
    /// Logic-gate count actually compiled. Under [`CompiledCircuit::compile`]
    /// this is the optimized circuit's size; under
    /// [`CompiledCircuit::compile_raw`] it equals `circuit_size`.
    pub optimized_size: u64,
    /// Depth of the compiled circuit (optimized or raw).
    pub optimized_depth: u32,
    /// Optimizer counters, when [`CompiledCircuit::compile`] ran the
    /// offline pass; `None` for [`CompiledCircuit::compile_raw`].
    pub opt: Option<OptStats>,
    /// Instructions on the tape (one per wire of the compiled circuit —
    /// at most `circuit_wires`, less whenever the optimizer shrank it).
    pub tape_len: usize,
    /// Registers allocated — the peak number of simultaneously live
    /// wires. Strictly below `circuit_wires` whenever liveness-based
    /// reuse engages, and typically far below `circuit_size`.
    pub peak_registers: usize,
    /// Number of levels (depth-equal instruction groups, including the
    /// input/constant level 0).
    pub num_levels: usize,
    /// Instructions per level.
    pub level_widths: Vec<u32>,
    /// Per-kind gate counts, indexed like [`GATE_KINDS`].
    pub gate_counts: [u64; 13],
    /// Estimated register bytes read + written by one instance's pass
    /// over the tape (8 bytes per source read and destination write).
    pub bytes_per_instance: u64,
}

impl EngineStats {
    /// Widest level on the tape.
    pub fn max_level_width(&self) -> u32 {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }

    /// `(kind, count)` pairs for the kinds that actually occur.
    pub fn gate_count_pairs(&self) -> Vec<(&'static str, u64)> {
        GATE_KINDS
            .iter()
            .zip(self.gate_counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&k, &c)| (k, c))
            .collect()
    }
}

/// Wall-clock and memory-traffic numbers for one evaluation call.
#[derive(Clone, Copy, Debug)]
pub struct EvalMetrics {
    /// Instances evaluated in the call.
    pub instances: usize,
    /// Worker threads used (1 = the sequential batched path).
    pub threads: usize,
    /// Wall-clock nanoseconds for the whole call.
    pub eval_ns: u128,
    /// Instruction executions: `tape_len × instances`.
    pub gate_evals: u64,
    /// Estimated register bytes touched: `bytes_per_instance × instances`.
    pub bytes_touched: u64,
}

impl EvalMetrics {
    /// Mean nanoseconds per instance.
    pub fn ns_per_instance(&self) -> f64 {
        self.eval_ns as f64 / (self.instances.max(1)) as f64
    }

    /// Instruction executions per second (the engine's throughput).
    pub fn gate_evals_per_sec(&self) -> f64 {
        self.gate_evals as f64 / (self.eval_ns.max(1) as f64 / 1e9)
    }
}

/// A circuit compiled to a register-allocated, level-major instruction
/// tape, reusable across any number of evaluations.
pub struct CompiledCircuit {
    tape: Vec<Op>,
    /// Half-open instruction ranges per level; `level_ranges[d] =
    /// (start, end)` indexes into `tape`.
    level_ranges: Vec<(u32, u32)>,
    /// Output registers in output order.
    output_regs: Vec<Reg>,
    num_inputs: usize,
    num_regs: usize,
    pub(crate) stats: EngineStats,
}

impl CompiledCircuit {
    /// The tape/register-allocation stage, shared by every compile entry
    /// point. `origin` carries the optimizer's assert-origin map when the
    /// input circuit is an optimized image of some source circuit.
    pub(crate) fn compile_inner(
        c: &Circuit,
        origin: Option<&OptStats>,
    ) -> Result<CompiledCircuit, EvalError> {
        if !c.is_evaluable() {
            return Err(EvalError::CountOnly);
        }
        let gates = c.gates();
        let depths = c.wire_depths();
        let n = gates.len();
        debug_assert_eq!(
            n,
            depths.len(),
            "build-mode circuits have one gate per wire"
        );
        let max_depth = depths.iter().copied().max().unwrap_or(0) as usize;

        // --- liveness: last level reading each wire (u32::MAX = pinned) ---
        const PINNED: u32 = u32::MAX;
        let mut last_use = vec![0u32; n];
        for (i, (g, &d)) in gates.iter().zip(depths).enumerate() {
            // a wire nobody reads dies at its own definition level
            last_use[i] = last_use[i].max(d);
            for w in g.operands().into_iter().flatten() {
                last_use[w as usize] = last_use[w as usize].max(d);
            }
        }
        for &w in c.outputs() {
            last_use[w as usize] = PINNED;
        }

        // --- level-major gate order ---
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for (i, &d) in depths.iter().enumerate() {
            by_level[d as usize].push(i as u32);
        }

        // --- register allocation, freeing only at level boundaries so
        //     a level's destinations can never alias its sources ---
        let mut reg_of = vec![u32::MAX; n];
        let mut free: Vec<Reg> = Vec::new();
        let mut expire_at: Vec<Vec<Reg>> = vec![Vec::new(); max_depth + 2];
        let mut num_regs = 0u32;
        let mut tape = Vec::with_capacity(n);
        let mut level_ranges = Vec::with_capacity(max_depth + 1);
        let mut gate_counts = [0u64; 13];
        let mut bytes_per_instance = 0u64;

        for (level, members) in by_level.iter().enumerate() {
            for &r in &expire_at[level] {
                free.push(r);
            }
            let start = tape.len() as u32;
            for &gi in members {
                let g = &gates[gi as usize];
                gate_counts[kind_index(g)] += 1;
                let dst = match free.pop() {
                    Some(r) => r,
                    None => {
                        num_regs += 1;
                        num_regs - 1
                    }
                };
                reg_of[gi as usize] = dst;
                let last = last_use[gi as usize];
                if last != PINNED {
                    expire_at[last as usize + 1].push(dst);
                }
                let src = |w: WireId| -> Reg {
                    debug_assert_ne!(reg_of[w as usize], u32::MAX, "operand compiled first");
                    reg_of[w as usize]
                };
                let (op, reads) = match *g {
                    Gate::Input(idx) => (
                        Op::Input {
                            dst,
                            idx: idx as u32,
                        },
                        0,
                    ),
                    Gate::Const(v) => (Op::Const { dst, v }, 0),
                    Gate::Add(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Add,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Sub(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Sub,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Mul(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Mul,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Eq(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Eq,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Lt(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Lt,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::And(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::And,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Or(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Or,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Xor(a, b) => (
                        Op::Bin {
                            dst,
                            kind: BinKind::Xor,
                            a: src(a),
                            b: src(b),
                        },
                        2,
                    ),
                    Gate::Not(a) => (Op::Not { dst, a: src(a) }, 1),
                    Gate::Mux(s, a, b) => (
                        Op::Mux {
                            dst,
                            s: src(s),
                            a: src(a),
                            b: src(b),
                        },
                        3,
                    ),
                    Gate::AssertZero(a) => {
                        // Report failures against the SOURCE circuit's
                        // gate numbering when an optimizer mapping exists.
                        let src_gate = origin.and_then(|st| st.origin_of(gi)).unwrap_or(gi);
                        (
                            Op::AssertZero {
                                dst,
                                a: src(a),
                                gate: src_gate,
                            },
                            1,
                        )
                    }
                };
                bytes_per_instance += 8 * (reads + 1);
                tape.push(op);
            }
            level_ranges.push((start, tape.len() as u32));
        }

        let output_regs = c.outputs().iter().map(|&w| reg_of[w as usize]).collect();
        let level_widths = level_ranges.iter().map(|&(s, e)| e - s).collect();
        let stats = EngineStats {
            circuit_size: c.size(),
            circuit_depth: c.depth(),
            circuit_wires: n,
            optimized_size: c.size(),
            optimized_depth: c.depth(),
            opt: None,
            tape_len: tape.len(),
            peak_registers: num_regs as usize,
            num_levels: level_ranges.len(),
            level_widths,
            gate_counts,
            bytes_per_instance,
        };
        Ok(CompiledCircuit {
            tape,
            level_ranges,
            output_regs,
            num_inputs: c.num_inputs(),
            num_regs: num_regs as usize,
            stats,
        })
    }

    /// Static tape statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Declared input count of the source circuit.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Evaluates a single instance (batch of one).
    pub fn evaluate(&self, inputs: &[u64]) -> Result<Vec<u64>, EvalError> {
        self.evaluate_batch(std::slice::from_ref(&inputs))
            .pop()
            .expect("one lane in, one out")
    }

    /// Evaluates a batch of instances through one tape pass
    /// (structure-of-arrays: every register holds one lane per
    /// instance). Each instance gets exactly the result
    /// [`Circuit::evaluate`] would give it: outputs on success, or the
    /// lowest-index failing assertion.
    pub fn evaluate_batch<I: AsRef<[u64]>>(
        &self,
        instances: &[I],
    ) -> Vec<Result<Vec<u64>, EvalError>> {
        self.evaluate_batch_metered(instances, 1).0
    }

    /// Level-parallel batched evaluation: each level's instructions are
    /// split across `threads` workers (one barrier per level — Brent's
    /// PRAM schedule), and every worker processes all lanes of its
    /// instructions. Identical results to [`Self::evaluate_batch`] for
    /// every thread count.
    pub fn evaluate_batch_threaded<I: AsRef<[u64]> + Sync>(
        &self,
        instances: &[I],
        threads: usize,
    ) -> Vec<Result<Vec<u64>, EvalError>> {
        self.evaluate_batch_metered(instances, threads).0
    }

    /// Lanes per tape pass: the batch is processed in tiles sized so
    /// the register file (`peak_registers × tile × 8` bytes) stays
    /// cache-resident — on large circuits a full-width register file
    /// spills to DRAM and the batching win evaporates.
    fn lane_tile(&self, b: usize) -> usize {
        if let Some(t) = std::env::var("QEC_ENGINE_TILE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return t.clamp(1, b.max(1));
        }
        // 16 lanes is the measured sweet spot across 2·10⁵–1.3·10⁶ gate
        // circuits: wide enough that SIMD lane loops and tape-decode
        // amortization engage, narrow enough that `peak_registers × 16`
        // words stay cache-resident. Wider tiles lose more to register
        // -file spill than they gain in decode amortization.
        16.min(b.max(1))
    }

    /// [`Self::evaluate_batch_threaded`] plus wall-clock/traffic
    /// metrics for the call.
    pub fn evaluate_batch_metered<I: AsRef<[u64]>>(
        &self,
        instances: &[I],
        threads: usize,
    ) -> (Vec<Result<Vec<u64>, EvalError>>, EvalMetrics) {
        assert!(threads >= 1, "at least one worker");
        let start = std::time::Instant::now();
        let tile = self.lane_tile(instances.len());
        let mut regs = vec![0u64; self.num_regs * tile];
        let mut results = Vec::with_capacity(instances.len());

        for chunk in instances.chunks(tile.max(1)) {
            let b = chunk.len();
            let mut failures: Vec<(u32, u64)> = vec![(u32::MAX, 0); b];
            // Lanes with the wrong arity error out up front and are
            // masked from input gathering (their registers stay zero;
            // whatever the tape computes for them is discarded).
            let arity_ok: Vec<bool> = chunk
                .iter()
                .map(|i| i.as_ref().len() == self.num_inputs)
                .collect();

            // Register values never leak between tiles: every register
            // is written by its defining instruction before first read.
            if threads == 1 || self.tape.len() < 4096 {
                self.run_tape_sequential(
                    chunk,
                    &arity_ok,
                    &mut regs[..self.num_regs * b],
                    &mut failures,
                );
            } else {
                self.run_tape_threaded(
                    chunk,
                    &arity_ok,
                    &mut regs[..self.num_regs * b],
                    &mut failures,
                    threads,
                );
            }

            results.extend((0..b).map(|lane| {
                if !arity_ok[lane] {
                    return Err(EvalError::InputArity {
                        expected: self.num_inputs,
                        got: chunk[lane].as_ref().len(),
                    });
                }
                let (gate, value) = failures[lane];
                if gate != u32::MAX {
                    return Err(EvalError::AssertionFailed {
                        gate: gate as usize,
                        value,
                    });
                }
                Ok(self
                    .output_regs
                    .iter()
                    .map(|&r| regs[r as usize * b + lane])
                    .collect())
            }));
        }

        let metrics = EvalMetrics {
            instances: instances.len(),
            threads,
            eval_ns: start.elapsed().as_nanos(),
            gate_evals: (self.tape.len() * instances.len()) as u64,
            bytes_touched: self.stats.bytes_per_instance * instances.len() as u64,
        };
        (results, metrics)
    }

    fn run_tape_sequential<I: AsRef<[u64]>>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
    ) {
        // Monomorphize the hot tile widths: with a compile-time lane
        // count the per-lane loops in `exec_op` unroll and vectorize.
        match instances.len() {
            8 => self.run_tape_mono::<I, 8>(instances, arity_ok, regs, failures),
            16 => self.run_tape_mono::<I, 16>(instances, arity_ok, regs, failures),
            32 => self.run_tape_mono::<I, 32>(instances, arity_ok, regs, failures),
            64 => self.run_tape_mono::<I, 64>(instances, arity_ok, regs, failures),
            b => {
                for op in &self.tape {
                    // SAFETY: `exec_op` only requires that the instruction's
                    // destination register differ from its source registers,
                    // which the allocator guarantees (frees happen strictly at
                    // level boundaries).
                    unsafe { exec_op(op, regs.as_mut_ptr(), b, instances, arity_ok, failures) };
                }
            }
        }
    }

    fn run_tape_mono<I: AsRef<[u64]>, const B: usize>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
    ) {
        // The portable build targets baseline x86-64 (SSE2). The lane
        // loops are pure u64 SIMD material, so dispatch to a wider
        // vector ISA when the host has one — `is_x86_feature_detected!`
        // caches its probe, and the `target_feature` wrappers inline
        // the shared body under the wider feature set.
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: feature presence just checked.
                return unsafe {
                    self.run_tape_mono_avx512::<I, B>(instances, arity_ok, regs, failures)
                };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                return unsafe {
                    self.run_tape_mono_avx2::<I, B>(instances, arity_ok, regs, failures)
                };
            }
        }
        self.run_tape_mono_body::<I, B>(instances, arity_ok, regs, failures);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn run_tape_mono_avx512<I: AsRef<[u64]>, const B: usize>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
    ) {
        self.run_tape_mono_body::<I, B>(instances, arity_ok, regs, failures);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_tape_mono_avx2<I: AsRef<[u64]>, const B: usize>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
    ) {
        self.run_tape_mono_body::<I, B>(instances, arity_ok, regs, failures);
    }

    #[inline(always)]
    fn run_tape_mono_body<I: AsRef<[u64]>, const B: usize>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
    ) {
        debug_assert_eq!(instances.len(), B);
        for op in &self.tape {
            // SAFETY: as in the dynamic-width loop above; `exec_op` is
            // `inline(always)`, so `B` reaches its lane loops as a
            // constant.
            unsafe { exec_op(op, regs.as_mut_ptr(), B, instances, arity_ok, failures) };
        }
    }

    fn run_tape_threaded<I: AsRef<[u64]>>(
        &self,
        instances: &[I],
        arity_ok: &[bool],
        regs: &mut [u64],
        failures: &mut [(u32, u64)],
        threads: usize,
    ) {
        let b = instances.len();
        // Level 0 (input gathers and constant fills) runs inline: it is
        // a cheap copy pass, and keeping it here means worker threads
        // never see the caller's instance type (no `Sync` bound) and
        // the levels they do run contain no `Op::Input`/`Op::Const`.
        let (s0, e0) = self.level_ranges[0];
        for op in &self.tape[s0 as usize..e0 as usize] {
            // SAFETY: see `run_tape_sequential`.
            unsafe { exec_op(op, regs.as_mut_ptr(), b, instances, arity_ok, failures) };
        }

        struct RegsPtr(*mut u64);
        // SAFETY token: within one level every instruction writes only
        // its own destination register (distinct per instruction, never
        // aliasing same-level sources), so per-level worker chunks are
        // disjoint writers over the register file.
        unsafe impl Sync for RegsPtr {}
        let ptr = RegsPtr(regs.as_mut_ptr());
        let barrier = std::sync::Barrier::new(threads);
        let merged = std::sync::Mutex::new(failures.to_vec());
        let no_instances: &[&[u64]] = &[];
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let ptr = &ptr;
                let barrier = &barrier;
                let merged = &merged;
                scope.spawn(move || {
                    let mut local: Vec<(u32, u64)> = Vec::new();
                    for &(start, end) in &self.level_ranges[1..] {
                        let len = (end - start) as usize;
                        let chunk = len.div_ceil(threads);
                        let lo = start as usize + (worker * chunk).min(len);
                        let hi = start as usize + ((worker + 1) * chunk).min(len);
                        if local.is_empty()
                            && self.tape[lo..hi]
                                .iter()
                                .any(|op| matches!(op, Op::AssertZero { .. }))
                        {
                            local = vec![(u32::MAX, 0); b];
                        }
                        for op in &self.tape[lo..hi] {
                            // SAFETY: see RegsPtr — destination registers
                            // are uniquely owned within a level and
                            // sources were finalized by earlier levels
                            // (enforced by the barrier below). Levels
                            // ≥ 1 never contain `Op::Input`, so the
                            // empty instance list is never read.
                            unsafe {
                                exec_op(op, ptr.0, b, no_instances, &[], &mut local);
                            }
                        }
                        barrier.wait();
                    }
                    if !local.is_empty() {
                        let mut m = merged.lock().expect("poison-free");
                        for (lane, &(gate, value)) in local.iter().enumerate() {
                            if gate < m[lane].0 {
                                m[lane] = (gate, value);
                            }
                        }
                    }
                });
            }
        });
        failures.copy_from_slice(&merged.into_inner().expect("poison-free"));
    }
}

/// Executes one instruction over all `b` lanes.
///
/// # Safety
/// `regs` must point to a register file of at least `num_regs × b`
/// words, and the instruction's destination register must be distinct
/// from its source registers (guaranteed by the compiler's
/// level-boundary register allocation). Under threading, no other
/// worker may write this instruction's destination concurrently.
#[inline(always)]
unsafe fn exec_op<I: AsRef<[u64]>>(
    op: &Op,
    regs: *mut u64,
    b: usize,
    instances: &[I],
    arity_ok: &[bool],
    failures: &mut [(u32, u64)],
) {
    let lanes = |r: Reg| -> &[u64] { std::slice::from_raw_parts(regs.add(r as usize * b), b) };
    let lanes_mut =
        |r: Reg| -> &mut [u64] { std::slice::from_raw_parts_mut(regs.add(r as usize * b), b) };
    match *op {
        Op::Input { dst, idx } => {
            let d = lanes_mut(dst);
            for (lane, inst) in instances.iter().enumerate() {
                d[lane] = if arity_ok[lane] {
                    inst.as_ref()[idx as usize]
                } else {
                    0
                };
            }
        }
        Op::Const { dst, v } => lanes_mut(dst).fill(v),
        Op::Bin {
            dst,
            kind,
            a,
            b: rb,
        } => {
            debug_assert!(dst != a && dst != rb);
            let (d, x, y) = (lanes_mut(dst), lanes(a), lanes(rb));
            match kind {
                BinKind::Add => {
                    for i in 0..b {
                        d[i] = x[i].wrapping_add(y[i]);
                    }
                }
                BinKind::Sub => {
                    for i in 0..b {
                        d[i] = x[i].wrapping_sub(y[i]);
                    }
                }
                BinKind::Mul => {
                    for i in 0..b {
                        d[i] = x[i].wrapping_mul(y[i]);
                    }
                }
                BinKind::Eq => {
                    for i in 0..b {
                        d[i] = u64::from(x[i] == y[i]);
                    }
                }
                BinKind::Lt => {
                    for i in 0..b {
                        d[i] = u64::from(x[i] < y[i]);
                    }
                }
                BinKind::And => {
                    for i in 0..b {
                        d[i] = u64::from(x[i] != 0) & u64::from(y[i] != 0);
                    }
                }
                BinKind::Or => {
                    for i in 0..b {
                        d[i] = u64::from(x[i] != 0) | u64::from(y[i] != 0);
                    }
                }
                BinKind::Xor => {
                    for i in 0..b {
                        d[i] = u64::from(x[i] != 0) ^ u64::from(y[i] != 0);
                    }
                }
            }
        }
        Op::Not { dst, a } => {
            debug_assert!(dst != a);
            let (d, x) = (lanes_mut(dst), lanes(a));
            for i in 0..b {
                d[i] = u64::from(x[i] == 0);
            }
        }
        Op::Mux { dst, s, a, b: rb } => {
            debug_assert!(dst != s && dst != a && dst != rb);
            let (d, sv, x, y) = (lanes_mut(dst), lanes(s), lanes(a), lanes(rb));
            for i in 0..b {
                d[i] = if sv[i] != 0 { x[i] } else { y[i] };
            }
        }
        Op::AssertZero { dst, a, gate } => {
            debug_assert!(dst != a);
            let (d, x) = (lanes_mut(dst), lanes(a));
            for i in 0..b {
                d[i] = 0;
                if x[i] != 0 && gate < failures[i].0 {
                    failures[i] = (gate, x[i]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CompileOptions;
    use crate::ir::{Builder, Mode};

    fn compile(c: &Circuit) -> Result<CompiledCircuit, EvalError> {
        CompiledCircuit::compile_with(c, &CompileOptions::sequential()).map(|(eng, _)| eng)
    }

    fn adder_chain(n: usize) -> Circuit {
        let mut bld = Builder::new(Mode::Build);
        let x = bld.input();
        let y = bld.input();
        let mut acc = bld.add(x, y);
        for _ in 1..n {
            acc = bld.add(acc, y);
        }
        bld.finish(vec![acc])
    }

    #[test]
    fn matches_interpreter_on_simple_circuits() {
        let c = adder_chain(10);
        let eng = compile(&c).unwrap();
        for inputs in [[3u64, 5], [0, 0], [u64::MAX, 1]] {
            assert_eq!(eng.evaluate(&inputs).unwrap(), c.evaluate(&inputs).unwrap());
        }
    }

    #[test]
    fn register_reuse_engages_on_chains() {
        let c = adder_chain(100);
        let eng = compile(&c).unwrap();
        // a pure chain needs only a handful of registers, not 102
        assert!(
            eng.stats().peak_registers <= 4,
            "chain should recycle registers, got {}",
            eng.stats().peak_registers
        );
        assert!(eng.stats().peak_registers < c.num_wires());
    }

    #[test]
    fn batch_matches_per_instance_evaluation() {
        let mut bld = Builder::new(Mode::Build);
        let x = bld.input();
        let y = bld.input();
        let s = bld.add(x, y);
        let p = bld.mul(x, y);
        let lt = bld.lt(x, y);
        let m = bld.mux(lt, s, p);
        let n = bld.not(lt);
        let c = bld.finish(vec![s, p, lt, m, n]);
        let eng = compile(&c).unwrap();
        let instances: Vec<Vec<u64>> = (0..37)
            .map(|i| vec![i * 7 % 13, (i * 3 + 1) % 11])
            .collect();
        let batch = eng.evaluate_batch(&instances);
        for (inst, got) in instances.iter().zip(batch) {
            assert_eq!(got, c.evaluate(inst));
        }
    }

    #[test]
    fn assertions_report_lowest_gate_per_lane() {
        let mut bld = Builder::new(Mode::Build);
        let x = bld.input();
        let y = bld.input();
        bld.assert_zero(x); // gate 2
        bld.assert_zero(y); // gate 3
        let c = bld.finish(vec![]);
        let eng = compile(&c).unwrap();
        let instances: Vec<Vec<u64>> = vec![
            vec![0, 0], // ok
            vec![5, 0], // gate 2 fires
            vec![0, 7], // gate 3 fires
            vec![5, 7], // both fire → lowest (gate 2) reported
        ];
        let got = eng.evaluate_batch(&instances);
        assert_eq!(got[0], Ok(vec![]));
        assert_eq!(
            got[1],
            Err(EvalError::AssertionFailed { gate: 2, value: 5 })
        );
        assert_eq!(
            got[2],
            Err(EvalError::AssertionFailed { gate: 3, value: 7 })
        );
        assert_eq!(
            got[3],
            Err(EvalError::AssertionFailed { gate: 2, value: 5 })
        );
        // gate-for-gate match with the interpreter
        for (inst, got) in instances.iter().zip(got) {
            assert_eq!(got, c.evaluate(inst));
        }
    }

    #[test]
    fn arity_errors_are_per_lane() {
        let c = adder_chain(3);
        let eng = compile(&c).unwrap();
        let instances: Vec<Vec<u64>> = vec![vec![1, 2], vec![1], vec![4, 5]];
        let got = eng.evaluate_batch(&instances);
        assert!(got[0].is_ok());
        assert_eq!(
            got[1],
            Err(EvalError::InputArity {
                expected: 2,
                got: 1
            })
        );
        assert!(got[2].is_ok());
    }

    #[test]
    fn count_only_circuits_do_not_compile() {
        let mut bld = Builder::new(Mode::Count);
        let x = bld.input();
        let y = bld.not(x);
        let c = bld.finish(vec![y]);
        assert!(matches!(compile(&c), Err(EvalError::CountOnly)));
    }

    #[test]
    fn empty_circuit_evaluates_to_nothing() {
        let bld = Builder::new(Mode::Build);
        let c = bld.finish(vec![]);
        let eng = compile(&c).unwrap();
        assert_eq!(eng.evaluate(&[]), Ok(vec![]));
    }

    #[test]
    fn threaded_path_matches_sequential() {
        // Wide circuit, big enough (> 4096 instructions) that
        // `evaluate_batch_threaded` actually spawns workers; includes
        // assertions so the failure-merge path runs under threads too.
        let mut bld = Builder::new(Mode::Build);
        let xs: Vec<_> = (0..64).map(|_| bld.input()).collect();
        let mut layer = xs;
        for _ in 0..80 {
            layer = (0..layer.len())
                .map(|i| bld.add(layer[i], layer[(i + 1) % layer.len()]))
                .collect();
        }
        for &w in layer.iter().take(8) {
            let z = bld.eq(w, w); // 1
            let nz = bld.not(z); // 0
            bld.assert_zero(nz); // never fires
        }
        for &x in &layer {
            bld.assert_zero(x); // fires whenever the sum is nonzero
        }
        let c = bld.finish(layer.clone());
        let eng = compile(&c).unwrap();
        assert!(
            eng.stats().tape_len >= 4096,
            "test must exercise the threaded path"
        );
        assert!(eng.stats().peak_registers < c.num_wires());
        let instances: Vec<Vec<u64>> = (0..9)
            .map(|i| (0..64).map(|j| i * j % 5).collect())
            .collect();
        let seq = eng.evaluate_batch(&instances);
        for (inst, got) in instances.iter().zip(&seq) {
            assert_eq!(
                *got,
                c.evaluate(inst),
                "sequential batch matches interpreter"
            );
        }
        for threads in [2, 3, 8] {
            assert_eq!(
                eng.evaluate_batch_threaded(&instances, threads),
                seq,
                "{threads}"
            );
        }
    }

    #[test]
    fn stats_account_every_gate() {
        let c = adder_chain(10);
        let eng = compile(&c).unwrap();
        let s = eng.stats();
        assert_eq!(s.tape_len, c.num_wires());
        assert_eq!(s.gate_counts.iter().sum::<u64>(), c.num_wires() as u64);
        assert_eq!(s.level_widths.iter().sum::<u32>() as usize, s.tape_len);
        assert_eq!(s.gate_count_pairs(), vec![("input", 2), ("add", 10)]);
        let (_, m) = eng.evaluate_batch_metered(&[vec![1u64, 2]], 1);
        assert_eq!(m.instances, 1);
        assert_eq!(m.gate_evals, s.tape_len as u64);
        assert!(m.eval_ns > 0);
    }
}
