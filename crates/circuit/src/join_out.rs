//! The output-bounded join circuit (Alg. 10, Sec. 6.3).

use crate::decompose::decompose;
use crate::join::{join_degree_bounded, semijoin};
use crate::ops::{truncate, union};
use crate::rel::RelWires;
use crate::Builder;

/// Output-bounded join `R ⋈ S` under the promise `|R ⋈ S| ≤ out_bound`
/// (Alg. 10): decompose `S` by degree on the shared variables, semijoin
/// and cap each `R_i` at `⌊OUT/min-group⌋` (no real tuple is lost because
/// every `R_i` tuple contributes at least `min-group` join results), run a
/// degree-bounded join per part, union, and truncate to `OUT`.
///
/// Size `Õ(M + N + OUT)`, depth `Õ(1)`. A violated promise fires the
/// truncation assertions at evaluation time instead of silently dropping
/// results.
pub fn join_output_bounded(
    b: &mut Builder,
    r: &RelWires,
    s: &RelWires,
    out_bound: usize,
) -> RelWires {
    let common = r.vars().intersect(s.vars());
    assert!(
        !common.is_empty() && common != s.vars(),
        "output-bounded join expects proper shared variables on S"
    );
    let m = r.capacity();
    let parts = decompose(b, s, common);

    let out_vars = r.vars().union(s.vars());
    let out_schema: Vec<_> = out_vars.to_vec();
    let mut acc: Option<RelWires> = None;
    for part in parts {
        // Line 3–5: R_i = R ⋉ S_i, truncated to ⌊OUT / min-group⌋.
        let r_i = semijoin(b, r, &part.rel);
        let cap_i = (out_bound as u64 / part.min_group).min(m as u64) as usize;
        let r_i = truncate(b, &r_i, cap_i);
        // Line 6: J_i = R_i ⋈ S_i under deg ≤ N_{Y|X}^{(i)}.
        let j_i = join_degree_bounded(b, &r_i, &part.rel, part.deg_bound as usize);
        debug_assert_eq!(j_i.schema, out_schema);
        // Line 7: union (deduplicating); keep the running union truncated
        // to OUT so capacities stay Õ(OUT) instead of Õ(OUT·log N).
        acc = Some(match acc {
            None => truncate(b, &j_i, out_bound.min(j_i.capacity())),
            Some(prev) => {
                let u = union(b, &prev, &j_i);
                truncate(b, &u, out_bound.min(u.capacity()))
            }
        });
    }
    match acc {
        Some(rel) => rel,
        None => RelWires::dummies(b, out_schema, out_bound.min(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::{Mode, WireId};
    use qec_relation::{zipf_relation, Relation, Var, VarSet};

    fn run(r: &Relation, s: &Relation, caps: (usize, usize), out_bound: usize) -> Relation {
        let mut b = Builder::new(Mode::Build);
        let rw = encode_relation(&mut b, r.schema().to_vec(), caps.0);
        let sw = encode_relation(&mut b, s.schema().to_vec(), caps.1);
        let j = join_output_bounded(&mut b, &rw, &sw, out_bound);
        let schema = j.schema.clone();
        let c = b.finish(j.flatten());
        let mut vals = relation_to_values(r, caps.0).unwrap();
        vals.extend(relation_to_values(s, caps.1).unwrap());
        decode_relation(&schema, &c.evaluate(&vals).unwrap())
    }

    #[test]
    fn matches_ram_join_on_skewed_data() {
        let s = zipf_relation(Var(1), Var(2), 40, 1.2, 3);
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            (0..10).map(|i| vec![i, i % 5]).collect(),
        );
        let expect = r.natural_join(&s);
        let got = run(&r, &s, (10, 40), expect.len().max(1));
        assert_eq!(got, expect);
    }

    #[test]
    fn generous_out_bound_also_correct() {
        let s = zipf_relation(Var(1), Var(2), 30, 1.0, 7);
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            (0..8).map(|i| vec![100 + i, i % 4]).collect(),
        );
        let expect = r.natural_join(&s);
        let got = run(&r, &s, (8, 30), 4 * expect.len().max(1));
        assert_eq!(got, expect);
    }

    #[test]
    fn violated_out_bound_fires_assertion() {
        // true join size is 4, promise 2 → assertion must fire
        let r = Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 1], vec![2, 1]]);
        let s = Relation::from_rows(vec![Var(1), Var(2)], vec![vec![1, 5], vec![1, 6]]);
        let mut b = Builder::new(Mode::Build);
        let rw = encode_relation(&mut b, r.schema().to_vec(), 2);
        let sw = encode_relation(&mut b, s.schema().to_vec(), 2);
        let j = join_output_bounded(&mut b, &rw, &sw, 2);
        let c = b.finish(j.flatten());
        let mut vals = relation_to_values(&r, 2).unwrap();
        vals.extend(relation_to_values(&s, 2).unwrap());
        assert!(matches!(
            c.evaluate(&vals),
            Err(crate::EvalError::AssertionFailed { .. })
        ));
    }

    #[test]
    fn size_scales_with_out_not_capacity_product() {
        fn cost(m: usize, out: usize) -> u64 {
            let mut b = Builder::new(Mode::Count);
            let rw = encode_relation(&mut b, vec![Var(0), Var(1)], m);
            let sw = encode_relation(&mut b, vec![Var(1), Var(2)], m);
            let j = join_output_bounded(&mut b, &rw, &sw, out);
            let outs: Vec<WireId> = j.flatten();
            b.finish(outs).size()
        }
        // fixed OUT, growing M: size should grow ~linearly in M (not M²)
        let ratio = cost(256, 64) as f64 / cost(64, 64) as f64;
        assert!(ratio < 10.0, "ratio {ratio}");
        // fixed M, growing OUT: grows, but sublinearly in the naive M·N'
        let grow = cost(64, 512) as f64 / cost(64, 64) as f64;
        assert!(grow < 8.0, "grow {grow}");
    }

    #[test]
    fn empty_sides() {
        let r = Relation::empty(VarSet::from(vec![Var(0), Var(1)]));
        let s = Relation::from_rows(vec![Var(1), Var(2)], vec![vec![1, 5]]);
        let got = run(&r, &s, (2, 2), 4);
        assert_eq!(got.len(), 0);
    }
}
