//! The decomposition circuit (Alg. 2): splits a relation into
//! `O(log N)` degree-bucketed sub-relations satisfying conditions (4).

use qec_relation::{Var, VarSet};

use crate::ops::{aggregate, select, AggOp};
use crate::rel::RelWires;
use crate::sort::{sort_slots, SortKey};
use crate::{join::join_pk, Builder};

/// A scratch variable reserved for internal count/order columns. Queries
/// are limited to variables `< 62`.
pub(crate) const COUNT_VAR: Var = Var(63);

/// One sub-relation `R_Y^{(j)}` of a decomposition, with its certified
/// parameters from conditions (4) of the paper.
#[derive(Clone, Debug)]
pub struct DecomposedPart {
    /// The sub-relation (schema of the input).
    pub rel: RelWires,
    /// `N_X^{(j)}`: bound on `|Π_X(R_Y^{(j)})|`.
    pub card_bound: u64,
    /// `N_{Y|X}^{(j)}`: bound on `deg_{R^{(j)}}(X)`.
    pub deg_bound: u64,
    /// Minimum `X`-group size of any tuple present in this part (used by
    /// the output-bounded join to cap its semijoin sizes, Alg. 10 line 4).
    pub min_group: u64,
}

/// Decomposition circuit (Alg. 2): `R_Y → R_Y^{(1)} ∪ … ∪ R_Y^{(2k)}`,
/// `k = 1 + ⌊log₂ N⌋`, such that the parts partition `R_Y`, part `2i-1`
/// and `2i` have degree (on `X`) at most `2^{i-1}`, and
/// `N_X^{(j)} · N_{Y|X}^{(j)} ≤ N`. Size `Õ(N)`, depth `Õ(1)`.
pub fn decompose(b: &mut Builder, rel: &RelWires, on: VarSet) -> Vec<DecomposedPart> {
    assert!(
        on.is_subset(rel.vars()) && on != rel.vars(),
        "decomposition needs X ⊂ Y"
    );
    assert!(!rel.vars().contains(COUNT_VAR), "variable 63 is reserved");
    let n = rel.capacity() as u64;
    if n == 0 {
        return Vec::new();
    }
    // Line 1: associate each tuple with its X-degree.
    let counts = aggregate(b, rel, on, AggOp::Count, COUNT_VAR);
    let with_count = join_pk(b, rel, &counts);
    let ccol = with_count.col(COUNT_VAR).expect("count column");

    let k = 1 + n.ilog2();
    let mut parts = Vec::with_capacity(2 * k as usize);
    for i in 1..=k {
        let lo = 1u64 << (i - 1);
        let hi = 1u64 << i;
        // Line 4: T^(i) = tuples with degree in [2^{i-1}, 2^i).
        let t = select(b, &with_count, |b, s| {
            let lo_w = b.constant(lo);
            let hi_w = b.constant(hi);
            let ge = {
                let lt = b.lt(s.fields[ccol], lo_w);
                b.not(lt)
            };
            let lt_hi = b.lt(s.fields[ccol], hi_w);
            b.and(ge, lt_hi)
        });
        // Lines 5–6: sort by X; after the sort, the slot index is the
        // order number (non-dummies first), so the odd/even split of
        // τ_X(T) is a free rewiring.
        let sorted = sort_slots(b, &t, &SortKey::Columns(on.to_vec()));
        // drop the count column (tuples stay unique: count is functionally
        // determined by X)
        let keep_cols: Vec<usize> = rel
            .schema
            .iter()
            .map(|v| sorted.col(*v).expect("original column"))
            .collect();
        let strip = |slots: Vec<crate::SlotWires>| -> RelWires {
            RelWires {
                schema: rel.schema.clone(),
                slots: slots
                    .into_iter()
                    .map(|s| crate::SlotWires {
                        fields: keep_cols.iter().map(|&c| s.fields[c]).collect(),
                        valid: s.valid,
                    })
                    .collect(),
            }
        };
        let odd: Vec<crate::SlotWires> = sorted.slots.iter().step_by(2).cloned().collect();
        let even: Vec<crate::SlotWires> = sorted.slots.iter().skip(1).step_by(2).cloned().collect();
        let card = (n / lo).max(1);
        for slots in [odd, even] {
            parts.push(DecomposedPart {
                rel: strip(slots),
                card_bound: card,
                deg_bound: lo,
                min_group: (lo / 2).max(1),
            });
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::Mode;
    use qec_relation::{zipf_relation, Relation};

    fn decompose_eval(r: &Relation, capacity: usize) -> Vec<(Relation, u64, u64)> {
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, r.schema().to_vec(), capacity);
        let parts = decompose(&mut b, &w, VarSet::singleton(Var(0)));
        let metas: Vec<(usize, u64, u64, Vec<Var>)> = parts
            .iter()
            .map(|p| {
                (
                    p.rel.capacity(),
                    p.card_bound,
                    p.deg_bound,
                    p.rel.schema.clone(),
                )
            })
            .collect();
        let mut outs = Vec::new();
        for p in &parts {
            outs.extend(p.rel.flatten());
        }
        let c = b.finish(outs);
        let res = c
            .evaluate(&relation_to_values(r, capacity).unwrap())
            .unwrap();
        let mut off = 0;
        metas
            .into_iter()
            .map(|(cap, card, deg, schema)| {
                let len = cap * (schema.len() + 1);
                let rel = decode_relation(&schema, &res[off..off + len]);
                off += len;
                (rel, card, deg)
            })
            .collect()
    }

    #[test]
    fn parts_partition_and_respect_condition_4() {
        let r = zipf_relation(Var(0), Var(1), 60, 1.1, 5);
        let n = 64usize;
        let parts = decompose_eval(&r, n);
        // (a) union = R, and parts are disjoint
        let mut total = 0usize;
        let mut acc = Relation::empty(r.vars());
        for (p, card, deg) in &parts {
            total += p.len();
            acc = acc.union(p);
            // (b) degree bound
            assert!(p.degree(VarSet::singleton(Var(0))) as u64 <= *deg);
            // (c) projection cardinality bound
            assert!(p.project(VarSet::singleton(Var(0))).len() as u64 <= *card);
            // (d) N_X · N_{Y|X} ≤ N... up to the ceil on card
            assert!(card * deg <= 2 * n as u64, "card {card} deg {deg}");
        }
        assert_eq!(acc, r);
        assert_eq!(total, r.len(), "parts must be disjoint");
    }

    #[test]
    fn part_count_is_logarithmic() {
        let r = zipf_relation(Var(0), Var(1), 30, 1.0, 9);
        let parts = decompose_eval(&r, 32);
        assert_eq!(parts.len(), 2 * (1 + 32u64.ilog2()) as usize); // 2k = 12
    }

    #[test]
    fn uniform_degree_lands_in_one_bucket() {
        // every A-value has degree exactly 4 ⇒ only bucket i=3 ([4,8)) is
        // populated
        let rows: Vec<Vec<u64>> = (0..8)
            .flat_map(|a| (0..4).map(move |b| vec![a, 100 + a * 4 + b]))
            .collect();
        let r = Relation::from_rows(vec![Var(0), Var(1)], rows);
        let parts = decompose_eval(&r, 32);
        for (p, _, deg) in &parts {
            if *deg != 4 {
                assert_eq!(p.len(), 0, "unexpected tuples in degree-{deg} bucket");
            }
        }
        let in_bucket: usize = parts
            .iter()
            .filter(|(_, _, d)| *d == 4)
            .map(|(p, _, _)| p.len())
            .sum();
        assert_eq!(in_bucket, 32);
    }

    #[test]
    fn odd_even_split_balances_groups() {
        // a single A-value of degree 5 splits 3 + 2
        let r = Relation::from_rows(vec![Var(0), Var(1)], (0..5).map(|i| vec![7, i]).collect());
        let parts = decompose_eval(&r, 8);
        let sizes: Vec<usize> = parts
            .iter()
            .filter(|(p, _, _)| !p.is_empty())
            .map(|(p, _, _)| p.len())
            .collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn empty_relation_decomposes_to_empty_parts() {
        let r = Relation::empty(VarSet::from(vec![Var(0), Var(1)]));
        let parts = decompose_eval(&r, 8);
        assert!(parts.iter().all(|(p, _, _)| p.is_empty()));
    }
}
