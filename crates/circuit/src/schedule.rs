//! Brent's theorem, operationally (Sec. 1): a circuit of size `W` and
//! depth `D` runs on a `P`-processor PRAM in `O(W/P + D)` steps by
//! executing it level by level.

use crate::driver::CompileOptions;
use crate::engine::CompiledCircuit;
use crate::{Circuit, EvalError};

/// Evaluates a materialized circuit with a levelized multi-threaded
/// schedule: gates of equal depth are independent by construction, so
/// each level is split across `threads` workers with a barrier between
/// levels — the PRAM schedule behind Brent's theorem, realized with OS
/// threads.
///
/// Since the engine rework this compiles the circuit to a
/// register-allocated tape ([`CompiledCircuit`]) and runs its
/// level-parallel path on a single-instance batch. Results are
/// deterministic for every thread count: an input that violates several
/// assertions always reports the **lowest-index** failing gate, exactly
/// like [`Circuit::evaluate`]. Worthwhile only for large circuits — for
/// small ones thread coordination dominates; callers that evaluate many
/// inputs should compile once and use [`CompiledCircuit::evaluate_batch`]
/// directly.
pub fn evaluate_levelized(
    c: &Circuit,
    inputs: &[u64],
    threads: usize,
) -> Result<Vec<u64>, EvalError> {
    assert!(threads >= 1);
    if c.gates().is_empty() {
        return c.evaluate(inputs); // count-only or trivial: delegate
    }
    let (compiled, _) = CompiledCircuit::compile_with(c, &CompileOptions::from_env())?;
    compiled
        .evaluate_batch_threaded(std::slice::from_ref(&inputs), threads)
        .pop()
        .expect("one lane in, one out")
}

/// Number of logic gates at each depth level `1..=depth` (level `d` holds
/// gates whose longest input path is `d`).
pub fn level_widths(c: &Circuit) -> Vec<u64> {
    let depth = c.depth() as usize;
    let mut widths = vec![0u64; depth];
    for &d in c.wire_depths() {
        if d >= 1 {
            widths[d as usize - 1] += 1;
        }
    }
    widths
}

/// PRAM steps for a levelized schedule on `p` processors:
/// `Σ_levels ⌈width/p⌉`. Equals the circuit depth when `p = ∞` and the
/// size when `p = 1`; Brent's bound `W/P + D` in between.
pub fn brent_steps(c: &Circuit, p: u64) -> u64 {
    assert!(p >= 1, "at least one processor");
    level_widths(c).iter().map(|&w| w.div_ceil(p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Mode};

    fn sample_circuit() -> Circuit {
        let mut b = Builder::new(Mode::Count);
        let xs: Vec<_> = (0..64).map(|_| b.input()).collect();
        // balanced reduction tree: 63 gates, depth 6
        let mut layer = xs;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|ch| b.add(ch[0], ch[1])).collect();
        }
        b.finish(vec![layer[0]])
    }

    #[test]
    fn one_processor_costs_size() {
        let c = sample_circuit();
        assert_eq!(brent_steps(&c, 1), c.size());
    }

    #[test]
    fn unlimited_processors_cost_depth() {
        let c = sample_circuit();
        assert_eq!(brent_steps(&c, 1 << 40), u64::from(c.depth()));
    }

    #[test]
    fn brent_bound_holds() {
        let c = sample_circuit();
        for p in [1u64, 2, 3, 4, 8, 16, 64] {
            let steps = brent_steps(&c, p);
            let bound = c.size() / p + u64::from(c.depth());
            assert!(steps <= bound, "p = {p}: {steps} > {bound}");
            assert!(steps >= (c.size() / p).max(u64::from(c.depth())));
        }
    }

    #[test]
    fn levelized_evaluation_matches_sequential() {
        use crate::rel::{encode_relation, relation_to_values};
        use crate::sort::{sort_slots, SortKey};
        use qec_relation::{Relation, Var};
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], 32);
        let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
        let c = b.finish(s.flatten());
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            (0..30u64).map(|i| vec![97 - 3 * i, i]).collect(),
        );
        let inputs = relation_to_values(&r, 32).unwrap();
        let seq = c.evaluate(&inputs).unwrap();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                evaluate_levelized(&c, &inputs, threads).unwrap(),
                seq,
                "{threads}"
            );
        }
    }

    #[test]
    fn levelized_assertions_fire() {
        let mut b = Builder::new(Mode::Build);
        let xs: Vec<_> = (0..64).map(|_| b.input()).collect();
        // wide level of asserts so the parallel path actually engages
        for &x in &xs {
            let y = b.not(x);
            b.assert_zero(y); // fires when x == 0
        }
        let c = b.finish(vec![]);
        let ones = vec![1u64; 64];
        assert!(evaluate_levelized(&c, &ones, 4).is_ok());
        let mut bad = ones.clone();
        bad[17] = 0;
        assert!(matches!(
            evaluate_levelized(&c, &bad, 4),
            Err(EvalError::AssertionFailed { .. })
        ));
    }

    #[test]
    fn levelized_assertion_failure_is_deterministic() {
        // Two assertions in the same level, both violated: every thread
        // count must report the lowest-index gate, like the sequential
        // interpreter — not whichever worker lost the race. Regression
        // test for the old shared failure slot that was overwritten by
        // the last worker to fail.
        let mut b = Builder::new(Mode::Build);
        let xs: Vec<_> = (0..64).map(|_| b.input()).collect();
        // enough padding that the engine's threaded path engages (it
        // falls back to sequential below ~4k instructions); the padding
        // gates must be unique and observable or hash-consing + DCE in
        // `CompiledCircuit::compile` would strip them back out
        let mut pad = Vec::new();
        for i in 0..70u64 {
            for (j, &x) in xs.iter().enumerate() {
                let k = b.constant(1 + i * 64 + j as u64);
                pad.push(b.add(x, k));
            }
        }
        for &x in &xs {
            // all asserts share one level; every one fires on input 1
            b.assert_zero(x);
        }
        let c = b.finish(pad);
        let ones = vec![1u64; 64];
        let expected = c.evaluate(&ones);
        let Err(EvalError::AssertionFailed {
            gate: expect_gate, ..
        }) = expected
        else {
            panic!("sequential evaluation must fail");
        };
        for threads in 1..=8 {
            let got = evaluate_levelized(&c, &ones, threads);
            assert_eq!(
                got,
                Err(EvalError::AssertionFailed {
                    gate: expect_gate,
                    value: 1
                }),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn level_widths_sum_to_size() {
        let c = sample_circuit();
        assert_eq!(level_widths(&c).iter().sum::<u64>(), c.size());
        assert_eq!(level_widths(&c), vec![32, 16, 8, 4, 2, 1]);
    }
}
