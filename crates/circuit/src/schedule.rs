//! Brent's theorem, operationally (Sec. 1): a circuit of size `W` and
//! depth `D` runs on a `P`-processor PRAM in `O(W/P + D)` steps by
//! executing it level by level.

use crate::{Circuit, EvalError, Gate};

/// Evaluates a materialized circuit with a levelized multi-threaded
/// schedule: gates of equal depth are independent by construction, so
/// each level is split across `threads` workers with a barrier between
/// levels — the PRAM schedule behind Brent's theorem, realized with OS
/// threads.
///
/// Produces exactly the same outputs (and assertion failures) as
/// [`Circuit::evaluate`]; the test suite checks this. Worthwhile only for
/// large circuits — for small ones thread coordination dominates.
pub fn evaluate_levelized(
    c: &Circuit,
    inputs: &[u64],
    threads: usize,
) -> Result<Vec<u64>, EvalError> {
    assert!(threads >= 1);
    if c.gates().is_empty() {
        return c.evaluate(inputs); // count-only or trivial: delegate
    }
    if inputs.len() != c.num_inputs() {
        return Err(EvalError::InputArity { expected: c.num_inputs(), got: inputs.len() });
    }
    // Bucket gate indices by depth. Depth-0 gates (inputs/constants) are
    // filled sequentially; the rest level by level.
    let depths = c.wire_depths();
    let max_depth = c.depth() as usize;
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
    for (i, &d) in depths.iter().enumerate() {
        levels[d as usize].push(i);
    }

    let mut values = vec![0u64; c.gates().len()];
    for &i in &levels[0] {
        values[i] = match c.gates()[i] {
            Gate::Input(idx) => inputs[idx],
            Gate::Const(v) => v,
            _ => unreachable!("only inputs/constants have depth 0"),
        };
    }

    let as_bool = |v: u64| -> u64 { u64::from(v != 0) };
    let eval_gate = |g: &Gate, values: &[u64]| -> Result<u64, usize> {
        Ok(match *g {
            Gate::Input(_) | Gate::Const(_) => unreachable!("depth ≥ 1"),
            Gate::Add(a, b) => values[a as usize].wrapping_add(values[b as usize]),
            Gate::Sub(a, b) => values[a as usize].wrapping_sub(values[b as usize]),
            Gate::Mul(a, b) => values[a as usize].wrapping_mul(values[b as usize]),
            Gate::Eq(a, b) => u64::from(values[a as usize] == values[b as usize]),
            Gate::Lt(a, b) => u64::from(values[a as usize] < values[b as usize]),
            Gate::And(a, b) => as_bool(values[a as usize]) & as_bool(values[b as usize]),
            Gate::Or(a, b) => as_bool(values[a as usize]) | as_bool(values[b as usize]),
            Gate::Xor(a, b) => as_bool(values[a as usize]) ^ as_bool(values[b as usize]),
            Gate::Not(a) => u64::from(values[a as usize] == 0),
            Gate::Mux(s, a, b) => {
                if values[s as usize] != 0 {
                    values[a as usize]
                } else {
                    values[b as usize]
                }
            }
            Gate::AssertZero(a) => {
                if values[a as usize] != 0 {
                    return Err(values[a as usize] as usize);
                }
                0
            }
        })
    };

    struct ValuesPtr(*mut u64);
    // SAFETY token: within one level every gate writes only its own slot
    // and reads only strictly-lower-depth slots, so per-level chunks are
    // disjoint writers over `values`.
    unsafe impl Sync for ValuesPtr {}

    if threads == 1 {
        for level in levels.iter().skip(1) {
            for &i in level {
                match eval_gate(&c.gates()[i], &values) {
                    Ok(v) => values[i] = v,
                    Err(value) => {
                        return Err(EvalError::AssertionFailed { gate: i, value: value as u64 })
                    }
                }
            }
        }
        return Ok(c.outputs().iter().map(|&w| values[w as usize]).collect());
    }

    // Persistent workers: one barrier round per level (the PRAM step),
    // not one thread spawn per level.
    let len = values.len();
    let ptr = ValuesPtr(values.as_mut_ptr());
    let barrier = std::sync::Barrier::new(threads);
    let failure = std::sync::Mutex::new(None::<(usize, u64)>);
    // One stop flag *per level*: a fast worker that fails in level L+1
    // must not make slow workers (still sampling level L's flag after the
    // barrier) exit early and strand everyone else at the next barrier.
    let failed: Vec<std::sync::atomic::AtomicBool> =
        levels.iter().map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let ptr = &ptr;
            let barrier = &barrier;
            let failure = &failure;
            let failed = &failed;
            let levels = &levels;
            let gates = c.gates();
            scope.spawn(move || {
                let values_ref: &[u64] = unsafe { std::slice::from_raw_parts(ptr.0, len) };
                for (li, level) in levels.iter().enumerate().skip(1) {
                    let chunk = level.len().div_ceil(threads);
                    let lo = (worker * chunk).min(level.len());
                    let hi = ((worker + 1) * chunk).min(level.len());
                    for &i in &level[lo..hi] {
                        match eval_gate(&gates[i], values_ref) {
                            // SAFETY: slot `i` belongs to this level and this
                            // worker's chunk; no other thread touches it
                            // during this level.
                            Ok(v) => unsafe { *ptr.0.add(i) = v },
                            Err(value) => {
                                *failure.lock().expect("poison-free") = Some((i, value as u64));
                                failed[li].store(true, std::sync::atomic::Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    barrier.wait();
                    if failed[li].load(std::sync::atomic::Ordering::SeqCst) {
                        return;
                    }
                }
            });
        }
    });
    if let Some((gate, value)) = failure.into_inner().expect("poison-free") {
        return Err(EvalError::AssertionFailed { gate, value });
    }
    Ok(c.outputs().iter().map(|&w| values[w as usize]).collect())
}

/// Number of logic gates at each depth level `1..=depth` (level `d` holds
/// gates whose longest input path is `d`).
pub fn level_widths(c: &Circuit) -> Vec<u64> {
    let depth = c.depth() as usize;
    let mut widths = vec![0u64; depth];
    for &d in c.wire_depths() {
        if d >= 1 {
            widths[d as usize - 1] += 1;
        }
    }
    widths
}

/// PRAM steps for a levelized schedule on `p` processors:
/// `Σ_levels ⌈width/p⌉`. Equals the circuit depth when `p = ∞` and the
/// size when `p = 1`; Brent's bound `W/P + D` in between.
pub fn brent_steps(c: &Circuit, p: u64) -> u64 {
    assert!(p >= 1, "at least one processor");
    level_widths(c).iter().map(|&w| w.div_ceil(p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Mode};

    fn sample_circuit() -> Circuit {
        let mut b = Builder::new(Mode::Count);
        let xs: Vec<_> = (0..64).map(|_| b.input()).collect();
        // balanced reduction tree: 63 gates, depth 6
        let mut layer = xs;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|ch| b.add(ch[0], ch[1])).collect();
        }
        b.finish(vec![layer[0]])
    }

    #[test]
    fn one_processor_costs_size() {
        let c = sample_circuit();
        assert_eq!(brent_steps(&c, 1), c.size());
    }

    #[test]
    fn unlimited_processors_cost_depth() {
        let c = sample_circuit();
        assert_eq!(brent_steps(&c, 1 << 40), u64::from(c.depth()));
    }

    #[test]
    fn brent_bound_holds() {
        let c = sample_circuit();
        for p in [1u64, 2, 3, 4, 8, 16, 64] {
            let steps = brent_steps(&c, p);
            let bound = c.size() / p + u64::from(c.depth());
            assert!(steps <= bound, "p = {p}: {steps} > {bound}");
            assert!(steps >= (c.size() / p).max(u64::from(c.depth())));
        }
    }

    #[test]
    fn levelized_evaluation_matches_sequential() {
        use crate::rel::{encode_relation, relation_to_values};
        use crate::sort::{sort_slots, SortKey};
        use qec_relation::{Relation, Var};
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], 32);
        let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
        let c = b.finish(s.flatten());
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            (0..30u64).map(|i| vec![97 - 3 * i, i]).collect(),
        );
        let inputs = relation_to_values(&r, 32).unwrap();
        let seq = c.evaluate(&inputs).unwrap();
        for threads in [1, 2, 4, 8] {
            assert_eq!(evaluate_levelized(&c, &inputs, threads).unwrap(), seq, "{threads}");
        }
    }

    #[test]
    fn levelized_assertions_fire() {
        let mut b = Builder::new(Mode::Build);
        let xs: Vec<_> = (0..64).map(|_| b.input()).collect();
        // wide level of asserts so the parallel path actually engages
        for &x in &xs {
            let y = b.not(x);
            b.assert_zero(y); // fires when x == 0
        }
        let c = b.finish(vec![]);
        let ones = vec![1u64; 64];
        assert!(evaluate_levelized(&c, &ones, 4).is_ok());
        let mut bad = ones.clone();
        bad[17] = 0;
        assert!(matches!(
            evaluate_levelized(&c, &bad, 4),
            Err(EvalError::AssertionFailed { .. })
        ));
    }

    #[test]
    fn level_widths_sum_to_size() {
        let c = sample_circuit();
        assert_eq!(level_widths(&c).iter().sum::<u64>(), c.size());
        assert_eq!(level_widths(&c), vec![32, 16, 8, 4, 2, 1]);
    }
}
