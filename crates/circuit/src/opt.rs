//! Offline circuit optimizer: constant folding, algebraic identity
//! rewrites, structural CSE, and assertion-safe dead-gate elimination.
//!
//! The pass is semantics-preserving in a strict sense:
//!
//! * every surviving wire evaluates to the same value as its source wire
//!   on every input vector;
//! * a circuit fails an assertion after optimization iff it failed one
//!   before, and the *first* failing assert corresponds to the first
//!   failing assert of the source circuit ([`OptStats::assert_origin`]
//!   maps optimized assert gates back to source gate indices, which is
//!   how [`crate::engine::CompiledCircuit`] reports source-level errors);
//! * an assert whose input folds to a non-zero constant is kept as a
//!   canonical always-fail gate (`AssertZero` over that constant), never
//!   silently dropped. Only asserts over a provable constant `0` — which
//!   can never fire — are removed.
//!
//! Word-level subtlety: the logic gates (`And`/`Or`/`Xor`/`Not`) treat
//! their operands as *truthy* (`v != 0`) and produce `0`/`1`, so
//! rewrites like `And(x, x) → x` are only sound when `x` is provably
//! boolean. The pass tracks per-wire boolean-ness (comparison/logic
//! outputs, constants `0`/`1`, muxes of booleans) and falls back to the
//! canonical coercion `Or(x, x)` (= `bool(x)`) when the operand may be a
//! wide word.

use std::collections::{HashMap, HashSet};

use qec_par::Pool;

use crate::driver::CompileOptions;
use crate::ir::{canon, Circuit, Gate, WireId};

/// Counters describing one [`optimize`] run.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Logic gates in the source circuit.
    pub gates_before: u64,
    /// Logic gates after optimization.
    pub gates_after: u64,
    /// Total wires (inputs + constants + gates) before.
    pub wires_before: usize,
    /// Total wires after.
    pub wires_after: usize,
    /// Depth before.
    pub depth_before: u32,
    /// Depth after.
    pub depth_after: u32,
    /// Gates whose value folded to a compile-time constant.
    pub folded: u64,
    /// Algebraic identity rewrites (`x + 0`, `x * 1`, `Mux(c, a, b)`, …)
    /// that replaced a gate with an existing wire or a simpler gate.
    pub identities: u64,
    /// Structural CSE hits during the rewrite.
    pub cse_hits: u64,
    /// Wires removed by mark-and-sweep DCE.
    pub dead: u64,
    /// `AssertZero` gates in the source circuit.
    pub asserts_before: u64,
    /// `AssertZero` gates kept (deduplicated; provably-passing dropped).
    pub asserts_after: u64,
    /// Asserts whose input folded to a non-zero constant (kept as
    /// canonical always-fail gates).
    pub always_fail: u64,
    /// `(optimized gate index, source gate index)` for every surviving
    /// assert, sorted by optimized index.
    pub assert_origin: Vec<(u32, u32)>,
    /// Per-phase `(name, logic gates before, logic gates after)` in
    /// execution order — currently `rewrite` (fold/identity/CSE) then
    /// `dce`. Deterministic: the sequential and parallel passes produce
    /// identical vectors, and no timing data lives here (wall times
    /// belong to the recorder, not to stats that parity tests compare).
    pub phase_gates: Vec<(&'static str, u64, u64)>,
}

impl OptStats {
    /// Fraction of logic gates removed, in `[0, 1]`.
    pub fn gate_reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }

    /// Source gate index of the assert at `opt_gate` in the optimized
    /// circuit, if `opt_gate` is a surviving assert.
    pub fn origin_of(&self, opt_gate: u32) -> Option<u32> {
        self.assert_origin
            .binary_search_by_key(&opt_gate, |&(ng, _)| ng)
            .ok()
            .map(|i| self.assert_origin[i].1)
    }

    fn passthrough(c: &Circuit) -> OptStats {
        OptStats {
            gates_before: c.size(),
            gates_after: c.size(),
            wires_before: c.num_wires(),
            wires_after: c.num_wires(),
            depth_before: c.depth(),
            depth_after: c.depth(),
            ..OptStats::default()
        }
    }
}

/// Gate-list rewriter with value/boolean-ness dataflow and CSE.
struct Rewriter {
    gates: Vec<Gate>,
    /// Compile-time value of each new wire, when provable.
    val: Vec<Option<u64>>,
    /// Is the wire provably `0`/`1`?
    boolish: Vec<bool>,
    cse: HashMap<Gate, WireId>,
    consts: HashMap<u64, WireId>,
    folded: u64,
    identities: u64,
    cse_hits: u64,
}

impl Rewriter {
    fn new(cap: usize) -> Rewriter {
        Rewriter {
            gates: Vec::with_capacity(cap),
            val: Vec::with_capacity(cap),
            boolish: Vec::with_capacity(cap),
            cse: HashMap::new(),
            consts: HashMap::new(),
            folded: 0,
            identities: 0,
            cse_hits: 0,
        }
    }

    fn raw_push(&mut self, g: Gate) -> WireId {
        let v = match g {
            Gate::Const(v) => Some(v),
            // An assert's own wire carries 0 whenever evaluation proceeds
            // past it; on failure nothing downstream is observable.
            Gate::AssertZero(_) => Some(0),
            _ => None,
        };
        let b = match g {
            Gate::Const(v) => v <= 1,
            Gate::Eq(..)
            | Gate::Lt(..)
            | Gate::And(..)
            | Gate::Or(..)
            | Gate::Xor(..)
            | Gate::Not(_)
            | Gate::AssertZero(_) => true,
            Gate::Mux(_, a, b) => self.boolish[a as usize] && self.boolish[b as usize],
            _ => false,
        };
        let id = self.gates.len() as WireId;
        self.gates.push(g);
        self.val.push(v);
        self.boolish.push(b);
        id
    }
}

impl Rewrite for Rewriter {
    fn v(&self, w: WireId) -> Option<u64> {
        self.val[w as usize]
    }

    fn is_bool(&self, w: WireId) -> bool {
        self.boolish[w as usize]
    }

    fn peek(&self, w: WireId) -> Gate {
        self.gates[w as usize]
    }

    fn konst(&mut self, v: u64) -> WireId {
        if let Some(&w) = self.consts.get(&v) {
            return w;
        }
        let w = self.raw_push(Gate::Const(v));
        self.consts.insert(v, w);
        w
    }

    fn emit(&mut self, g: Gate) -> WireId {
        let key = canon(g);
        if let Some(&w) = self.cse.get(&key) {
            self.cse_hits += 1;
            return w;
        }
        let w = self.raw_push(key);
        self.cse.insert(key, w);
        w
    }

    fn count_fold(&mut self) {
        self.folded += 1;
    }

    fn count_identity(&mut self) {
        self.identities += 1;
    }
}

/// The rewrite rules, written once against an abstract state interface.
///
/// Two implementors exist: [`Rewriter`] (the committing state used by the
/// sequential pass and by the per-level commit step of the parallel pass)
/// and [`Spec`] (a read-only speculative view of a `Rewriter` used by the
/// parallel decision phase — it records the single would-be table action
/// instead of mutating). Keeping one copy of the rule bodies is what
/// makes the parallel pass byte-identical by construction: there is no
/// second implementation to drift.
trait Rewrite {
    fn v(&self, w: WireId) -> Option<u64>;
    fn is_bool(&self, w: WireId) -> bool;
    /// The gate defining wire `w` (for the double-`Not` peephole).
    fn peek(&self, w: WireId) -> Gate;
    fn konst(&mut self, v: u64) -> WireId;
    fn emit(&mut self, g: Gate) -> WireId;
    fn count_fold(&mut self);
    fn count_identity(&mut self);

    fn fold(&mut self, v: u64) -> WireId {
        self.count_fold();
        self.konst(v)
    }

    /// Canonical `bool(w)`: `w` itself when provably boolean, otherwise
    /// the gate `Or(w, w)`.
    fn coerce_bool(&mut self, w: WireId) -> WireId {
        if let Some(v) = self.v(w) {
            return self.fold(u64::from(v != 0));
        }
        if self.is_bool(w) {
            self.count_identity();
            w
        } else {
            self.count_identity();
            self.emit(Gate::Or(w, w))
        }
    }

    fn add(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_add(y)),
            (Some(0), _) => {
                self.count_identity();
                b
            }
            (_, Some(0)) => {
                self.count_identity();
                a
            }
            _ => self.emit(Gate::Add(a, b)),
        }
    }

    fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_sub(y)),
            (_, Some(0)) => {
                self.count_identity();
                a
            }
            _ => self.emit(Gate::Sub(a, b)),
        }
    }

    fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_mul(y)),
            (Some(0), _) | (_, Some(0)) => self.fold(0),
            (Some(1), _) => {
                self.count_identity();
                b
            }
            (_, Some(1)) => {
                self.count_identity();
                a
            }
            _ => self.emit(Gate::Mul(a, b)),
        }
    }

    fn eq(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(1);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x == y)),
            _ => self.emit(Gate::Eq(a, b)),
        }
    }

    fn lt(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x < y)),
            // Nothing is below 0; nothing is above MAX.
            (_, Some(0)) | (Some(u64::MAX), _) => self.fold(0),
            _ => self.emit(Gate::Lt(a, b)),
        }
    }

    fn and(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) & u64::from(y != 0)),
            (Some(0), _) | (_, Some(0)) => self.fold(0),
            (Some(_), _) => self.coerce_bool(b),
            (_, Some(_)) => self.coerce_bool(a),
            _ if a == b => self.coerce_bool(a),
            _ => self.emit(Gate::And(a, b)),
        }
    }

    fn or(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) | u64::from(y != 0)),
            (Some(0), _) => self.coerce_bool(b),
            (_, Some(0)) => self.coerce_bool(a),
            (Some(_), _) | (_, Some(_)) => self.fold(1),
            _ if a == b => self.coerce_bool(a),
            _ => self.emit(Gate::Or(a, b)),
        }
    }

    fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) ^ u64::from(y != 0)),
            (Some(0), _) => self.coerce_bool(b),
            (_, Some(0)) => self.coerce_bool(a),
            // Xor with a truthy constant is logical negation.
            (Some(_), _) => self.not(b),
            (_, Some(_)) => self.not(a),
            _ => self.emit(Gate::Xor(a, b)),
        }
    }

    fn not(&mut self, a: WireId) -> WireId {
        if let Some(x) = self.v(a) {
            return self.fold(u64::from(x == 0));
        }
        // Double negation is boolean coercion of the inner wire.
        if let Gate::Not(y) = self.peek(a) {
            return self.coerce_bool(y);
        }
        self.emit(Gate::Not(a))
    }

    fn mux(&mut self, s: WireId, a: WireId, b: WireId) -> WireId {
        if let Some(sv) = self.v(s) {
            self.count_identity();
            return if sv != 0 { a } else { b };
        }
        if a == b {
            self.count_identity();
            return a;
        }
        match (self.v(a), self.v(b)) {
            (Some(1), Some(0)) => self.coerce_bool(s),
            (Some(0), Some(1)) => {
                self.count_identity();
                self.not(s)
            }
            _ => self.emit(Gate::Mux(s, a, b)),
        }
    }
}

/// The sequential rewrite + DCE pass (see [`optimize_with`] for the
/// public entry point and the semantics contract).
fn optimize_seq(c: &Circuit) -> (Circuit, OptStats) {
    if !c.is_evaluable() {
        return (c.clone(), OptStats::passthrough(c));
    }
    let src = c.gates();
    let mut rw = Rewriter::new(src.len());
    let mut map: Vec<WireId> = Vec::with_capacity(src.len());
    let mut seen_asserts: HashSet<WireId> = HashSet::new();
    // (pre-DCE new index, source index) per surviving assert.
    let mut assert_origin: Vec<(u32, u32)> = Vec::new();
    let mut asserts_before = 0u64;
    let mut always_fail = 0u64;

    for (i, g) in src.iter().enumerate() {
        let new = match *g {
            Gate::Input(idx) => rw.raw_push(Gate::Input(idx)),
            Gate::Const(v) => rw.konst(v),
            Gate::Add(a, b) => rw.add(map[a as usize], map[b as usize]),
            Gate::Sub(a, b) => rw.sub(map[a as usize], map[b as usize]),
            Gate::Mul(a, b) => rw.mul(map[a as usize], map[b as usize]),
            Gate::Eq(a, b) => rw.eq(map[a as usize], map[b as usize]),
            Gate::Lt(a, b) => rw.lt(map[a as usize], map[b as usize]),
            Gate::And(a, b) => rw.and(map[a as usize], map[b as usize]),
            Gate::Or(a, b) => rw.or(map[a as usize], map[b as usize]),
            Gate::Xor(a, b) => rw.xor(map[a as usize], map[b as usize]),
            Gate::Not(a) => rw.not(map[a as usize]),
            Gate::Mux(s, a, b) => rw.mux(map[s as usize], map[a as usize], map[b as usize]),
            Gate::AssertZero(a) => {
                asserts_before += 1;
                let a = map[a as usize];
                match rw.v(a) {
                    // Provably passes: the assert can never fire; its own
                    // wire value is 0.
                    Some(0) => rw.konst(0),
                    opt_v => {
                        if seen_asserts.insert(a) {
                            if opt_v.is_some() {
                                always_fail += 1;
                            }
                            let w = rw.raw_push(Gate::AssertZero(a));
                            assert_origin.push((w, i as u32));
                            w
                        } else {
                            // Duplicate assert on the same wire: the
                            // earlier (lower-index) one fires first with
                            // the same value, so this one is redundant.
                            rw.konst(0)
                        }
                    }
                }
            }
        };
        map.push(new);
    }

    let out = RewriteOut {
        gates: rw.gates,
        map,
        assert_origin,
        folded: rw.folded,
        identities: rw.identities,
        cse_hits: rw.cse_hits,
        asserts_before,
        always_fail,
    };
    let live = mark_live_seq(c, &out);
    assemble(c, out, &live)
}

/// The rewritten (pre-DCE) gate list plus everything the sweep and the
/// final stats need. Produced by both the sequential rewrite loop and the
/// parallel level pipeline.
struct RewriteOut {
    gates: Vec<Gate>,
    /// Source wire → rewritten wire.
    map: Vec<WireId>,
    /// (pre-DCE new index, source index) per surviving assert, sorted by
    /// new index.
    assert_origin: Vec<(u32, u32)>,
    folded: u64,
    identities: u64,
    cse_hits: u64,
    asserts_before: u64,
    always_fail: u64,
}

/// Sequential liveness mark. Roots: circuit outputs, every surviving
/// assert, and all input gates (arity must be preserved). A single
/// reverse pass suffices because the gate list is topologically ordered.
fn mark_live_seq(c: &Circuit, out: &RewriteOut) -> Vec<bool> {
    let n = out.gates.len();
    let mut live = vec![false; n];
    for &o in c.outputs() {
        live[out.map[o as usize] as usize] = true;
    }
    for (w, g) in out.gates.iter().enumerate() {
        if matches!(g, Gate::AssertZero(_) | Gate::Input(_)) {
            live[w] = true;
        }
    }
    for w in (0..n).rev() {
        if live[w] {
            for op in out.gates[w].operands().iter().flatten() {
                live[*op as usize] = true;
            }
        }
    }
    live
}

/// Sweep (compaction in id order) and final stats assembly, shared by the
/// sequential and parallel passes so the produced `(Circuit, OptStats)`
/// agree byte for byte whenever the rewrite outputs and live sets agree.
fn assemble(c: &Circuit, out: RewriteOut, live: &[bool]) -> (Circuit, OptStats) {
    let n = out.gates.len();
    let mut remap = vec![WireId::MAX; n];
    let mut out_gates: Vec<Gate> = Vec::with_capacity(n);
    for w in 0..n {
        if !live[w] {
            continue;
        }
        remap[w] = out_gates.len() as WireId;
        out_gates.push(remap_gate(out.gates[w], &remap));
    }
    let dead = (n - out_gates.len()) as u64;
    let outputs: Vec<WireId> = c
        .outputs()
        .iter()
        .map(|&o| remap[out.map[o as usize] as usize])
        .collect();
    let assert_origin: Vec<(u32, u32)> = out
        .assert_origin
        .into_iter()
        .map(|(nw, oi)| (remap[nw as usize], oi))
        .collect();
    let asserts_after = assert_origin.len() as u64;

    // Logic-gate count of the rewritten-but-unswept list: the boundary
    // between the rewrite and DCE phases.
    let pre_dce_gates = out
        .gates
        .iter()
        .filter(|g| !matches!(g, Gate::Input(_) | Gate::Const(_)))
        .count() as u64;
    let opt = Circuit::from_raw(out_gates, outputs, c.num_inputs());
    let stats = OptStats {
        gates_before: c.size(),
        gates_after: opt.size(),
        wires_before: c.num_wires(),
        wires_after: opt.num_wires(),
        depth_before: c.depth(),
        depth_after: opt.depth(),
        folded: out.folded,
        identities: out.identities,
        cse_hits: out.cse_hits,
        dead,
        asserts_before: out.asserts_before,
        asserts_after,
        always_fail: out.always_fail,
        assert_origin,
        phase_gates: vec![
            ("rewrite", c.size(), pre_dce_gates),
            ("dce", pre_dce_gates, opt.size()),
        ],
    };
    (opt, stats)
}

/// Rewrites every operand of `g` through `renum`.
fn remap_gate(g: Gate, renum: &[WireId]) -> Gate {
    let r = |w: WireId| renum[w as usize];
    match g {
        Gate::Input(idx) => Gate::Input(idx),
        Gate::Const(v) => Gate::Const(v),
        Gate::Add(a, b) => Gate::Add(r(a), r(b)),
        Gate::Sub(a, b) => Gate::Sub(r(a), r(b)),
        Gate::Mul(a, b) => Gate::Mul(r(a), r(b)),
        Gate::Eq(a, b) => Gate::Eq(r(a), r(b)),
        Gate::Lt(a, b) => Gate::Lt(r(a), r(b)),
        Gate::And(a, b) => Gate::And(r(a), r(b)),
        Gate::Or(a, b) => Gate::Or(r(a), r(b)),
        Gate::Xor(a, b) => Gate::Xor(r(a), r(b)),
        Gate::Not(a) => Gate::Not(r(a)),
        Gate::Mux(s, a, b) => Gate::Mux(r(s), r(a), r(b)),
        Gate::AssertZero(a) => Gate::AssertZero(r(a)),
    }
}

// ---------------------------------------------------------------------
// Parallel pass.
//
// The sequential pass above is the reference; the parallel pass promises
// the *byte-identical* `(Circuit, OptStats)`. It works in level waves
// over the source circuit (a gate's operands sit at strictly smaller
// depths, so by the time a level is processed every operand image is
// committed):
//
//   1. decision phase (parallel): every gate of the level runs the full
//      rule set (`Rewrite` impl'd by `Spec`) against the committed state
//      only, recording the exact counter deltas and the single would-be
//      table action (a rule fires at most one `konst`/`emit`);
//   2. commit phase (sequential, in source order within the level):
//      deltas are applied and pending actions resolve against the live
//      tables — a same-level predecessor may have created the gate, in
//      which case the commit becomes the CSE hit the sequential pass
//      would have counted.
//
// Wire numbering under this schedule differs from the sequential pass
// (levels interleave differently than source order), so every table
// attempt records the *source index* of its gate; since any wire's first
// attempt is the one that creates it sequentially, renumbering created
// wires by minimum attempt index restores the exact sequential
// numbering. Asserts are deferred to a post-pass in source order (their
// dedup winner is the lowest source index, which a level schedule cannot
// know in-flight); the renumbering slots their gates correctly anyway.
// The one construct the schedule cannot reproduce is a gate *consuming*
// an assert's own wire before the post-pass resolves it — detected via a
// sentinel image, and the whole pass falls back to the sequential
// reference (operator circuits never feed assert wires forward).
// ---------------------------------------------------------------------

/// Unresolved assert image in `map` (asserts resolve in the post-pass).
const SENTINEL: WireId = WireId::MAX;
/// Placeholder returned by `Spec` for a not-yet-committed creation.
const SPEC_WIRE: WireId = WireId::MAX - 1;

/// The single table action a gate's rule run performs, if any.
#[derive(Clone, Copy, Debug)]
enum Attempt {
    /// Identity rewrite: the result is an existing wire, no table lookup.
    None,
    /// Decision-time lookup hit this existing wire.
    Hit(WireId),
    /// Missed the const table; commit must `konst(v)`.
    CreateConst(u64),
    /// Missed the CSE table; commit must `emit` (key already canonical).
    CreateGate(Gate),
}

/// One gate's planned rewrite: its result (or [`SPEC_WIRE`]), the pending
/// table action, and the exact counter deltas the sequential pass would
/// record for it.
struct Decision {
    result: WireId,
    attempt: Attempt,
    folded: u64,
    identities: u64,
    cse_hits: u64,
}

enum Planned {
    /// Resolved in the post-pass.
    Assert,
    /// An operand is an unresolved assert wire: take the sequential path.
    Fallback,
    Do(Decision),
}

/// Read-only speculative view of a [`Rewriter`] for the decision phase:
/// same rules, but table misses record the pending action instead of
/// mutating.
struct Spec<'a> {
    rw: &'a Rewriter,
    folded: u64,
    identities: u64,
    cse_hits: u64,
    attempt: Attempt,
}

impl Rewrite for Spec<'_> {
    fn v(&self, w: WireId) -> Option<u64> {
        self.rw.val[w as usize]
    }

    fn is_bool(&self, w: WireId) -> bool {
        self.rw.boolish[w as usize]
    }

    fn peek(&self, w: WireId) -> Gate {
        self.rw.gates[w as usize]
    }

    fn konst(&mut self, v: u64) -> WireId {
        debug_assert!(
            matches!(self.attempt, Attempt::None),
            "a rule performs at most one table action"
        );
        match self.rw.consts.get(&v) {
            Some(&w) => {
                self.attempt = Attempt::Hit(w);
                w
            }
            None => {
                self.attempt = Attempt::CreateConst(v);
                SPEC_WIRE
            }
        }
    }

    fn emit(&mut self, g: Gate) -> WireId {
        debug_assert!(
            matches!(self.attempt, Attempt::None),
            "a rule performs at most one table action"
        );
        let key = canon(g);
        match self.rw.cse.get(&key) {
            Some(&w) => {
                self.cse_hits += 1;
                self.attempt = Attempt::Hit(w);
                w
            }
            None => {
                self.attempt = Attempt::CreateGate(key);
                SPEC_WIRE
            }
        }
    }

    fn count_fold(&mut self) {
        self.folded += 1;
    }

    fn count_identity(&mut self) {
        self.identities += 1;
    }
}

/// Runs the rule set for one source gate against committed state only.
fn decide(rw: &Rewriter, map: &[WireId], g: Gate) -> Planned {
    for op in g.operands().iter().flatten() {
        if map[*op as usize] >= SPEC_WIRE {
            return Planned::Fallback;
        }
    }
    let m = |w: WireId| map[w as usize];
    let mut sp = Spec {
        rw,
        folded: 0,
        identities: 0,
        cse_hits: 0,
        attempt: Attempt::None,
    };
    let result = match g {
        Gate::Add(a, b) => sp.add(m(a), m(b)),
        Gate::Sub(a, b) => sp.sub(m(a), m(b)),
        Gate::Mul(a, b) => sp.mul(m(a), m(b)),
        Gate::Eq(a, b) => sp.eq(m(a), m(b)),
        Gate::Lt(a, b) => sp.lt(m(a), m(b)),
        Gate::And(a, b) => sp.and(m(a), m(b)),
        Gate::Or(a, b) => sp.or(m(a), m(b)),
        Gate::Xor(a, b) => sp.xor(m(a), m(b)),
        Gate::Not(a) => sp.not(m(a)),
        Gate::Mux(s, a, b) => sp.mux(m(s), m(a), m(b)),
        Gate::Input(_) | Gate::Const(_) | Gate::AssertZero(_) => {
            unreachable!("handled outside the decision phase")
        }
    };
    Planned::Do(Decision {
        result,
        attempt: sp.attempt,
        folded: sp.folded,
        identities: sp.identities,
        cse_hits: sp.cse_hits,
    })
}

/// Records a table attempt by source gate `i` that resolved to wire `w`:
/// a fresh creation appends its creator, a hit lowers the existing one.
/// `total` is the wire count *after* the attempt.
fn note_attempt(creator: &mut Vec<u32>, total: usize, w: WireId, i: u32) {
    if creator.len() < total {
        debug_assert_eq!(creator.len() + 1, total);
        debug_assert_eq!(w as usize, total - 1);
        creator.push(i);
    } else if i < creator[w as usize] {
        creator[w as usize] = i;
    }
}

/// The level-parallel rewrite. `None` means an assert wire was consumed
/// before its post-pass resolution — take the sequential path instead.
fn rewrite_par(c: &Circuit, pool: &Pool) -> Option<RewriteOut> {
    let src = c.gates();
    let depths = c.wire_depths();
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); c.depth() as usize + 1];
    for (i, &d) in depths.iter().enumerate() {
        levels[d as usize].push(i as u32);
    }

    let mut rw = Rewriter::new(src.len());
    // Per created wire: lowest source index that attempted it. Distinct
    // across wires (a source gate makes at most one attempt), and the
    // first attempt is the one that creates the wire sequentially.
    let mut creator: Vec<u32> = Vec::with_capacity(src.len());
    let mut map: Vec<WireId> = vec![SENTINEL; src.len()];
    // (source index, image wire) per assert, resolved in the post-pass.
    let mut assert_images: Vec<(u32, WireId)> = Vec::new();

    for (lvl, idxs) in levels.iter().enumerate() {
        if lvl == 0 {
            // Inputs and constants; sequential, they are trivially cheap.
            for &i in idxs {
                let w = match src[i as usize] {
                    Gate::Input(idx) => {
                        let w = rw.raw_push(Gate::Input(idx));
                        creator.push(i);
                        w
                    }
                    Gate::Const(v) => {
                        let w = rw.konst(v);
                        note_attempt(&mut creator, rw.gates.len(), w, i);
                        w
                    }
                    _ => unreachable!("depth-0 gates are inputs and constants"),
                };
                map[i as usize] = w;
            }
            continue;
        }
        let planned = pool.map(idxs.len(), |k| {
            let i = idxs[k] as usize;
            match src[i] {
                Gate::AssertZero(_) => Planned::Assert,
                g => decide(&rw, &map, g),
            }
        });
        for (k, &i) in idxs.iter().enumerate() {
            match &planned[k] {
                Planned::Fallback => return None,
                Planned::Assert => {
                    let Gate::AssertZero(a) = src[i as usize] else {
                        unreachable!()
                    };
                    let img = map[a as usize];
                    if img >= SPEC_WIRE {
                        // Assert over an assert's own wire.
                        return None;
                    }
                    assert_images.push((i, img));
                    // map[i] stays SENTINEL; any consumer falls back.
                }
                Planned::Do(d) => {
                    rw.folded += d.folded;
                    rw.identities += d.identities;
                    rw.cse_hits += d.cse_hits;
                    let w = match d.attempt {
                        Attempt::None => d.result,
                        Attempt::Hit(w0) => {
                            note_attempt(&mut creator, rw.gates.len(), w0, i);
                            d.result
                        }
                        Attempt::CreateConst(v) => {
                            let w = rw.konst(v);
                            note_attempt(&mut creator, rw.gates.len(), w, i);
                            w
                        }
                        // A same-level predecessor may have committed the
                        // same key, in which case this becomes the CSE
                        // hit the sequential pass would count.
                        Attempt::CreateGate(g) => {
                            let w = rw.emit(g);
                            note_attempt(&mut creator, rw.gates.len(), w, i);
                            w
                        }
                    };
                    map[i as usize] = w;
                }
            }
        }
    }

    // Deferred asserts, in source order: the dedup winner for a given
    // image is the lowest source index, exactly the sequential choice.
    assert_images.sort_unstable_by_key(|&(i, _)| i);
    let mut seen_asserts: HashSet<WireId> = HashSet::new();
    let mut assert_origin: Vec<(u32, u32)> = Vec::new();
    let mut asserts_before = 0u64;
    let mut always_fail = 0u64;
    for &(i, img) in &assert_images {
        asserts_before += 1;
        let w = match rw.v(img) {
            Some(0) => {
                let w = rw.konst(0);
                note_attempt(&mut creator, rw.gates.len(), w, i);
                w
            }
            opt_v => {
                if seen_asserts.insert(img) {
                    if opt_v.is_some() {
                        always_fail += 1;
                    }
                    let w = rw.raw_push(Gate::AssertZero(img));
                    creator.push(i);
                    assert_origin.push((w, i));
                    w
                } else {
                    let w = rw.konst(0);
                    note_attempt(&mut creator, rw.gates.len(), w, i);
                    w
                }
            }
        };
        map[i as usize] = w;
    }

    // Renumber into sequential creation order (= ascending creator), and
    // re-canonicalize: commutative operand order depends on numbering.
    let n = rw.gates.len();
    debug_assert_eq!(creator.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&w| creator[w as usize]);
    let mut renum = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        renum[old as usize] = new as u32;
    }
    let gates: Vec<Gate> = order
        .iter()
        .map(|&old| canon(remap_gate(rw.gates[old as usize], &renum)))
        .collect();
    for m in &mut map {
        *m = renum[*m as usize];
    }
    let mut assert_origin: Vec<(u32, u32)> = assert_origin
        .into_iter()
        .map(|(w, i)| (renum[w as usize], i))
        .collect();
    assert_origin.sort_unstable_by_key(|&(w, _)| w);

    Some(RewriteOut {
        gates,
        map,
        assert_origin,
        folded: rw.folded,
        identities: rw.identities,
        cse_hits: rw.cse_hits,
        asserts_before,
        always_fail,
    })
}

/// Parallel liveness mark: same closure as [`mark_live_seq`], computed in
/// descending level waves (a gate's own flag is settled before its wave;
/// it only stores into strictly lower levels, so waves never race).
fn mark_live_par(c: &Circuit, out: &RewriteOut, pool: &Pool) -> Vec<bool> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let n = out.gates.len();
    let mut depth = vec![0u32; n];
    let mut max_d = 0u32;
    for w in 0..n {
        let d = out.gates[w]
            .operands()
            .iter()
            .flatten()
            .map(|&op| depth[op as usize] + 1)
            .max()
            .unwrap_or(0);
        depth[w] = d;
        max_d = max_d.max(d);
    }
    let mut glevels: Vec<Vec<u32>> = vec![Vec::new(); max_d as usize + 1];
    for (w, &d) in depth.iter().enumerate() {
        glevels[d as usize].push(w as u32);
    }

    let live: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    for &o in c.outputs() {
        live[out.map[o as usize] as usize].store(true, Ordering::Relaxed);
    }
    pool.run_chunks(n, pool.grain_for(n), |r| {
        for w in r {
            if matches!(out.gates[w], Gate::AssertZero(_) | Gate::Input(_)) {
                live[w].store(true, Ordering::Relaxed);
            }
        }
    });
    for lvl in glevels.iter().rev() {
        pool.run_chunks(lvl.len(), pool.grain_for(lvl.len()), |r| {
            for k in r {
                let w = lvl[k] as usize;
                if live[w].load(Ordering::Relaxed) {
                    for op in out.gates[w].operands().iter().flatten() {
                        live[*op as usize].store(true, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    live.into_iter().map(|b| b.into_inner()).collect()
}

/// [`optimize_seq`], scheduled across `pool`'s workers. Produces the
/// byte-identical `(Circuit, OptStats)` — including [`OptStats::assert_origin`]
/// — for every circuit; a single-worker pool (and the rare circuit that
/// feeds an assert's own wire into a later gate) delegates to the
/// sequential pass directly.
fn optimize_pooled(c: &Circuit, pool: &Pool) -> (Circuit, OptStats) {
    if !c.is_evaluable() {
        return (c.clone(), OptStats::passthrough(c));
    }
    if pool.is_sequential() {
        return optimize_seq(c);
    }
    match rewrite_par(c, pool) {
        Some(out) => {
            let live = mark_live_par(c, &out, pool);
            assemble(c, out, &live)
        }
        None => optimize_seq(c),
    }
}

/// Optimizes a circuit under `opts`: constant folding, algebraic
/// identity rewrites, structural CSE, and assertion-safe mark-and-sweep
/// DCE, scheduled across `opts.pool` (byte-identical result — including
/// [`OptStats::assert_origin`] — for every worker count).
///
/// Count-only circuits, and any circuit when `opts.optimize` is off,
/// pass through unchanged. Output order and input arity are always
/// preserved; every declared input wire survives even if unused, so
/// optimized circuits accept the exact same input vectors.
///
/// When `opts.recorder` is enabled the pass records an `optimize` span
/// and its headline counters; the produced [`OptStats`] never depends on
/// whether tracing was on.
pub fn optimize_with(c: &Circuit, opts: &CompileOptions) -> (Circuit, OptStats) {
    if !opts.optimize {
        return (c.clone(), OptStats::passthrough(c));
    }
    let rec = &opts.recorder;
    let _span = rec.span("optimize");
    let (opt, st) = optimize_pooled(c, &opts.pool);
    if rec.is_enabled() {
        rec.add("opt.gates_before", st.gates_before);
        rec.add("opt.gates_after", st.gates_after);
        rec.add("opt.folded", st.folded);
        rec.add("opt.identities", st.identities);
        rec.add("opt.cse_hits", st.cse_hits);
        rec.add("opt.dead", st.dead);
    }
    (opt, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Builder, EvalError, Mode};

    #[test]
    fn folds_constants_and_identities() {
        // Build without CSE so the source actually contains the
        // redundancy the optimizer is supposed to remove.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let zero = b.constant(0);
        let one = b.constant(1);
        let a = b.add(x, zero); // x + 0 → x
        let m = b.mul(a, one); // x * 1 → x
        let e = b.eq(m, m); // Eq(x, x) → 1
        let s = b.sub(x, x); // x - x → 0
        let k = b.add(e, s); // 1 + 0 → 1
        let c = b.finish(vec![a, m, k]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.size(), 0, "everything folds away");
        assert!(st.folded > 0);
        for inp in [[0u64], [5], [u64::MAX]] {
            assert_eq!(c.evaluate(&inp).unwrap(), opt.evaluate(&inp).unwrap());
        }
        assert_eq!(opt.evaluate(&[9]).unwrap(), vec![9, 9, 1]);
    }

    #[test]
    fn boolean_guard_blocks_unsound_rewrites() {
        // And(x, x) must NOT become x for a non-boolean word.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let a = b.and(x, x);
        let c = b.finish(vec![a]);
        let (opt, _) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.evaluate(&[5]).unwrap(), vec![1]);
        assert_eq!(opt.evaluate(&[0]).unwrap(), vec![0]);
        // But And(e, e) for boolean e is e itself.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let e = b.eq(x, y);
        let a = b.and(e, e);
        let c = b.finish(vec![a]);
        let (opt, _) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.size(), 1, "only the Eq survives");
        assert_eq!(opt.evaluate(&[3, 3]).unwrap(), vec![1]);
    }

    #[test]
    fn double_not_coerces() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let n1 = b.not(x);
        let n2 = b.not(n1); // bool(x), x not provably boolean
        let c = b.finish(vec![n2]);
        let (opt, _) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.evaluate(&[7]).unwrap(), vec![1]);
        assert_eq!(opt.evaluate(&[0]).unwrap(), vec![0]);
        assert!(
            opt.size() <= 1,
            "Not(Not(x)) collapses to one coercion gate"
        );
    }

    #[test]
    fn mux_rewrites() {
        let mut b = Builder::without_cse(Mode::Build);
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let same = b.mux(s, x, x); // → x
        let one = b.constant(1);
        let zero = b.constant(0);
        let csel = b.mux(one, x, y); // → x
        let boolify = b.mux(s, one, zero); // → bool(s)
        let c = b.finish(vec![same, csel, boolify]);
        let (opt, _) = optimize_with(&c, &CompileOptions::sequential());
        for inp in [[0u64, 4, 9], [2, 4, 9]] {
            assert_eq!(c.evaluate(&inp).unwrap(), opt.evaluate(&inp).unwrap());
        }
        assert_eq!(opt.size(), 1, "only the boolean coercion of s remains");
    }

    #[test]
    fn dce_keeps_outputs_and_inputs() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _dead = b.mul(x, y); // unused
        let live = b.add(x, y);
        let c = b.finish(vec![live]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.size(), 1);
        assert_eq!(opt.num_inputs(), 2);
        assert_eq!(st.dead, 1);
        assert_eq!(opt.evaluate(&[2, 3]).unwrap(), vec![5]);
    }

    #[test]
    fn passing_asserts_on_const_zero_are_dropped() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let z = b.sub(x, x); // folds to 0
        b.assert_zero(z);
        let out = b.add(x, x);
        let c = b.finish(vec![out]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(st.asserts_before, 1);
        assert_eq!(st.asserts_after, 0);
        assert_eq!(opt.evaluate(&[4]).unwrap(), vec![8]);
    }

    #[test]
    fn failing_asserts_never_optimize_away() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let one = b.constant(1);
        let k = b.mul(one, one); // folds to const 1
        b.assert_zero(k); // always fails with value 1
        let c = b.finish(vec![x]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(st.always_fail, 1);
        assert_eq!(st.asserts_after, 1);
        match opt.evaluate(&[0]) {
            Err(EvalError::AssertionFailed { value, .. }) => assert_eq!(value, 1),
            other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_asserts_dedup_to_the_first() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let d1 = b.sub(x, y);
        let d2 = b.sub(x, y); // same wire after CSE in the rewriter
        b.assert_zero(d1);
        b.assert_zero(d2);
        let c = b.finish(vec![]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(st.asserts_before, 2);
        assert_eq!(st.asserts_after, 1);
        // The surviving assert maps to the FIRST source assert.
        let (ng, orig) = st.assert_origin[0];
        assert!(matches!(opt.gates()[ng as usize], Gate::AssertZero(_)));
        assert!(matches!(c.gates()[orig as usize], Gate::AssertZero(_)));
        let first_src_assert = c
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::AssertZero(_)))
            .unwrap();
        assert_eq!(orig as usize, first_src_assert);
        assert!(opt.evaluate(&[3, 3]).is_ok());
        assert!(matches!(
            opt.evaluate(&[5, 3]),
            Err(EvalError::AssertionFailed { value: 2, .. })
        ));
    }

    #[test]
    fn assert_origin_maps_reported_gate_to_source_gate() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _pad = b.mul(x, x); // dead gate before the assert
        let d = b.sub(x, y);
        b.assert_zero(d);
        let e = b.eq(x, y);
        let n = b.not(e);
        b.assert_zero(n);
        let c = b.finish(vec![]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        // Fail the first assert: both circuits must report corresponding
        // gates and identical values.
        let (src_err, opt_err) = (
            c.evaluate(&[9, 2]).unwrap_err(),
            opt.evaluate(&[9, 2]).unwrap_err(),
        );
        match (src_err, opt_err) {
            (
                EvalError::AssertionFailed {
                    gate: sg,
                    value: sv,
                },
                EvalError::AssertionFailed {
                    gate: og,
                    value: ov,
                },
            ) => {
                assert_eq!(sv, ov);
                assert_eq!(st.origin_of(og as u32), Some(sg as u32));
            }
            other => panic!("expected assertion failures, got {other:?}"),
        }
    }

    #[test]
    fn count_mode_passes_through() {
        let mut b = Builder::new(Mode::Count);
        let x = b.input();
        let y = b.not(x);
        let c = b.finish(vec![y]);
        let (opt, st) = optimize_with(&c, &CompileOptions::sequential());
        assert!(!opt.is_evaluable());
        assert_eq!(opt.size(), c.size());
        assert_eq!(st.gates_before, st.gates_after);
    }

    /// A circuit exercising every rewrite family at once: folds,
    /// identities, coercions, CSE duplicates, passing / failing /
    /// duplicated asserts, dead gates.
    fn gnarly_circuit() -> Circuit {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let zero = b.constant(0);
        let one = b.constant(1);
        let a1 = b.add(x, zero); // x
        let m1 = b.mul(a1, one); // x
        let d1 = b.sub(x, y);
        let d2 = b.sub(x, y); // CSE dup of d1
        b.assert_zero(d1);
        b.assert_zero(d2); // dedups to the first
        let pz = b.sub(z, z); // folds to 0
        b.assert_zero(pz); // provably passes, dropped
        let k = b.mul(one, one); // const 1
        b.assert_zero(k); // always fails
        let e = b.eq(m1, y);
        let n1 = b.not(e);
        let n2 = b.not(n1); // bool coercion of e
        let mx = b.mux(e, one, zero); // bool(e)
        let w = b.and(n2, mx);
        let o = b.or(w, zero);
        let xr = b.xor(o, one); // logical negation
        let lt = b.lt(z, zero); // folds to 0
        let _dead = b.mul(y, z); // dead
        let deep = {
            let mut acc = x;
            for i in 0..12 {
                let c = b.constant(i % 3);
                acc = b.add(acc, c);
                let t = b.mul(acc, y);
                acc = b.sub(t, acc);
            }
            acc
        };
        b.finish(vec![m1, xr, lt, deep, x])
    }

    fn assert_same_opt(c: &Circuit, threads: usize) {
        let (seq_c, seq_st) = optimize_with(c, &CompileOptions::sequential());
        let (par_c, par_st) = optimize_with(
            c,
            &CompileOptions::sequential().with_pool(Pool::new(threads)),
        );
        assert_eq!(par_c.gates(), seq_c.gates(), "threads={threads}");
        assert_eq!(par_c.outputs(), seq_c.outputs(), "threads={threads}");
        assert_eq!(par_c.num_inputs(), seq_c.num_inputs());
        assert_eq!(
            format!("{par_st:?}"),
            format!("{seq_st:?}"),
            "threads={threads}"
        );
    }

    #[test]
    fn parallel_optimize_is_byte_identical() {
        let c = gnarly_circuit();
        for threads in [1, 2, 3, 8] {
            assert_same_opt(&c, threads);
        }
    }

    #[test]
    fn parallel_optimize_falls_back_on_consumed_assert_wires() {
        // The level schedule cannot resolve an assert wire in-flight;
        // consuming one must fall back to (and so agree with) the
        // sequential pass.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let d = b.sub(x, y);
        let aw = b.assert_zero(d);
        let o = b.add(aw, x); // consumes the assert's own wire
        let c = b.finish(vec![o]);
        for threads in [2, 4] {
            assert_same_opt(&c, threads);
        }
    }

    #[test]
    fn parallel_optimize_matches_on_wide_flat_circuits() {
        // Many independent same-level gates: exercises same-level CSE
        // commits and the creator renumbering.
        let mut b = Builder::without_cse(Mode::Build);
        let xs: Vec<_> = (0..32).map(|_| b.input()).collect();
        let mut outs = Vec::new();
        for i in 0..32 {
            for j in 0..4 {
                let s = b.add(xs[i], xs[(i + j) % 32]);
                let t = b.add(xs[(i + j) % 32], xs[i]); // canon dup
                let u = b.mul(s, t);
                outs.push(u);
            }
        }
        let c = b.finish(outs);
        for threads in [2, 8] {
            assert_same_opt(&c, threads);
        }
    }

    #[test]
    fn output_order_and_arity_survive() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _unused_input_is_fine = b.input();
        let a = b.add(x, y);
        let m = b.mul(x, y);
        let c = b.finish(vec![m, a, x]);
        let (opt, _) = optimize_with(&c, &CompileOptions::sequential());
        assert_eq!(opt.num_inputs(), 3);
        assert_eq!(opt.evaluate(&[2, 3, 99]).unwrap(), vec![6, 5, 2]);
    }
}
