//! Offline circuit optimizer: constant folding, algebraic identity
//! rewrites, structural CSE, and assertion-safe dead-gate elimination.
//!
//! The pass is semantics-preserving in a strict sense:
//!
//! * every surviving wire evaluates to the same value as its source wire
//!   on every input vector;
//! * a circuit fails an assertion after optimization iff it failed one
//!   before, and the *first* failing assert corresponds to the first
//!   failing assert of the source circuit ([`OptStats::assert_origin`]
//!   maps optimized assert gates back to source gate indices, which is
//!   how [`crate::engine::CompiledCircuit`] reports source-level errors);
//! * an assert whose input folds to a non-zero constant is kept as a
//!   canonical always-fail gate (`AssertZero` over that constant), never
//!   silently dropped. Only asserts over a provable constant `0` — which
//!   can never fire — are removed.
//!
//! Word-level subtlety: the logic gates (`And`/`Or`/`Xor`/`Not`) treat
//! their operands as *truthy* (`v != 0`) and produce `0`/`1`, so
//! rewrites like `And(x, x) → x` are only sound when `x` is provably
//! boolean. The pass tracks per-wire boolean-ness (comparison/logic
//! outputs, constants `0`/`1`, muxes of booleans) and falls back to the
//! canonical coercion `Or(x, x)` (= `bool(x)`) when the operand may be a
//! wide word.

use std::collections::{HashMap, HashSet};

use crate::ir::{canon, Circuit, Gate, WireId};

/// Counters describing one [`optimize`] run.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Logic gates in the source circuit.
    pub gates_before: u64,
    /// Logic gates after optimization.
    pub gates_after: u64,
    /// Total wires (inputs + constants + gates) before.
    pub wires_before: usize,
    /// Total wires after.
    pub wires_after: usize,
    /// Depth before.
    pub depth_before: u32,
    /// Depth after.
    pub depth_after: u32,
    /// Gates whose value folded to a compile-time constant.
    pub folded: u64,
    /// Algebraic identity rewrites (`x + 0`, `x * 1`, `Mux(c, a, b)`, …)
    /// that replaced a gate with an existing wire or a simpler gate.
    pub identities: u64,
    /// Structural CSE hits during the rewrite.
    pub cse_hits: u64,
    /// Wires removed by mark-and-sweep DCE.
    pub dead: u64,
    /// `AssertZero` gates in the source circuit.
    pub asserts_before: u64,
    /// `AssertZero` gates kept (deduplicated; provably-passing dropped).
    pub asserts_after: u64,
    /// Asserts whose input folded to a non-zero constant (kept as
    /// canonical always-fail gates).
    pub always_fail: u64,
    /// `(optimized gate index, source gate index)` for every surviving
    /// assert, sorted by optimized index.
    pub assert_origin: Vec<(u32, u32)>,
}

impl OptStats {
    /// Fraction of logic gates removed, in `[0, 1]`.
    pub fn gate_reduction(&self) -> f64 {
        if self.gates_before == 0 {
            0.0
        } else {
            1.0 - self.gates_after as f64 / self.gates_before as f64
        }
    }

    /// Source gate index of the assert at `opt_gate` in the optimized
    /// circuit, if `opt_gate` is a surviving assert.
    pub fn origin_of(&self, opt_gate: u32) -> Option<u32> {
        self.assert_origin
            .binary_search_by_key(&opt_gate, |&(ng, _)| ng)
            .ok()
            .map(|i| self.assert_origin[i].1)
    }

    fn passthrough(c: &Circuit) -> OptStats {
        OptStats {
            gates_before: c.size(),
            gates_after: c.size(),
            wires_before: c.num_wires(),
            wires_after: c.num_wires(),
            depth_before: c.depth(),
            depth_after: c.depth(),
            ..OptStats::default()
        }
    }
}

/// Gate-list rewriter with value/boolean-ness dataflow and CSE.
struct Rewriter {
    gates: Vec<Gate>,
    /// Compile-time value of each new wire, when provable.
    val: Vec<Option<u64>>,
    /// Is the wire provably `0`/`1`?
    boolish: Vec<bool>,
    cse: HashMap<Gate, WireId>,
    consts: HashMap<u64, WireId>,
    folded: u64,
    identities: u64,
    cse_hits: u64,
}

impl Rewriter {
    fn new(cap: usize) -> Rewriter {
        Rewriter {
            gates: Vec::with_capacity(cap),
            val: Vec::with_capacity(cap),
            boolish: Vec::with_capacity(cap),
            cse: HashMap::new(),
            consts: HashMap::new(),
            folded: 0,
            identities: 0,
            cse_hits: 0,
        }
    }

    fn raw_push(&mut self, g: Gate) -> WireId {
        let v = match g {
            Gate::Const(v) => Some(v),
            // An assert's own wire carries 0 whenever evaluation proceeds
            // past it; on failure nothing downstream is observable.
            Gate::AssertZero(_) => Some(0),
            _ => None,
        };
        let b = match g {
            Gate::Const(v) => v <= 1,
            Gate::Eq(..)
            | Gate::Lt(..)
            | Gate::And(..)
            | Gate::Or(..)
            | Gate::Xor(..)
            | Gate::Not(_)
            | Gate::AssertZero(_) => true,
            Gate::Mux(_, a, b) => self.boolish[a as usize] && self.boolish[b as usize],
            _ => false,
        };
        let id = self.gates.len() as WireId;
        self.gates.push(g);
        self.val.push(v);
        self.boolish.push(b);
        id
    }

    fn konst(&mut self, v: u64) -> WireId {
        if let Some(&w) = self.consts.get(&v) {
            return w;
        }
        let w = self.raw_push(Gate::Const(v));
        self.consts.insert(v, w);
        w
    }

    fn fold(&mut self, v: u64) -> WireId {
        self.folded += 1;
        self.konst(v)
    }

    fn emit(&mut self, g: Gate) -> WireId {
        let key = canon(g);
        if let Some(&w) = self.cse.get(&key) {
            self.cse_hits += 1;
            return w;
        }
        let w = self.raw_push(key);
        self.cse.insert(key, w);
        w
    }

    fn v(&self, w: WireId) -> Option<u64> {
        self.val[w as usize]
    }

    fn is_bool(&self, w: WireId) -> bool {
        self.boolish[w as usize]
    }

    /// Canonical `bool(w)`: `w` itself when provably boolean, otherwise
    /// the gate `Or(w, w)`.
    fn coerce_bool(&mut self, w: WireId) -> WireId {
        if let Some(v) = self.v(w) {
            return self.fold(u64::from(v != 0));
        }
        if self.is_bool(w) {
            self.identities += 1;
            w
        } else {
            self.identities += 1;
            self.emit(Gate::Or(w, w))
        }
    }

    fn add(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_add(y)),
            (Some(0), _) => {
                self.identities += 1;
                b
            }
            (_, Some(0)) => {
                self.identities += 1;
                a
            }
            _ => self.emit(Gate::Add(a, b)),
        }
    }

    fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_sub(y)),
            (_, Some(0)) => {
                self.identities += 1;
                a
            }
            _ => self.emit(Gate::Sub(a, b)),
        }
    }

    fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(x.wrapping_mul(y)),
            (Some(0), _) | (_, Some(0)) => self.fold(0),
            (Some(1), _) => {
                self.identities += 1;
                b
            }
            (_, Some(1)) => {
                self.identities += 1;
                a
            }
            _ => self.emit(Gate::Mul(a, b)),
        }
    }

    fn eq(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(1);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x == y)),
            _ => self.emit(Gate::Eq(a, b)),
        }
    }

    fn lt(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x < y)),
            // Nothing is below 0; nothing is above MAX.
            (_, Some(0)) | (Some(u64::MAX), _) => self.fold(0),
            _ => self.emit(Gate::Lt(a, b)),
        }
    }

    fn and(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) & u64::from(y != 0)),
            (Some(0), _) | (_, Some(0)) => self.fold(0),
            (Some(_), _) => self.coerce_bool(b),
            (_, Some(_)) => self.coerce_bool(a),
            _ if a == b => self.coerce_bool(a),
            _ => self.emit(Gate::And(a, b)),
        }
    }

    fn or(&mut self, a: WireId, b: WireId) -> WireId {
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) | u64::from(y != 0)),
            (Some(0), _) => self.coerce_bool(b),
            (_, Some(0)) => self.coerce_bool(a),
            (Some(_), _) | (_, Some(_)) => self.fold(1),
            _ if a == b => self.coerce_bool(a),
            _ => self.emit(Gate::Or(a, b)),
        }
    }

    fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        if a == b {
            return self.fold(0);
        }
        match (self.v(a), self.v(b)) {
            (Some(x), Some(y)) => self.fold(u64::from(x != 0) ^ u64::from(y != 0)),
            (Some(0), _) => self.coerce_bool(b),
            (_, Some(0)) => self.coerce_bool(a),
            // Xor with a truthy constant is logical negation.
            (Some(_), _) => self.not(b),
            (_, Some(_)) => self.not(a),
            _ => self.emit(Gate::Xor(a, b)),
        }
    }

    fn not(&mut self, a: WireId) -> WireId {
        if let Some(x) = self.v(a) {
            return self.fold(u64::from(x == 0));
        }
        // Double negation is boolean coercion of the inner wire.
        if let Gate::Not(y) = self.gates[a as usize] {
            return self.coerce_bool(y);
        }
        self.emit(Gate::Not(a))
    }

    fn mux(&mut self, s: WireId, a: WireId, b: WireId) -> WireId {
        if let Some(sv) = self.v(s) {
            self.identities += 1;
            return if sv != 0 { a } else { b };
        }
        if a == b {
            self.identities += 1;
            return a;
        }
        match (self.v(a), self.v(b)) {
            (Some(1), Some(0)) => self.coerce_bool(s),
            (Some(0), Some(1)) => {
                self.identities += 1;
                self.not(s)
            }
            _ => self.emit(Gate::Mux(s, a, b)),
        }
    }
}

/// Optimizes a circuit: constant folding, algebraic identity rewrites,
/// structural CSE, and assertion-safe mark-and-sweep DCE.
///
/// Count-only circuits pass through unchanged (there are no gates to
/// rewrite). Output order and input arity are always preserved; every
/// declared input wire survives even if unused, so optimized circuits
/// accept the exact same input vectors.
pub fn optimize(c: &Circuit) -> (Circuit, OptStats) {
    if !c.is_evaluable() {
        return (c.clone(), OptStats::passthrough(c));
    }
    let src = c.gates();
    let mut rw = Rewriter::new(src.len());
    let mut map: Vec<WireId> = Vec::with_capacity(src.len());
    let mut seen_asserts: HashSet<WireId> = HashSet::new();
    // (pre-DCE new index, source index) per surviving assert.
    let mut assert_origin: Vec<(u32, u32)> = Vec::new();
    let mut asserts_before = 0u64;
    let mut always_fail = 0u64;

    for (i, g) in src.iter().enumerate() {
        let new = match *g {
            Gate::Input(idx) => rw.raw_push(Gate::Input(idx)),
            Gate::Const(v) => rw.konst(v),
            Gate::Add(a, b) => rw.add(map[a as usize], map[b as usize]),
            Gate::Sub(a, b) => rw.sub(map[a as usize], map[b as usize]),
            Gate::Mul(a, b) => rw.mul(map[a as usize], map[b as usize]),
            Gate::Eq(a, b) => rw.eq(map[a as usize], map[b as usize]),
            Gate::Lt(a, b) => rw.lt(map[a as usize], map[b as usize]),
            Gate::And(a, b) => rw.and(map[a as usize], map[b as usize]),
            Gate::Or(a, b) => rw.or(map[a as usize], map[b as usize]),
            Gate::Xor(a, b) => rw.xor(map[a as usize], map[b as usize]),
            Gate::Not(a) => rw.not(map[a as usize]),
            Gate::Mux(s, a, b) => rw.mux(map[s as usize], map[a as usize], map[b as usize]),
            Gate::AssertZero(a) => {
                asserts_before += 1;
                let a = map[a as usize];
                match rw.v(a) {
                    // Provably passes: the assert can never fire; its own
                    // wire value is 0.
                    Some(0) => rw.konst(0),
                    opt_v => {
                        if seen_asserts.insert(a) {
                            if opt_v.is_some() {
                                always_fail += 1;
                            }
                            let w = rw.raw_push(Gate::AssertZero(a));
                            assert_origin.push((w, i as u32));
                            w
                        } else {
                            // Duplicate assert on the same wire: the
                            // earlier (lower-index) one fires first with
                            // the same value, so this one is redundant.
                            rw.konst(0)
                        }
                    }
                }
            }
        };
        map.push(new);
    }

    // Mark-and-sweep DCE. Roots: circuit outputs, every surviving
    // assert, and all input gates (arity must be preserved).
    let n = rw.gates.len();
    let mut live = vec![false; n];
    for &o in c.outputs() {
        live[map[o as usize] as usize] = true;
    }
    for (w, g) in rw.gates.iter().enumerate() {
        if matches!(g, Gate::AssertZero(_) | Gate::Input(_)) {
            live[w] = true;
        }
    }
    for w in (0..n).rev() {
        if live[w] {
            for op in rw.gates[w].operands().iter().flatten() {
                live[*op as usize] = true;
            }
        }
    }

    let mut remap = vec![WireId::MAX; n];
    let mut out_gates: Vec<Gate> = Vec::with_capacity(n);
    for w in 0..n {
        if !live[w] {
            continue;
        }
        remap[w] = out_gates.len() as WireId;
        let g = match rw.gates[w] {
            Gate::Input(idx) => Gate::Input(idx),
            Gate::Const(v) => Gate::Const(v),
            Gate::Add(a, b) => Gate::Add(remap[a as usize], remap[b as usize]),
            Gate::Sub(a, b) => Gate::Sub(remap[a as usize], remap[b as usize]),
            Gate::Mul(a, b) => Gate::Mul(remap[a as usize], remap[b as usize]),
            Gate::Eq(a, b) => Gate::Eq(remap[a as usize], remap[b as usize]),
            Gate::Lt(a, b) => Gate::Lt(remap[a as usize], remap[b as usize]),
            Gate::And(a, b) => Gate::And(remap[a as usize], remap[b as usize]),
            Gate::Or(a, b) => Gate::Or(remap[a as usize], remap[b as usize]),
            Gate::Xor(a, b) => Gate::Xor(remap[a as usize], remap[b as usize]),
            Gate::Not(a) => Gate::Not(remap[a as usize]),
            Gate::Mux(s, a, b) => {
                Gate::Mux(remap[s as usize], remap[a as usize], remap[b as usize])
            }
            Gate::AssertZero(a) => Gate::AssertZero(remap[a as usize]),
        };
        out_gates.push(g);
    }
    let dead = (n - out_gates.len()) as u64;
    let outputs: Vec<WireId> = c
        .outputs()
        .iter()
        .map(|&o| remap[map[o as usize] as usize])
        .collect();
    let assert_origin: Vec<(u32, u32)> = assert_origin
        .into_iter()
        .map(|(nw, oi)| (remap[nw as usize], oi))
        .collect();
    let asserts_after = assert_origin.len() as u64;

    let opt = Circuit::from_raw(out_gates, outputs, c.num_inputs());
    let stats = OptStats {
        gates_before: c.size(),
        gates_after: opt.size(),
        wires_before: c.num_wires(),
        wires_after: opt.num_wires(),
        depth_before: c.depth(),
        depth_after: opt.depth(),
        folded: rw.folded,
        identities: rw.identities,
        cse_hits: rw.cse_hits,
        dead,
        asserts_before,
        asserts_after,
        always_fail,
        assert_origin,
    };
    (opt, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Builder, EvalError, Mode};

    #[test]
    fn folds_constants_and_identities() {
        // Build without CSE so the source actually contains the
        // redundancy the optimizer is supposed to remove.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let zero = b.constant(0);
        let one = b.constant(1);
        let a = b.add(x, zero); // x + 0 → x
        let m = b.mul(a, one); // x * 1 → x
        let e = b.eq(m, m); // Eq(x, x) → 1
        let s = b.sub(x, x); // x - x → 0
        let k = b.add(e, s); // 1 + 0 → 1
        let c = b.finish(vec![a, m, k]);
        let (opt, st) = optimize(&c);
        assert_eq!(opt.size(), 0, "everything folds away");
        assert!(st.folded > 0);
        for inp in [[0u64], [5], [u64::MAX]] {
            assert_eq!(c.evaluate(&inp).unwrap(), opt.evaluate(&inp).unwrap());
        }
        assert_eq!(opt.evaluate(&[9]).unwrap(), vec![9, 9, 1]);
    }

    #[test]
    fn boolean_guard_blocks_unsound_rewrites() {
        // And(x, x) must NOT become x for a non-boolean word.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let a = b.and(x, x);
        let c = b.finish(vec![a]);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.evaluate(&[5]).unwrap(), vec![1]);
        assert_eq!(opt.evaluate(&[0]).unwrap(), vec![0]);
        // But And(e, e) for boolean e is e itself.
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let e = b.eq(x, y);
        let a = b.and(e, e);
        let c = b.finish(vec![a]);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.size(), 1, "only the Eq survives");
        assert_eq!(opt.evaluate(&[3, 3]).unwrap(), vec![1]);
    }

    #[test]
    fn double_not_coerces() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let n1 = b.not(x);
        let n2 = b.not(n1); // bool(x), x not provably boolean
        let c = b.finish(vec![n2]);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.evaluate(&[7]).unwrap(), vec![1]);
        assert_eq!(opt.evaluate(&[0]).unwrap(), vec![0]);
        assert!(
            opt.size() <= 1,
            "Not(Not(x)) collapses to one coercion gate"
        );
    }

    #[test]
    fn mux_rewrites() {
        let mut b = Builder::without_cse(Mode::Build);
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let same = b.mux(s, x, x); // → x
        let one = b.constant(1);
        let zero = b.constant(0);
        let csel = b.mux(one, x, y); // → x
        let boolify = b.mux(s, one, zero); // → bool(s)
        let c = b.finish(vec![same, csel, boolify]);
        let (opt, _) = optimize(&c);
        for inp in [[0u64, 4, 9], [2, 4, 9]] {
            assert_eq!(c.evaluate(&inp).unwrap(), opt.evaluate(&inp).unwrap());
        }
        assert_eq!(opt.size(), 1, "only the boolean coercion of s remains");
    }

    #[test]
    fn dce_keeps_outputs_and_inputs() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _dead = b.mul(x, y); // unused
        let live = b.add(x, y);
        let c = b.finish(vec![live]);
        let (opt, st) = optimize(&c);
        assert_eq!(opt.size(), 1);
        assert_eq!(opt.num_inputs(), 2);
        assert_eq!(st.dead, 1);
        assert_eq!(opt.evaluate(&[2, 3]).unwrap(), vec![5]);
    }

    #[test]
    fn passing_asserts_on_const_zero_are_dropped() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let z = b.sub(x, x); // folds to 0
        b.assert_zero(z);
        let out = b.add(x, x);
        let c = b.finish(vec![out]);
        let (opt, st) = optimize(&c);
        assert_eq!(st.asserts_before, 1);
        assert_eq!(st.asserts_after, 0);
        assert_eq!(opt.evaluate(&[4]).unwrap(), vec![8]);
    }

    #[test]
    fn failing_asserts_never_optimize_away() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let one = b.constant(1);
        let k = b.mul(one, one); // folds to const 1
        b.assert_zero(k); // always fails with value 1
        let c = b.finish(vec![x]);
        let (opt, st) = optimize(&c);
        assert_eq!(st.always_fail, 1);
        assert_eq!(st.asserts_after, 1);
        match opt.evaluate(&[0]) {
            Err(EvalError::AssertionFailed { value, .. }) => assert_eq!(value, 1),
            other => panic!("expected assertion failure, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_asserts_dedup_to_the_first() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let d1 = b.sub(x, y);
        let d2 = b.sub(x, y); // same wire after CSE in the rewriter
        b.assert_zero(d1);
        b.assert_zero(d2);
        let c = b.finish(vec![]);
        let (opt, st) = optimize(&c);
        assert_eq!(st.asserts_before, 2);
        assert_eq!(st.asserts_after, 1);
        // The surviving assert maps to the FIRST source assert.
        let (ng, orig) = st.assert_origin[0];
        assert!(matches!(opt.gates()[ng as usize], Gate::AssertZero(_)));
        assert!(matches!(c.gates()[orig as usize], Gate::AssertZero(_)));
        let first_src_assert = c
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::AssertZero(_)))
            .unwrap();
        assert_eq!(orig as usize, first_src_assert);
        assert!(opt.evaluate(&[3, 3]).is_ok());
        assert!(matches!(
            opt.evaluate(&[5, 3]),
            Err(EvalError::AssertionFailed { value: 2, .. })
        ));
    }

    #[test]
    fn assert_origin_maps_reported_gate_to_source_gate() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _pad = b.mul(x, x); // dead gate before the assert
        let d = b.sub(x, y);
        b.assert_zero(d);
        let e = b.eq(x, y);
        let n = b.not(e);
        b.assert_zero(n);
        let c = b.finish(vec![]);
        let (opt, st) = optimize(&c);
        // Fail the first assert: both circuits must report corresponding
        // gates and identical values.
        let (src_err, opt_err) = (
            c.evaluate(&[9, 2]).unwrap_err(),
            opt.evaluate(&[9, 2]).unwrap_err(),
        );
        match (src_err, opt_err) {
            (
                EvalError::AssertionFailed {
                    gate: sg,
                    value: sv,
                },
                EvalError::AssertionFailed {
                    gate: og,
                    value: ov,
                },
            ) => {
                assert_eq!(sv, ov);
                assert_eq!(st.origin_of(og as u32), Some(sg as u32));
            }
            other => panic!("expected assertion failures, got {other:?}"),
        }
    }

    #[test]
    fn count_mode_passes_through() {
        let mut b = Builder::new(Mode::Count);
        let x = b.input();
        let y = b.not(x);
        let c = b.finish(vec![y]);
        let (opt, st) = optimize(&c);
        assert!(!opt.is_evaluable());
        assert_eq!(opt.size(), c.size());
        assert_eq!(st.gates_before, st.gates_after);
    }

    #[test]
    fn output_order_and_arity_survive() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let _unused_input_is_fine = b.input();
        let a = b.add(x, y);
        let m = b.mul(x, y);
        let c = b.finish(vec![m, a, x]);
        let (opt, _) = optimize(&c);
        assert_eq!(opt.num_inputs(), 3);
        assert_eq!(opt.evaluate(&[2, 3, 99]).unwrap(), vec![6, 5, 2]);
    }
}
