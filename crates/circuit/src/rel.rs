//! Relations on wires: fixed-capacity slot arrays with validity flags.

use qec_relation::{Database, Relation, Var, VarSet};

use crate::{Builder, WireId};

/// The reserved "`?`" value from the primary-key join construction
/// (Sec. 5.3): a value guaranteed not to occur in any database instance.
/// Domain values must therefore be `< u64::MAX`.
pub const QMARK: u64 = u64::MAX;

/// Wires of one tuple slot: `arity` field wires plus a validity flag
/// (`1` = real tuple, `0` = dummy — the paper's attribute `Z`, Sec. 5).
#[derive(Clone, Debug)]
pub struct SlotWires {
    /// Field wires, in schema order.
    pub fields: Vec<WireId>,
    /// Validity flag wire.
    pub valid: WireId,
}

/// A relation travelling through the circuit: a fixed number of slots over
/// a fixed schema. The capacity is the *bounded wire* parameter of
/// Sec. 4.3 — it depends only on the degree constraints, never on data.
#[derive(Clone, Debug)]
pub struct RelWires {
    /// Schema (sorted variable order, matching `qec_relation::Relation`).
    pub schema: Vec<Var>,
    /// Tuple slots.
    pub slots: Vec<SlotWires>,
}

impl RelWires {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Schema as a [`VarSet`].
    pub fn vars(&self) -> VarSet {
        self.schema.iter().copied().collect()
    }

    /// Column index of `v` in the schema.
    pub fn col(&self, v: Var) -> Option<usize> {
        self.schema.iter().position(|&s| s == v)
    }

    /// All wires in canonical output order (`fields…, valid` per slot).
    pub fn flatten(&self) -> Vec<WireId> {
        let mut out = Vec::with_capacity(self.capacity() * (self.arity() + 1));
        for s in &self.slots {
            out.extend_from_slice(&s.fields);
            out.push(s.valid);
        }
        out
    }

    /// An all-dummy relation of the given capacity (fields `0`, valid `0`).
    pub fn dummies(b: &mut Builder, schema: Vec<Var>, capacity: usize) -> RelWires {
        let zero = b.constant(0);
        let arity = schema.len();
        let slots = (0..capacity)
            .map(|_| SlotWires {
                fields: vec![zero; arity],
                valid: zero,
            })
            .collect();
        RelWires { schema, slots }
    }
}

/// Declares input wires for a relation of the given capacity. Input order
/// is `fields…, valid` per slot — the same order
/// [`relation_to_values`] produces.
///
/// Input declaration is deliberately *not* routed through
/// [`Builder::fork_join`]: input indices come from a sequential counter
/// and define the wire ↔ value mapping, so declaring them from forked
/// workers would make the input layout schedule-dependent (child builders
/// refuse `input()` for exactly this reason). Everything downstream of
/// the declared wires is fair game for forking.
pub fn encode_relation(b: &mut Builder, schema: Vec<Var>, capacity: usize) -> RelWires {
    let arity = schema.len();
    let slots = (0..capacity)
        .map(|_| {
            let fields = (0..arity).map(|_| b.input()).collect();
            let valid = b.input();
            SlotWires { fields, valid }
        })
        .collect();
    RelWires { schema, slots }
}

/// Flattens a relation into the input-value layout of [`encode_relation`],
/// padding with dummy slots.
///
/// Returns `None` if the relation does not fit the capacity (an instance
/// violating the declared constraints — the circuit is not sized for it).
pub fn relation_to_values(rel: &Relation, capacity: usize) -> Option<Vec<u64>> {
    if rel.len() > capacity {
        return None;
    }
    let arity = rel.arity();
    let mut out = Vec::with_capacity(capacity * (arity + 1));
    for row in rel.iter() {
        debug_assert!(
            row.iter().all(|&v| v < QMARK),
            "domain values must be < u64::MAX"
        );
        out.extend_from_slice(row);
        out.push(1);
    }
    for _ in rel.len()..capacity {
        out.extend(std::iter::repeat_n(0, arity));
        out.push(0);
    }
    Some(out)
}

/// Reads a relation back from evaluated output values laid out as
/// [`RelWires::flatten`]: `capacity · (arity+1)` words.
///
/// # Panics
/// Panics if `values.len()` is not a multiple of `arity + 1`.
pub fn decode_relation(schema: &[Var], values: &[u64]) -> Relation {
    let stride = schema.len() + 1;
    assert_eq!(values.len() % stride, 0, "output layout mismatch");
    let rows = values
        .chunks(stride)
        .filter(|chunk| chunk[schema.len()] != 0)
        .map(|chunk| chunk[..schema.len()].to_vec())
        .collect();
    Relation::from_rows(schema.to_vec(), rows)
}

/// Declares inputs for several relations and maps database instances onto
/// them. This is the uniform-circuit interface: the layout (hence the
/// circuit) depends only on schemas and capacities.
#[derive(Clone, Debug, Default)]
pub struct InputLayout {
    entries: Vec<(String, Vec<Var>, usize)>,
}

/// Instance-to-layout mismatches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// The database lacks a relation the layout declares.
    Missing(String),
    /// A relation has more tuples than its declared capacity.
    Overflow {
        /// Relation name.
        name: String,
        /// Declared capacity.
        capacity: usize,
        /// Actual tuple count.
        len: usize,
    },
    /// A relation's schema does not match the layout.
    SchemaMismatch(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Missing(n) => write!(f, "database is missing relation {n}"),
            LayoutError::Overflow {
                name,
                capacity,
                len,
            } => {
                write!(f, "relation {name} has {len} tuples, capacity {capacity}")
            }
            LayoutError::SchemaMismatch(n) => write!(f, "relation {n} schema mismatch"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl InputLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation slot in the layout.
    pub fn add(&mut self, name: impl Into<String>, schema: Vec<Var>, capacity: usize) {
        self.entries.push((name.into(), schema, capacity));
    }

    /// The declared slots, in layout order: `(name, schema, capacity)`.
    pub fn entries(&self) -> &[(String, Vec<Var>, usize)] {
        &self.entries
    }

    /// Rebuilds a layout from serialized entries (plan-cache warm start).
    pub fn from_entries(entries: Vec<(String, Vec<Var>, usize)>) -> Self {
        Self { entries }
    }

    /// Declares all input wires, in layout order.
    pub fn wires(&self, b: &mut Builder) -> Vec<RelWires> {
        self.entries
            .iter()
            .map(|(_, schema, cap)| encode_relation(b, schema.clone(), *cap))
            .collect()
    }

    /// Flattens a database into the input vector the wires expect.
    pub fn values(&self, db: &Database) -> Result<Vec<u64>, LayoutError> {
        let mut out = Vec::new();
        for (name, schema, cap) in &self.entries {
            let rel = db
                .get(name)
                .ok_or_else(|| LayoutError::Missing(name.clone()))?;
            let vars: VarSet = schema.iter().copied().collect();
            if rel.vars() != vars {
                return Err(LayoutError::SchemaMismatch(name.clone()));
            }
            let vals = relation_to_values(rel, *cap).ok_or_else(|| LayoutError::Overflow {
                name: name.clone(),
                capacity: *cap,
                len: rel.len(),
            })?;
            out.extend(vals);
        }
        Ok(out)
    }
}

/// Declares inputs for every relation of a database at once, with
/// capacities supplied per relation name. Convenience wrapper used by the
/// examples.
pub fn encode_database(b: &mut Builder, layout: &InputLayout) -> Vec<RelWires> {
    layout.wires(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn rel(schema: &[u32], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(
            schema.iter().map(|&i| Var(i)).collect(),
            rows.iter().map(|r| r.to_vec()).collect(),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let mut b = Builder::new(Mode::Build);
        let wires = encode_relation(&mut b, r.schema().to_vec(), 5);
        let out = wires.flatten();
        let c = b.finish(out);
        let values = relation_to_values(&r, 5).unwrap();
        let result = c.evaluate(&values).unwrap();
        assert_eq!(decode_relation(r.schema(), &result), r);
    }

    #[test]
    fn capacity_overflow_detected() {
        let r = rel(&[0], &[&[1], &[2], &[3]]);
        assert!(relation_to_values(&r, 2).is_none());
        assert!(relation_to_values(&r, 3).is_some());
    }

    #[test]
    fn layout_binds_database() {
        let mut layout = InputLayout::new();
        layout.add("R", vec![Var(0), Var(1)], 4);
        layout.add("S", vec![Var(1), Var(2)], 4);

        let mut db = Database::new();
        db.insert("R", rel(&[0, 1], &[&[1, 2]]));
        db.insert("S", rel(&[1, 2], &[&[2, 3], &[2, 4]]));

        let mut b = Builder::new(Mode::Build);
        let ws = layout.wires(&mut b);
        assert_eq!(ws.len(), 2);
        let outs: Vec<WireId> = ws.iter().flat_map(|w| w.flatten()).collect();
        let c = b.finish(outs);
        let vals = layout.values(&db).unwrap();
        let res = c.evaluate(&vals).unwrap();
        let r_out = decode_relation(&[Var(0), Var(1)], &res[..12]);
        let s_out = decode_relation(&[Var(1), Var(2)], &res[12..]);
        assert_eq!(r_out, *db.get("R").unwrap());
        assert_eq!(s_out, *db.get("S").unwrap());
    }

    #[test]
    fn layout_errors() {
        let mut layout = InputLayout::new();
        layout.add("R", vec![Var(0), Var(1)], 1);
        let mut db = Database::new();
        assert_eq!(layout.values(&db), Err(LayoutError::Missing("R".into())));
        db.insert("R", rel(&[0, 2], &[&[1, 2]]));
        assert_eq!(
            layout.values(&db),
            Err(LayoutError::SchemaMismatch("R".into()))
        );
        db.insert("R", rel(&[0, 1], &[&[1, 2], &[3, 4]]));
        assert!(matches!(
            layout.values(&db),
            Err(LayoutError::Overflow { .. })
        ));
    }

    #[test]
    fn dummies_relation() {
        let mut b = Builder::new(Mode::Build);
        let d = RelWires::dummies(&mut b, vec![Var(0), Var(1)], 3);
        let c = b.finish(d.flatten());
        let out = c.evaluate(&[]).unwrap();
        assert_eq!(decode_relation(&[Var(0), Var(1)], &out).len(), 0);
    }
}
