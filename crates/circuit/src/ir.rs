//! Word-level circuit IR: gates, builder, evaluator.

use crate::shared::{InternTable, Pages};
use qec_par::Pool;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// A wire identifier.
pub type WireId = u32;

/// A word-level gate. Comparison and logic gates produce `0`/`1`;
/// arithmetic is wrapping (the planner sizes words so wrapping never
/// triggers on conforming inputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// The `i`-th circuit input.
    Input(usize),
    /// A compile-time constant.
    Const(u64),
    /// Wrapping addition.
    Add(WireId, WireId),
    /// Wrapping subtraction.
    Sub(WireId, WireId),
    /// Wrapping multiplication.
    Mul(WireId, WireId),
    /// Equality test (`0`/`1`).
    Eq(WireId, WireId),
    /// Unsigned less-than (`0`/`1`).
    Lt(WireId, WireId),
    /// Logical AND (inputs treated as booleans).
    And(WireId, WireId),
    /// Logical OR.
    Or(WireId, WireId),
    /// Logical XOR.
    Xor(WireId, WireId),
    /// Logical NOT.
    Not(WireId),
    /// Multiplexer: `sel ≠ 0 ? a : b`.
    Mux(WireId, WireId, WireId),
    /// Runtime assertion: the wire must evaluate to `0`. Used to make
    /// capacity obligations (e.g. "truncation only drops dummies")
    /// checkable during evaluation.
    AssertZero(WireId),
}

impl Gate {
    pub(crate) fn operands(&self) -> [Option<WireId>; 3] {
        match *self {
            Gate::Input(_) | Gate::Const(_) => [None, None, None],
            Gate::Not(a) | Gate::AssertZero(a) => [Some(a), None, None],
            Gate::Add(a, b)
            | Gate::Sub(a, b)
            | Gate::Mul(a, b)
            | Gate::Eq(a, b)
            | Gate::Lt(a, b)
            | Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b) => [Some(a), Some(b), None],
            Gate::Mux(s, a, b) => [Some(s), Some(a), Some(b)],
        }
    }
}

/// Builder mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Materialize gates (evaluable).
    Build,
    /// Track only size and depth (for large scaling sweeps). Gate and
    /// depth accounting is identical to [`Mode::Build`].
    Count,
}

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Wrong number of inputs supplied.
    InputArity {
        /// Inputs the circuit declares.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An [`Gate::AssertZero`] fired.
    AssertionFailed {
        /// Index of the failing gate.
        gate: usize,
        /// The non-zero value observed.
        value: u64,
    },
    /// The circuit was built in [`Mode::Count`] and has no gates.
    CountOnly,
    /// A structural invariant violation found by the validator
    /// ([`crate::validate`]) when compiling with
    /// [`CompileOptions::with_validate`](crate::CompileOptions::with_validate).
    Invalid(crate::validate::ValidateError),
    /// Wire-id allocation ran past the 32-bit id space of the in-memory
    /// IR. Construction used to wrap silently here; the wide (64-bit id)
    /// tape format in [`crate::tape`] is the supported path beyond this
    /// size.
    CircuitTooLarge {
        /// Wires the construction attempted to allocate.
        wires: u64,
        /// The id-space limit that was exceeded.
        limit: u64,
    },
    /// A tape encode/decode/serialization failure surfaced through an
    /// evaluation entry point.
    Tape(crate::tape::TapeError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InputArity { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            EvalError::AssertionFailed { gate, value } => {
                write!(f, "assertion gate {gate} observed non-zero value {value}")
            }
            EvalError::CountOnly => write!(f, "circuit was built in count-only mode"),
            EvalError::Invalid(e) => write!(f, "circuit failed structural validation: {e}"),
            EvalError::CircuitTooLarge { wires, limit } => write!(
                f,
                "circuit too large: {wires} wires exceed the {limit}-wire id space \
                 (use the wide tape encoding / streaming lowering for larger circuits)"
            ),
            EvalError::Tape(e) => write!(f, "tape error: {e}"),
        }
    }
}

/// The number of wires the 32-bit in-memory IR can address. `u32::MAX`
/// itself is reserved (the parallel cores use it as a sentinel), so the
/// last allocatable id is `u32::MAX - 1`.
pub(crate) const MAX_WIRES: u64 = u32::MAX as u64;

/// Checked wire-id allocation: the id for the `n`-th wire (0-based), or
/// a typed [`EvalError::CircuitTooLarge`] once the 32-bit id space is
/// exhausted. Allocation used to wrap silently via `as u32` at this
/// boundary (>4.29B wires).
pub(crate) fn checked_wire_id(n: u64) -> Result<WireId, EvalError> {
    if n >= MAX_WIRES {
        return Err(EvalError::CircuitTooLarge {
            wires: n + 1,
            limit: MAX_WIRES,
        });
    }
    Ok(n as WireId)
}

impl std::error::Error for EvalError {}

/// Incremental circuit builder.
///
/// In [`Mode::Count`] the builder performs the exact same bookkeeping
/// (including constant deduplication and hash-consing) without
/// materializing gates, so size/depth numbers from the two modes are
/// identical — a property the test suite checks.
///
/// By default the builder hash-conses logic gates: pushing a gate that is
/// structurally identical to an earlier one (after sorting the operands
/// of commutative gates) returns the existing wire instead of a new one.
/// The cache key is the gate value itself, which exists in both modes, so
/// consing never breaks Build/Count parity. Use [`Builder::without_cse`]
/// when wire ids must track pushes one-for-one (the netlist reader does).
pub struct Builder {
    inner: BuilderInner,
}

/// The builder's engine. `Seq` is the original single-threaded builder,
/// byte-for-byte: same caches, same wire numbering, same everything —
/// the default construction path never pays for parallelism. `Par` is a
/// handle onto a shared concurrent core ([`ParCore`]) used by
/// [`Builder::with_pool`] and the child builders that
/// [`Builder::fork_join`] spawns.
enum BuilderInner {
    Seq(SeqBuilder),
    Par(ParBuilder),
}

struct SeqBuilder {
    mode: Mode,
    gates: Vec<Gate>,
    depths: Vec<u32>,
    num_inputs: usize,
    size: u64,
    const_cache: HashMap<u64, WireId>,
    cse: bool,
    cse_cache: HashMap<Gate, WireId>,
    /// Logic pushes answered from `cse_cache` (online dedup hits).
    cse_hits: u64,
}

/// Sorts the operands of commutative gates so `add(a, b)` and
/// `add(b, a)` share one cache entry. `Sub`, `Lt`, and `Mux` are order
/// sensitive and pass through unchanged.
pub(crate) fn canon(gate: Gate) -> Gate {
    match gate {
        Gate::Add(a, b) if a > b => Gate::Add(b, a),
        Gate::Mul(a, b) if a > b => Gate::Mul(b, a),
        Gate::Eq(a, b) if a > b => Gate::Eq(b, a),
        Gate::And(a, b) if a > b => Gate::And(b, a),
        Gate::Or(a, b) if a > b => Gate::Or(b, a),
        Gate::Xor(a, b) if a > b => Gate::Xor(b, a),
        g => g,
    }
}

impl SeqBuilder {
    fn new(mode: Mode) -> SeqBuilder {
        SeqBuilder {
            mode,
            gates: Vec::new(),
            depths: Vec::new(),
            num_inputs: 0,
            size: 0,
            const_cache: HashMap::new(),
            cse: true,
            cse_cache: HashMap::new(),
            cse_hits: 0,
        }
    }

    fn size(&self) -> u64 {
        self.size
    }

    fn depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn push(&mut self, gate: Gate, depth: u32, is_logic: bool) -> WireId {
        let id = match checked_wire_id(self.depths.len() as u64) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        };
        self.depths.push(depth);
        if is_logic {
            self.size += 1;
        }
        if self.mode == Mode::Build {
            self.gates.push(gate);
        }
        id
    }

    /// Pushes a logic gate through the hash-consing cache.
    fn logic(&mut self, gate: Gate, depth: u32) -> WireId {
        if !self.cse {
            return self.push(gate, depth, true);
        }
        let key = canon(gate);
        if let Some(&w) = self.cse_cache.get(&key) {
            self.cse_hits += 1;
            return w;
        }
        let w = self.push(key, depth, true);
        self.cse_cache.insert(key, w);
        w
    }

    fn depth_of(&self, w: WireId) -> u32 {
        self.depths[w as usize]
    }

    fn binary_depth(&self, a: WireId, b: WireId) -> u32 {
        self.depth_of(a).max(self.depth_of(b)) + 1
    }

    /// Declares the next circuit input.
    pub fn input(&mut self) -> WireId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        self.push(Gate::Input(idx), 0, false)
    }

    /// A constant wire (deduplicated).
    pub fn constant(&mut self, v: u64) -> WireId {
        if let Some(&w) = self.const_cache.get(&v) {
            return w;
        }
        let w = self.push(Gate::Const(v), 0, false);
        self.const_cache.insert(v, w);
        w
    }

    /// A constant wire without deduplication (used by the netlist reader,
    /// which must keep wire ids aligned with the source text).
    pub fn raw_const(&mut self, v: u64) -> WireId {
        self.push(Gate::Const(v), 0, false)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Add(a, b), d)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Sub(a, b), d)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Mul(a, b), d)
    }

    /// Equality test.
    pub fn eq(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Eq(a, b), d)
    }

    /// Unsigned less-than.
    pub fn lt(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Lt(a, b), d)
    }

    /// Logical AND.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::And(a, b), d)
    }

    /// Logical OR.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Or(a, b), d)
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Xor(a, b), d)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: WireId) -> WireId {
        let d = self.depth_of(a) + 1;
        self.logic(Gate::Not(a), d)
    }

    /// Multiplexer `sel ≠ 0 ? a : b`.
    pub fn mux(&mut self, sel: WireId, a: WireId, b: WireId) -> WireId {
        let d = self
            .depth_of(sel)
            .max(self.depth_of(a))
            .max(self.depth_of(b))
            + 1;
        self.logic(Gate::Mux(sel, a, b), d)
    }

    /// Asserts a wire is zero at evaluation time, returning the assert
    /// gate's wire (which carries value `0` when the assert passes).
    /// Asserts are effects, not expressions: they are never hash-consed.
    pub fn assert_zero(&mut self, a: WireId) -> WireId {
        let d = self.depth_of(a) + 1;
        self.push(Gate::AssertZero(a), d, true)
    }

    /// Finalizes the circuit with the given output wires.
    fn finish(self, outputs: Vec<WireId>) -> Circuit {
        let rec = qec_obs::global();
        if rec.is_enabled() {
            rec.add("build.gates", self.size);
            rec.add("build.wires", self.depths.len() as u64);
            rec.add("build.cse_hits", self.cse_hits);
        }
        let depth = self.depth();
        let num_wires = self.depths.len();
        Circuit {
            mode: self.mode,
            gates: self.gates,
            depths: self.depths,
            outputs,
            num_inputs: self.num_inputs,
            size: self.size,
            depth,
            num_wires,
        }
    }
}

// ---- parallel construction core ----
//
// Gate kind tags for the packed-key/struct-of-arrays encoding. 1-based:
// the intern table uses key 0 as its empty-slot sentinel, so no encoded
// gate may pack to 0.
const K_INPUT: u8 = 1;
const K_CONST: u8 = 2;
const K_ADD: u8 = 3;
const K_SUB: u8 = 4;
const K_MUL: u8 = 5;
const K_EQ: u8 = 6;
const K_LT: u8 = 7;
const K_AND: u8 = 8;
const K_OR: u8 = 9;
const K_XOR: u8 = 10;
const K_NOT: u8 = 11;
const K_MUX: u8 = 12;
const K_ASSERT: u8 = 13;

/// Splits a gate into `(kind, a, b, c)` columns. `Const` packs its value
/// as (low 32, high 32); `Input` stores the input index in `a`.
fn encode_gate(g: Gate) -> (u8, u32, u32, u32) {
    match g {
        Gate::Input(i) => (
            K_INPUT,
            u32::try_from(i).expect("input index fits u32"),
            0,
            0,
        ),
        Gate::Const(v) => (K_CONST, v as u32, (v >> 32) as u32, 0),
        Gate::Add(a, b) => (K_ADD, a, b, 0),
        Gate::Sub(a, b) => (K_SUB, a, b, 0),
        Gate::Mul(a, b) => (K_MUL, a, b, 0),
        Gate::Eq(a, b) => (K_EQ, a, b, 0),
        Gate::Lt(a, b) => (K_LT, a, b, 0),
        Gate::And(a, b) => (K_AND, a, b, 0),
        Gate::Or(a, b) => (K_OR, a, b, 0),
        Gate::Xor(a, b) => (K_XOR, a, b, 0),
        Gate::Not(a) => (K_NOT, a, 0, 0),
        Gate::Mux(s, a, b) => (K_MUX, s, a, b),
        Gate::AssertZero(a) => (K_ASSERT, a, 0, 0),
    }
}

fn decode_gate(kind: u8, a: u32, b: u32, c: u32) -> Gate {
    match kind {
        K_INPUT => Gate::Input(a as usize),
        K_CONST => Gate::Const(a as u64 | (b as u64) << 32),
        K_ADD => Gate::Add(a, b),
        K_SUB => Gate::Sub(a, b),
        K_MUL => Gate::Mul(a, b),
        K_EQ => Gate::Eq(a, b),
        K_LT => Gate::Lt(a, b),
        K_AND => Gate::And(a, b),
        K_OR => Gate::Or(a, b),
        K_XOR => Gate::Xor(a, b),
        K_NOT => Gate::Not(a),
        K_MUX => Gate::Mux(a, b, c),
        K_ASSERT => Gate::AssertZero(a),
        _ => unreachable!("corrupt gate record"),
    }
}

/// Packs the columns into the intern key: 5 bits of kind, then three
/// 32-bit operand fields (5 + 96 = 101 ≤ 128). `Const` values span the
/// a/b fields contiguously, so the packing is exact — two gates collide
/// iff they are structurally identical.
fn pack_key(kind: u8, a: u32, b: u32, c: u32) -> u128 {
    kind as u128 | (a as u128) << 5 | (b as u128) << 37 | (c as u128) << 69
}

/// The shared state behind every parallel builder handle: the sharded
/// hash-cons, the struct-of-arrays gate arena, and the atomic counters
/// that replace the sequential builder's scalar bookkeeping.
///
/// Invariant: a gate's depth (and, in build mode, its SoA record) is
/// written *before* its key is published in the intern table, both under
/// the owning shard's lock, so any handle that can name a wire can read
/// its depth and record.
struct ParCore {
    mode: Mode,
    table: InternTable,
    depths: Pages<AtomicU32>,
    kinds: Pages<AtomicU8>,
    opa: Pages<AtomicU32>,
    opb: Pages<AtomicU32>,
    opc: Pages<AtomicU32>,
    next_id: AtomicU32,
    num_inputs: AtomicUsize,
    size: AtomicU64,
    depth: AtomicU32,
}

impl ParCore {
    fn new(mode: Mode) -> ParCore {
        ParCore {
            mode,
            table: InternTable::new(),
            depths: Pages::new(),
            kinds: Pages::new(),
            opa: Pages::new(),
            opb: Pages::new(),
            opc: Pages::new(),
            next_id: AtomicU32::new(0),
            num_inputs: AtomicUsize::new(0),
            size: AtomicU64::new(0),
            depth: AtomicU32::new(0),
        }
    }

    fn depth_of(&self, w: WireId) -> u32 {
        self.depths.at(w).load(Ordering::Acquire)
    }

    /// Allocates a fresh wire for `g` and records its depth (and its SoA
    /// row in build mode). Callers interning must run this under the
    /// shard lock via `InternTable::intern_with`.
    fn create(&self, g: Gate, depth: u32, is_logic: bool) -> WireId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = checked_wire_id(id as u64) {
            panic!("{e}");
        }
        self.depths.at(id).store(depth, Ordering::Release);
        if self.mode == Mode::Build {
            let (kind, a, b, c) = encode_gate(g);
            self.opa.at(id).store(a, Ordering::Release);
            self.opb.at(id).store(b, Ordering::Release);
            self.opc.at(id).store(c, Ordering::Release);
            self.kinds.at(id).store(kind, Ordering::Release);
        }
        if is_logic {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        self.depth.fetch_max(depth, Ordering::Relaxed);
        id
    }

    /// Hash-consed logic gate: canonicalize, pack, intern-or-create.
    fn logic(&self, g: Gate, depth: u32) -> WireId {
        let g = canon(g);
        let (kind, a, b, c) = encode_gate(g);
        let (id, _created) = self
            .table
            .intern_with(pack_key(kind, a, b, c), || self.create(g, depth, true));
        id
    }

    fn read_gate(&self, w: WireId) -> Gate {
        decode_gate(
            self.kinds.at(w).load(Ordering::Acquire),
            self.opa.at(w).load(Ordering::Acquire),
            self.opb.at(w).load(Ordering::Acquire),
            self.opc.at(w).load(Ordering::Acquire),
        )
    }
}

/// One handle onto the shared core. The root handle is the one returned
/// by [`Builder::with_pool`]; [`Builder::fork_join`] hands children
/// non-root handles that share the core but keep their own attempt log.
struct ParBuilder {
    core: Arc<ParCore>,
    pool: Pool,
    root: bool,
    /// Build-mode attempt log: the wire id returned by *every* builder
    /// call on this handle, in program order (creations and cache hits
    /// alike). Child logs are spliced in at the fork point in task order,
    /// so the root log is exactly the id sequence a sequential run of the
    /// same program would observe — replaying it at `finish` renumbers
    /// the schedule-dependent ids back into sequential creation order.
    log: Vec<WireId>,
}

impl ParBuilder {
    fn note(&mut self, w: WireId) -> WireId {
        if self.core.mode == Mode::Build {
            self.log.push(w);
        }
        w
    }

    fn input(&mut self) -> WireId {
        assert!(
            self.root,
            "inputs must be declared before forking: the input order is the circuit's I/O layout"
        );
        let idx = self.core.num_inputs.fetch_add(1, Ordering::Relaxed);
        let w = self.core.create(Gate::Input(idx), 0, false);
        self.note(w)
    }

    fn constant(&mut self, v: u64) -> WireId {
        let (kind, a, b, c) = encode_gate(Gate::Const(v));
        let (id, _created) = self.core.table.intern_with(pack_key(kind, a, b, c), || {
            self.core.create(Gate::Const(v), 0, false)
        });
        self.note(id)
    }

    fn raw_const(&mut self, v: u64) -> WireId {
        let w = self.core.create(Gate::Const(v), 0, false);
        self.note(w)
    }

    fn binary(&mut self, g: Gate, a: WireId, b: WireId) -> WireId {
        let d = self.core.depth_of(a).max(self.core.depth_of(b)) + 1;
        let w = self.core.logic(g, d);
        self.note(w)
    }

    fn not(&mut self, a: WireId) -> WireId {
        let d = self.core.depth_of(a) + 1;
        let w = self.core.logic(Gate::Not(a), d);
        self.note(w)
    }

    fn mux(&mut self, s: WireId, a: WireId, b: WireId) -> WireId {
        let d = self
            .core
            .depth_of(s)
            .max(self.core.depth_of(a))
            .max(self.core.depth_of(b))
            + 1;
        let w = self.core.logic(Gate::Mux(s, a, b), d);
        self.note(w)
    }

    fn assert_zero(&mut self, a: WireId) -> WireId {
        let d = self.core.depth_of(a) + 1;
        let w = self.core.create(Gate::AssertZero(a), d, true);
        self.note(w)
    }

    /// Finalizes a parallel build. Count mode reads the atomic totals;
    /// build mode replays the root attempt log, numbering each wire at
    /// its first occurrence — which is precisely the sequential builder's
    /// creation order for the same program — and rebuilds the dense gate
    /// list through [`Circuit::from_raw`].
    fn finish(self, outputs: Vec<WireId>) -> Circuit {
        assert!(self.root, "finish must be called on the root builder");
        let core = &self.core;
        let rec = qec_obs::global();
        if rec.is_enabled() {
            rec.add("build.gates", core.size.load(Ordering::Relaxed));
            rec.add("build.wires", core.next_id.load(Ordering::Relaxed) as u64);
            let (hits, misses) = core.table.hit_stats();
            rec.add("build.cons_hits", hits);
            rec.add("build.cons_misses", misses);
        }
        let num_inputs = core.num_inputs.load(Ordering::Relaxed);
        if core.mode == Mode::Count {
            return Circuit {
                mode: Mode::Count,
                gates: Vec::new(),
                depths: Vec::new(),
                outputs,
                num_inputs,
                size: core.size.load(Ordering::Relaxed),
                depth: core.depth.load(Ordering::Relaxed),
                num_wires: core.next_id.load(Ordering::Relaxed) as usize,
            };
        }
        let replay_start = rec.is_enabled().then(std::time::Instant::now);
        const UNSET: u32 = u32::MAX;
        let total = core.next_id.load(Ordering::Relaxed) as usize;
        let mut remap = vec![UNSET; total];
        let mut gates: Vec<Gate> = Vec::with_capacity(total);
        let map = |remap: &[u32], w: WireId| {
            let m = remap[w as usize];
            debug_assert_ne!(m, UNSET, "operand must be logged before use");
            m
        };
        for &w in &self.log {
            if remap[w as usize] != UNSET {
                continue;
            }
            let g = match core.read_gate(w) {
                g @ (Gate::Input(_) | Gate::Const(_)) => g,
                Gate::Add(a, b) => Gate::Add(map(&remap, a), map(&remap, b)),
                Gate::Sub(a, b) => Gate::Sub(map(&remap, a), map(&remap, b)),
                Gate::Mul(a, b) => Gate::Mul(map(&remap, a), map(&remap, b)),
                Gate::Eq(a, b) => Gate::Eq(map(&remap, a), map(&remap, b)),
                Gate::Lt(a, b) => Gate::Lt(map(&remap, a), map(&remap, b)),
                Gate::And(a, b) => Gate::And(map(&remap, a), map(&remap, b)),
                Gate::Or(a, b) => Gate::Or(map(&remap, a), map(&remap, b)),
                Gate::Xor(a, b) => Gate::Xor(map(&remap, a), map(&remap, b)),
                Gate::Not(a) => Gate::Not(map(&remap, a)),
                Gate::Mux(s, a, b) => Gate::Mux(map(&remap, s), map(&remap, a), map(&remap, b)),
                Gate::AssertZero(a) => Gate::AssertZero(map(&remap, a)),
            };
            remap[w as usize] = gates.len() as u32;
            // Re-canonicalize: commutative operands were sorted under the
            // schedule-dependent global numbering; the sequential builder
            // sorts them under the replayed numbering.
            gates.push(canon(g));
        }
        let outputs = outputs.iter().map(|&w| map(&remap, w)).collect();
        if let Some(t0) = replay_start {
            rec.record_span("build.replay", t0, t0.elapsed().as_nanos() as u64);
        }
        Circuit::from_raw(gates, outputs, num_inputs)
    }
}

impl Builder {
    /// Creates an empty builder with hash-consing enabled.
    pub fn new(mode: Mode) -> Builder {
        Builder {
            inner: BuilderInner::Seq(SeqBuilder::new(mode)),
        }
    }

    /// Creates a builder that never hash-conses: every push allocates a
    /// fresh wire, keeping wire ids aligned with the push sequence. The
    /// netlist reader needs this so ids match the source text.
    pub fn without_cse(mode: Mode) -> Builder {
        let mut s = SeqBuilder::new(mode);
        s.cse = false;
        Builder {
            inner: BuilderInner::Seq(s),
        }
    }

    /// Creates a builder whose [`Builder::fork_join`] regions run on
    /// `pool`: gates are emitted into a sharded concurrent hash-cons with
    /// struct-of-arrays storage, and `finish` replays the construction
    /// log so the resulting circuit is byte-identical to a sequential
    /// build of the same program (same wire numbering, same gate list,
    /// same size/depth accounting) for any worker count.
    pub fn with_pool(mode: Mode, pool: Pool) -> Builder {
        Builder {
            inner: BuilderInner::Par(ParBuilder {
                core: Arc::new(ParCore::new(mode)),
                pool,
                root: true,
                log: Vec::new(),
            }),
        }
    }

    /// Current gate count (inputs and constants excluded: they carry no
    /// logic; this matches how circuit size is counted in Sec. 4.1, where
    /// input gates exist but the interesting quantity is the work).
    pub fn size(&self) -> u64 {
        match &self.inner {
            BuilderInner::Seq(s) => s.size(),
            BuilderInner::Par(p) => p.core.size.load(Ordering::Relaxed),
        }
    }

    /// Current depth (longest input→wire path, counting logic gates).
    pub fn depth(&self) -> u32 {
        match &self.inner {
            BuilderInner::Seq(s) => s.depth(),
            BuilderInner::Par(p) => p.core.depth.load(Ordering::Relaxed),
        }
    }

    /// Number of inputs declared so far.
    pub fn num_inputs(&self) -> usize {
        match &self.inner {
            BuilderInner::Seq(s) => s.num_inputs(),
            BuilderInner::Par(p) => p.core.num_inputs.load(Ordering::Relaxed),
        }
    }

    /// Declares the next circuit input.
    ///
    /// # Panics
    /// Panics on a forked child handle: inputs fix the circuit's I/O
    /// layout and must all be declared before the first `fork_join`.
    pub fn input(&mut self) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.input(),
            BuilderInner::Par(p) => p.input(),
        }
    }

    /// A constant wire (deduplicated).
    pub fn constant(&mut self, v: u64) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.constant(v),
            BuilderInner::Par(p) => p.constant(v),
        }
    }

    /// A constant wire without deduplication (used by the netlist reader,
    /// which must keep wire ids aligned with the source text).
    pub fn raw_const(&mut self, v: u64) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.raw_const(v),
            BuilderInner::Par(p) => p.raw_const(v),
        }
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.add(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Add(a, b), a, b),
        }
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.sub(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Sub(a, b), a, b),
        }
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.mul(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Mul(a, b), a, b),
        }
    }

    /// Equality test.
    pub fn eq(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.eq(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Eq(a, b), a, b),
        }
    }

    /// Unsigned less-than.
    pub fn lt(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.lt(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Lt(a, b), a, b),
        }
    }

    /// Logical AND.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.and(a, b),
            BuilderInner::Par(p) => p.binary(Gate::And(a, b), a, b),
        }
    }

    /// Logical OR.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.or(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Or(a, b), a, b),
        }
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.xor(a, b),
            BuilderInner::Par(p) => p.binary(Gate::Xor(a, b), a, b),
        }
    }

    /// Logical NOT.
    pub fn not(&mut self, a: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.not(a),
            BuilderInner::Par(p) => p.not(a),
        }
    }

    /// Multiplexer `sel ≠ 0 ? a : b`.
    pub fn mux(&mut self, sel: WireId, a: WireId, b: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.mux(sel, a, b),
            BuilderInner::Par(p) => p.mux(sel, a, b),
        }
    }

    /// Asserts a wire is zero at evaluation time, returning the assert
    /// gate's wire (which carries value `0` when the assert passes).
    /// Asserts are effects, not expressions: they are never hash-consed.
    pub fn assert_zero(&mut self, a: WireId) -> WireId {
        match &mut self.inner {
            BuilderInner::Seq(s) => s.assert_zero(a),
            BuilderInner::Par(p) => p.assert_zero(a),
        }
    }

    /// Runs `f(i, builder)` for `i in 0..n` and returns the results in
    /// index order. On a sequential builder (or a forked child, or a
    /// one-thread pool) this is a plain loop over `self` — the gate
    /// emission order is exactly the loop's. On a parallel root builder
    /// the tasks run on the pool, each against its own child handle onto
    /// the shared hash-cons; the children's construction logs are spliced
    /// back in task order, so `finish` produces the same circuit the
    /// plain loop would have.
    ///
    /// Tasks must be independent: a task must not use wires returned by a
    /// sibling of the same `fork_join` (wires from before the fork, and
    /// results of earlier fork_joins, are fine). Forks from child handles
    /// run inline — parallelism is one level deep.
    pub fn fork_join<R, F>(&mut self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Builder) -> R + Sync,
    {
        match &mut self.inner {
            BuilderInner::Par(p) if p.root && p.pool.threads() > 1 && n > 1 => {
                let rec = qec_obs::global();
                if rec.is_enabled() {
                    rec.add("build.fork_joins", 1);
                    rec.add("build.fork_tasks", n as u64);
                }
                let core = &p.core;
                let pool = p.pool;
                let results = pool.map(n, |i| {
                    let mut child = Builder {
                        inner: BuilderInner::Par(ParBuilder {
                            core: Arc::clone(core),
                            pool,
                            root: false,
                            log: Vec::new(),
                        }),
                    };
                    let r = f(i, &mut child);
                    let log = match child.inner {
                        BuilderInner::Par(pb) => pb.log,
                        BuilderInner::Seq(_) => unreachable!(),
                    };
                    (r, log)
                });
                let mut out = Vec::with_capacity(n);
                for (r, log) in results {
                    p.log.extend_from_slice(&log);
                    out.push(r);
                }
                out
            }
            _ => (0..n).map(|i| f(i, self)).collect(),
        }
    }

    // ---- small derived helpers used by every operator circuit ----

    /// `a != b` as a boolean wire.
    pub fn ne(&mut self, a: WireId, b: WireId) -> WireId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Lexicographic less-than over equal-length wire vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn lex_lt(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len(), "lexicographic compare needs equal arity");
        let mut acc = self.constant(0);
        for (&x, &y) in a.iter().zip(b.iter()).rev() {
            let lt = self.lt(x, y);
            let eq = self.eq(x, y);
            let tail = self.and(eq, acc);
            acc = self.or(lt, tail);
        }
        acc
    }

    /// Component-wise equality of wire vectors (AND of field equalities).
    pub fn vec_eq(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len());
        let mut acc = self.constant(1);
        for (&x, &y) in a.iter().zip(b.iter()) {
            let e = self.eq(x, y);
            acc = self.and(acc, e);
        }
        acc
    }

    /// Component-wise mux of wire vectors.
    pub fn vec_mux(&mut self, sel: WireId, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// Finalizes the circuit with the given output wires.
    pub fn finish(self, outputs: Vec<WireId>) -> Circuit {
        match self.inner {
            BuilderInner::Seq(s) => s.finish(outputs),
            BuilderInner::Par(p) => p.finish(outputs),
        }
    }
}

/// A finalized circuit.
#[derive(Clone)]
pub struct Circuit {
    mode: Mode,
    gates: Vec<Gate>,
    depths: Vec<u32>,
    outputs: Vec<WireId>,
    num_inputs: usize,
    size: u64,
    depth: u32,
    /// Total wires. Equal to `depths.len()` for materialized circuits;
    /// kept as an explicit field so huge count-mode circuits built by the
    /// parallel core don't have to materialize a per-wire depth vector.
    num_wires: usize,
}

impl Circuit {
    /// Rebuilds a materialized circuit from a raw gate list, recomputing
    /// depths and size. Used by the offline optimizer, which constructs
    /// gate lists directly. The list must be topologically ordered.
    pub(crate) fn from_raw(gates: Vec<Gate>, outputs: Vec<WireId>, num_inputs: usize) -> Circuit {
        let mut depths = Vec::with_capacity(gates.len());
        let mut size = 0u64;
        for g in &gates {
            let is_logic = !matches!(g, Gate::Input(_) | Gate::Const(_));
            if is_logic {
                size += 1;
            }
            let d = g
                .operands()
                .iter()
                .flatten()
                .map(|&w| depths[w as usize])
                .max()
                .map_or(0, |m: u32| m + 1);
            depths.push(d);
        }
        let depth = depths.iter().copied().max().unwrap_or(0);
        let num_wires = depths.len();
        Circuit {
            mode: Mode::Build,
            gates,
            depths,
            outputs,
            num_inputs,
            size,
            depth,
            num_wires,
        }
    }
    /// Gate count (logic gates; inputs/constants excluded).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Depth (longest path through logic gates).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of declared inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Total wires (inputs + constants + gates).
    pub fn num_wires(&self) -> usize {
        self.num_wires
    }

    /// The gates (empty in count-only mode).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Per-wire depths (used by the Brent scheduler).
    pub fn wire_depths(&self) -> &[u32] {
        &self.depths
    }

    /// Was this circuit materialized?
    pub fn is_evaluable(&self) -> bool {
        self.mode == Mode::Build
    }

    /// Evaluates the circuit on `inputs`, returning output values.
    ///
    /// The evaluation order is the construction order (topological by
    /// construction); assertion gates abort with [`EvalError`].
    pub fn evaluate(&self, inputs: &[u64]) -> Result<Vec<u64>, EvalError> {
        if self.mode == Mode::Count {
            return Err(EvalError::CountOnly);
        }
        if inputs.len() != self.num_inputs {
            return Err(EvalError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let mut values = vec![0u64; self.gates.len()];
        let as_bool = |v: u64| -> u64 { u64::from(v != 0) };
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match *g {
                Gate::Input(idx) => inputs[idx],
                Gate::Const(v) => v,
                Gate::Add(a, b) => values[a as usize].wrapping_add(values[b as usize]),
                Gate::Sub(a, b) => values[a as usize].wrapping_sub(values[b as usize]),
                Gate::Mul(a, b) => values[a as usize].wrapping_mul(values[b as usize]),
                Gate::Eq(a, b) => u64::from(values[a as usize] == values[b as usize]),
                Gate::Lt(a, b) => u64::from(values[a as usize] < values[b as usize]),
                Gate::And(a, b) => as_bool(values[a as usize]) & as_bool(values[b as usize]),
                Gate::Or(a, b) => as_bool(values[a as usize]) | as_bool(values[b as usize]),
                Gate::Xor(a, b) => as_bool(values[a as usize]) ^ as_bool(values[b as usize]),
                Gate::Not(a) => u64::from(values[a as usize] == 0),
                Gate::Mux(s, a, b) => {
                    if values[s as usize] != 0 {
                        values[a as usize]
                    } else {
                        values[b as usize]
                    }
                }
                Gate::AssertZero(a) => {
                    let v = values[a as usize];
                    if v != 0 {
                        return Err(EvalError::AssertionFailed { gate: i, value: v });
                    }
                    0
                }
            };
        }
        Ok(self.outputs.iter().map(|&w| values[w as usize]).collect())
    }

    /// Fan-in lists per gate (for the bit-level lowering).
    pub fn gate_operands(&self, i: usize) -> [Option<WireId>; 3] {
        self.gates[i].operands()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_evaluate() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let d = b.sub(x, y);
        let p = b.mul(x, y);
        let e = b.eq(x, y);
        let l = b.lt(x, y);
        let c = b.finish(vec![s, d, p, e, l]);
        assert_eq!(c.evaluate(&[7, 3]).unwrap(), vec![10, 4, 21, 0, 0]);
        assert_eq!(
            c.evaluate(&[3, 7]).unwrap(),
            vec![10, u64::MAX - 3, 21, 0, 1]
        );
        assert_eq!(c.evaluate(&[5, 5]).unwrap(), vec![10, 0, 25, 1, 0]);
    }

    #[test]
    fn logic_gates_are_logical() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        let o = b.or(x, y);
        let n = b.not(x);
        let xo = b.xor(x, y);
        let c = b.finish(vec![a, o, n, xo]);
        // non-0/1 values behave as booleans
        assert_eq!(c.evaluate(&[5, 0]).unwrap(), vec![0, 1, 0, 1]);
        assert_eq!(c.evaluate(&[5, 9]).unwrap(), vec![1, 1, 0, 0]);
        assert_eq!(c.evaluate(&[0, 0]).unwrap(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn mux_and_vectors() {
        let mut b = Builder::new(Mode::Build);
        let s = b.input();
        let xs: Vec<WireId> = (0..3).map(|_| b.input()).collect();
        let ys: Vec<WireId> = (0..3).map(|_| b.input()).collect();
        let m = b.vec_mux(s, &xs, &ys);
        let c = b.finish(m);
        assert_eq!(c.evaluate(&[1, 1, 2, 3, 4, 5, 6]).unwrap(), vec![1, 2, 3]);
        assert_eq!(c.evaluate(&[0, 1, 2, 3, 4, 5, 6]).unwrap(), vec![4, 5, 6]);
    }

    #[test]
    fn lex_lt_orders_vectors() {
        let mut b = Builder::new(Mode::Build);
        let a: Vec<WireId> = (0..2).map(|_| b.input()).collect();
        let c: Vec<WireId> = (0..2).map(|_| b.input()).collect();
        let lt = b.lex_lt(&a, &c);
        let circ = b.finish(vec![lt]);
        assert_eq!(circ.evaluate(&[1, 9, 2, 0]).unwrap(), vec![1]); // (1,9) < (2,0)
        assert_eq!(circ.evaluate(&[2, 0, 1, 9]).unwrap(), vec![0]);
        assert_eq!(circ.evaluate(&[1, 2, 1, 3]).unwrap(), vec![1]);
        assert_eq!(circ.evaluate(&[1, 3, 1, 3]).unwrap(), vec![0]);
    }

    #[test]
    fn assertion_gates_fire() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        assert!(c.evaluate(&[0]).is_ok());
        assert!(matches!(
            c.evaluate(&[3]),
            Err(EvalError::AssertionFailed { value: 3, .. })
        ));
    }

    #[test]
    fn const_dedup_and_size_accounting() {
        let mut b = Builder::new(Mode::Build);
        let c1 = b.constant(42);
        let c2 = b.constant(42);
        assert_eq!(c1, c2);
        assert_eq!(b.size(), 0); // constants are not logic
        let x = b.input();
        let _ = b.add(x, c1);
        assert_eq!(b.size(), 1);
        assert_eq!(b.depth(), 1);
    }

    #[test]
    fn count_mode_matches_build_mode() {
        fn build(mode: Mode) -> (u64, u32) {
            let mut b = Builder::new(mode);
            let xs: Vec<WireId> = (0..8).map(|_| b.input()).collect();
            let mut acc = b.constant(0);
            for &x in &xs {
                acc = b.add(acc, x);
            }
            let k = b.constant(100);
            let flag = b.lt(acc, k);
            let c = b.finish(vec![flag]);
            (c.size(), c.depth())
        }
        assert_eq!(build(Mode::Build), build(Mode::Count));
    }

    #[test]
    fn count_mode_rejects_evaluation() {
        let mut b = Builder::new(Mode::Count);
        let x = b.input();
        let y = b.not(x);
        let c = b.finish(vec![y]);
        assert_eq!(c.evaluate(&[1]), Err(EvalError::CountOnly));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn input_arity_checked() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let c = b.finish(vec![x]);
        assert_eq!(
            c.evaluate(&[]),
            Err(EvalError::InputArity {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn depth_tracks_longest_path() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a = b.add(x, y); // depth 1
        let z = b.add(a, y); // depth 2
        let w = b.add(x, y); // hash-consed to `a`
        let f = b.add(z, w); // depth 3
        let c = b.finish(vec![f]);
        assert_eq!(w, a);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn hash_consing_dedups_and_canonicalizes() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a1 = b.add(x, y);
        let a2 = b.add(y, x); // commutative: same wire
        assert_eq!(a1, a2);
        let s1 = b.sub(x, y);
        let s2 = b.sub(y, x); // order-sensitive: distinct wires
        assert_ne!(s1, s2);
        let m1 = b.mux(x, a1, s1);
        let m2 = b.mux(x, a1, s1);
        assert_eq!(m1, m2);
        assert_eq!(b.size(), 4); // a1, s1, s2, m1
        let c = b.finish(vec![a1, m1]);
        assert_eq!(c.evaluate(&[7, 3]).unwrap(), vec![10, 10]);
    }

    #[test]
    fn without_cse_keeps_duplicate_gates() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        assert_ne!(a1, a2);
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn asserts_are_never_consed() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let g1 = b.assert_zero(x);
        let g2 = b.assert_zero(x);
        assert_ne!(g1, g2);
        assert_eq!(b.size(), 2);
    }

    /// A small forked program with cross-task duplicate gates, pre-fork
    /// shared wires, post-fork sequential work, and asserts.
    fn forked_program(b: &mut Builder) -> Vec<WireId> {
        let xs: Vec<WireId> = (0..8).map(|_| b.input()).collect();
        let k = b.constant(5);
        let pre = b.add(xs[0], k);
        let per_task = b.fork_join(4, |i, b| {
            let shared = b.add(xs[0], xs[1]); // duplicated by every task
            let a = b.add(xs[i], xs[i + 4]);
            let m = b.mul(a, pre);
            let lt = b.lt(m, xs[7 - i]);
            let sel = b.mux(lt, a, shared);
            let c = b.constant(7); // duplicated constant
            let e = b.eq(sel, c);
            b.assert_zero(e);
            vec![shared, m, sel]
        });
        let mut outs: Vec<WireId> = per_task.into_iter().flatten().collect();
        let tail = b.xor(outs[0], outs[1]);
        outs.push(tail);
        outs
    }

    #[test]
    fn par_build_replay_is_byte_identical_to_sequential() {
        let seq = {
            let mut b = Builder::new(Mode::Build);
            let outs = forked_program(&mut b);
            b.finish(outs)
        };
        for threads in [1usize, 2, 3, 8] {
            let mut b = Builder::with_pool(Mode::Build, qec_par::Pool::new(threads));
            let outs = forked_program(&mut b);
            let par = b.finish(outs);
            assert_eq!(par.gates(), seq.gates(), "threads={threads}");
            assert_eq!(par.outputs(), seq.outputs(), "threads={threads}");
            assert_eq!(par.wire_depths(), seq.wire_depths());
            assert_eq!(par.size(), seq.size());
            assert_eq!(par.depth(), seq.depth());
            assert_eq!(par.num_wires(), seq.num_wires());
            assert_eq!(par.num_inputs(), seq.num_inputs());
            let inputs: Vec<u64> = (0..8).collect();
            assert_eq!(par.evaluate(&inputs), seq.evaluate(&inputs));
        }
    }

    #[test]
    fn par_count_mode_matches_sequential_accounting() {
        let seq = {
            let mut b = Builder::new(Mode::Count);
            let outs = forked_program(&mut b);
            b.finish(outs)
        };
        for threads in [1usize, 4] {
            let mut b = Builder::with_pool(Mode::Count, qec_par::Pool::new(threads));
            let outs = forked_program(&mut b);
            let par = b.finish(outs);
            assert_eq!(par.size(), seq.size(), "threads={threads}");
            assert_eq!(par.depth(), seq.depth());
            assert_eq!(par.num_wires(), seq.num_wires());
            assert_eq!(par.num_inputs(), seq.num_inputs());
            assert!(!par.is_evaluable());
        }
    }

    #[test]
    #[should_panic(expected = "inputs must be declared before forking")]
    fn par_child_input_panics() {
        let mut b = Builder::with_pool(Mode::Build, qec_par::Pool::new(2));
        // every task tries to declare an input; whichever runs on the
        // calling thread raises the expected panic message
        b.fork_join(2, |_, c| {
            c.input();
        });
    }

    #[test]
    fn cse_preserves_count_mode_parity() {
        fn build(mode: Mode) -> (u64, u32) {
            let mut b = Builder::new(mode);
            let x = b.input();
            let y = b.input();
            let a = b.add(x, y);
            let _dup = b.add(y, x);
            let m = b.mul(a, a);
            let e = b.eq(m, a);
            let c = b.finish(vec![e]);
            (c.size(), c.depth())
        }
        assert_eq!(build(Mode::Build), build(Mode::Count));
    }
}
