//! Word-level circuit IR: gates, builder, evaluator.

use std::collections::HashMap;
use std::fmt;

/// A wire identifier.
pub type WireId = u32;

/// A word-level gate. Comparison and logic gates produce `0`/`1`;
/// arithmetic is wrapping (the planner sizes words so wrapping never
/// triggers on conforming inputs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// The `i`-th circuit input.
    Input(usize),
    /// A compile-time constant.
    Const(u64),
    /// Wrapping addition.
    Add(WireId, WireId),
    /// Wrapping subtraction.
    Sub(WireId, WireId),
    /// Wrapping multiplication.
    Mul(WireId, WireId),
    /// Equality test (`0`/`1`).
    Eq(WireId, WireId),
    /// Unsigned less-than (`0`/`1`).
    Lt(WireId, WireId),
    /// Logical AND (inputs treated as booleans).
    And(WireId, WireId),
    /// Logical OR.
    Or(WireId, WireId),
    /// Logical XOR.
    Xor(WireId, WireId),
    /// Logical NOT.
    Not(WireId),
    /// Multiplexer: `sel ≠ 0 ? a : b`.
    Mux(WireId, WireId, WireId),
    /// Runtime assertion: the wire must evaluate to `0`. Used to make
    /// capacity obligations (e.g. "truncation only drops dummies")
    /// checkable during evaluation.
    AssertZero(WireId),
}

impl Gate {
    pub(crate) fn operands(&self) -> [Option<WireId>; 3] {
        match *self {
            Gate::Input(_) | Gate::Const(_) => [None, None, None],
            Gate::Not(a) | Gate::AssertZero(a) => [Some(a), None, None],
            Gate::Add(a, b)
            | Gate::Sub(a, b)
            | Gate::Mul(a, b)
            | Gate::Eq(a, b)
            | Gate::Lt(a, b)
            | Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b) => [Some(a), Some(b), None],
            Gate::Mux(s, a, b) => [Some(s), Some(a), Some(b)],
        }
    }
}

/// Builder mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Materialize gates (evaluable).
    Build,
    /// Track only size and depth (for large scaling sweeps). Gate and
    /// depth accounting is identical to [`Mode::Build`].
    Count,
}

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Wrong number of inputs supplied.
    InputArity {
        /// Inputs the circuit declares.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An [`Gate::AssertZero`] fired.
    AssertionFailed {
        /// Index of the failing gate.
        gate: usize,
        /// The non-zero value observed.
        value: u64,
    },
    /// The circuit was built in [`Mode::Count`] and has no gates.
    CountOnly,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InputArity { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            EvalError::AssertionFailed { gate, value } => {
                write!(f, "assertion gate {gate} observed non-zero value {value}")
            }
            EvalError::CountOnly => write!(f, "circuit was built in count-only mode"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Incremental circuit builder.
///
/// In [`Mode::Count`] the builder performs the exact same bookkeeping
/// (including constant deduplication and hash-consing) without
/// materializing gates, so size/depth numbers from the two modes are
/// identical — a property the test suite checks.
///
/// By default the builder hash-conses logic gates: pushing a gate that is
/// structurally identical to an earlier one (after sorting the operands
/// of commutative gates) returns the existing wire instead of a new one.
/// The cache key is the gate value itself, which exists in both modes, so
/// consing never breaks Build/Count parity. Use [`Builder::without_cse`]
/// when wire ids must track pushes one-for-one (the netlist reader does).
pub struct Builder {
    mode: Mode,
    gates: Vec<Gate>,
    depths: Vec<u32>,
    num_inputs: usize,
    size: u64,
    const_cache: HashMap<u64, WireId>,
    cse: bool,
    cse_cache: HashMap<Gate, WireId>,
}

/// Sorts the operands of commutative gates so `add(a, b)` and
/// `add(b, a)` share one cache entry. `Sub`, `Lt`, and `Mux` are order
/// sensitive and pass through unchanged.
pub(crate) fn canon(gate: Gate) -> Gate {
    match gate {
        Gate::Add(a, b) if a > b => Gate::Add(b, a),
        Gate::Mul(a, b) if a > b => Gate::Mul(b, a),
        Gate::Eq(a, b) if a > b => Gate::Eq(b, a),
        Gate::And(a, b) if a > b => Gate::And(b, a),
        Gate::Or(a, b) if a > b => Gate::Or(b, a),
        Gate::Xor(a, b) if a > b => Gate::Xor(b, a),
        g => g,
    }
}

impl Builder {
    /// Creates an empty builder with hash-consing enabled.
    pub fn new(mode: Mode) -> Builder {
        Builder {
            mode,
            gates: Vec::new(),
            depths: Vec::new(),
            num_inputs: 0,
            size: 0,
            const_cache: HashMap::new(),
            cse: true,
            cse_cache: HashMap::new(),
        }
    }

    /// Creates a builder that never hash-conses: every push allocates a
    /// fresh wire, keeping wire ids aligned with the push sequence. The
    /// netlist reader needs this so ids match the source text.
    pub fn without_cse(mode: Mode) -> Builder {
        let mut b = Builder::new(mode);
        b.cse = false;
        b
    }

    /// Current gate count (inputs and constants excluded: they carry no
    /// logic; this matches how circuit size is counted in Sec. 4.1, where
    /// input gates exist but the interesting quantity is the work).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Current depth (longest input→wire path, counting logic gates).
    pub fn depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Number of inputs declared so far.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn push(&mut self, gate: Gate, depth: u32, is_logic: bool) -> WireId {
        let id = self.depths.len() as WireId;
        self.depths.push(depth);
        if is_logic {
            self.size += 1;
        }
        if self.mode == Mode::Build {
            self.gates.push(gate);
        }
        id
    }

    /// Pushes a logic gate through the hash-consing cache.
    fn logic(&mut self, gate: Gate, depth: u32) -> WireId {
        if !self.cse {
            return self.push(gate, depth, true);
        }
        let key = canon(gate);
        if let Some(&w) = self.cse_cache.get(&key) {
            return w;
        }
        let w = self.push(key, depth, true);
        self.cse_cache.insert(key, w);
        w
    }

    fn depth_of(&self, w: WireId) -> u32 {
        self.depths[w as usize]
    }

    fn binary_depth(&self, a: WireId, b: WireId) -> u32 {
        self.depth_of(a).max(self.depth_of(b)) + 1
    }

    /// Declares the next circuit input.
    pub fn input(&mut self) -> WireId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        self.push(Gate::Input(idx), 0, false)
    }

    /// A constant wire (deduplicated).
    pub fn constant(&mut self, v: u64) -> WireId {
        if let Some(&w) = self.const_cache.get(&v) {
            return w;
        }
        let w = self.push(Gate::Const(v), 0, false);
        self.const_cache.insert(v, w);
        w
    }

    /// A constant wire without deduplication (used by the netlist reader,
    /// which must keep wire ids aligned with the source text).
    pub fn raw_const(&mut self, v: u64) -> WireId {
        self.push(Gate::Const(v), 0, false)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Add(a, b), d)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Sub(a, b), d)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Mul(a, b), d)
    }

    /// Equality test.
    pub fn eq(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Eq(a, b), d)
    }

    /// Unsigned less-than.
    pub fn lt(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Lt(a, b), d)
    }

    /// Logical AND.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::And(a, b), d)
    }

    /// Logical OR.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Or(a, b), d)
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let d = self.binary_depth(a, b);
        self.logic(Gate::Xor(a, b), d)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: WireId) -> WireId {
        let d = self.depth_of(a) + 1;
        self.logic(Gate::Not(a), d)
    }

    /// Multiplexer `sel ≠ 0 ? a : b`.
    pub fn mux(&mut self, sel: WireId, a: WireId, b: WireId) -> WireId {
        let d = self
            .depth_of(sel)
            .max(self.depth_of(a))
            .max(self.depth_of(b))
            + 1;
        self.logic(Gate::Mux(sel, a, b), d)
    }

    /// Asserts a wire is zero at evaluation time, returning the assert
    /// gate's wire (which carries value `0` when the assert passes).
    /// Asserts are effects, not expressions: they are never hash-consed.
    pub fn assert_zero(&mut self, a: WireId) -> WireId {
        let d = self.depth_of(a) + 1;
        self.push(Gate::AssertZero(a), d, true)
    }

    // ---- small derived helpers used by every operator circuit ----

    /// `a != b` as a boolean wire.
    pub fn ne(&mut self, a: WireId, b: WireId) -> WireId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Lexicographic less-than over equal-length wire vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn lex_lt(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len(), "lexicographic compare needs equal arity");
        let mut acc = self.constant(0);
        for (&x, &y) in a.iter().zip(b.iter()).rev() {
            let lt = self.lt(x, y);
            let eq = self.eq(x, y);
            let tail = self.and(eq, acc);
            acc = self.or(lt, tail);
        }
        acc
    }

    /// Component-wise equality of wire vectors (AND of field equalities).
    pub fn vec_eq(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len());
        let mut acc = self.constant(1);
        for (&x, &y) in a.iter().zip(b.iter()) {
            let e = self.eq(x, y);
            acc = self.and(acc, e);
        }
        acc
    }

    /// Component-wise mux of wire vectors.
    pub fn vec_mux(&mut self, sel: WireId, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// Finalizes the circuit with the given output wires.
    pub fn finish(self, outputs: Vec<WireId>) -> Circuit {
        let depth = self.depth();
        Circuit {
            mode: self.mode,
            gates: self.gates,
            depths: self.depths,
            outputs,
            num_inputs: self.num_inputs,
            size: self.size,
            depth,
        }
    }
}

/// A finalized circuit.
#[derive(Clone)]
pub struct Circuit {
    mode: Mode,
    gates: Vec<Gate>,
    depths: Vec<u32>,
    outputs: Vec<WireId>,
    num_inputs: usize,
    size: u64,
    depth: u32,
}

impl Circuit {
    /// Rebuilds a materialized circuit from a raw gate list, recomputing
    /// depths and size. Used by the offline optimizer, which constructs
    /// gate lists directly. The list must be topologically ordered.
    pub(crate) fn from_raw(gates: Vec<Gate>, outputs: Vec<WireId>, num_inputs: usize) -> Circuit {
        let mut depths = Vec::with_capacity(gates.len());
        let mut size = 0u64;
        for g in &gates {
            let is_logic = !matches!(g, Gate::Input(_) | Gate::Const(_));
            if is_logic {
                size += 1;
            }
            let d = g
                .operands()
                .iter()
                .flatten()
                .map(|&w| depths[w as usize])
                .max()
                .map_or(0, |m: u32| m + 1);
            depths.push(d);
        }
        let depth = depths.iter().copied().max().unwrap_or(0);
        Circuit {
            mode: Mode::Build,
            gates,
            depths,
            outputs,
            num_inputs,
            size,
            depth,
        }
    }
    /// Gate count (logic gates; inputs/constants excluded).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Depth (longest path through logic gates).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of declared inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Total wires (inputs + constants + gates).
    pub fn num_wires(&self) -> usize {
        self.depths.len()
    }

    /// The gates (empty in count-only mode).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Per-wire depths (used by the Brent scheduler).
    pub fn wire_depths(&self) -> &[u32] {
        &self.depths
    }

    /// Was this circuit materialized?
    pub fn is_evaluable(&self) -> bool {
        self.mode == Mode::Build
    }

    /// Evaluates the circuit on `inputs`, returning output values.
    ///
    /// The evaluation order is the construction order (topological by
    /// construction); assertion gates abort with [`EvalError`].
    pub fn evaluate(&self, inputs: &[u64]) -> Result<Vec<u64>, EvalError> {
        if self.mode == Mode::Count {
            return Err(EvalError::CountOnly);
        }
        if inputs.len() != self.num_inputs {
            return Err(EvalError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let mut values = vec![0u64; self.gates.len()];
        let as_bool = |v: u64| -> u64 { u64::from(v != 0) };
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match *g {
                Gate::Input(idx) => inputs[idx],
                Gate::Const(v) => v,
                Gate::Add(a, b) => values[a as usize].wrapping_add(values[b as usize]),
                Gate::Sub(a, b) => values[a as usize].wrapping_sub(values[b as usize]),
                Gate::Mul(a, b) => values[a as usize].wrapping_mul(values[b as usize]),
                Gate::Eq(a, b) => u64::from(values[a as usize] == values[b as usize]),
                Gate::Lt(a, b) => u64::from(values[a as usize] < values[b as usize]),
                Gate::And(a, b) => as_bool(values[a as usize]) & as_bool(values[b as usize]),
                Gate::Or(a, b) => as_bool(values[a as usize]) | as_bool(values[b as usize]),
                Gate::Xor(a, b) => as_bool(values[a as usize]) ^ as_bool(values[b as usize]),
                Gate::Not(a) => u64::from(values[a as usize] == 0),
                Gate::Mux(s, a, b) => {
                    if values[s as usize] != 0 {
                        values[a as usize]
                    } else {
                        values[b as usize]
                    }
                }
                Gate::AssertZero(a) => {
                    let v = values[a as usize];
                    if v != 0 {
                        return Err(EvalError::AssertionFailed { gate: i, value: v });
                    }
                    0
                }
            };
        }
        Ok(self.outputs.iter().map(|&w| values[w as usize]).collect())
    }

    /// Fan-in lists per gate (for the bit-level lowering).
    pub fn gate_operands(&self, i: usize) -> [Option<WireId>; 3] {
        self.gates[i].operands()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_evaluate() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let d = b.sub(x, y);
        let p = b.mul(x, y);
        let e = b.eq(x, y);
        let l = b.lt(x, y);
        let c = b.finish(vec![s, d, p, e, l]);
        assert_eq!(c.evaluate(&[7, 3]).unwrap(), vec![10, 4, 21, 0, 0]);
        assert_eq!(
            c.evaluate(&[3, 7]).unwrap(),
            vec![10, u64::MAX - 3, 21, 0, 1]
        );
        assert_eq!(c.evaluate(&[5, 5]).unwrap(), vec![10, 0, 25, 1, 0]);
    }

    #[test]
    fn logic_gates_are_logical() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        let o = b.or(x, y);
        let n = b.not(x);
        let xo = b.xor(x, y);
        let c = b.finish(vec![a, o, n, xo]);
        // non-0/1 values behave as booleans
        assert_eq!(c.evaluate(&[5, 0]).unwrap(), vec![0, 1, 0, 1]);
        assert_eq!(c.evaluate(&[5, 9]).unwrap(), vec![1, 1, 0, 0]);
        assert_eq!(c.evaluate(&[0, 0]).unwrap(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn mux_and_vectors() {
        let mut b = Builder::new(Mode::Build);
        let s = b.input();
        let xs: Vec<WireId> = (0..3).map(|_| b.input()).collect();
        let ys: Vec<WireId> = (0..3).map(|_| b.input()).collect();
        let m = b.vec_mux(s, &xs, &ys);
        let c = b.finish(m);
        assert_eq!(c.evaluate(&[1, 1, 2, 3, 4, 5, 6]).unwrap(), vec![1, 2, 3]);
        assert_eq!(c.evaluate(&[0, 1, 2, 3, 4, 5, 6]).unwrap(), vec![4, 5, 6]);
    }

    #[test]
    fn lex_lt_orders_vectors() {
        let mut b = Builder::new(Mode::Build);
        let a: Vec<WireId> = (0..2).map(|_| b.input()).collect();
        let c: Vec<WireId> = (0..2).map(|_| b.input()).collect();
        let lt = b.lex_lt(&a, &c);
        let circ = b.finish(vec![lt]);
        assert_eq!(circ.evaluate(&[1, 9, 2, 0]).unwrap(), vec![1]); // (1,9) < (2,0)
        assert_eq!(circ.evaluate(&[2, 0, 1, 9]).unwrap(), vec![0]);
        assert_eq!(circ.evaluate(&[1, 2, 1, 3]).unwrap(), vec![1]);
        assert_eq!(circ.evaluate(&[1, 3, 1, 3]).unwrap(), vec![0]);
    }

    #[test]
    fn assertion_gates_fire() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        assert!(c.evaluate(&[0]).is_ok());
        assert!(matches!(
            c.evaluate(&[3]),
            Err(EvalError::AssertionFailed { value: 3, .. })
        ));
    }

    #[test]
    fn const_dedup_and_size_accounting() {
        let mut b = Builder::new(Mode::Build);
        let c1 = b.constant(42);
        let c2 = b.constant(42);
        assert_eq!(c1, c2);
        assert_eq!(b.size(), 0); // constants are not logic
        let x = b.input();
        let _ = b.add(x, c1);
        assert_eq!(b.size(), 1);
        assert_eq!(b.depth(), 1);
    }

    #[test]
    fn count_mode_matches_build_mode() {
        fn build(mode: Mode) -> (u64, u32) {
            let mut b = Builder::new(mode);
            let xs: Vec<WireId> = (0..8).map(|_| b.input()).collect();
            let mut acc = b.constant(0);
            for &x in &xs {
                acc = b.add(acc, x);
            }
            let k = b.constant(100);
            let flag = b.lt(acc, k);
            let c = b.finish(vec![flag]);
            (c.size(), c.depth())
        }
        assert_eq!(build(Mode::Build), build(Mode::Count));
    }

    #[test]
    fn count_mode_rejects_evaluation() {
        let mut b = Builder::new(Mode::Count);
        let x = b.input();
        let y = b.not(x);
        let c = b.finish(vec![y]);
        assert_eq!(c.evaluate(&[1]), Err(EvalError::CountOnly));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn input_arity_checked() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let c = b.finish(vec![x]);
        assert_eq!(
            c.evaluate(&[]),
            Err(EvalError::InputArity {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn depth_tracks_longest_path() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a = b.add(x, y); // depth 1
        let z = b.add(a, y); // depth 2
        let w = b.add(x, y); // hash-consed to `a`
        let f = b.add(z, w); // depth 3
        let c = b.finish(vec![f]);
        assert_eq!(w, a);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.size(), 3);
    }

    #[test]
    fn hash_consing_dedups_and_canonicalizes() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a1 = b.add(x, y);
        let a2 = b.add(y, x); // commutative: same wire
        assert_eq!(a1, a2);
        let s1 = b.sub(x, y);
        let s2 = b.sub(y, x); // order-sensitive: distinct wires
        assert_ne!(s1, s2);
        let m1 = b.mux(x, a1, s1);
        let m2 = b.mux(x, a1, s1);
        assert_eq!(m1, m2);
        assert_eq!(b.size(), 4); // a1, s1, s2, m1
        let c = b.finish(vec![a1, m1]);
        assert_eq!(c.evaluate(&[7, 3]).unwrap(), vec![10, 10]);
    }

    #[test]
    fn without_cse_keeps_duplicate_gates() {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        assert_ne!(a1, a2);
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn asserts_are_never_consed() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let g1 = b.assert_zero(x);
        let g2 = b.assert_zero(x);
        assert_ne!(g1, g2);
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn cse_preserves_count_mode_parity() {
        fn build(mode: Mode) -> (u64, u32) {
            let mut b = Builder::new(mode);
            let x = b.input();
            let y = b.input();
            let a = b.add(x, y);
            let _dup = b.add(y, x);
            let m = b.mul(a, a);
            let e = b.eq(m, a);
            let c = b.finish(vec![e]);
            (c.size(), c.depth())
        }
        assert_eq!(build(Mode::Build), build(Mode::Count));
    }
}
