//! Oblivious word-level circuits and the paper's operator circuits
//! (Sec. 4.1, Sec. 5, Sec. 6.3).
//!
//! The paper's circuits carry tuples on wires and apply "standard
//! operations" gate-by-gate, ignoring `poly(log N, log u)` factors between
//! Boolean and arithmetic circuits (Sec. 4.1). We model this faithfully
//! with a **word-level** circuit: each wire carries a `u64`, each gate is a
//! constant-fan-in word operation (add, compare, mux, …). A further
//! **bit-level lowering** ([`lower`]) maps word gates to AND/XOR/NOT gates
//! for applications that need Boolean gate counts (garbled circuits, GMW);
//! `qec-mpc` evaluates those lowered circuits under secret sharing.
//!
//! Obliviousness is structural: the circuit topology depends only on the
//! declared capacities (the degree constraints), never on data. Relations
//! travel as fixed-capacity slot arrays with a validity flag per slot
//! (the paper's *dummy tuples*, Sec. 5).
//!
//! Implemented operator circuits, each matching its reference in the
//! paper:
//!
//! | circuit | paper | size | depth |
//! |---|---|---|---|
//! | `⊕`-scan / segmented scan | Alg. 4, Sec. 5.1 | `Õ(K)` | `Õ(1)` |
//! | bitonic sort ([`sort_slots`]) | Sec. 5 (sorting networks) | `O(K log² K)` | `O(log² K)` |
//! | selection ([`select`]) | Sec. 5 | `Õ(K)` | `Õ(1)` |
//! | projection ([`project`]) | Alg. 3 | `Õ(K)` | `Õ(1)` |
//! | aggregation ([`aggregate`]) | Alg. 5 | `Õ(K)` | `Õ(1)` |
//! | union ([`union`]) | Sec. 5 | `Õ(K+L)` | `Õ(1)` |
//! | truncation ([`truncate`]) | Sec. 5.3 | `Õ(K)` | `Õ(1)` |
//! | primary-key join ([`join_pk`]) | Alg. 6, Fig. 3 | `Õ(M+N')` | `Õ(1)` |
//! | degree-bounded join ([`join_degree_bounded`]) | Alg. 7, Fig. 4 | `Õ(MN+N')` | `Õ(1)` |
//! | decomposition ([`decompose`]) | Alg. 2 | `Õ(N)` | `Õ(1)` |
//! | output-bounded join ([`join_output_bounded`]) | Alg. 10 | `Õ(M+N+OUT)` | `Õ(1)` |

pub mod bitengine;
mod decompose;
pub mod driver;
mod engine;
mod ir;
mod join;
mod join_out;
pub mod lower;
mod netlist;
mod ops;
pub mod opt;
mod prov;
mod rel;
mod scan;
mod schedule;
mod shared;
mod sort;
pub mod tape;
pub mod validate;

pub use bitengine::{
    compile_bits_with, pack_instances, unpack_outputs, BitEngineStats, BitKernel, BitOp, BitReg,
    BitScratch, CompiledBitCircuit,
};
pub use decompose::{decompose, DecomposedPart};
pub use driver::{CompileOptions, PipelineReport};
pub use engine::{CompiledCircuit, EngineStats, EvalMetrics, GATE_KINDS};
pub use ir::{Builder, Circuit, EvalError, Gate, Mode, WireId};
pub use join::{join_degree_bounded, join_pk, semijoin};
pub use join_out::join_output_bounded;
pub use lower::{lower_with, optimize_bits_with, BitCircuit, BitEvalScratch, BitOptStats};
pub use netlist::{read_netlist, write_netlist, NetlistError};
pub use ops::{aggregate, project, select, truncate, union, AggOp};
pub use opt::{optimize_with, OptStats};
pub use prov::{ProvCircuit, ProvId, ProvNode};
pub use qec_par::Pool;
pub use rel::{
    decode_relation, encode_database, encode_relation, relation_to_values, InputLayout, RelWires,
    SlotWires,
};
pub use scan::{scan, segmented_scan};
pub use schedule::{brent_steps, evaluate_levelized, level_widths};
pub use sort::{sort_slots, sort_slots_network, SortKey, SortNetwork};
pub use tape::{fnv1a64, lower_streamed, BitTape, StreamOptions, StreamStats, TapeError, WordTape};
pub use validate::{
    validate, validate_bit_tape, validate_bits, validate_opt, validate_word_tape, ValidateError,
};
