//! Bitsliced transposed evaluation of the bit-level circuit.
//!
//! [`BitCircuit::evaluate`](crate::lower::BitCircuit::evaluate) walks one
//! `bool` per wire per instance. The lowered circuit is pure
//! AND/XOR/NOT over GF(2), so a machine word can carry one *instance*
//! per bit instead: transpose the input batch (bit-matrix transpose,
//! instances across lanes), keep one word per live wire, and every
//! scalar `&`/`^`/`!` evaluates the gate for 64 instances at once — 256
//! or 512 with the AVX2/AVX-512 kernels.
//!
//! The compile step mirrors [`engine.rs`](crate::engine) exactly:
//!
//! 1. **Liveness.** The last level reading each wire is computed in one
//!    pass; output wires are pinned.
//! 2. **Level-major tape.** Gates are emitted level by level (the same
//!    scheduling levels the parallel lowering uses), so operands always
//!    sit at strictly lower levels than their consumers.
//! 3. **Register allocation.** Registers are freed only at level
//!    boundaries — a level's destinations can never alias its sources —
//!    shrinking the wire store from `O(gates)` words to `O(peak live
//!    width)` registers per lane-word.
//!
//! Dispatch follows the word engine's idiom: a monomorphized
//! `#[inline(always)]` body generic over the words-per-register count
//! `W`, wrapped by `#[target_feature]`-gated entry points selected once
//! per batch via `is_x86_feature_detected!`. `QEC_BITENGINE_KERNEL`
//! (`scalar`/`avx2`/`avx512`) forces a kernel for A/B measurements.
//!
//! Assertion semantics match the interpreter: per lane, the *lowest*
//! source gate index whose [`BGate::AssertFalse`] observed a set bit is
//! reported, which equals the first assert a sequential walk would hit.
//! Padding lanes (batch not a multiple of the lane count) are masked
//! out of assertion checks, so an all-ones constant can never fire an
//! assert for an instance that does not exist.

use crate::driver::{CompileOptions, PipelineReport};
use crate::lower::{BGate, BitCircuit};
use crate::EvalError;
use std::time::Instant;

/// Register index on the bit tape (one transposed word — or W words —
/// per register).
pub type BitReg = u32;

/// One instruction of the register-allocated transposed tape. Public so
/// `qec-mpc` can drive the same tape with secret-shared register files
/// (the GMW local-computation inner loop walks these ops verbatim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitOp {
    /// `dst ← inputs[idx]` (a transposed word: bit *l* is instance
    /// *l*'s value for input `idx`).
    Input {
        /// Destination register.
        dst: BitReg,
        /// Input bit index.
        idx: u32,
    },
    /// `dst ← v` broadcast across all lanes.
    Const {
        /// Destination register.
        dst: BitReg,
        /// Constant value.
        v: bool,
    },
    /// `dst ← a ^ b`.
    Xor {
        /// Destination register.
        dst: BitReg,
        /// Left operand register.
        a: BitReg,
        /// Right operand register.
        b: BitReg,
    },
    /// `dst ← a & b`.
    And {
        /// Destination register.
        dst: BitReg,
        /// Left operand register.
        a: BitReg,
        /// Right operand register.
        b: BitReg,
    },
    /// `dst ← !a`.
    Not {
        /// Destination register.
        dst: BitReg,
        /// Operand register.
        a: BitReg,
    },
    /// Record `gate` for every valid lane with a set bit in `a`, then
    /// `dst ← 0` (the assert's wire reads as `false` downstream, like
    /// the interpreter).
    AssertFalse {
        /// Destination register.
        dst: BitReg,
        /// Observed register.
        a: BitReg,
        /// Source gate index (for [`EvalError::AssertionFailed`]).
        gate: u32,
    },
}

/// Which packed kernel evaluates the tape. Wider kernels process more
/// transposed words per instruction; all three are bit-for-bit
/// equivalent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitKernel {
    /// One `u64` per register: 64 instances per scalar op.
    Scalar,
    /// Four words per register, compiled with AVX2 enabled: 256 lanes.
    Avx2,
    /// Eight words per register, compiled with AVX-512 enabled: 512
    /// lanes.
    Avx512,
}

impl BitKernel {
    /// The widest kernel the running CPU supports.
    pub fn detect() -> BitKernel {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                return BitKernel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return BitKernel::Avx2;
            }
        }
        BitKernel::Scalar
    }

    /// [`BitKernel::detect`], overridable via `QEC_BITENGINE_KERNEL`
    /// (`scalar`, `avx2`, `avx512`). An override naming an unsupported
    /// kernel falls back to detection with a one-line stderr warning
    /// rather than crashing in an illegal instruction.
    pub fn from_env_or_detect() -> BitKernel {
        let detected = BitKernel::detect();
        match std::env::var("QEC_BITENGINE_KERNEL") {
            Ok(s) => {
                let want = match s.trim().to_ascii_lowercase().as_str() {
                    "scalar" => Some(BitKernel::Scalar),
                    "avx2" => Some(BitKernel::Avx2),
                    "avx512" => Some(BitKernel::Avx512),
                    _ => None,
                };
                match want {
                    Some(k) if k.is_available() => k,
                    Some(k) => {
                        eprintln!(
                            "qec-circuit: QEC_BITENGINE_KERNEL={} unavailable on this CPU; \
                             using {}",
                            k.name(),
                            detected.name()
                        );
                        detected
                    }
                    None => {
                        eprintln!(
                            "qec-circuit: unrecognized QEC_BITENGINE_KERNEL={s:?} \
                             (expected scalar|avx2|avx512); using {}",
                            detected.name()
                        );
                        detected
                    }
                }
            }
            Err(_) => detected,
        }
    }

    /// Whether this CPU can run the kernel.
    pub fn is_available(self) -> bool {
        match self {
            BitKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            BitKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            BitKernel::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// All kernels this CPU can run (always includes `Scalar`).
    pub fn available() -> Vec<BitKernel> {
        [BitKernel::Scalar, BitKernel::Avx2, BitKernel::Avx512]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    /// Instances evaluated per tape instruction.
    pub fn lanes(self) -> usize {
        self.words() * 64
    }

    /// Transposed `u64` words per register.
    pub fn words(self) -> usize {
        match self {
            BitKernel::Scalar => 1,
            BitKernel::Avx2 => 4,
            BitKernel::Avx512 => 8,
        }
    }

    /// Stable lowercase name (matches the env-override spelling).
    pub fn name(self) -> &'static str {
        match self {
            BitKernel::Scalar => "scalar",
            BitKernel::Avx2 => "avx2",
            BitKernel::Avx512 => "avx512",
        }
    }
}

/// Compile-time facts about a bit tape.
#[derive(Clone, Debug, Default)]
pub struct BitEngineStats {
    /// Gates in the source [`BitCircuit`] (including inputs/constants).
    pub circuit_gates: usize,
    /// Instructions on the tape (equals `circuit_gates`; nothing is
    /// dropped, only re-ordered and register-renamed).
    pub tape_len: usize,
    /// Peak simultaneously-live registers — words of state *per lane
    /// word* the kernel touches.
    pub peak_registers: usize,
    /// Scheduling levels (operands always at strictly lower levels).
    pub num_levels: usize,
    /// Levels containing at least one AND instruction — the number of
    /// communication rounds a level-batched GMW evaluation of this tape
    /// needs. Under [`CompiledBitCircuit::compile_gmw`] this equals the
    /// circuit's multiplicative (AND) depth; under the default schedule
    /// it can be larger (XOR/NOT levels split AND generations).
    pub and_levels: usize,
    /// AND instructions (one packed Beaver triple each under GMW).
    pub and_ops: u64,
    /// XOR instructions (local/free under GMW).
    pub xor_ops: u64,
    /// NOT instructions (local/free under GMW).
    pub not_ops: u64,
    /// Assert instructions.
    pub assert_ops: u64,
}

/// Reusable buffers for batch evaluation, so repeated calls (the
/// fuzzer's per-case checks, the MPC inner loop, benches) stop
/// thrashing the allocator. Obtain via [`CompiledBitCircuit::scratch`];
/// a scratch may be shared across circuits — buffers regrow on demand.
#[derive(Default)]
pub struct BitScratch {
    /// Transposed input matrix: `num_inputs × W` words.
    packed: Vec<u64>,
    /// Register file: `num_regs × W` words.
    regs: Vec<u64>,
    /// Per-lane lowest failing assert gate (`u32::MAX` = none).
    fail: Vec<u32>,
    /// Per-lane-word mask of lanes that hold a real instance.
    valid: Vec<u64>,
}

/// A [`BitCircuit`] register-allocated onto a transposed level-major
/// tape, ready for bitsliced batch evaluation. Build one with
/// [`compile_bits_with`].
pub struct CompiledBitCircuit {
    tape: Vec<BitOp>,
    /// Tape offset where each level begins, plus a final sentinel:
    /// level `l` spans `tape[level_starts[l] .. level_starts[l + 1]]`.
    level_starts: Vec<u32>,
    output_regs: Vec<BitReg>,
    num_regs: u32,
    num_inputs: usize,
    width: u32,
    stats: BitEngineStats,
    kernel: BitKernel,
}

/// Compiles `bc` onto the transposed tape under `opts`: validates when
/// `opts.validate` is set, records a `bitengine.compile` span plus
/// `bitengine.peak_registers` / `bitengine.tape_words` /
/// `bitengine.lanes` gauges on the effective recorder, and returns the
/// engine with a per-stage [`PipelineReport`].
///
/// The tape covers `bc` **exactly as given** — run
/// [`optimize_bits_with`](crate::optimize_bits_with) first if you want
/// the optimized circuit; compiling does not re-optimize, so failing
/// asserts keep reporting gate indices of the circuit you passed in.
pub fn compile_bits_with(
    bc: &BitCircuit,
    opts: &CompileOptions,
) -> Result<(CompiledBitCircuit, PipelineReport), EvalError> {
    if opts.validate {
        crate::validate::validate_bits(bc).map_err(EvalError::Invalid)?;
    }
    let recorder = opts.effective_recorder();
    let root = recorder.span("bitengine.compile");
    let t_total = Instant::now();

    let t = Instant::now();
    let eng = CompiledBitCircuit::compile(bc);
    let stages = vec![("bit-tape", t.elapsed().as_nanos() as u64)];

    if recorder.is_enabled() {
        recorder.gauge_max("bitengine.peak_registers", eng.stats.peak_registers as u64);
        recorder.gauge_max("bitengine.tape_words", eng.stats.tape_len as u64);
        recorder.gauge_max("bitengine.lanes", eng.kernel.lanes() as u64);
    }
    drop(root);
    let report = PipelineReport {
        stages,
        total_ns: t_total.elapsed().as_nanos() as u64,
        opt: None,
        recorder,
    };
    Ok((eng, report))
}

impl CompiledBitCircuit {
    /// Register-allocates `bc` onto the tape with the auto-detected
    /// kernel (overridable per call or via `QEC_BITENGINE_KERNEL`).
    /// Infallible: every [`BitCircuit`] is evaluable.
    pub fn compile(bc: &BitCircuit) -> CompiledBitCircuit {
        Self::compile_with_levels(bc, crate::lower::bit_levels(bc.gates()))
    }

    /// [`CompiledBitCircuit::compile`] under the GMW round schedule:
    /// gates are grouped by *AND depth* rather than scheduling depth, so
    /// every level either consists solely of AND gates of one
    /// multiplicative generation or contains no ANDs at all. A
    /// level-batched GMW evaluation of this tape exchanges exactly one
    /// message per AND-bearing level — [`BitEngineStats::and_levels`]
    /// equals [`BitCircuit::and_depth`], the protocol's round-optimal
    /// count. Plaintext evaluation semantics are identical to
    /// [`CompiledBitCircuit::compile`] (any topological level partition
    /// evaluates the same circuit); only instruction order, register
    /// assignment, and the level structure differ.
    pub fn compile_gmw(bc: &BitCircuit) -> CompiledBitCircuit {
        Self::compile_with_levels(bc, gmw_levels(bc.gates()))
    }

    /// Shared compile body over an arbitrary level partition. `levels`
    /// must be topological: every operand strictly below its consumer —
    /// the register allocator frees only at level boundaries and relies
    /// on a level's destinations never aliasing its sources.
    fn compile_with_levels(bc: &BitCircuit, levels: Vec<Vec<u32>>) -> CompiledBitCircuit {
        let gates = bc.gates();
        let n = gates.len();

        // --- liveness: last level reading each wire (u32::MAX = pinned) ---
        const PINNED: u32 = u32::MAX;
        let mut level_of = vec![0u32; n];
        for (d, members) in levels.iter().enumerate() {
            for &gi in members {
                level_of[gi as usize] = d as u32;
            }
        }
        let mut last_use = vec![0u32; n];
        for (i, g) in gates.iter().enumerate() {
            // a wire nobody reads dies at its own definition level
            let d = level_of[i];
            last_use[i] = last_use[i].max(d);
            match *g {
                BGate::Xor(a, b) | BGate::And(a, b) => {
                    last_use[a as usize] = last_use[a as usize].max(d);
                    last_use[b as usize] = last_use[b as usize].max(d);
                }
                BGate::Not(a) | BGate::AssertFalse(a) => {
                    last_use[a as usize] = last_use[a as usize].max(d);
                }
                BGate::Input(_) | BGate::Const(_) => {}
            }
        }
        for &w in bc.outputs() {
            last_use[w as usize] = PINNED;
        }

        // --- register allocation, freeing only at level boundaries so a
        //     level's destinations can never alias its sources ---
        let mut reg_of = vec![u32::MAX; n];
        let mut free: Vec<BitReg> = Vec::new();
        let mut expire_at: Vec<Vec<BitReg>> = vec![Vec::new(); levels.len() + 1];
        let mut num_regs = 0u32;
        let mut tape = Vec::with_capacity(n);
        let mut level_starts = Vec::with_capacity(levels.len() + 1);
        let mut stats = BitEngineStats {
            circuit_gates: n,
            num_levels: levels.len(),
            ..BitEngineStats::default()
        };

        for (level, members) in levels.iter().enumerate() {
            level_starts.push(tape.len() as u32);
            let ands_before = stats.and_ops;
            for &r in &expire_at[level] {
                free.push(r);
            }
            for &gi in members {
                let g = gates[gi as usize];
                let dst = match free.pop() {
                    Some(r) => r,
                    None => {
                        num_regs += 1;
                        num_regs - 1
                    }
                };
                reg_of[gi as usize] = dst;
                let last = last_use[gi as usize];
                if last != PINNED {
                    expire_at[last as usize + 1].push(dst);
                }
                let src = |w: u32| -> BitReg {
                    debug_assert_ne!(reg_of[w as usize], u32::MAX, "operand compiled first");
                    reg_of[w as usize]
                };
                let op = match g {
                    BGate::Input(idx) => BitOp::Input {
                        dst,
                        idx: idx as u32,
                    },
                    BGate::Const(v) => BitOp::Const { dst, v },
                    BGate::Xor(a, b) => {
                        stats.xor_ops += 1;
                        BitOp::Xor {
                            dst,
                            a: src(a),
                            b: src(b),
                        }
                    }
                    BGate::And(a, b) => {
                        stats.and_ops += 1;
                        BitOp::And {
                            dst,
                            a: src(a),
                            b: src(b),
                        }
                    }
                    BGate::Not(a) => {
                        stats.not_ops += 1;
                        BitOp::Not { dst, a: src(a) }
                    }
                    BGate::AssertFalse(a) => {
                        stats.assert_ops += 1;
                        BitOp::AssertFalse {
                            dst,
                            a: src(a),
                            gate: gi,
                        }
                    }
                };
                tape.push(op);
            }
            if stats.and_ops > ands_before {
                stats.and_levels += 1;
            }
        }
        level_starts.push(tape.len() as u32);
        stats.tape_len = tape.len();
        stats.peak_registers = num_regs as usize;

        let output_regs = bc.outputs().iter().map(|&w| reg_of[w as usize]).collect();
        CompiledBitCircuit {
            tape,
            level_starts,
            output_regs,
            num_regs,
            num_inputs: bc.num_inputs(),
            width: bc.width(),
            stats,
            kernel: BitKernel::from_env_or_detect(),
        }
    }

    /// Compile-time stats (tape length, peak registers, op mix).
    pub fn stats(&self) -> &BitEngineStats {
        &self.stats
    }

    /// The kernel batch entry points use unless overridden per call.
    pub fn kernel(&self) -> BitKernel {
        self.kernel
    }

    /// Replaces the default kernel (no-op with a stderr warning if the
    /// CPU lacks it). Returns `self` for builder-style chaining.
    pub fn with_kernel(mut self, kernel: BitKernel) -> Self {
        if kernel.is_available() {
            self.kernel = kernel;
        } else {
            eprintln!(
                "qec-circuit: BitKernel::{kernel:?} unavailable on this CPU; keeping {}",
                self.kernel.name()
            );
        }
        self
    }

    /// The register-allocated instruction tape, in execution order.
    /// `qec-mpc` walks this to evaluate the same schedule over
    /// secret-shared register files.
    pub fn ops(&self) -> &[BitOp] {
        &self.tape
    }

    /// Tape offsets of the scheduling levels plus a final sentinel:
    /// level `l` spans `ops()[level_starts()[l] as usize ..
    /// level_starts()[l + 1] as usize]`. Operands of every instruction
    /// sit at strictly lower levels, which is what lets a GMW session
    /// batch all AND openings of one level into a single message.
    pub fn level_starts(&self) -> &[u32] {
        &self.level_starts
    }

    /// Structural fingerprint of the compiled tape (FNV-1a-64 over the
    /// instruction stream, output registers, and input arity). Two
    /// parties that compiled the same [`BitCircuit`] with the same
    /// schedule get the same fingerprint — the networked GMW handshake
    /// compares these before spending any triples.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.tape.len() * 13 + 16);
        for op in &self.tape {
            match *op {
                BitOp::Input { dst, idx } => {
                    bytes.push(0);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.extend_from_slice(&idx.to_le_bytes());
                }
                BitOp::Const { dst, v } => {
                    bytes.push(1);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.push(v as u8);
                }
                BitOp::Xor { dst, a, b } => {
                    bytes.push(2);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.extend_from_slice(&a.to_le_bytes());
                    bytes.extend_from_slice(&b.to_le_bytes());
                }
                BitOp::And { dst, a, b } => {
                    bytes.push(3);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.extend_from_slice(&a.to_le_bytes());
                    bytes.extend_from_slice(&b.to_le_bytes());
                }
                BitOp::Not { dst, a } => {
                    bytes.push(4);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.extend_from_slice(&a.to_le_bytes());
                }
                BitOp::AssertFalse { dst, a, gate } => {
                    bytes.push(5);
                    bytes.extend_from_slice(&dst.to_le_bytes());
                    bytes.extend_from_slice(&a.to_le_bytes());
                    bytes.extend_from_slice(&gate.to_le_bytes());
                }
            }
        }
        for &r in &self.output_regs {
            bytes.extend_from_slice(&r.to_le_bytes());
        }
        bytes.extend_from_slice(&(self.num_inputs as u64).to_le_bytes());
        bytes.extend_from_slice(&self.num_regs.to_le_bytes());
        crate::tape::fnv1a64(&bytes)
    }

    /// Registers the kernel needs (`num_regs × words` scratch words).
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Output wires as register indices, in output order.
    pub fn output_regs(&self) -> &[BitReg] {
        &self.output_regs
    }

    /// Input bits each instance must supply.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Bit width of the word-level circuit this was lowered from.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// A fresh reusable scratch sized lazily on first use.
    pub fn scratch(&self) -> BitScratch {
        BitScratch::default()
    }

    /// Evaluates a batch of bit-vector instances, one `Result` per
    /// instance in order — outputs on success, per-instance
    /// [`EvalError::InputArity`] / [`EvalError::AssertionFailed`] (with
    /// the interpreter's gate index) on failure. Allocates fresh
    /// scratch; prefer [`evaluate_batch_with`] in loops.
    ///
    /// [`evaluate_batch_with`]: CompiledBitCircuit::evaluate_batch_with
    pub fn evaluate_batch(&self, instances: &[Vec<bool>]) -> Vec<Result<Vec<bool>, EvalError>> {
        self.evaluate_batch_with(instances, &mut self.scratch())
    }

    /// [`evaluate_batch`](CompiledBitCircuit::evaluate_batch) with
    /// caller-owned scratch buffers.
    pub fn evaluate_batch_with(
        &self,
        instances: &[Vec<bool>],
        scratch: &mut BitScratch,
    ) -> Vec<Result<Vec<bool>, EvalError>> {
        self.evaluate_batch_kernel(instances, self.kernel, scratch)
    }

    /// [`evaluate_batch`](CompiledBitCircuit::evaluate_batch) with an
    /// explicit kernel — the A/B hook for parity tests and the X21
    /// speedup table. Falls back to the widest available kernel if the
    /// CPU lacks the requested one.
    pub fn evaluate_batch_kernel(
        &self,
        instances: &[Vec<bool>],
        kernel: BitKernel,
        scratch: &mut BitScratch,
    ) -> Vec<Result<Vec<bool>, EvalError>> {
        let kernel = if kernel.is_available() {
            kernel
        } else {
            BitKernel::detect()
        };
        let w = kernel.words();
        let lanes = kernel.lanes();
        let mut results = Vec::with_capacity(instances.len());
        for block in instances.chunks(lanes) {
            self.run_block(block, kernel, scratch);
            for (l, inst) in block.iter().enumerate() {
                if inst.len() != self.num_inputs {
                    results.push(Err(EvalError::InputArity {
                        expected: self.num_inputs,
                        got: inst.len(),
                    }));
                    continue;
                }
                let gate = scratch.fail[l];
                if gate != u32::MAX {
                    results.push(Err(EvalError::AssertionFailed {
                        gate: gate as usize,
                        value: 1,
                    }));
                    continue;
                }
                let out = self
                    .output_regs
                    .iter()
                    .map(|&r| scratch.regs[r as usize * w + l / 64] >> (l % 64) & 1 == 1)
                    .collect();
                results.push(Ok(out));
            }
        }
        results
    }

    /// Word-level mirror of the word engine's API: packs each word
    /// instance LSB-first at the circuit's lowering width (exactly
    /// [`BitCircuit::pack_inputs`]), evaluates the batch, and unpacks
    /// surviving lanes back into words.
    pub fn evaluate_words(&self, instances: &[Vec<u64>]) -> Vec<Result<Vec<u64>, EvalError>> {
        let width = self.width as usize;
        let bits: Vec<Vec<bool>> = instances
            .iter()
            .map(|ws| {
                let mut v = Vec::with_capacity(ws.len() * width);
                for &word in ws {
                    for i in 0..width {
                        v.push((word >> i) & 1 == 1);
                    }
                }
                v
            })
            .collect();
        self.evaluate_batch(&bits)
            .into_iter()
            .map(|r| {
                r.map(|out_bits| {
                    out_bits
                        .chunks(width)
                        .map(|chunk| {
                            chunk
                                .iter()
                                .enumerate()
                                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
                        })
                        .collect()
                })
            })
            .collect()
    }

    /// Packs one block (≤ `kernel.lanes()` instances) and runs the tape.
    /// After return, `scratch.regs`/`scratch.fail` hold the block state.
    fn run_block(&self, block: &[Vec<bool>], kernel: BitKernel, scratch: &mut BitScratch) {
        let w = kernel.words();
        pack_block(block, self.num_inputs, w, &mut scratch.packed);
        scratch.valid.clear();
        for word in 0..w {
            let lo = word * 64;
            scratch.valid.push(valid_mask(block.len(), lo));
        }
        scratch.regs.clear();
        scratch.regs.resize(self.num_regs as usize * w, 0);
        scratch.fail.clear();
        scratch.fail.resize(kernel.lanes(), u32::MAX);
        match kernel {
            BitKernel::Scalar => run_tape_body::<1>(
                &self.tape,
                &mut scratch.regs,
                &scratch.packed,
                &scratch.valid,
                &mut scratch.fail,
            ),
            #[cfg(target_arch = "x86_64")]
            BitKernel::Avx2 => unsafe {
                run_tape_avx2(
                    &self.tape,
                    &mut scratch.regs,
                    &scratch.packed,
                    &scratch.valid,
                    &mut scratch.fail,
                )
            },
            #[cfg(target_arch = "x86_64")]
            BitKernel::Avx512 => unsafe {
                run_tape_avx512(
                    &self.tape,
                    &mut scratch.regs,
                    &scratch.packed,
                    &scratch.valid,
                    &mut scratch.fail,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("wide kernels are never available off x86_64"),
        }
    }
}

/// Groups bit gates into the GMW round schedule: pure-AND levels, one
/// per multiplicative generation, interleaved with local (XOR/NOT/
/// assert/input/const) levels.
///
/// Let `ad(g)` be the AND depth (inputs/constants 0, XOR/NOT/assert
/// transparent, AND = max of operands + 1) and `D` the circuit's AND
/// depth. The schedule is
///
/// ```text
/// locals(ad=0) · ANDs(ad=1) · locals(ad=1) · … · ANDs(ad=D) · locals(ad=D)
/// ```
///
/// where each `locals(ad=r)` block is further split into dependency
/// sub-levels (an XOR chain inside one generation still needs its
/// operands at strictly lower levels). Exactly `D` levels contain ANDs:
/// an AND of generation `r` reads only wires of generation `< r`, so
/// every generation's openings fit in one message — the textbook
/// GMW round complexity.
fn gmw_levels(gates: &[BGate]) -> Vec<Vec<u32>> {
    let n = gates.len();
    // AND depth per gate, and dependency sub-depth within the gate's
    // own generation (non-AND gates only; an operand from an earlier
    // generation — or this generation's AND level — contributes 0).
    let mut ad = vec![0u32; n];
    let mut sd = vec![0u32; n];
    let mut max_ad = 0u32;
    for i in 0..n {
        let contrib = |o: u32, r: u32, ad: &[u32], sd: &[u32]| -> u32 {
            if ad[o as usize] < r || matches!(gates[o as usize], BGate::And(_, _)) {
                0
            } else {
                sd[o as usize] + 1
            }
        };
        match gates[i] {
            BGate::Input(_) | BGate::Const(_) => {}
            BGate::And(a, b) => {
                ad[i] = ad[a as usize].max(ad[b as usize]) + 1;
            }
            BGate::Xor(a, b) => {
                ad[i] = ad[a as usize].max(ad[b as usize]);
                sd[i] = contrib(a, ad[i], &ad, &sd).max(contrib(b, ad[i], &ad, &sd));
            }
            BGate::Not(a) | BGate::AssertFalse(a) => {
                ad[i] = ad[a as usize];
                sd[i] = contrib(a, ad[i], &ad, &sd);
            }
        }
        max_ad = max_ad.max(ad[i]);
    }
    let d = max_ad as usize;

    // Sub-levels each generation's local block needs.
    let mut sub_count = vec![0u32; d + 1];
    for i in 0..n {
        if !matches!(gates[i], BGate::And(_, _)) {
            let r = ad[i] as usize;
            sub_count[r] = sub_count[r].max(sd[i] + 1);
        }
    }
    // Global level index of each generation's local block and AND level.
    let mut local_base = vec![0u32; d + 1];
    let mut and_level = vec![0u32; d + 1]; // index 0 unused
    let mut next = 0u32;
    for r in 0..=d {
        local_base[r] = next;
        next += sub_count[r];
        if r < d {
            and_level[r + 1] = next;
            next += 1;
        }
    }

    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); next as usize];
    for i in 0..n {
        let l = if matches!(gates[i], BGate::And(_, _)) {
            and_level[ad[i] as usize]
        } else {
            local_base[ad[i] as usize] + sd[i]
        };
        levels[l as usize].push(i as u32);
    }
    // A generation with no local gates leaves no slot behind (its
    // sub_count is 0), so every emitted level is non-empty — but an
    // empty circuit yields no levels at all, which the allocator
    // handles.
    debug_assert!(levels.iter().all(|l| !l.is_empty()));
    levels
}

/// Mask of lanes `[lane_base, lane_base + 64)` that index a real
/// instance in a block of `n`.
fn valid_mask(n: usize, lane_base: usize) -> u64 {
    if n >= lane_base + 64 {
        !0
    } else if n <= lane_base {
        0
    } else {
        (1u64 << (n - lane_base)) - 1
    }
}

/// Transposes a block of instances into input-major lane words:
/// `out[idx * words + w]` bit `l` is instance `w*64 + l`'s input `idx`.
/// Instances with the wrong arity contribute zeros (the caller reports
/// their [`EvalError::InputArity`] and never reads their lanes).
fn pack_block(block: &[Vec<bool>], num_inputs: usize, words: usize, out: &mut Vec<u64>) {
    out.clear();
    out.resize(num_inputs * words, 0);
    for (l, inst) in block.iter().enumerate() {
        if inst.len() != num_inputs {
            continue;
        }
        let (word, bit) = (l / 64, l % 64);
        for (idx, &b) in inst.iter().enumerate() {
            if b {
                out[idx * words + word] |= 1u64 << bit;
            }
        }
    }
}

/// Transposes a full batch of equal-arity instances into input-major
/// lane words (`words = batch.len().div_ceil(64)` per input row) — the
/// public bit-matrix transpose, used by `qec-mpc` to pack share
/// vectors. Returns the matrix and its row stride in words.
pub fn pack_instances(instances: &[Vec<bool>], num_inputs: usize) -> (Vec<u64>, usize) {
    let words = instances.len().div_ceil(64).max(1);
    let mut out = vec![0u64; num_inputs * words];
    for (l, inst) in instances.iter().enumerate() {
        debug_assert_eq!(inst.len(), num_inputs, "pack_instances wants equal arity");
        let (word, bit) = (l / 64, l % 64);
        for (idx, &b) in inst.iter().enumerate() {
            if b && idx < num_inputs {
                out[idx * words + word] |= 1u64 << bit;
            }
        }
    }
    (out, words)
}

/// Inverse transpose of [`pack_instances`] for an output matrix laid
/// out `outputs × words`: recovers per-instance bit vectors for the
/// first `lanes` lanes.
pub fn unpack_outputs(
    matrix: &[u64],
    num_outputs: usize,
    words: usize,
    lanes: usize,
) -> Vec<Vec<bool>> {
    (0..lanes)
        .map(|l| {
            (0..num_outputs)
                .map(|o| matrix[o * words + l / 64] >> (l % 64) & 1 == 1)
                .collect()
        })
        .collect()
}

/// The shared kernel body: `W` transposed words per register. The
/// `#[target_feature]` wrappers below monomorphize it under wider ISAs
/// so the fixed-trip-count `W` loops compile to single vector ops.
#[inline(always)]
fn run_tape_body<const W: usize>(
    tape: &[BitOp],
    regs: &mut [u64],
    packed: &[u64],
    valid: &[u64],
    fail: &mut [u32],
) {
    for op in tape {
        match *op {
            BitOp::Input { dst, idx } => {
                let (d, s) = (dst as usize * W, idx as usize * W);
                regs[d..d + W].copy_from_slice(&packed[s..s + W]);
            }
            BitOp::Const { dst, v } => {
                let x = if v { !0u64 } else { 0 };
                let d = dst as usize * W;
                for w in 0..W {
                    regs[d + w] = x;
                }
            }
            BitOp::Xor { dst, a, b } => {
                let (d, ra, rb) = (dst as usize * W, a as usize * W, b as usize * W);
                for w in 0..W {
                    regs[d + w] = regs[ra + w] ^ regs[rb + w];
                }
            }
            BitOp::And { dst, a, b } => {
                let (d, ra, rb) = (dst as usize * W, a as usize * W, b as usize * W);
                for w in 0..W {
                    regs[d + w] = regs[ra + w] & regs[rb + w];
                }
            }
            BitOp::Not { dst, a } => {
                let (d, ra) = (dst as usize * W, a as usize * W);
                for w in 0..W {
                    regs[d + w] = !regs[ra + w];
                }
            }
            BitOp::AssertFalse { dst, a, gate } => {
                let (d, ra) = (dst as usize * W, a as usize * W);
                for w in 0..W {
                    let mut m = regs[ra + w] & valid[w];
                    while m != 0 {
                        let lane = w * 64 + m.trailing_zeros() as usize;
                        if gate < fail[lane] {
                            fail[lane] = gate;
                        }
                        m &= m - 1;
                    }
                    regs[d + w] = 0;
                }
            }
        }
    }
}

/// # Safety
/// Caller must have verified AVX2 support (`BitKernel::Avx2.is_available()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_tape_avx2(
    tape: &[BitOp],
    regs: &mut [u64],
    packed: &[u64],
    valid: &[u64],
    fail: &mut [u32],
) {
    run_tape_body::<4>(tape, regs, packed, valid, fail)
}

/// # Safety
/// Caller must have verified AVX-512 support
/// (`BitKernel::Avx512.is_available()`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn run_tape_avx512(
    tape: &[BitOp],
    regs: &mut [u64],
    packed: &[u64],
    valid: &[u64],
    fail: &mut [u32],
) {
    run_tape_body::<8>(tape, regs, packed, valid, fail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower_with, Builder, Mode};

    fn sample_bits() -> BitCircuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let p = b.mul(s, x);
        let e = b.eq(p, y);
        let c = b.finish(vec![s, p, e]);
        lower_with(&c, 8, &CompileOptions::sequential())
    }

    #[test]
    fn batch_matches_interpreter() {
        let bits = sample_bits();
        let eng = CompiledBitCircuit::compile(&bits);
        assert!(eng.stats().peak_registers <= bits.gates().len());
        let instances: Vec<Vec<bool>> = (0..130u64)
            .map(|i| bits.pack_inputs(&[i % 17, i * 3 % 23]))
            .collect();
        let got = eng.evaluate_batch(&instances);
        for (inst, r) in instances.iter().zip(&got) {
            assert_eq!(r, &bits.evaluate(inst));
        }
    }

    #[test]
    fn arity_errors_are_per_lane() {
        let bits = sample_bits();
        let eng = CompiledBitCircuit::compile(&bits);
        let good = bits.pack_inputs(&[3, 4]);
        let bad = vec![true; 3];
        let got = eng.evaluate_batch(&[good.clone(), bad, good]);
        assert!(got[0].is_ok() && got[2].is_ok());
        assert!(matches!(
            got[1],
            Err(EvalError::InputArity {
                expected: _,
                got: 3
            })
        ));
    }

    #[test]
    fn evaluate_words_round_trips() {
        let bits = sample_bits();
        let eng = CompiledBitCircuit::compile(&bits);
        let instances: Vec<Vec<u64>> = (0..70u64).map(|i| vec![i % 13, (i * 7) % 11]).collect();
        for (inst, r) in instances.iter().zip(eng.evaluate_words(&instances)) {
            let want = bits
                .evaluate(&bits.pack_inputs(inst))
                .map(|b| bits.unpack_outputs(&b));
            assert_eq!(r.ok(), want.ok());
        }
    }

    #[test]
    fn all_kernels_agree() {
        let bits = sample_bits();
        let eng = CompiledBitCircuit::compile(&bits);
        let instances: Vec<Vec<bool>> = (0..513u64)
            .map(|i| bits.pack_inputs(&[i % 29, i % 31]))
            .collect();
        let mut scratch = eng.scratch();
        let base = eng.evaluate_batch_kernel(&instances, BitKernel::Scalar, &mut scratch);
        for k in BitKernel::available() {
            let got = eng.evaluate_batch_kernel(&instances, k, &mut scratch);
            assert_eq!(base, got, "kernel {} diverged", k.name());
        }
    }

    #[test]
    fn gmw_schedule_matches_default_schedule_and_reaches_and_depth() {
        let bits = sample_bits();
        let eng = CompiledBitCircuit::compile(&bits);
        let gmw = CompiledBitCircuit::compile_gmw(&bits);
        // Same circuit, same semantics — only the schedule differs.
        assert_eq!(gmw.stats().tape_len, eng.stats().tape_len);
        assert_eq!(gmw.num_inputs(), eng.num_inputs());
        let instances: Vec<Vec<bool>> = (0..130u64)
            .map(|i| bits.pack_inputs(&[i % 19, i * 5 % 23]))
            .collect();
        assert_eq!(
            gmw.evaluate_batch(&instances),
            eng.evaluate_batch(&instances)
        );
        // The round count: AND-bearing levels == multiplicative depth
        // under the GMW schedule, ≥ it under the scheduling-depth one.
        assert_eq!(gmw.stats().and_levels, bits.and_depth() as usize);
        assert!(eng.stats().and_levels >= gmw.stats().and_levels);
        // Level structure is well-formed and AND levels are pure.
        let starts = gmw.level_starts();
        assert_eq!(starts.len(), gmw.stats().num_levels + 1);
        assert_eq!(*starts.last().unwrap() as usize, gmw.ops().len());
        for l in 0..gmw.stats().num_levels {
            let ops = &gmw.ops()[starts[l] as usize..starts[l + 1] as usize];
            assert!(!ops.is_empty());
            let ands = ops
                .iter()
                .filter(|o| matches!(o, BitOp::And { .. }))
                .count();
            assert!(ands == 0 || ands == ops.len(), "level {l} mixes ANDs");
        }
    }

    #[test]
    fn fingerprints_distinguish_schedules_not_runs() {
        let bits = sample_bits();
        let a = CompiledBitCircuit::compile(&bits);
        let b = CompiledBitCircuit::compile(&bits);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let gmw = CompiledBitCircuit::compile_gmw(&bits);
        assert_eq!(
            gmw.fingerprint(),
            CompiledBitCircuit::compile_gmw(&bits).fingerprint()
        );
        assert_ne!(a.fingerprint(), 0);
    }

    #[test]
    fn pack_unpack_transpose_round_trip() {
        let instances: Vec<Vec<bool>> = (0..67)
            .map(|i| (0..5).map(|j| (i + j) % 3 == 0).collect())
            .collect();
        let (m, words) = pack_instances(&instances, 5);
        assert_eq!(words, 2);
        assert_eq!(unpack_outputs(&m, 5, words, 67), instances);
    }
}
