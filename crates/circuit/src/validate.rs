//! Structural validation of word- and bit-level circuits.
//!
//! Every pipeline stage (build, optimize, tape, bit lowering, bit
//! optimization) must preserve a small set of structural invariants:
//! gates reference only earlier wires (the DAG is topologically ordered
//! by construction, so acyclicity is a per-gate index check), input
//! indices are dense, outputs name real wires, the cached size/depth
//! metadata matches the gate list, and the optimizer's
//! [`OptStats::assert_origin`] map points every surviving assertion at a
//! real assertion gate of the source circuit. The differential fuzzing
//! harness (`qec-check`) runs these checkers after every stage; the
//! compile driver runs them on demand via
//! [`CompileOptions::with_validate`](crate::CompileOptions::with_validate).
//!
//! Validation is `O(gates)` and allocation-light — cheap enough to leave
//! on in any test or fuzz configuration, while the default (off) keeps
//! the production compile path free of redundant passes.

use crate::ir::{Circuit, Gate, WireId};
use crate::lower::{BGate, BitCircuit};
use crate::opt::OptStats;

/// A structural invariant violation found by [`validate`],
/// [`validate_bits`], or [`validate_opt`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// Gate `gate` reads wire `operand` that is not strictly earlier —
    /// the wiring is not acyclic/topologically ordered.
    ForwardReference {
        /// Index of the offending gate.
        gate: usize,
        /// The operand wire that is not earlier than `gate`.
        operand: WireId,
    },
    /// `Input` gates must carry indices `0, 1, 2, …` in wire order.
    InputIndexOutOfOrder {
        /// Index of the offending gate.
        gate: usize,
        /// The input index it declares.
        declared: usize,
        /// The input index its position demands.
        expected: usize,
    },
    /// The circuit declares a different input count than its gate list.
    InputCountMismatch {
        /// `Circuit::num_inputs()`.
        declared: usize,
        /// `Input` gates actually present.
        found: usize,
    },
    /// An output names a wire outside the circuit.
    OutputOutOfRange {
        /// Position in the output list.
        position: usize,
        /// The out-of-range wire.
        wire: WireId,
    },
    /// Cached per-wire depth disagrees with the recomputed value — the
    /// level structure (and any levelized schedule built from it) is
    /// inconsistent.
    DepthMismatch {
        /// Index of the offending wire.
        gate: usize,
        /// Depth recomputed from the operands.
        expected: u32,
        /// Depth the circuit caches.
        cached: u32,
    },
    /// Cached aggregate metadata (logic-gate count or circuit depth)
    /// disagrees with the gate list.
    MetadataMismatch {
        /// Which aggregate disagrees (`"size"` or `"depth"`).
        what: &'static str,
        /// Value recomputed from the gate list.
        expected: u64,
        /// Value the circuit caches.
        cached: u64,
    },
    /// An `assert_origin` entry points outside a circuit or at a gate
    /// that is not an assertion.
    AssertOriginInvalid {
        /// Optimized-circuit gate index of the entry.
        optimized: u32,
        /// Source-circuit gate index of the entry.
        source: u32,
        /// What is wrong with the entry.
        reason: &'static str,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::ForwardReference { gate, operand } => {
                write!(f, "gate {gate} reads wire {operand}, which is not earlier")
            }
            ValidateError::InputIndexOutOfOrder {
                gate,
                declared,
                expected,
            } => write!(
                f,
                "input gate {gate} declares index {declared}, expected {expected}"
            ),
            ValidateError::InputCountMismatch { declared, found } => {
                write!(f, "circuit declares {declared} inputs but has {found}")
            }
            ValidateError::OutputOutOfRange { position, wire } => {
                write!(f, "output {position} names out-of-range wire {wire}")
            }
            ValidateError::DepthMismatch {
                gate,
                expected,
                cached,
            } => write!(
                f,
                "wire {gate} depth is {expected} by recomputation but cached as {cached}"
            ),
            ValidateError::MetadataMismatch {
                what,
                expected,
                cached,
            } => write!(f, "circuit {what} is {expected} but cached as {cached}"),
            ValidateError::AssertOriginInvalid {
                optimized,
                source,
                reason,
            } => write!(
                f,
                "assert_origin entry ({optimized} -> {source}) invalid: {reason}"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks the structural invariants of a word-level [`Circuit`]:
/// topologically ordered (acyclic) wiring, dense input indices, in-range
/// outputs, and cached depth/size metadata consistent with the gate
/// list. Count-mode circuits have no gate list to check; only their
/// outputs are bounds-checked.
pub fn validate(c: &Circuit) -> Result<(), ValidateError> {
    let gates = c.gates();
    let depths = c.wire_depths();
    let mut num_inputs = 0usize;
    let mut size = 0u64;
    let mut depth = 0u32;
    for (i, g) in gates.iter().enumerate() {
        if let Gate::Input(declared) = *g {
            if declared != num_inputs {
                return Err(ValidateError::InputIndexOutOfOrder {
                    gate: i,
                    declared,
                    expected: num_inputs,
                });
            }
            num_inputs += 1;
        }
        let mut d = 0u32;
        for &w in c.gate_operands(i).iter().flatten() {
            if w as usize >= i {
                return Err(ValidateError::ForwardReference {
                    gate: i,
                    operand: w,
                });
            }
            d = d.max(depths[w as usize] + 1);
        }
        if !matches!(g, Gate::Input(_) | Gate::Const(_)) {
            size += 1;
        }
        if depths[i] != d {
            return Err(ValidateError::DepthMismatch {
                gate: i,
                expected: d,
                cached: depths[i],
            });
        }
        depth = depth.max(d);
    }
    if c.is_evaluable() {
        if num_inputs != c.num_inputs() {
            return Err(ValidateError::InputCountMismatch {
                declared: c.num_inputs(),
                found: num_inputs,
            });
        }
        if size != c.size() {
            return Err(ValidateError::MetadataMismatch {
                what: "size",
                expected: size,
                cached: c.size(),
            });
        }
        if depth != c.depth() {
            return Err(ValidateError::MetadataMismatch {
                what: "depth",
                expected: u64::from(depth),
                cached: u64::from(c.depth()),
            });
        }
    }
    for (position, &wire) in c.outputs().iter().enumerate() {
        if wire as usize >= c.num_wires() {
            return Err(ValidateError::OutputOutOfRange { position, wire });
        }
    }
    Ok(())
}

/// Checks the structural invariants of a bit-level [`BitCircuit`]:
/// topologically ordered wiring, dense input-bit indices, in-range
/// outputs, and an output count that is a whole number of `width`-bit
/// words.
pub fn validate_bits(bc: &BitCircuit) -> Result<(), ValidateError> {
    let gates = bc.gates();
    let mut num_inputs = 0usize;
    for (i, g) in gates.iter().enumerate() {
        let ops: [Option<u32>; 2] = match *g {
            BGate::Input(declared) => {
                if declared != num_inputs {
                    return Err(ValidateError::InputIndexOutOfOrder {
                        gate: i,
                        declared,
                        expected: num_inputs,
                    });
                }
                num_inputs += 1;
                [None, None]
            }
            BGate::Const(_) => [None, None],
            BGate::Xor(a, b) | BGate::And(a, b) => [Some(a), Some(b)],
            BGate::Not(a) | BGate::AssertFalse(a) => [Some(a), None],
        };
        for w in ops.into_iter().flatten() {
            if w as usize >= i {
                return Err(ValidateError::ForwardReference {
                    gate: i,
                    operand: w,
                });
            }
        }
    }
    if num_inputs != bc.num_inputs() {
        return Err(ValidateError::InputCountMismatch {
            declared: bc.num_inputs(),
            found: num_inputs,
        });
    }
    if bc.width() != 0 && !bc.outputs().len().is_multiple_of(bc.width() as usize) {
        return Err(ValidateError::MetadataMismatch {
            what: "size",
            expected: (bc.outputs().len() - bc.outputs().len() % bc.width() as usize) as u64,
            cached: bc.outputs().len() as u64,
        });
    }
    for (position, &wire) in bc.outputs().iter().enumerate() {
        if wire as usize >= gates.len() {
            return Err(ValidateError::OutputOutOfRange { position, wire });
        }
    }
    Ok(())
}

/// Validates a flat word tape without materializing its gates: opcode
/// table membership, topological operand order, input indices within
/// the declared arity, header/stream wire-count agreement, and output
/// range. [`WordTape::from_bytes`](crate::tape::WordTape::from_bytes)
/// runs this on every load, so a tape that parses is structurally
/// sound.
pub fn validate_word_tape(t: &crate::tape::WordTape) -> Result<(), crate::tape::TapeError> {
    crate::tape::check_word_tape(t)
}

/// Validates a flat bit tape; same checks as [`validate_word_tape`] at
/// the bit level, run by
/// [`BitTape::from_bytes`](crate::tape::BitTape::from_bytes) on every
/// load.
pub fn validate_bit_tape(t: &crate::tape::BitTape) -> Result<(), crate::tape::TapeError> {
    crate::tape::check_bit_tape(t)
}

/// Checks that the optimizer's assertion provenance map is sound: every
/// `(optimized, source)` entry of [`OptStats::assert_origin`] names an
/// `AssertZero` gate on both sides and the optimized indices are sorted
/// (binary-searchable by the engine's error reporting).
pub fn validate_opt(
    source: &Circuit,
    optimized: &Circuit,
    stats: &OptStats,
) -> Result<(), ValidateError> {
    let mut prev: Option<u32> = None;
    for &(opt_idx, src_idx) in &stats.assert_origin {
        if let Some(p) = prev {
            if opt_idx <= p {
                return Err(ValidateError::AssertOriginInvalid {
                    optimized: opt_idx,
                    source: src_idx,
                    reason: "optimized indices not strictly sorted",
                });
            }
        }
        prev = Some(opt_idx);
        match optimized.gates().get(opt_idx as usize) {
            Some(Gate::AssertZero(_)) => {}
            Some(_) => {
                return Err(ValidateError::AssertOriginInvalid {
                    optimized: opt_idx,
                    source: src_idx,
                    reason: "optimized gate is not an assertion",
                })
            }
            None => {
                return Err(ValidateError::AssertOriginInvalid {
                    optimized: opt_idx,
                    source: src_idx,
                    reason: "optimized index out of range",
                })
            }
        }
        match source.gates().get(src_idx as usize) {
            Some(Gate::AssertZero(_)) => {}
            Some(_) => {
                return Err(ValidateError::AssertOriginInvalid {
                    optimized: opt_idx,
                    source: src_idx,
                    reason: "source gate is not an assertion",
                })
            }
            None => {
                return Err(ValidateError::AssertOriginInvalid {
                    optimized: opt_idx,
                    source: src_idx,
                    reason: "source index out of range",
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Builder, Mode};
    use crate::{lower_with, optimize_with, CompileOptions};

    fn sample_simple() -> Circuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let p = b.mul(s, s);
        let d = b.sub(x, y);
        b.assert_zero(d);
        b.finish(vec![p])
    }

    #[test]
    fn builder_circuits_validate() {
        let c = sample_simple();
        validate(&c).unwrap();
    }

    #[test]
    fn optimized_circuits_and_origins_validate() {
        let c = sample_simple();
        let (opt, stats) = optimize_with(&c, &CompileOptions::sequential());
        validate(&opt).unwrap();
        validate_opt(&c, &opt, &stats).unwrap();
    }

    #[test]
    fn lowered_circuits_validate() {
        let c = sample_simple();
        let bc = lower_with(&c, 8, &CompileOptions::sequential());
        validate_bits(&bc).unwrap();
        let (obc, _) = crate::optimize_bits_with(&bc, &CompileOptions::sequential());
        validate_bits(&obc).unwrap();
    }

    #[test]
    fn forward_reference_is_caught() {
        let bc = BitCircuit::new(
            vec![BGate::Input(0), BGate::And(0, 2), BGate::Const(false)],
            vec![1],
            1,
            1,
        );
        assert!(matches!(
            validate_bits(&bc),
            Err(ValidateError::ForwardReference {
                gate: 1,
                operand: 2
            })
        ));
    }

    #[test]
    fn bad_bit_output_is_caught() {
        let bc = BitCircuit::new(vec![BGate::Input(0)], vec![9], 1, 1);
        assert!(matches!(
            validate_bits(&bc),
            Err(ValidateError::OutputOutOfRange {
                position: 0,
                wire: 9
            })
        ));
    }

    #[test]
    fn bad_origin_is_caught() {
        let c = sample_simple();
        let (opt, mut stats) = optimize_with(&c, &CompileOptions::sequential());
        stats.assert_origin = vec![(0, 0)]; // gate 0 is an input, not an assert
        assert!(matches!(
            validate_opt(&c, &opt, &stats),
            Err(ValidateError::AssertOriginInvalid { .. })
        ));
    }
}
