//! Flat instruction-tape circuit encoding, versioned binary
//! serialization, and bounded-memory streaming lowering.
//!
//! The paper's premise is that a circuit is a *compact reusable
//! artifact* of query compilation: compile once, evaluate many, ship to
//! an MPC counterparty (Sec. 4.1). This module makes that concrete in
//! three steps:
//!
//! 1. **Flat tapes.** [`WordTape`] and [`BitTape`] are word-coded
//!    instruction streams — one `Vec<u64>` of `(opcode, operand)` words —
//!    in place of the struct-per-gate `Vec<Gate>`/`Vec<BGate>` IRs. The
//!    *narrow* format packs a whole instruction into one word
//!    (`[opcode:4][a:30][b:30]`, extra words for `Const`/`Mux`); the
//!    *wide* format spends one word per operand and therefore carries
//!    full 64-bit ids — the escape hatch past the 32-bit in-memory id
//!    space (see [`EvalError::CircuitTooLarge`]). Both evaluate directly
//!    off the words, no decode step required.
//! 2. **Serialization.** [`WordTape::to_bytes`]/[`BitTape::to_bytes`]
//!    emit a magic-tagged, versioned container with an FNV-1a-64
//!    checksum trailer; `from_bytes` rejects truncation, trailing bytes,
//!    bad magic, unknown versions, wrong kinds, checksum mismatches, and
//!    malformed instructions with typed [`TapeError`]s. This is what
//!    lets a compiled circuit leave the process.
//! 3. **Streaming lowering.** [`lower_streamed`] lowers a word circuit
//!    to a [`BitTape`] level-by-level through fixed-size chunks with a
//!    bounded resident window; full chunks past the window spill to a
//!    temp file and are stitched back at the end. The produced tape
//!    decodes to the byte-identical [`BitCircuit`] that
//!    [`lower_with`](crate::lower_with) builds (the `qec-check` differ
//!    verifies this on every fuzz case).
//!
//! # Streaming-window invariants
//!
//! The window bounds the *materialized gate payload*: at most
//! `window_chunks × chunk_words × 8` bytes of encoded instructions are
//! resident at any time, plus the current chunk. Per-word-wire bit
//! vectors are freed at their last use (outputs stay pinned). Two side
//! structures intentionally stay resident because byte-identity demands
//! them: the structural CSE map (a late gate may cons against the very
//! first one) and the NOT-operand map backing the NOT-cancel peephole.
//! Both are proportional to *distinct* gates, not to the raw instruction
//! stream, and both are dwarfed by the payload they replace for the
//! deep, repetitive circuits this path targets.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::kind_index;
use crate::lower::{
    checked_bit_id, lower_gate, BGate, BitCircuit, BitRewrite, B_FALSE, B_TRUE, MAX_BIT_WIRES,
};
use crate::{Circuit, EvalError, Gate, WireId};

/// Serialization/encoding failure, one variant per rejection reason so
/// callers (and tests) can tell corruption from version skew from size
/// overflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TapeError {
    /// The byte stream does not start with [`TAPE_MAGIC`].
    BadMagic,
    /// The container's version field is newer than this build understands.
    UnsupportedVersion(u32),
    /// A word tape was handed to the bit-tape reader or vice versa.
    WrongKind {
        /// Kind tag this reader expected (1 = word, 2 = bit).
        expected: u32,
        /// Kind tag found in the header.
        got: u32,
    },
    /// Unknown format tag (1 = narrow, 2 = wide).
    BadFormat(u32),
    /// Fewer bytes than the header promises.
    Truncated {
        /// Bytes the container needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// More bytes than the header promises.
    TrailingBytes(usize),
    /// The FNV-1a-64 trailer does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum recomputed over the payload.
        got: u64,
    },
    /// An instruction word carries an opcode outside the table.
    BadOpcode {
        /// Code-word index of the offending instruction.
        word: usize,
        /// The opcode found there.
        opcode: u64,
    },
    /// An operand names a wire at or past its own instruction (tapes are
    /// topological), or past the format's operand capacity.
    OperandOutOfRange {
        /// Code-word index of the offending instruction.
        word: usize,
        /// The operand value.
        operand: u64,
        /// The exclusive limit it violated.
        limit: u64,
    },
    /// The instruction stream ended mid-instruction.
    CodeTruncated,
    /// The header's wire count disagrees with the instruction stream.
    WireCountMismatch {
        /// Wire count recorded in the header.
        header: u64,
        /// Instructions actually on the tape.
        found: u64,
    },
    /// The circuit does not fit the requested format (e.g. a wire id
    /// past the narrow format's 30-bit operand field).
    TooLargeForFormat {
        /// Wires the circuit holds.
        wires: u64,
        /// The format's id capacity.
        limit: u64,
    },
    /// The circuit was built in count-only mode and has no gates to
    /// encode.
    NotEvaluable,
    /// An I/O failure while saving/loading/spilling.
    Io(String),
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::BadMagic => write!(f, "not a circuit tape (bad magic)"),
            TapeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported tape version {v} (this build reads {TAPE_VERSION})"
                )
            }
            TapeError::WrongKind { expected, got } => {
                write!(f, "wrong tape kind: expected {expected}, got {got}")
            }
            TapeError::BadFormat(fmt_tag) => write!(f, "unknown tape format tag {fmt_tag}"),
            TapeError::Truncated { needed, got } => {
                write!(f, "truncated tape: need {needed} bytes, have {got}")
            }
            TapeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the tape"),
            TapeError::ChecksumMismatch { expected, got } => write!(
                f,
                "tape checksum mismatch: trailer {expected:#018x}, payload hashes to {got:#018x}"
            ),
            TapeError::BadOpcode { word, opcode } => {
                write!(f, "bad opcode {opcode} at code word {word}")
            }
            TapeError::OperandOutOfRange {
                word,
                operand,
                limit,
            } => write!(
                f,
                "operand {operand} at code word {word} out of range (limit {limit})"
            ),
            TapeError::CodeTruncated => write!(f, "instruction stream ended mid-instruction"),
            TapeError::WireCountMismatch { header, found } => write!(
                f,
                "header declares {header} wires but the tape holds {found} instructions"
            ),
            TapeError::TooLargeForFormat { wires, limit } => write!(
                f,
                "circuit too large for this tape format: {wires} wires, format limit {limit}"
            ),
            TapeError::NotEvaluable => {
                write!(
                    f,
                    "count-only circuits carry no gates and cannot be encoded"
                )
            }
            TapeError::Io(e) => write!(f, "tape i/o error: {e}"),
        }
    }
}

impl std::error::Error for TapeError {}

impl From<TapeError> for EvalError {
    fn from(e: TapeError) -> EvalError {
        EvalError::Tape(e)
    }
}

// ---- container format ----

/// First eight bytes of every serialized tape.
pub const TAPE_MAGIC: [u8; 8] = *b"QECTAPE\0";
/// Container version this build writes (and the only one it reads).
pub const TAPE_VERSION: u32 = 1;
/// Kind tag for word-level tapes.
const KIND_WORD: u32 = 1;
/// Kind tag for bit-level tapes.
const KIND_BIT: u32 = 2;
/// Narrow format: one packed `[opcode:4][a:30][b:30]` word per
/// instruction (plus one extra word for `Const` values and `Mux`'s third
/// operand).
pub const FORMAT_NARROW: u32 = 1;
/// Wide format: an opcode word followed by one full `u64` per operand —
/// the 64-bit-id path for circuits past the narrow operand field.
pub const FORMAT_WIDE: u32 = 2;

/// Exclusive operand limit of the narrow format's 30-bit fields.
pub const NARROW_LIMIT: u64 = 1 << 30;

/// Fixed header: magic + 4 u32 fields + 4 u64 fields.
const HEADER_BYTES: usize = 8 + 4 * 4 + 4 * 8;

/// FNV-1a-64 over a byte slice — the checksum of the tape container and
/// of `qec-mpc`'s wire frames (which reuse this container's style).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Header {
    kind: u32,
    format: u32,
    width: u32,
    num_inputs: u64,
    num_wires: u64,
    code_words: u64,
    num_outputs: u64,
}

fn write_container(h: &Header, code: &[u64], outputs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + 8 * (code.len() + outputs.len()) + 8);
    out.extend_from_slice(&TAPE_MAGIC);
    for v in [TAPE_VERSION, h.kind, h.format, h.width] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [h.num_inputs, h.num_wires, h.code_words, h.num_outputs] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &w in code {
        out.extend_from_slice(&w.to_le_bytes());
    }
    for &w in outputs {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

fn read_container(
    bytes: &[u8],
    expected_kind: u32,
) -> Result<(Header, Vec<u64>, Vec<u64>), TapeError> {
    if bytes.len() < HEADER_BYTES + 8 {
        return Err(TapeError::Truncated {
            needed: HEADER_BYTES + 8,
            got: bytes.len(),
        });
    }
    if bytes[..8] != TAPE_MAGIC {
        return Err(TapeError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != TAPE_VERSION {
        return Err(TapeError::UnsupportedVersion(version));
    }
    let h = Header {
        kind: read_u32(bytes, 12),
        format: read_u32(bytes, 16),
        width: read_u32(bytes, 20),
        num_inputs: read_u64(bytes, 24),
        num_wires: read_u64(bytes, 32),
        code_words: read_u64(bytes, 40),
        num_outputs: read_u64(bytes, 48),
    };
    let payload_words = h
        .code_words
        .checked_add(h.num_outputs)
        .filter(|&w| w < (usize::MAX as u64) / 8)
        .ok_or(TapeError::Truncated {
            needed: usize::MAX,
            got: bytes.len(),
        })?;
    let needed = HEADER_BYTES + 8 * payload_words as usize + 8;
    if bytes.len() < needed {
        return Err(TapeError::Truncated {
            needed,
            got: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(TapeError::TrailingBytes(bytes.len() - needed));
    }
    let expected = read_u64(bytes, needed - 8);
    let got = fnv1a64(&bytes[..needed - 8]);
    if expected != got {
        return Err(TapeError::ChecksumMismatch { expected, got });
    }
    if h.kind != expected_kind {
        return Err(TapeError::WrongKind {
            expected: expected_kind,
            got: h.kind,
        });
    }
    if h.format != FORMAT_NARROW && h.format != FORMAT_WIDE {
        return Err(TapeError::BadFormat(h.format));
    }
    let mut at = HEADER_BYTES;
    let mut code = Vec::with_capacity(h.code_words as usize);
    for _ in 0..h.code_words {
        code.push(read_u64(bytes, at));
        at += 8;
    }
    let mut outputs = Vec::with_capacity(h.num_outputs as usize);
    for _ in 0..h.num_outputs {
        outputs.push(read_u64(bytes, at));
        at += 8;
    }
    Ok((h, code, outputs))
}

fn save_bytes(path: &Path, bytes: &[u8]) -> Result<(), TapeError> {
    std::fs::write(path, bytes).map_err(|e| TapeError::Io(format!("{}: {e}", path.display())))
}

fn load_bytes(path: &Path) -> Result<Vec<u8>, TapeError> {
    std::fs::read(path).map_err(|e| TapeError::Io(format!("{}: {e}", path.display())))
}

// ---- word tapes ----

/// Word-gate opcodes are `engine::kind_index + 1` (1-based so an
/// all-zero word can never be a valid instruction).
const OP_INPUT: u64 = 1;
const OP_CONST: u64 = 2;
const OP_MUX: u64 = 12;
const OP_ASSERT: u64 = 13;
const OP_MAX: u64 = 13;

/// Number of explicit operand words each opcode consumes in the wide
/// format (`Const` counts its value word).
fn word_op_arity(op: u64) -> usize {
    match op {
        OP_INPUT => 1,
        OP_CONST => 1,
        OP_MUX => 3,
        OP_ASSERT => 1,
        11 /* not */ => 1,
        _ => 2,
    }
}

/// A word-level circuit as a flat instruction tape: one `u64` stream,
/// topologically ordered, wire `i` defined by instruction `i`.
///
/// Narrow instructions pack `[opcode:4][a:30][b:30]`; `Const` and `Mux`
/// follow with one extra word (the constant value / the third operand).
/// Wide instructions spend a word per operand and carry full 64-bit ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WordTape {
    format: u32,
    num_inputs: u64,
    num_wires: u64,
    code: Vec<u64>,
    outputs: Vec<u64>,
}

impl WordTape {
    /// Encodes an evaluable circuit, picking the narrow format when every
    /// id and input index fits its 30-bit operand field.
    pub fn encode(c: &Circuit) -> Result<WordTape, TapeError> {
        if !c.is_evaluable() {
            return Err(TapeError::NotEvaluable);
        }
        let narrow =
            (c.num_wires() as u64) < NARROW_LIMIT && (c.num_inputs() as u64) < NARROW_LIMIT;
        let format = if narrow { FORMAT_NARROW } else { FORMAT_WIDE };
        let mut code = Vec::with_capacity(c.gates().len() + c.gates().len() / 8);
        for g in c.gates() {
            let op = (kind_index(g) + 1) as u64;
            match (*g, narrow) {
                (Gate::Const(v), true) => {
                    code.push(pack_narrow(op, 0, 0));
                    code.push(v);
                }
                (Gate::Const(v), false) => {
                    code.push(op);
                    code.push(v);
                }
                (Gate::Input(i), true) => code.push(pack_narrow(op, i as u64, 0)),
                (Gate::Input(i), false) => {
                    code.push(op);
                    code.push(i as u64);
                }
                (g, true) => {
                    let [a, b, cc] = three(g);
                    code.push(pack_narrow(op, a, b));
                    if op == OP_MUX {
                        code.push(cc);
                    }
                }
                (g, false) => {
                    code.push(op);
                    let ar = word_op_arity(op);
                    let ops = three(g);
                    for &o in ops.iter().take(ar) {
                        code.push(o);
                    }
                }
            }
        }
        Ok(WordTape {
            format,
            num_inputs: c.num_inputs() as u64,
            num_wires: c.num_wires() as u64,
            code,
            outputs: c.outputs().iter().map(|&w| w as u64).collect(),
        })
    }

    /// Decodes back into the in-memory IR. The result is gate-for-gate
    /// identical to the circuit that was encoded (`write_netlist` of the
    /// two is equal — the differ checks this).
    pub fn decode(&self) -> Result<Circuit, TapeError> {
        let mut gates = Vec::with_capacity(self.num_wires as usize);
        self.for_each_instruction(|_w, op, a, b, c| {
            let limit = gates.len() as u64;
            let chk = |o: u64| -> Result<WireId, TapeError> {
                if o >= limit {
                    return Err(TapeError::OperandOutOfRange {
                        word: gates.len(),
                        operand: o,
                        limit,
                    });
                }
                Ok(o as WireId)
            };
            let g = match op {
                OP_INPUT => Gate::Input(a as usize),
                OP_CONST => Gate::Const(a),
                3 => Gate::Add(chk(a)?, chk(b)?),
                4 => Gate::Sub(chk(a)?, chk(b)?),
                5 => Gate::Mul(chk(a)?, chk(b)?),
                6 => Gate::Eq(chk(a)?, chk(b)?),
                7 => Gate::Lt(chk(a)?, chk(b)?),
                8 => Gate::And(chk(a)?, chk(b)?),
                9 => Gate::Or(chk(a)?, chk(b)?),
                10 => Gate::Xor(chk(a)?, chk(b)?),
                11 => Gate::Not(chk(a)?),
                OP_MUX => Gate::Mux(chk(a)?, chk(b)?, chk(c)?),
                OP_ASSERT => Gate::AssertZero(chk(a)?),
                _ => unreachable!("for_each_instruction rejects bad opcodes"),
            };
            gates.push(g);
            Ok(())
        })?;
        let limit = gates.len() as u64;
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for (i, &o) in self.outputs.iter().enumerate() {
            if o >= limit {
                return Err(TapeError::OperandOutOfRange {
                    word: self.code.len() + i,
                    operand: o,
                    limit,
                });
            }
            outputs.push(o as WireId);
        }
        Ok(Circuit::from_raw(gates, outputs, self.num_inputs as usize))
    }

    /// Evaluates directly off the flat words — no `Vec<Gate>` is ever
    /// materialized. Semantics match [`Circuit::evaluate`] exactly,
    /// including the failing-assert gate index.
    pub fn evaluate(&self, inputs: &[u64]) -> Result<Vec<u64>, EvalError> {
        if inputs.len() != self.num_inputs as usize {
            return Err(EvalError::InputArity {
                expected: self.num_inputs as usize,
                got: inputs.len(),
            });
        }
        let as_bool = |v: u64| v != 0;
        let mut values: Vec<u64> = Vec::with_capacity(self.num_wires as usize);
        let mut failure: Option<(usize, u64)> = None;
        self.for_each_instruction(|_w, op, a, b, c| {
            let gi = values.len();
            let va = |o: u64| values[o as usize];
            let v = match op {
                OP_INPUT => inputs[a as usize],
                OP_CONST => a,
                3 => va(a).wrapping_add(va(b)),
                4 => va(a).wrapping_sub(va(b)),
                5 => va(a).wrapping_mul(va(b)),
                6 => u64::from(va(a) == va(b)),
                7 => u64::from(va(a) < va(b)),
                8 => u64::from(as_bool(va(a)) && as_bool(va(b))),
                9 => u64::from(as_bool(va(a)) || as_bool(va(b))),
                10 => u64::from(as_bool(va(a)) != as_bool(va(b))),
                11 => u64::from(!as_bool(va(a))),
                OP_MUX => {
                    if as_bool(va(a)) {
                        va(b)
                    } else {
                        va(c)
                    }
                }
                OP_ASSERT => {
                    let v = va(a);
                    if v != 0 && failure.is_none() {
                        failure = Some((gi, v));
                    }
                    0
                }
                _ => unreachable!("for_each_instruction rejects bad opcodes"),
            };
            values.push(v);
            Ok(())
        })
        .map_err(EvalError::Tape)?;
        if let Some((gate, value)) = failure {
            return Err(EvalError::AssertionFailed { gate, value });
        }
        Ok(self.outputs.iter().map(|&o| values[o as usize]).collect())
    }

    /// Walks the instruction stream, handing each decoded instruction
    /// `(word_index, opcode, a, b, c)` to `f`. Operand *range* checks
    /// against preceding wires are the caller's concern (`decode` does
    /// them; `evaluate` trusts a tape that already decoded or loaded).
    fn for_each_instruction<F>(&self, mut f: F) -> Result<(), TapeError>
    where
        F: FnMut(usize, u64, u64, u64, u64) -> Result<(), TapeError>,
    {
        let code = &self.code;
        let mut at = 0usize;
        while at < code.len() {
            let word = at;
            let (op, a, b, c);
            if self.format == FORMAT_NARROW {
                let w = code[at];
                at += 1;
                op = w & 0xF;
                check_op(word, op)?;
                let ra = (w >> 4) & (NARROW_LIMIT - 1);
                let rb = (w >> 34) & (NARROW_LIMIT - 1);
                match op {
                    OP_CONST => {
                        a = *code.get(at).ok_or(TapeError::CodeTruncated)?;
                        at += 1;
                        (b, c) = (0, 0);
                    }
                    OP_MUX => {
                        c = *code.get(at).ok_or(TapeError::CodeTruncated)?;
                        at += 1;
                        (a, b) = (ra, rb);
                    }
                    _ => (a, b, c) = (ra, rb, 0),
                }
            } else {
                op = code[at];
                at += 1;
                check_op(word, op)?;
                let ar = word_op_arity(op);
                if at + ar > code.len() {
                    return Err(TapeError::CodeTruncated);
                }
                let mut ops = [0u64; 3];
                ops[..ar].copy_from_slice(&code[at..at + ar]);
                at += ar;
                [a, b, c] = ops;
            }
            f(word, op, a, b, c)?;
        }
        Ok(())
    }

    /// Number of instructions (= wires) on the tape.
    pub fn num_instructions(&self) -> u64 {
        self.num_wires
    }

    /// Declared input count.
    pub fn num_inputs(&self) -> u64 {
        self.num_inputs
    }

    /// Output wire ids.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// The raw code words.
    pub fn code(&self) -> &[u64] {
        &self.code
    }

    /// Format tag ([`FORMAT_NARROW`] or [`FORMAT_WIDE`]).
    pub fn format(&self) -> u32 {
        self.format
    }

    /// Serializes into the versioned, checksummed container.
    pub fn to_bytes(&self) -> Vec<u8> {
        write_container(
            &Header {
                kind: KIND_WORD,
                format: self.format,
                width: 0,
                num_inputs: self.num_inputs,
                num_wires: self.num_wires,
                code_words: self.code.len() as u64,
                num_outputs: self.outputs.len() as u64,
            },
            &self.code,
            &self.outputs,
        )
    }

    /// Parses a container produced by [`WordTape::to_bytes`], verifying
    /// magic, version, kind, length, checksum, and the instruction
    /// stream's structure.
    pub fn from_bytes(bytes: &[u8]) -> Result<WordTape, TapeError> {
        let (h, code, outputs) = read_container(bytes, KIND_WORD)?;
        let t = WordTape {
            format: h.format,
            num_inputs: h.num_inputs,
            num_wires: h.num_wires,
            code,
            outputs,
        };
        crate::validate::validate_word_tape(&t)?;
        Ok(t)
    }

    /// Saves the container to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TapeError> {
        save_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Loads and verifies a container from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<WordTape, TapeError> {
        WordTape::from_bytes(&load_bytes(path.as_ref())?)
    }
}

fn pack_narrow(op: u64, a: u64, b: u64) -> u64 {
    debug_assert!(op <= 0xF && a < NARROW_LIMIT && b < NARROW_LIMIT);
    op | (a << 4) | (b << 34)
}

fn check_op(word: usize, op: u64) -> Result<(), TapeError> {
    if op == 0 || op > OP_MAX {
        return Err(TapeError::BadOpcode { word, opcode: op });
    }
    Ok(())
}

fn three(g: Gate) -> [u64; 3] {
    let ops = g.operands();
    [
        ops[0].unwrap_or(0) as u64,
        ops[1].unwrap_or(0) as u64,
        ops[2].unwrap_or(0) as u64,
    ]
}

// ---- bit tapes ----

/// Bit-gate opcodes (1-based, same reasoning as the word table).
const BOP_CONST: u64 = 1;
const BOP_INPUT: u64 = 2;
const BOP_XOR: u64 = 3;
const BOP_AND: u64 = 4;
const BOP_NOT: u64 = 5;
const BOP_ASSERT: u64 = 6;
const BOP_MAX: u64 = 6;

fn bit_op_arity(op: u64) -> usize {
    match op {
        BOP_XOR | BOP_AND => 2,
        _ => 1,
    }
}

fn bgate_op(g: BGate) -> (u64, u64, u64) {
    match g {
        BGate::Const(v) => (BOP_CONST, u64::from(v), 0),
        BGate::Input(i) => (BOP_INPUT, i as u64, 0),
        BGate::Xor(a, b) => (BOP_XOR, a as u64, b as u64),
        BGate::And(a, b) => (BOP_AND, a as u64, b as u64),
        BGate::Not(a) => (BOP_NOT, a as u64, 0),
        BGate::AssertFalse(a) => (BOP_ASSERT, a as u64, 0),
    }
}

/// A lowered Boolean circuit as a flat instruction tape. Same container
/// as [`WordTape`] with kind tag 2; the `width` header field preserves
/// [`BitCircuit::width`] across serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitTape {
    format: u32,
    width: u32,
    num_inputs: u64,
    num_wires: u64,
    code: Vec<u64>,
    outputs: Vec<u64>,
}

impl BitTape {
    /// Encodes a bit circuit, narrow when every wire id and input bit
    /// index fits 30 bits.
    pub fn encode(bc: &BitCircuit) -> BitTape {
        let narrow =
            (bc.gates().len() as u64) < NARROW_LIMIT && (bc.num_inputs() as u64) < NARROW_LIMIT;
        let format = if narrow { FORMAT_NARROW } else { FORMAT_WIDE };
        let mut code = Vec::with_capacity(if narrow {
            bc.gates().len()
        } else {
            bc.gates().len() * 3
        });
        for &g in bc.gates() {
            let (op, a, b) = bgate_op(g);
            if narrow {
                code.push(pack_narrow(op, a, b));
            } else {
                code.push(op);
                code.push(a);
                if bit_op_arity(op) == 2 {
                    code.push(b);
                }
            }
        }
        BitTape {
            format,
            width: bc.width(),
            num_inputs: bc.num_inputs() as u64,
            num_wires: bc.gates().len() as u64,
            code,
            outputs: bc.outputs().iter().map(|&w| w as u64).collect(),
        }
    }

    /// Decodes back into a [`BitCircuit`], gate-for-gate identical to
    /// the encoded one.
    pub fn decode(&self) -> Result<BitCircuit, TapeError> {
        if self.num_wires > MAX_BIT_WIRES + 1 {
            return Err(TapeError::TooLargeForFormat {
                wires: self.num_wires,
                limit: MAX_BIT_WIRES + 1,
            });
        }
        let mut gates = Vec::with_capacity(self.num_wires as usize);
        self.for_each_instruction(|_w, op, a, b| {
            let limit = gates.len() as u64;
            let chk = |o: u64| -> Result<u32, TapeError> {
                if o >= limit {
                    return Err(TapeError::OperandOutOfRange {
                        word: gates.len(),
                        operand: o,
                        limit,
                    });
                }
                Ok(o as u32)
            };
            let g = match op {
                BOP_CONST => BGate::Const(a != 0),
                BOP_INPUT => BGate::Input(a as usize),
                BOP_XOR => BGate::Xor(chk(a)?, chk(b)?),
                BOP_AND => BGate::And(chk(a)?, chk(b)?),
                BOP_NOT => BGate::Not(chk(a)?),
                BOP_ASSERT => BGate::AssertFalse(chk(a)?),
                _ => unreachable!("for_each_instruction rejects bad opcodes"),
            };
            gates.push(g);
            Ok(())
        })?;
        let limit = gates.len() as u64;
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for (i, &o) in self.outputs.iter().enumerate() {
            if o >= limit {
                return Err(TapeError::OperandOutOfRange {
                    word: self.code.len() + i,
                    operand: o,
                    limit,
                });
            }
            outputs.push(o as u32);
        }
        Ok(BitCircuit::new(
            gates,
            outputs,
            self.num_inputs as usize,
            self.width,
        ))
    }

    /// Evaluates directly off the flat words. Semantics match
    /// [`BitCircuit::evaluate`]; a firing assert reports its instruction
    /// index.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, EvalError> {
        if inputs.len() != self.num_inputs as usize {
            return Err(EvalError::InputArity {
                expected: self.num_inputs as usize,
                got: inputs.len(),
            });
        }
        let mut values: Vec<bool> = Vec::with_capacity(self.num_wires as usize);
        let mut failure: Option<usize> = None;
        self.for_each_instruction(|_w, op, a, b| {
            let gi = values.len();
            let v = match op {
                BOP_CONST => a != 0,
                BOP_INPUT => inputs[a as usize],
                BOP_XOR => values[a as usize] != values[b as usize],
                BOP_AND => values[a as usize] && values[b as usize],
                BOP_NOT => !values[a as usize],
                BOP_ASSERT => {
                    if values[a as usize] && failure.is_none() {
                        failure = Some(gi);
                    }
                    false
                }
                _ => unreachable!("for_each_instruction rejects bad opcodes"),
            };
            values.push(v);
            Ok(())
        })
        .map_err(EvalError::Tape)?;
        if let Some(gate) = failure {
            return Err(EvalError::AssertionFailed { gate, value: 1 });
        }
        Ok(self.outputs.iter().map(|&o| values[o as usize]).collect())
    }

    fn for_each_instruction<F>(&self, mut f: F) -> Result<(), TapeError>
    where
        F: FnMut(usize, u64, u64, u64) -> Result<(), TapeError>,
    {
        let code = &self.code;
        let mut at = 0usize;
        while at < code.len() {
            let word = at;
            let (op, a, b);
            if self.format == FORMAT_NARROW {
                let w = code[at];
                at += 1;
                op = w & 0xF;
                check_bop(word, op)?;
                a = (w >> 4) & (NARROW_LIMIT - 1);
                b = (w >> 34) & (NARROW_LIMIT - 1);
            } else {
                op = code[at];
                at += 1;
                check_bop(word, op)?;
                let ar = bit_op_arity(op);
                if at + ar > code.len() {
                    return Err(TapeError::CodeTruncated);
                }
                a = code[at];
                b = if ar == 2 { code[at + 1] } else { 0 };
                at += ar;
            }
            f(word, op, a, b)?;
        }
        Ok(())
    }

    /// Number of instructions (= bit wires) on the tape.
    pub fn num_instructions(&self) -> u64 {
        self.num_wires
    }

    /// Declared input-bit count.
    pub fn num_inputs(&self) -> u64 {
        self.num_inputs
    }

    /// Word width recorded by the lowering.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Output bit wires.
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// The raw code words.
    pub fn code(&self) -> &[u64] {
        &self.code
    }

    /// Format tag ([`FORMAT_NARROW`] or [`FORMAT_WIDE`]).
    pub fn format(&self) -> u32 {
        self.format
    }

    /// Serializes into the versioned, checksummed container.
    pub fn to_bytes(&self) -> Vec<u8> {
        write_container(
            &Header {
                kind: KIND_BIT,
                format: self.format,
                width: self.width,
                num_inputs: self.num_inputs,
                num_wires: self.num_wires,
                code_words: self.code.len() as u64,
                num_outputs: self.outputs.len() as u64,
            },
            &self.code,
            &self.outputs,
        )
    }

    /// Parses a container produced by [`BitTape::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<BitTape, TapeError> {
        let (h, code, outputs) = read_container(bytes, KIND_BIT)?;
        let t = BitTape {
            format: h.format,
            width: h.width,
            num_inputs: h.num_inputs,
            num_wires: h.num_wires,
            code,
            outputs,
        };
        crate::validate::validate_bit_tape(&t)?;
        Ok(t)
    }

    /// Saves the container to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TapeError> {
        save_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Loads and verifies a container from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<BitTape, TapeError> {
        BitTape::from_bytes(&load_bytes(path.as_ref())?)
    }
}

fn check_bop(word: usize, op: u64) -> Result<(), TapeError> {
    if op == 0 || op > BOP_MAX {
        return Err(TapeError::BadOpcode { word, opcode: op });
    }
    Ok(())
}

// ---- structural validation (driven by `crate::validate`) ----

fn check_operand(word: usize, o: u64, wires: u64) -> Result<(), TapeError> {
    if o >= wires {
        return Err(TapeError::OperandOutOfRange {
            word,
            operand: o,
            limit: wires,
        });
    }
    Ok(())
}

/// One pass over a word tape without materializing gates: opcode
/// validity, topological operands, input indices inside the declared
/// arity, header wire count, and output range.
pub(crate) fn check_word_tape(t: &WordTape) -> Result<(), TapeError> {
    let mut wires = 0u64;
    t.for_each_instruction(|word, op, a, b, c| {
        match op {
            OP_INPUT => check_operand(word, a, t.num_inputs)?,
            OP_CONST => {}
            OP_MUX => {
                for o in [a, b, c] {
                    check_operand(word, o, wires)?;
                }
            }
            OP_ASSERT | 11 => check_operand(word, a, wires)?,
            _ => {
                check_operand(word, a, wires)?;
                check_operand(word, b, wires)?;
            }
        }
        wires += 1;
        Ok(())
    })?;
    if wires != t.num_wires {
        return Err(TapeError::WireCountMismatch {
            header: t.num_wires,
            found: wires,
        });
    }
    for (i, &o) in t.outputs.iter().enumerate() {
        check_operand(t.code.len() + i, o, wires)?;
    }
    Ok(())
}

/// One pass over a bit tape: same checks as [`check_word_tape`] at the
/// bit level.
pub(crate) fn check_bit_tape(t: &BitTape) -> Result<(), TapeError> {
    let mut wires = 0u64;
    t.for_each_instruction(|word, op, a, b| {
        match op {
            BOP_CONST => {}
            BOP_INPUT => check_operand(word, a, t.num_inputs)?,
            BOP_XOR | BOP_AND => {
                check_operand(word, a, wires)?;
                check_operand(word, b, wires)?;
            }
            _ => check_operand(word, a, wires)?,
        }
        wires += 1;
        Ok(())
    })?;
    if wires != t.num_wires {
        return Err(TapeError::WireCountMismatch {
            header: t.num_wires,
            found: wires,
        });
    }
    for (i, &o) in t.outputs.iter().enumerate() {
        check_operand(t.code.len() + i, o, wires)?;
    }
    Ok(())
}

// ---- streaming lowering ----

/// Knobs for [`lower_streamed`]'s chunked window.
#[derive(Clone, Debug)]
pub struct StreamOptions {
    /// Instruction words per chunk.
    pub chunk_words: usize,
    /// Full chunks kept resident before the oldest spills to disk.
    pub window_chunks: usize,
    /// Directory for the spill file (`std::env::temp_dir()` when
    /// `None`).
    pub spill_dir: Option<PathBuf>,
}

impl StreamOptions {
    /// Defaults: 64Ki-word chunks (512 KiB), an 8-chunk window (4 MiB of
    /// resident encoded payload).
    pub fn new() -> StreamOptions {
        StreamOptions {
            chunk_words: 1 << 16,
            window_chunks: 8,
            spill_dir: None,
        }
    }

    /// Reads `QEC_STREAM_CHUNK` (words per chunk), `QEC_STREAM_WINDOW`
    /// (resident chunks), and `QEC_SPILL_DIR` on top of the defaults.
    pub fn from_env() -> StreamOptions {
        let mut o = StreamOptions::new();
        let read = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = read("QEC_STREAM_CHUNK") {
            o.chunk_words = v.max(16);
        }
        if let Some(v) = read("QEC_STREAM_WINDOW") {
            o.window_chunks = v.max(1);
        }
        if let Ok(d) = std::env::var("QEC_SPILL_DIR") {
            if !d.is_empty() {
                o.spill_dir = Some(PathBuf::from(d));
            }
        }
        o
    }

    /// A window so large nothing ever spills (for tests and small
    /// circuits).
    pub fn in_memory() -> StreamOptions {
        StreamOptions {
            chunk_words: 1 << 16,
            window_chunks: usize::MAX,
            spill_dir: None,
        }
    }
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions::new()
    }
}

/// Counters describing one [`lower_streamed`] run (also mirrored into
/// the global recorder as `tape.stream.*`).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Chunks spilled to disk.
    pub spills: u64,
    /// Code words that went through the spill file.
    pub spilled_words: u64,
    /// Peak resident encoded payload, in bytes (window + current chunk).
    pub peak_window_bytes: u64,
}

/// Monotonic id for spill-file names (several streams may run in one
/// process).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// The chunked, spillable code-word sink behind [`lower_streamed`].
struct ChunkSink {
    chunk_words: usize,
    window_chunks: usize,
    spill_dir: PathBuf,
    cur: Vec<u64>,
    window: VecDeque<Vec<u64>>,
    spill: Option<(File, PathBuf)>,
    stats: StreamStats,
}

impl ChunkSink {
    fn new(opts: &StreamOptions) -> ChunkSink {
        ChunkSink {
            chunk_words: opts.chunk_words.max(16),
            window_chunks: opts.window_chunks.max(1),
            spill_dir: opts.spill_dir.clone().unwrap_or_else(std::env::temp_dir),
            cur: Vec::new(),
            window: VecDeque::new(),
            spill: None,
            stats: StreamStats::default(),
        }
    }

    fn resident_bytes(&self) -> u64 {
        8 * (self.cur.len() as u64 + self.window.iter().map(|c| c.len() as u64).sum::<u64>())
    }

    fn push_word(&mut self, w: u64) -> Result<(), TapeError> {
        if self.cur.len() == self.chunk_words {
            let full = std::mem::take(&mut self.cur);
            self.window.push_back(full);
            if self.window.len() > self.window_chunks {
                self.spill_oldest()?;
            }
        }
        self.cur.push(w);
        self.stats.peak_window_bytes = self.stats.peak_window_bytes.max(self.resident_bytes());
        Ok(())
    }

    fn spill_oldest(&mut self) -> Result<(), TapeError> {
        let chunk = self.window.pop_front().expect("window is non-empty");
        if self.spill.is_none() {
            let name = format!(
                "qec-spill-{}-{}.tmp",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            );
            let path = self.spill_dir.join(name);
            let file = File::options()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| TapeError::Io(format!("{}: {e}", path.display())))?;
            self.spill = Some((file, path));
        }
        let (file, path) = self.spill.as_mut().expect("just created");
        let mut bytes = Vec::with_capacity(chunk.len() * 8);
        for w in &chunk {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        file.write_all(&bytes)
            .map_err(|e| TapeError::Io(format!("{}: {e}", path.display())))?;
        self.stats.spills += 1;
        self.stats.spilled_words += chunk.len() as u64;
        Ok(())
    }

    /// Stitches spilled chunks + resident window + current chunk back
    /// into one code vector, and removes the spill file.
    fn finish(mut self) -> Result<(Vec<u64>, StreamStats), TapeError> {
        let resident: usize = self.cur.len() + self.window.iter().map(Vec::len).sum::<usize>();
        let mut code = Vec::with_capacity(self.stats.spilled_words as usize + resident);
        if let Some((mut file, path)) = self.spill.take() {
            let err = |e: std::io::Error| TapeError::Io(format!("{}: {e}", path.display()));
            file.seek(SeekFrom::Start(0)).map_err(err)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes).map_err(err)?;
            let _ = std::fs::remove_file(&path);
            if bytes.len() != self.stats.spilled_words as usize * 8 {
                return Err(TapeError::Io(format!(
                    "{}: spill file holds {} bytes, expected {}",
                    path.display(),
                    bytes.len(),
                    self.stats.spilled_words * 8
                )));
            }
            for ch in bytes.chunks_exact(8) {
                code.push(u64::from_le_bytes(ch.try_into().unwrap()));
            }
        }
        for chunk in self.window.drain(..) {
            code.extend_from_slice(&chunk);
        }
        code.extend_from_slice(&self.cur);
        Ok((code, self.stats))
    }
}

impl Drop for ChunkSink {
    fn drop(&mut self) {
        if let Some((_, path)) = self.spill.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The [`BitRewrite`] store behind [`lower_streamed`]: identical rewrite
/// decisions to the sequential `Lowerer` (same CSE map, same NOT-cancel
/// peephole, same allocation order — that is what makes the output
/// byte-identical), but gates leave through the chunked sink as encoded
/// narrow instructions instead of accumulating in a `Vec<BGate>`.
///
/// `BitRewrite` methods return bare wire ids, so failures (id-space
/// exhaustion, spill I/O) poison the store via `err` and return a dummy
/// wire; the driver loop checks `err` after every word gate.
struct StreamLowerer {
    sink: ChunkSink,
    cse: HashMap<BGate, u32>,
    /// `w -> x` for every wire defined by `Not(x)` — the resident side
    /// map that replaces peeking at (possibly spilled) gate payloads.
    not_of: HashMap<u32, u32>,
    next: u64,
    err: Option<EvalError>,
}

impl StreamLowerer {
    fn new(opts: &StreamOptions) -> Result<StreamLowerer, TapeError> {
        let mut lw = StreamLowerer {
            sink: ChunkSink::new(opts),
            cse: HashMap::new(),
            not_of: HashMap::new(),
            next: 0,
            err: None,
        };
        // Same preseed as the sequential Lowerer: wires 0/1 are the
        // constants.
        let f = lw.append(BGate::Const(false));
        let t = lw.append(BGate::Const(true));
        debug_assert!(f == B_FALSE && t == B_TRUE);
        Ok(lw)
    }

    /// Allocates the next wire and encodes `g` into the sink, poisoning
    /// on overflow or I/O failure.
    fn append(&mut self, g: BGate) -> u32 {
        if self.err.is_some() {
            return B_FALSE;
        }
        let id = match checked_bit_id(self.next) {
            Ok(id) => id,
            Err(e) => {
                self.err = Some(e);
                return B_FALSE;
            }
        };
        let (op, a, b) = bgate_op(g);
        if a >= NARROW_LIMIT || b >= NARROW_LIMIT {
            self.err = Some(EvalError::Tape(TapeError::TooLargeForFormat {
                wires: self.next + 1,
                limit: NARROW_LIMIT,
            }));
            return B_FALSE;
        }
        if let Err(e) = self.sink.push_word(pack_narrow(op, a, b)) {
            self.err = Some(EvalError::Tape(e));
            return B_FALSE;
        }
        if let BGate::Not(x) = g {
            self.not_of.insert(id, x);
        }
        self.next += 1;
        id
    }
}

impl BitRewrite for StreamLowerer {
    fn push(&mut self, g: BGate) -> u32 {
        self.append(g)
    }

    fn intern(&mut self, key: BGate) -> u32 {
        if let Some(&w) = self.cse.get(&key) {
            return w;
        }
        let w = self.append(key);
        if self.err.is_none() {
            self.cse.insert(key, w);
        }
        w
    }

    fn not_operand(&self, w: u32) -> Option<u32> {
        self.not_of.get(&w).copied()
    }

    fn count_fold(&mut self) {}
}

/// Lowers a word circuit to a [`BitTape`] with bounded resident memory:
/// encoded gates stream through [`StreamOptions::window_chunks`] chunks
/// (spilling beyond that), and each word wire's bit vector is freed at
/// its last use. The tape decodes to the byte-identical [`BitCircuit`]
/// that [`lower_with`](crate::lower_with) produces.
///
/// Returns [`EvalError::CountOnly`] for count-mode circuits,
/// [`EvalError::CircuitTooLarge`] when the bit-wire id space runs out,
/// and [`EvalError::Tape`] for spill I/O failures.
pub fn lower_streamed(
    c: &Circuit,
    width: u32,
    opts: &StreamOptions,
) -> Result<(BitTape, StreamStats), EvalError> {
    if !c.is_evaluable() {
        return Err(EvalError::CountOnly);
    }
    let rec = qec_obs::global();
    let _span = rec.span("lower.stream");
    let w = width as usize;
    let src = c.gates();

    // Last consumer of each word wire; outputs stay pinned.
    let mut last_use: Vec<usize> = vec![0; src.len()];
    for (i, g) in src.iter().enumerate() {
        for op in g.operands().into_iter().flatten() {
            last_use[op as usize] = i;
        }
    }
    for &o in c.outputs() {
        last_use[o as usize] = usize::MAX;
    }

    let mut lw = StreamLowerer::new(opts).map_err(EvalError::Tape)?;
    if let Some(e) = lw.err.take() {
        return Err(e);
    }
    // Dead slots are replaced with the (allocation-free) empty vector,
    // so `lower_gate` keeps its dense `&[Vec<u32>]` view while freed
    // wires release their bit vectors. Operands are alive by
    // construction — topological order means an empty slot is never
    // read.
    let mut word_bits: Vec<Vec<u32>> = Vec::with_capacity(src.len());
    let mut num_input_bits = 0usize;
    for (i, g) in src.iter().enumerate() {
        if let Gate::Input(idx) = *g {
            num_input_bits = num_input_bits.max((idx + 1) * w);
        }
        let bits = lower_gate(&mut lw, *g, &word_bits, w);
        if let Some(e) = lw.err.take() {
            return Err(e);
        }
        word_bits.push(bits);
        // Free operands whose last consumer was this gate.
        for op in g.operands().into_iter().flatten() {
            if last_use[op as usize] == i {
                word_bits[op as usize] = Vec::new();
            }
        }
    }

    let outputs: Vec<u64> = c
        .outputs()
        .iter()
        .flat_map(|&wid| word_bits[wid as usize].iter().map(|&b| b as u64))
        .collect();
    let num_wires = lw.next;
    let (code, stats) = lw.sink.finish().map_err(EvalError::Tape)?;
    if rec.is_enabled() {
        rec.add("tape.stream.spills", stats.spills);
        rec.add("tape.stream.spilled_words", stats.spilled_words);
        rec.gauge_max("tape.stream.window_bytes", stats.peak_window_bytes);
        if let Some(rss) = qec_obs::peak_rss_bytes() {
            rec.gauge_max("tape.stream.peak_rss", rss);
        }
    }
    Ok((
        BitTape {
            format: FORMAT_NARROW,
            width,
            num_inputs: num_input_bits as u64,
            num_wires,
            code,
            outputs,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Mode};

    fn sample_circuit() -> Circuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let c5 = b.constant(5);
        let s = b.add(x, y);
        let p = b.mul(s, c5);
        let lt = b.lt(x, y);
        let m = b.mux(lt, s, p);
        let e = b.eq(m, c5);
        let n = b.not(e);
        let d = b.sub(m, x);
        let o = b.or(n, lt);
        let xr = b.xor(o, e);
        let an = b.and(xr, lt);
        b.assert_zero(an);
        b.finish(vec![m, d, xr])
    }

    #[test]
    fn word_tape_roundtrips_and_evaluates() {
        let c = sample_circuit();
        let t = WordTape::encode(&c).unwrap();
        assert_eq!(t.format(), FORMAT_NARROW);
        let back = t.decode().unwrap();
        assert_eq!(back.gates(), c.gates());
        assert_eq!(back.outputs(), c.outputs());
        assert_eq!(back.num_inputs(), c.num_inputs());
        for (x, y) in [(3u64, 9u64), (9, 3), (0, 0), (u64::MAX, 1)] {
            assert_eq!(t.evaluate(&[x, y]), c.evaluate(&[x, y]));
        }
        let bytes = t.to_bytes();
        let t2 = WordTape::from_bytes(&bytes).unwrap();
        assert_eq!(t2, t);
        assert_eq!(t2.to_bytes(), bytes);
    }

    #[test]
    fn corrupted_containers_are_rejected_with_typed_errors() {
        let t = WordTape::encode(&sample_circuit()).unwrap();
        let bytes = t.to_bytes();

        // bad magic
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert_eq!(WordTape::from_bytes(&b), Err(TapeError::BadMagic));

        // unsupported version
        let mut b = bytes.clone();
        b[8] = 99;
        assert_eq!(
            WordTape::from_bytes(&b),
            Err(TapeError::UnsupportedVersion(99))
        );

        // truncation (both header-level and payload-level)
        assert!(matches!(
            WordTape::from_bytes(&bytes[..10]),
            Err(TapeError::Truncated { .. })
        ));
        assert!(matches!(
            WordTape::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TapeError::Truncated { .. })
        ));

        // trailing bytes
        let mut b = bytes.clone();
        b.push(0);
        assert_eq!(WordTape::from_bytes(&b), Err(TapeError::TrailingBytes(1)));

        // flipped payload bit => checksum mismatch
        let mut b = bytes.clone();
        b[HEADER_BYTES + 2] ^= 0x10;
        assert!(matches!(
            WordTape::from_bytes(&b),
            Err(TapeError::ChecksumMismatch { .. })
        ));

        // wrong kind: a bit tape read as a word tape
        let bc = crate::lower_with(&sample_circuit(), 8, &crate::CompileOptions::sequential());
        let bt = BitTape::encode(&bc).to_bytes();
        assert_eq!(
            WordTape::from_bytes(&bt),
            Err(TapeError::WrongKind {
                expected: KIND_WORD,
                got: KIND_BIT
            })
        );
    }

    #[test]
    fn bit_tape_roundtrips_and_evaluates() {
        let c = sample_circuit();
        let bc = crate::lower_with(&c, 16, &crate::CompileOptions::sequential());
        let t = BitTape::encode(&bc);
        let back = t.decode().unwrap();
        assert_eq!(back.gates(), bc.gates());
        assert_eq!(back.outputs(), bc.outputs());
        assert_eq!(back.num_inputs(), bc.num_inputs());
        assert_eq!(back.width(), bc.width());
        let inputs = bc.pack_inputs(&[7, 11]);
        assert_eq!(t.evaluate(&inputs), bc.evaluate(&inputs));
        let bytes = t.to_bytes();
        let t2 = BitTape::from_bytes(&bytes).unwrap();
        assert_eq!(t2, t);
    }

    #[test]
    fn wide_format_roundtrips() {
        // Force the wide path via a tape built by hand (a real >2^30-wire
        // circuit is not something a unit test materializes).
        let c = sample_circuit();
        let bc = crate::lower_with(&c, 8, &crate::CompileOptions::sequential());
        let narrow = BitTape::encode(&bc);
        let mut code = Vec::new();
        for &g in bc.gates() {
            let (op, a, b) = bgate_op(g);
            code.push(op);
            code.push(a);
            if bit_op_arity(op) == 2 {
                code.push(b);
            }
        }
        let wide = BitTape {
            format: FORMAT_WIDE,
            width: narrow.width,
            num_inputs: narrow.num_inputs,
            num_wires: narrow.num_wires,
            code,
            outputs: narrow.outputs.clone(),
        };
        let back = BitTape::from_bytes(&wide.to_bytes()).unwrap();
        assert_eq!(back.decode().unwrap().gates(), bc.gates());
        let inputs = bc.pack_inputs(&[3, 200]);
        assert_eq!(wide.evaluate(&inputs), bc.evaluate(&inputs));
    }

    #[test]
    fn streaming_lowering_is_byte_identical_to_lower_with() {
        let c = sample_circuit();
        let bc = crate::lower_with(&c, 32, &crate::CompileOptions::sequential());
        // Tiny chunks + window of 1 so the spill path actually runs.
        let opts = StreamOptions {
            chunk_words: 16,
            window_chunks: 1,
            spill_dir: None,
        };
        let (tape, stats) = lower_streamed(&c, 32, &opts).unwrap();
        assert!(stats.spills > 0, "test must exercise the spill path");
        let back = tape.decode().unwrap();
        assert_eq!(back.gates(), bc.gates());
        assert_eq!(back.outputs(), bc.outputs());
        assert_eq!(back.num_inputs(), bc.num_inputs());
        // And without spilling, the exact same tape.
        let (t2, s2) = lower_streamed(&c, 32, &StreamOptions::in_memory()).unwrap();
        assert_eq!(s2.spills, 0);
        assert_eq!(t2, tape);
    }

    #[test]
    fn streamed_overflow_returns_circuit_too_large() {
        // Cheap overflow regression: inject a next-id just under the cap
        // and push a handful of gates — no 4-billion-gate circuit needed.
        let mut lw = StreamLowerer::new(&StreamOptions::in_memory()).unwrap();
        lw.next = MAX_BIT_WIRES - 1;
        assert!(lw.err.is_none());
        lw.append(BGate::Input(0)); // takes the last two ids
        lw.append(BGate::Input(1));
        assert!(lw.err.is_none());
        lw.append(BGate::Input(2)); // one past the end
        match lw.err {
            Some(EvalError::CircuitTooLarge { wires, limit }) => {
                assert_eq!(limit, MAX_BIT_WIRES + 1);
                assert!(wires > limit);
            }
            ref other => panic!("expected CircuitTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn checked_wire_helpers_reject_the_cap() {
        assert!(crate::ir::checked_wire_id(0).is_ok());
        assert!(crate::ir::checked_wire_id(u32::MAX as u64 - 1).is_ok());
        assert!(matches!(
            crate::ir::checked_wire_id(u32::MAX as u64),
            Err(EvalError::CircuitTooLarge { .. })
        ));
        assert!(checked_bit_id(MAX_BIT_WIRES).is_ok());
        assert!(matches!(
            checked_bit_id(MAX_BIT_WIRES + 1),
            Err(EvalError::CircuitTooLarge { .. })
        ));
    }
}
