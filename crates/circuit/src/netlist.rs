//! Circuit descriptions as netlists (uniformity, Sec. 4.2).
//!
//! The paper requires circuit families to be *uniform*: a low-space
//! machine must be able to emit the circuit description from the query
//! and the degree constraints. Our builders are streaming — gates are
//! emitted in topological order with O(1) state beyond wire ids — and
//! this module makes the description concrete: a line-oriented textual
//! netlist that can be shipped (e.g. to the outsourced-query service
//! provider of Sec. 1), parsed back, and evaluated. Generation is
//! deterministic: the same query and constraints produce byte-identical
//! netlists.
//!
//! Format (one gate per line, wires named by index):
//!
//! ```text
//! qec-netlist v1 inputs=<k> wires=<w>
//! 0 input 0
//! 1 const 42
//! 2 add 0 1
//! ...
//! output 2 5 7
//! ```

use std::fmt::Write as _;

use crate::ir::{Builder, Circuit, Gate, Mode};

/// Serializes a materialized circuit as a textual netlist.
///
/// # Panics
/// Panics if the circuit was built in count-only mode (there are no gates
/// to describe).
pub fn write_netlist(c: &Circuit) -> String {
    assert!(c.is_evaluable(), "cannot serialize a count-only circuit");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qec-netlist v1 inputs={} wires={}",
        c.num_inputs(),
        c.num_wires()
    );
    for (i, g) in c.gates().iter().enumerate() {
        let line = match *g {
            Gate::Input(idx) => format!("{i} input {idx}"),
            Gate::Const(v) => format!("{i} const {v}"),
            Gate::Add(a, b) => format!("{i} add {a} {b}"),
            Gate::Sub(a, b) => format!("{i} sub {a} {b}"),
            Gate::Mul(a, b) => format!("{i} mul {a} {b}"),
            Gate::Eq(a, b) => format!("{i} eq {a} {b}"),
            Gate::Lt(a, b) => format!("{i} lt {a} {b}"),
            Gate::And(a, b) => format!("{i} and {a} {b}"),
            Gate::Or(a, b) => format!("{i} or {a} {b}"),
            Gate::Xor(a, b) => format!("{i} xor {a} {b}"),
            Gate::Not(a) => format!("{i} not {a}"),
            Gate::Mux(s, a, b) => format!("{i} mux {s} {a} {b}"),
            Gate::AssertZero(a) => format!("{i} assertz {a}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("output");
    for w in c.outputs() {
        let _ = write!(out, " {w}");
    }
    out.push('\n');
    out
}

/// Netlist parse failures, positioned at the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line) of the offending
    /// token; 1 when the whole line (or its absence) is the problem.
    pub column: usize,
    /// What went wrong, quoting the offending token when there is one.
    pub message: String,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "netlist line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for NetlistError {}

/// A whitespace-separated token with its 1-based column.
#[derive(Clone, Copy)]
struct PosTok<'a> {
    text: &'a str,
    col: usize,
}

/// Splits a line into tokens, keeping each token's byte column.
fn tokens(line: &str) -> Vec<PosTok<'_>> {
    let bytes = line.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        toks.push(PosTok {
            text: &line[start..i],
            col: start + 1,
        });
    }
    toks
}

/// Parses a netlist back into an evaluable circuit. The result evaluates
/// identically to the serialized circuit (round-trip tested).
///
/// Malformed input — truncated bodies, out-of-order or duplicate wire
/// ids, wrong gate arity, trailing garbage, duplicate `output` lines —
/// is rejected with a [`NetlistError`] naming the line, column, and
/// offending token; no input can make this function panic.
pub fn read_netlist(src: &str) -> Result<Circuit, NetlistError> {
    let err = |line: usize, column: usize, message: String| NetlistError {
        line,
        column,
        message,
    };
    let mut lines = src.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(1, 1, "empty netlist".into()))?;
    let rest = header
        .strip_prefix("qec-netlist v1 ")
        .ok_or_else(|| err(1, 1, format!("bad header {header:?}")))?;
    // `inputs=<k> wires=<w>` — the declared counts are validated against
    // the body so truncated netlists are rejected, not silently accepted.
    let header_count = |key: &str| -> Result<usize, NetlistError> {
        let field = tokens(rest)
            .into_iter()
            .find_map(|t| {
                t.text
                    .strip_prefix(key)
                    .and_then(|v| v.strip_prefix('='))
                    .map(|v| (v.to_string(), t.col))
            })
            .ok_or_else(|| err(1, 1, format!("header missing {key}=<n>")))?;
        let col = "qec-netlist v1 ".len() + field.1;
        field
            .0
            .parse()
            .map_err(|_| err(1, col, format!("bad {key} count {:?}", field.0)))
    };
    let declared_inputs = header_count("inputs")?;
    let declared_wires = header_count("wires")?;

    // No hash-consing: a netlist names wires by dense position, so every
    // line must allocate exactly one builder wire even when the source
    // text contains structurally duplicate gates.
    let mut b = Builder::without_cse(Mode::Build);
    let mut wires: Vec<crate::WireId> = Vec::new();
    let mut num_inputs = 0usize;
    let mut outputs: Option<Vec<crate::WireId>> = None;
    let mut last_line = 1;
    for (ln0, line) in lines {
        let ln = ln0 + 1;
        last_line = ln;
        let toks = tokens(line);
        let Some(first) = toks.first().copied() else {
            continue;
        };
        if first.text == "output" {
            if outputs.is_some() {
                return Err(err(ln, first.col, "duplicate output line".into()));
            }
            let mut outs = Vec::new();
            for t in &toks[1..] {
                let idx: usize = t
                    .text
                    .parse()
                    .map_err(|_| err(ln, t.col, format!("bad output wire {:?}", t.text)))?;
                outs.push(
                    *wires
                        .get(idx)
                        .ok_or_else(|| err(ln, t.col, format!("output wire {idx} out of range")))?,
                );
            }
            outputs = Some(outs);
            continue;
        }
        if outputs.is_some() {
            return Err(err(
                ln,
                first.col,
                format!("gate line {:?} after the output line", first.text),
            ));
        }
        let declared: usize = first
            .text
            .parse()
            .map_err(|_| err(ln, first.col, format!("bad wire id {:?}", first.text)))?;
        if declared != wires.len() {
            return Err(err(
                ln,
                first.col,
                format!(
                    "wire ids must be dense and in order: expected {}, found {declared}",
                    wires.len()
                ),
            ));
        }
        let op = *toks
            .get(1)
            .ok_or_else(|| err(ln, first.col + first.text.len(), "missing opcode".into()))?;
        // Operand accessors index past `<wire> <opcode>`.
        let num = |k: usize, what: &str| -> Result<u64, NetlistError> {
            let t = toks
                .get(k + 2)
                .ok_or_else(|| err(ln, op.col + op.text.len(), format!("missing {what}")))?;
            t.text
                .parse()
                .map_err(|_| err(ln, t.col, format!("bad {what} {:?}", t.text)))
        };
        let wire = |k: usize, what: &str| -> Result<crate::WireId, NetlistError> {
            let idx = num(k, what)? as usize;
            wires.get(idx).copied().ok_or_else(|| {
                let t = toks[k + 2];
                err(ln, t.col, format!("{what} {idx} out of range"))
            })
        };
        let (w, arity) = match op.text {
            "input" => {
                let _ = num(0, "input index")?;
                num_inputs += 1;
                (b.input(), 1)
            }
            // bypass the const cache to keep wire ids aligned with the
            // source netlist
            "const" => (b.raw_const(num(0, "constant")?), 1),
            "add" | "sub" | "mul" | "eq" | "lt" | "and" | "or" | "xor" => {
                let x = wire(0, "lhs")?;
                let y = wire(1, "rhs")?;
                let w = match op.text {
                    "add" => b.add(x, y),
                    "sub" => b.sub(x, y),
                    "mul" => b.mul(x, y),
                    "eq" => b.eq(x, y),
                    "lt" => b.lt(x, y),
                    "and" => b.and(x, y),
                    "or" => b.or(x, y),
                    _ => b.xor(x, y),
                };
                (w, 2)
            }
            "not" => (b.not(wire(0, "operand")?), 1),
            "mux" => {
                let s = wire(0, "selector")?;
                let x = wire(1, "lhs")?;
                let y = wire(2, "rhs")?;
                (b.mux(s, x, y), 3)
            }
            "assertz" => (b.assert_zero(wire(0, "operand")?), 1),
            other => return Err(err(ln, op.col, format!("unknown opcode {other:?}"))),
        };
        if let Some(extra) = toks.get(arity + 2) {
            return Err(err(
                ln,
                extra.col,
                format!(
                    "{} takes {arity} operand{}, found trailing token {:?}",
                    op.text,
                    if arity == 1 { "" } else { "s" },
                    extra.text
                ),
            ));
        }
        wires.push(w);
    }
    let outputs = outputs.ok_or_else(|| err(last_line, 1, "missing output line".into()))?;
    if wires.len() != declared_wires {
        return Err(err(
            last_line,
            1,
            format!(
                "truncated netlist: header declares {declared_wires} wires, body has {}",
                wires.len()
            ),
        ));
    }
    if num_inputs != declared_inputs {
        return Err(err(
            last_line,
            1,
            format!("header declares {declared_inputs} inputs, body has {num_inputs}"),
        ));
    }
    Ok(b.finish(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::sort::{sort_slots, SortKey};
    use qec_relation::{Relation, Var};

    fn sample_circuit() -> Circuit {
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], 6);
        let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
        b.finish(s.flatten())
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let c = sample_circuit();
        let text = write_netlist(&c);
        let back = read_netlist(&text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            vec![vec![5, 1], vec![2, 2], vec![9, 3]],
        );
        let inputs = relation_to_values(&r, 6).unwrap();
        assert_eq!(
            c.evaluate(&inputs).unwrap(),
            back.evaluate(&inputs).unwrap()
        );
        let decoded = decode_relation(&[Var(0), Var(1)], &back.evaluate(&inputs).unwrap());
        assert_eq!(decoded, r);
    }

    #[test]
    fn generation_is_deterministic() {
        // uniformity in practice: identical parameters → identical bytes
        let a = write_netlist(&sample_circuit());
        let b = write_netlist(&sample_circuit());
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_are_positioned() {
        assert!(read_netlist("").is_err());
        assert!(read_netlist("bogus header\n").is_err());
        let bad = "qec-netlist v1 inputs=0 wires=1\n0 frobnicate 1\noutput 0\n";
        let e = match read_netlist(bad) {
            Err(e) => e,
            Ok(_) => panic!("bad opcode accepted"),
        };
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 3); // the opcode token, after "0 "
        assert!(e.message.contains("frobnicate"), "{e}");
        // forward references are rejected
        let fwd = "qec-netlist v1 inputs=0 wires=2\n0 not 1\n1 const 0\noutput 0\n";
        assert!(read_netlist(fwd).is_err());
    }

    fn err_of(r: Result<Circuit, NetlistError>) -> NetlistError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("malformed netlist accepted"),
        }
    }

    #[test]
    fn truncated_netlists_are_rejected() {
        // header promises 3 wires, body delivers 2
        let t = "qec-netlist v1 inputs=1 wires=3\n0 input 0\n1 not 0\noutput 1\n";
        let e = err_of(read_netlist(t));
        assert!(e.message.contains("truncated"), "{e}");
        // header promises 2 inputs, body delivers 1
        let t = "qec-netlist v1 inputs=2 wires=2\n0 input 0\n1 not 0\noutput 1\n";
        let e = err_of(read_netlist(t));
        assert!(e.message.contains("declares 2 inputs"), "{e}");
        // missing output line entirely
        let t = "qec-netlist v1 inputs=1 wires=1\n0 input 0\n";
        let e = err_of(read_netlist(t));
        assert!(e.message.contains("missing output"), "{e}");
        // header counts must parse
        assert!(read_netlist("qec-netlist v1 inputs=x wires=1\noutput\n").is_err());
        assert!(read_netlist("qec-netlist v1 inputs=1\noutput\n").is_err());
    }

    #[test]
    fn duplicate_wires_are_rejected() {
        // same wire id declared twice
        let d = "qec-netlist v1 inputs=2 wires=2\n0 input 0\n0 input 1\noutput 0\n";
        let e = err_of(read_netlist(d));
        assert_eq!(e.line, 3);
        assert!(e.message.contains("dense and in order"), "{e}");
        // duplicate output line
        let d = "qec-netlist v1 inputs=1 wires=1\n0 input 0\noutput 0\noutput 0\n";
        let e = err_of(read_netlist(d));
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate output"), "{e}");
        // gate lines after the output line
        let d = "qec-netlist v1 inputs=2 wires=2\n0 input 0\noutput 0\n1 input 1\n";
        let e = err_of(read_netlist(d));
        assert!(e.message.contains("after the output line"), "{e}");
    }

    #[test]
    fn bad_arity_netlists_are_rejected() {
        // binary op with three operands
        let b3 = "qec-netlist v1 inputs=2 wires=3\n0 input 0\n1 input 1\n2 add 0 1 1\noutput 2\n";
        let e = err_of(read_netlist(b3));
        assert_eq!((e.line, e.column), (4, 11));
        assert!(e.message.contains("trailing token"), "{e}");
        // unary op with two operands
        let n2 = "qec-netlist v1 inputs=1 wires=2\n0 input 0\n1 not 0 0\noutput 1\n";
        assert!(err_of(read_netlist(n2)).message.contains("trailing"));
        // binary op with one operand
        let b1 = "qec-netlist v1 inputs=1 wires=2\n0 input 0\n1 add 0\noutput 1\n";
        assert!(err_of(read_netlist(b1)).message.contains("missing rhs"));
        // mux with two operands
        let m2 = "qec-netlist v1 inputs=2 wires=3\n0 input 0\n1 input 1\n2 mux 0 1\noutput 2\n";
        assert!(err_of(read_netlist(m2)).message.contains("missing rhs"));
    }

    #[test]
    fn assertions_survive_roundtrip() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let back = read_netlist(&write_netlist(&c)).unwrap();
        assert!(back.evaluate(&[0]).is_ok());
        assert!(back.evaluate(&[7]).is_err());
    }
}
