//! Circuit descriptions as netlists (uniformity, Sec. 4.2).
//!
//! The paper requires circuit families to be *uniform*: a low-space
//! machine must be able to emit the circuit description from the query
//! and the degree constraints. Our builders are streaming — gates are
//! emitted in topological order with O(1) state beyond wire ids — and
//! this module makes the description concrete: a line-oriented textual
//! netlist that can be shipped (e.g. to the outsourced-query service
//! provider of Sec. 1), parsed back, and evaluated. Generation is
//! deterministic: the same query and constraints produce byte-identical
//! netlists.
//!
//! Format (one gate per line, wires named by index):
//!
//! ```text
//! qec-netlist v1 inputs=<k> wires=<w>
//! 0 input 0
//! 1 const 42
//! 2 add 0 1
//! ...
//! output 2 5 7
//! ```

use std::fmt::Write as _;

use crate::ir::{Builder, Circuit, Gate, Mode};

/// Serializes a materialized circuit as a textual netlist.
///
/// # Panics
/// Panics if the circuit was built in count-only mode (there are no gates
/// to describe).
pub fn write_netlist(c: &Circuit) -> String {
    assert!(c.is_evaluable(), "cannot serialize a count-only circuit");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "qec-netlist v1 inputs={} wires={}",
        c.num_inputs(),
        c.num_wires()
    );
    for (i, g) in c.gates().iter().enumerate() {
        let line = match *g {
            Gate::Input(idx) => format!("{i} input {idx}"),
            Gate::Const(v) => format!("{i} const {v}"),
            Gate::Add(a, b) => format!("{i} add {a} {b}"),
            Gate::Sub(a, b) => format!("{i} sub {a} {b}"),
            Gate::Mul(a, b) => format!("{i} mul {a} {b}"),
            Gate::Eq(a, b) => format!("{i} eq {a} {b}"),
            Gate::Lt(a, b) => format!("{i} lt {a} {b}"),
            Gate::And(a, b) => format!("{i} and {a} {b}"),
            Gate::Or(a, b) => format!("{i} or {a} {b}"),
            Gate::Xor(a, b) => format!("{i} xor {a} {b}"),
            Gate::Not(a) => format!("{i} not {a}"),
            Gate::Mux(s, a, b) => format!("{i} mux {s} {a} {b}"),
            Gate::AssertZero(a) => format!("{i} assertz {a}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("output");
    for w in c.outputs() {
        let _ = write!(out, " {w}");
    }
    out.push('\n');
    out
}

/// Netlist parse failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetlistError {}

/// Parses a netlist back into an evaluable circuit. The result evaluates
/// identically to the serialized circuit (round-trip tested).
pub fn read_netlist(src: &str) -> Result<Circuit, NetlistError> {
    let err = |line: usize, message: &str| NetlistError {
        line,
        message: message.to_string(),
    };
    let mut lines = src.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty netlist"))?;
    if !header.starts_with("qec-netlist v1 ") {
        return Err(err(1, "bad header"));
    }

    // No hash-consing: a netlist names wires by dense position, so every
    // line must allocate exactly one builder wire even when the source
    // text contains structurally duplicate gates.
    let mut b = Builder::without_cse(Mode::Build);
    let mut wires: Vec<crate::WireId> = Vec::new();
    let mut outputs: Option<Vec<crate::WireId>> = None;
    for (ln0, line) in lines {
        let ln = ln0 + 1;
        let mut parts = line.split_whitespace();
        let first = match parts.next() {
            Some(p) => p,
            None => continue,
        };
        if first == "output" {
            let mut outs = Vec::new();
            for p in parts {
                let idx: usize = p.parse().map_err(|_| err(ln, "bad output wire"))?;
                outs.push(
                    *wires
                        .get(idx)
                        .ok_or_else(|| err(ln, "output wire out of range"))?,
                );
            }
            outputs = Some(outs);
            continue;
        }
        let declared: usize = first.parse().map_err(|_| err(ln, "bad wire id"))?;
        if declared != wires.len() {
            return Err(err(ln, "wire ids must be dense and in order"));
        }
        let toks: Vec<&str> = parts.collect();
        if toks.is_empty() {
            return Err(err(ln, "missing opcode"));
        }
        let op = toks[0];
        let num = |k: usize, what: &str| -> Result<u64, NetlistError> {
            toks.get(k + 1)
                .ok_or_else(|| err(ln, &format!("missing {what}")))?
                .parse()
                .map_err(|_| err(ln, &format!("bad {what}")))
        };
        let wire = |k: usize, what: &str| -> Result<crate::WireId, NetlistError> {
            let idx = num(k, what)? as usize;
            wires
                .get(idx)
                .copied()
                .ok_or_else(|| err(ln, &format!("{what} out of range")))
        };
        let w = match op {
            "input" => {
                let _ = num(0, "input index")?;
                b.input()
            }
            "const" => {
                // bypass the const cache to keep wire ids aligned with the
                // source netlist
                b.raw_const(num(0, "constant")?)
            }
            "add" | "sub" | "mul" | "eq" | "lt" | "and" | "or" | "xor" => {
                let x = wire(0, "lhs")?;
                let y = wire(1, "rhs")?;
                match op {
                    "add" => b.add(x, y),
                    "sub" => b.sub(x, y),
                    "mul" => b.mul(x, y),
                    "eq" => b.eq(x, y),
                    "lt" => b.lt(x, y),
                    "and" => b.and(x, y),
                    "or" => b.or(x, y),
                    _ => b.xor(x, y),
                }
            }
            "not" => {
                let x = wire(0, "operand")?;
                b.not(x)
            }
            "mux" => {
                let s = wire(0, "selector")?;
                let x = wire(1, "lhs")?;
                let y = wire(2, "rhs")?;
                b.mux(s, x, y)
            }
            "assertz" => {
                let x = wire(0, "operand")?;
                b.assert_zero(x)
            }
            other => return Err(err(ln, &format!("unknown opcode {other}"))),
        };
        wires.push(w);
    }
    let outputs = outputs.ok_or_else(|| err(0, "missing output line"))?;
    Ok(b.finish(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::sort::{sort_slots, SortKey};
    use qec_relation::{Relation, Var};

    fn sample_circuit() -> Circuit {
        let mut b = Builder::new(Mode::Build);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], 6);
        let s = sort_slots(&mut b, &w, &SortKey::Columns(vec![Var(0)]));
        b.finish(s.flatten())
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let c = sample_circuit();
        let text = write_netlist(&c);
        let back = read_netlist(&text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        let r = Relation::from_rows(
            vec![Var(0), Var(1)],
            vec![vec![5, 1], vec![2, 2], vec![9, 3]],
        );
        let inputs = relation_to_values(&r, 6).unwrap();
        assert_eq!(
            c.evaluate(&inputs).unwrap(),
            back.evaluate(&inputs).unwrap()
        );
        let decoded = decode_relation(&[Var(0), Var(1)], &back.evaluate(&inputs).unwrap());
        assert_eq!(decoded, r);
    }

    #[test]
    fn generation_is_deterministic() {
        // uniformity in practice: identical parameters → identical bytes
        let a = write_netlist(&sample_circuit());
        let b = write_netlist(&sample_circuit());
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_are_positioned() {
        assert!(read_netlist("").is_err());
        assert!(read_netlist("bogus header\n").is_err());
        let bad = "qec-netlist v1 inputs=0 wires=1\n0 frobnicate 1\noutput 0\n";
        let e = match read_netlist(bad) {
            Err(e) => e,
            Ok(_) => panic!("bad opcode accepted"),
        };
        assert_eq!(e.line, 2);
        // forward references are rejected
        let fwd = "qec-netlist v1 inputs=0 wires=2\n0 not 1\n1 const 0\noutput 0\n";
        assert!(read_netlist(fwd).is_err());
    }

    #[test]
    fn assertions_survive_roundtrip() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let back = read_netlist(&write_netlist(&c)).unwrap();
        assert!(back.evaluate(&[0]).is_ok());
        assert!(back.evaluate(&[7]).is_err());
    }
}
