//! Primary-key join (Alg. 6), semijoin, and degree-bounded join (Alg. 7).

use qec_relation::{Var, VarSet};

use crate::ops::project;
use crate::rel::{RelWires, SlotWires, QMARK};
use crate::scan::segmented_scan;
use crate::sort::{sort_slots_with, SortKey};
use crate::{Builder, WireId};

/// One row of the internal key/payload representation used by the join
/// circuits: `r_fields` in the probe relation's schema order, an opaque
/// payload, and a validity flag.
struct PayloadSlot {
    r_fields: Vec<WireId>,
    payload: Vec<WireId>,
    valid: WireId,
}

/// Core of Alg. 6, generalized: joins every slot of `r` with the unique
/// `s`-slot sharing its key (the common variables), where the `s` side is
/// given as `(key fields, payload)` rows with the key a primary key.
///
/// Returns `r.capacity()` result slots: the `r` fields plus the matched
/// payload; unmatched `r` slots come back invalid. Size
/// `Õ(M + N')·(arity+payload)`, depth `Õ(1)`.
fn join_pk_payload(
    b: &mut Builder,
    r: &RelWires,
    common: VarSet,
    s_rows: &[(Vec<WireId>, Vec<WireId>, WireId)], // (key, payload, valid)
    payload_len: usize,
) -> Vec<PayloadSlot> {
    let key_cols: Vec<usize> = common
        .iter()
        .map(|v| r.col(v).expect("common in r"))
        .collect();
    let key_len = key_cols.len();
    let arity = r.arity();
    let qm = b.constant(QMARK);
    let zero = b.constant(0);
    let one = b.constant(1);

    // Combined rows J = R(A,B,?) ∪ S(?,B,C) (Alg. 6 lines 1–3). Each row:
    // key, r-fields (QMARK on S rows), payload (QMARK on R rows), origin
    // tie (S = 0 sorts first within a key group, line 4), is_s marker.
    struct Row {
        key: Vec<WireId>,
        r_fields: Vec<WireId>,
        payload: Vec<WireId>,
        origin: WireId,
        is_s: WireId,
        valid: WireId,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(r.capacity() + s_rows.len());
    for s in &r.slots {
        rows.push(Row {
            key: key_cols.iter().map(|&c| s.fields[c]).collect(),
            r_fields: s.fields.clone(),
            payload: vec![qm; payload_len],
            origin: one,
            is_s: zero,
            valid: s.valid,
        });
    }
    for (key, payload, valid) in s_rows {
        assert_eq!(key.len(), key_len, "s-side key arity mismatch");
        assert_eq!(payload.len(), payload_len, "s-side payload arity mismatch");
        rows.push(Row {
            key: key.clone(),
            r_fields: vec![qm; arity],
            payload: payload.clone(),
            origin: zero,
            is_s: one,
            valid: *valid,
        });
    }

    // Sort by (valid desc, key, origin) — dummies last, S before R within
    // each key group. We reuse the slot sorter by packing everything into
    // fields + extra columns.
    let sort_schema: Vec<Var> = common.to_vec();
    let sort_rel = RelWires {
        schema: sort_schema.clone(),
        slots: rows
            .iter()
            .map(|row| SlotWires {
                fields: row.key.clone(),
                valid: row.valid,
            })
            .collect(),
    };
    let mut extra: Vec<Vec<WireId>> = Vec::new();
    extra.push(rows.iter().map(|row| row.origin).collect());
    for i in 0..arity {
        extra.push(rows.iter().map(|row| row.r_fields[i]).collect());
    }
    for i in 0..payload_len {
        extra.push(rows.iter().map(|row| row.payload[i]).collect());
    }
    extra.push(rows.iter().map(|row| row.is_s).collect());
    let key = SortKey::ColumnsThen(sort_schema, 0);
    let (sorted, extras) = sort_slots_with(b, &sort_rel, &key, &extra);
    let n = sorted.capacity();

    // Segmented "repetition" scan (Alg. 6 line 5): within each key group
    // the S row (if any) is first; copy its payload and marker down the
    // group. Dummy rows get a QMARK key so they form their own segment.
    let keys: Vec<Vec<WireId>> = b.fork_join(n, |i, bb| {
        sorted.slots[i]
            .fields
            .iter()
            .map(|&f| bb.mux(sorted.slots[i].valid, f, qm))
            .collect()
    });

    // Key-uniqueness check: Alg. 6 requires the shared attributes to be a
    // primary key of S. Two valid S rows with equal keys are adjacent
    // after the sort; assert that never happens, so violated promises
    // surface as evaluation errors instead of silently dropped matches.
    // Each adjacent pair is independent, so the checks fork; the replay
    // log splices children in index order, keeping assert order stable.
    let s_col = &extras[1 + arity + payload_len];
    b.fork_join(n.saturating_sub(1), |i, bb| {
        let same = bb.vec_eq(&keys[i], &keys[i + 1]);
        let both_valid = bb.and(sorted.slots[i].valid, sorted.slots[i + 1].valid);
        let both_s = bb.and(s_col[i], s_col[i + 1]);
        let bad0 = bb.and(same, both_valid);
        let bad = bb.and(bad0, both_s);
        bb.assert_zero(bad);
    });
    let vals: Vec<Vec<WireId>> = (0..n)
        .map(|i| {
            let mut v = vec![extras[1 + arity + payload_len][i]]; // is_s
            for p in 0..payload_len {
                v.push(extras[1 + arity + p][i]);
            }
            v
        })
        .collect();
    let scanned = segmented_scan(b, &keys, &vals, &mut |_b, a, _x| a.to_vec());

    // Keep R-originated rows that found an S row (line 6–8); reconstruct
    // r fields from the carried extras.
    b.fork_join(n, |i, bb| {
        let origin_r = extras[0][i]; // 1 for R rows
        let matched = scanned[i][0];
        let valid0 = bb.and(sorted.slots[i].valid, origin_r);
        let valid = bb.and(valid0, matched);
        PayloadSlot {
            r_fields: (0..arity).map(|c| extras[1 + c][i]).collect(),
            payload: scanned[i][1..].to_vec(),
            valid,
        }
    })
}

/// Packs payload slots into a relation over `r.vars ∪ payload_vars` and
/// truncates to `capacity` (asserting no real tuple is dropped).
fn payload_to_rel(
    b: &mut Builder,
    r_schema: &[Var],
    payload_vars: &[Var],
    slots: Vec<PayloadSlot>,
    capacity: usize,
) -> RelWires {
    let out_vars: VarSet = r_schema
        .iter()
        .copied()
        .chain(payload_vars.iter().copied())
        .collect();
    let out_schema: Vec<Var> = out_vars.to_vec();
    let rel = RelWires {
        schema: out_schema.clone(),
        slots: slots
            .into_iter()
            .map(|ps| {
                let fields = out_schema
                    .iter()
                    .map(|v| {
                        if let Some(c) = r_schema.iter().position(|rv| rv == v) {
                            ps.r_fields[c]
                        } else {
                            let c = payload_vars
                                .iter()
                                .position(|pv| pv == v)
                                .expect("payload var");
                            ps.payload[c]
                        }
                    })
                    .collect();
                SlotWires {
                    fields,
                    valid: ps.valid,
                }
            })
            .collect(),
    };
    crate::ops::truncate(b, &rel, capacity)
}

/// Primary-key join `R ⋈ S` (Alg. 6, Fig. 3): the common variables form a
/// primary key of `S` (at most one `S` tuple per key value — the `N = 1`
/// case of the degree-bounded join). Output capacity `M = |R|`'s capacity;
/// size `Õ(M + N')`, depth `Õ(1)`.
pub fn join_pk(b: &mut Builder, r: &RelWires, s: &RelWires) -> RelWires {
    let common = r.vars().intersect(s.vars());
    let s_only: Vec<Var> = s.vars().minus(common).to_vec();
    let key_cols: Vec<usize> = common
        .iter()
        .map(|v| s.col(v).expect("common in s"))
        .collect();
    let payload_cols: Vec<usize> = s_only
        .iter()
        .map(|&v| s.col(v).expect("s-only in s"))
        .collect();
    let s_rows: Vec<(Vec<WireId>, Vec<WireId>, WireId)> = s
        .slots
        .iter()
        .map(|slot| {
            (
                key_cols.iter().map(|&c| slot.fields[c]).collect(),
                payload_cols.iter().map(|&c| slot.fields[c]).collect(),
                slot.valid,
            )
        })
        .collect();
    let m = r.capacity();
    let joined = join_pk_payload(b, r, common, &s_rows, s_only.len());
    payload_to_rel(b, &r.schema.clone(), &s_only, joined, m)
}

/// Semijoin `R ⋉ S` (Sec. 6.2): implemented as
/// `R ⋈ Π_{R∩S}(S)` — after the projection the join is a primary-key
/// join. Output schema and capacity match `R`.
pub fn semijoin(b: &mut Builder, r: &RelWires, s: &RelWires) -> RelWires {
    let common = r.vars().intersect(s.vars());
    let keys = project(b, s, common);
    join_pk(b, r, &keys)
}

/// Degree-bounded join `R ⋈ S` (Alg. 7, Fig. 4) under
/// `deg_{common}(S) ≤ deg_bound`. Output capacity `M · deg_bound`; size
/// `Õ(M·deg + N')`, depth `Õ(1)`.
///
/// The construction follows the paper exactly: semijoin `S` with
/// `Π_B(R)`, then `n = ⌈log₂ deg⌉` halving rounds that pair up adjacent
/// same-key tuples — concatenating their (replicated) value sequences and
/// truncating freed capacity — a final adjacent merge that makes the key a
/// primary key, one primary-key join, and an expansion + deduplication of
/// the value sequences.
pub fn join_degree_bounded(
    b: &mut Builder,
    r: &RelWires,
    s: &RelWires,
    deg_bound: usize,
) -> RelWires {
    assert!(deg_bound >= 1, "degree bound must be positive");
    if deg_bound == 1 {
        return join_pk(b, r, s);
    }
    let common = r.vars().intersect(s.vars());
    let s_only: Vec<Var> = s.vars().minus(common).to_vec();
    let m = r.capacity();
    // relax the bound to 2^n + 1 ≥ deg_bound (Sec. 5.4)
    let n_exp = qec_ceil_log2(deg_bound as u64 - 1).max(1);
    let group = s_only.len(); // wires per value group (may be 0)

    // Line 1: S ← S ⋉ Π_B(R).
    let s1 = semijoin(b, s, r);
    // Line 2: sort by B, truncate to M·(2^n+1) — every surviving tuple
    // joins, and each R key matches ≤ 2^n+1 of them.
    let cap1 = s1.capacity().min(m.saturating_mul((1 << n_exp) + 1));
    let s_key_cols: Vec<usize> = common.iter().map(|v| s1.col(v).expect("common")).collect();
    let s_val_cols: Vec<usize> = s_only.iter().map(|&v| s1.col(v).expect("s-only")).collect();

    // Internal representation: key fields + value sequence (list of
    // groups) + valid, sorted/truncated via the slot sorter with extras.
    struct Seq {
        key: Vec<WireId>,
        groups: Vec<WireId>, // len = reps * group
        valid: WireId,
    }
    let mut seqs: Vec<Seq> = s1
        .slots
        .iter()
        .map(|slot| Seq {
            key: s_key_cols.iter().map(|&c| slot.fields[c]).collect(),
            groups: s_val_cols.iter().map(|&c| slot.fields[c]).collect(),
            valid: slot.valid,
        })
        .collect();
    let key_schema: Vec<Var> = common.to_vec();
    let mut reps = 1usize;

    let sort_and_truncate =
        |b: &mut Builder, seqs: Vec<Seq>, cap: usize, reps: usize| -> Vec<Seq> {
            let rel = RelWires {
                schema: key_schema.clone(),
                slots: seqs
                    .iter()
                    .map(|q| SlotWires {
                        fields: q.key.clone(),
                        valid: q.valid,
                    })
                    .collect(),
            };
            let width = reps * group;
            let extra: Vec<Vec<WireId>> = (0..width)
                .map(|i| seqs.iter().map(|q| q.groups[i]).collect())
                .collect();
            let (sorted, extras) =
                sort_slots_with(b, &rel, &SortKey::Columns(key_schema.clone()), &extra);
            for slot in &sorted.slots[cap.min(sorted.capacity())..] {
                b.assert_zero(slot.valid);
            }
            (0..cap.min(sorted.capacity()))
                .map(|i| Seq {
                    key: sorted.slots[i].fields.clone(),
                    groups: (0..width).map(|c| extras[c][i]).collect(),
                    valid: sorted.slots[i].valid,
                })
                .collect()
        };

    seqs = sort_and_truncate(b, seqs, cap1, reps);

    // Lines 3–15: n halving rounds.
    for i in 1..=n_exp {
        let len = seqs.len();
        let mut next: Vec<Option<Seq>> = (0..len).map(|_| None).collect();
        // Each (2t, 2t+1) pair touches only its own two slots, so the
        // rounds' pair bodies fork across the pool.
        let pairs = b.fork_join(len / 2, |t, bb| {
            let (a_idx, b_idx) = (2 * t, 2 * t + 1);
            let same = {
                let eq = bb.vec_eq(&seqs[a_idx].key, &seqs[b_idx].key);
                let both = bb.and(seqs[a_idx].valid, seqs[b_idx].valid);
                bb.and(eq, both)
            };
            // combined: (C_a, C_b); duplicated: (C_b, C_b)
            let mut combined = seqs[a_idx].groups.clone();
            combined.extend(seqs[b_idx].groups.iter().copied());
            let mut dup_b = seqs[b_idx].groups.clone();
            dup_b.extend(seqs[b_idx].groups.iter().copied());
            let new_groups = bb.vec_mux(same, &combined, &dup_b);
            let not_same = bb.not(same);
            let a_valid = bb.and(seqs[a_idx].valid, not_same);
            let mut dup_a = seqs[a_idx].groups.clone();
            dup_a.extend(seqs[a_idx].groups.iter().copied());
            let slot_a = Seq {
                key: seqs[a_idx].key.clone(),
                groups: dup_a,
                valid: a_valid,
            };
            let slot_b = Seq {
                key: seqs[b_idx].key.clone(),
                groups: new_groups,
                valid: seqs[b_idx].valid,
            };
            (slot_a, slot_b)
        });
        for (t, (slot_a, slot_b)) in pairs.into_iter().enumerate() {
            next[2 * t] = Some(slot_a);
            next[2 * t + 1] = Some(slot_b);
        }
        if len % 2 == 1 {
            // unpaired trailing slot: duplicate (line 12–13)
            let last = &seqs[len - 1];
            let mut dup = last.groups.clone();
            dup.extend(last.groups.iter().copied());
            next[len - 1] = Some(Seq {
                key: last.key.clone(),
                groups: dup,
                valid: last.valid,
            });
        }
        seqs = next
            .into_iter()
            .map(|o| o.expect("every slot rewritten"))
            .collect();
        reps *= 2;
        // Line 14–15: capacity shrinks as degrees halve.
        let cap = seqs.len().min(m.saturating_mul((1 << (n_exp - i)) + 1));
        seqs = sort_and_truncate(b, seqs, cap, reps);
    }

    // Lines 16–24: adjacent merge reduces the residual degree (≤ 2) to 1.
    {
        let len = seqs.len();
        let zero = b.constant(0);
        let mut merged_into_prev: Vec<WireId> = vec![zero];
        merged_into_prev.extend(b.fork_join(len.saturating_sub(1), |k, bb| {
            let j = k + 1;
            let eq = bb.vec_eq(&seqs[j - 1].key, &seqs[j].key);
            let both = bb.and(seqs[j - 1].valid, seqs[j].valid);
            bb.and(eq, both)
        }));
        let merged_into_prev = &merged_into_prev;
        let next: Vec<Seq> = b.fork_join(len, |j, bb| {
            let merge_next = if j + 1 < len {
                merged_into_prev[j + 1]
            } else {
                zero
            };
            let mut combined = seqs[j].groups.clone();
            if j + 1 < len {
                combined.extend(seqs[j + 1].groups.iter().copied());
            } else {
                combined.extend(seqs[j].groups.iter().copied());
            }
            let mut dup = seqs[j].groups.clone();
            dup.extend(seqs[j].groups.iter().copied());
            let groups = bb.vec_mux(merge_next, &combined, &dup);
            let not_merged = bb.not(merged_into_prev[j]);
            let valid = bb.and(seqs[j].valid, not_merged);
            Seq {
                key: seqs[j].key.clone(),
                groups,
                valid,
            }
        });
        seqs = next;
        reps *= 2;
    }
    // Line 25: truncate to M (keys are now unique, and only keys matching
    // R survive).
    let final_cap = m.min(seqs.len());
    seqs = sort_and_truncate(b, seqs, final_cap, reps);

    // Line 26: primary-key join with the sequences as payload.
    let s_rows: Vec<(Vec<WireId>, Vec<WireId>, WireId)> = seqs
        .iter()
        .map(|q| (q.key.clone(), q.groups.clone(), q.valid))
        .collect();
    let joined = join_pk_payload(b, r, common, &s_rows, reps * group);

    // Lines 27–33: expand each sequence entry into its own tuple, dedup,
    // truncate to M·deg_bound.
    let out_vars: VarSet = r.vars().union(s.vars());
    let out_schema: Vec<Var> = out_vars.to_vec();
    let mut slots: Vec<SlotWires> = Vec::with_capacity(joined.len() * reps);
    for ps in &joined {
        for rep in 0..reps {
            let fields = out_schema
                .iter()
                .map(|v| {
                    if let Some(c) = r.schema.iter().position(|rv| rv == v) {
                        ps.r_fields[c]
                    } else {
                        let c = s_only.iter().position(|sv| sv == v).expect("s-only var");
                        ps.payload[rep * group + c]
                    }
                })
                .collect();
            slots.push(SlotWires {
                fields,
                valid: ps.valid,
            });
        }
    }
    let expanded = RelWires {
        schema: out_schema.clone(),
        slots,
    };
    let deduped = project(b, &expanded, out_vars);
    let cap = m.checked_mul(deg_bound).unwrap_or_else(|| {
        panic!(
            "join_degree_bounded: output capacity m * deg_bound overflows \
             usize (m = {m}, deg_bound = {deg_bound})"
        )
    });
    crate::ops::truncate(b, &deduped, cap)
}

/// `⌈log₂ n⌉` for `n ≥ 1` (local copy to avoid a dependency edge).
fn qec_ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{decode_relation, encode_relation, relation_to_values};
    use crate::Mode;
    use qec_relation::{random_degree_bounded, random_relation, Relation};

    fn rel(schema: &[u32], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(
            schema.iter().map(|&i| Var(i)).collect(),
            rows.iter().map(|r| r.to_vec()).collect(),
        )
    }

    fn run_binary<F>(r: &Relation, s: &Relation, caps: (usize, usize), f: F) -> Relation
    where
        F: FnOnce(&mut Builder, &RelWires, &RelWires) -> RelWires,
    {
        let mut b = Builder::new(Mode::Build);
        let rw = encode_relation(&mut b, r.schema().to_vec(), caps.0);
        let sw = encode_relation(&mut b, s.schema().to_vec(), caps.1);
        let out = f(&mut b, &rw, &sw);
        let schema = out.schema.clone();
        let c = b.finish(out.flatten());
        let mut vals = relation_to_values(r, caps.0).unwrap();
        vals.extend(relation_to_values(s, caps.1).unwrap());
        decode_relation(&schema, &c.evaluate(&vals).unwrap())
    }

    #[test]
    fn pk_join_paper_example() {
        // Figure 3: R = {(a1,b1),(a1,b2),(a2,b1)}, S = {(b1,c1),(b3,c1)}.
        // Values: a1=1, a2=2, b1=11, b2=12, b3=13, c1=21.
        let r = rel(&[0, 1], &[&[1, 11], &[1, 12], &[2, 11]]);
        let s = rel(&[1, 2], &[&[11, 21], &[13, 21]]);
        let got = run_binary(&r, &s, (3, 2), join_pk);
        assert_eq!(got, r.natural_join(&s));
        assert_eq!(got.len(), 2); // (a1,b1,c1), (a2,b1,c1)
    }

    #[test]
    fn pk_join_random_instances() {
        for seed in 0..6 {
            let s = random_degree_bounded(Var(1), Var(2), 20, 1, seed + 50);
            let r = random_relation(vec![Var(0), Var(1)], 30, seed);
            // restrict r's B values into s's key range for some matches
            let got = run_binary(&r, &s, (30, 20), join_pk);
            assert_eq!(got, r.natural_join(&s), "seed {seed}");
        }
    }

    #[test]
    fn pk_join_no_matches() {
        let r = rel(&[0, 1], &[&[1, 5]]);
        let s = rel(&[1, 2], &[&[7, 9]]);
        let got = run_binary(&r, &s, (2, 2), join_pk);
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn pk_join_empty_sides() {
        let r = rel(&[0, 1], &[]);
        let s = rel(&[1, 2], &[&[7, 9]]);
        let got = run_binary(&r, &s, (2, 2), join_pk);
        assert_eq!(got.len(), 0);
        let r2 = rel(&[0, 1], &[&[1, 5]]);
        let s2 = rel(&[1, 2], &[]);
        let got = run_binary(&r2, &s2, (2, 2), join_pk);
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn semijoin_matches_ram() {
        for seed in 0..4 {
            let r = random_relation(vec![Var(0), Var(1)], 24, seed);
            let s = random_relation(vec![Var(1), Var(2)], 24, seed + 9);
            let got = run_binary(&r, &s, (24, 24), semijoin);
            assert_eq!(got, r.semijoin(&s), "seed {seed}");
        }
    }

    #[test]
    fn degree_bounded_join_paper_example() {
        // Figure 4: M = 3, N = 5,
        // R = {(a1,b1),(a2,b2),(a1,b3)}, S has deg(B) ≤ 5.
        let r = rel(&[0, 1], &[&[1, 11], &[2, 12], &[1, 13]]);
        let s = rel(
            &[1, 2],
            &[
                &[11, 1],
                &[11, 2],
                &[11, 3],
                &[12, 4],
                &[12, 5],
                &[13, 6],
                &[11, 7],
                &[11, 8],
            ],
        );
        assert_eq!(s.degree(VarSet::singleton(Var(1))), 5);
        let got = run_binary(&r, &s, (3, 8), |b, rw, sw| {
            join_degree_bounded(b, rw, sw, 5)
        });
        assert_eq!(got, r.natural_join(&s));
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn degree_bounded_join_random() {
        for (seed, deg) in [(1u64, 2usize), (2, 3), (3, 4), (4, 8)] {
            let s = random_degree_bounded(Var(1), Var(2), 32, deg, seed);
            // R keys drawn from the same group space as the generator
            let r = random_relation_with_domain_keys(16, 32 / deg + 2, seed + 7);
            let got = run_binary(&r, &s, (16, 32), |b, rw, sw| {
                join_degree_bounded(b, rw, sw, deg)
            });
            assert_eq!(got, r.natural_join(&s), "seed {seed} deg {deg}");
        }
    }

    /// R(A,B) with B in [0, key_space): guarantees overlap with the
    /// degree-bounded generator's group ids.
    fn random_relation_with_domain_keys(n: usize, key_space: usize, seed: u64) -> Relation {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rows = std::collections::HashSet::new();
        while rows.len() < n {
            rows.insert(vec![
                rng.gen_range(0..1000u64),
                rng.gen_range(0..key_space as u64),
            ]);
        }
        Relation::from_rows(vec![Var(0), Var(1)], rows.into_iter().collect())
    }

    #[test]
    fn degree_one_delegates_to_pk() {
        let s = random_degree_bounded(Var(1), Var(2), 12, 1, 3);
        let r = random_relation_with_domain_keys(10, 14, 4);
        let got = run_binary(&r, &s, (10, 12), |b, rw, sw| {
            join_degree_bounded(b, rw, sw, 1)
        });
        assert_eq!(got, r.natural_join(&s));
    }

    #[test]
    fn degree_join_size_scales_with_mn_not_mnprime() {
        // size Õ(MN + N') vs naive O(M·N'): with N' = M and N = 4 the
        // degree-bounded circuit should grow ~linearly in M.
        fn cost(m: usize) -> u64 {
            let mut b = Builder::new(Mode::Count);
            let rw = encode_relation(&mut b, vec![Var(0), Var(1)], m);
            let sw = encode_relation(&mut b, vec![Var(1), Var(2)], m);
            let j = join_degree_bounded(&mut b, &rw, &sw, 4);
            b.finish(j.flatten()).size()
        }
        let ratio = cost(256) as f64 / cost(64) as f64;
        // linear-up-to-polylog: 4× data → well under 16×; naive would be 16×+
        assert!(ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn violated_degree_bound_fires_assertion() {
        // declare deg ≤ 2 but feed degree-3 data: the truncation
        // assertions must catch it rather than silently dropping tuples
        let r = rel(&[0, 1], &[&[1, 11]]);
        let s = rel(&[1, 2], &[&[11, 1], &[11, 2], &[11, 3]]);
        let mut b = Builder::new(Mode::Build);
        let rw = encode_relation(&mut b, r.schema().to_vec(), 1);
        let sw = encode_relation(&mut b, s.schema().to_vec(), 3);
        let j = join_degree_bounded(&mut b, &rw, &sw, 2);
        let c = b.finish(j.flatten());
        let mut vals = relation_to_values(&r, 1).unwrap();
        vals.extend(relation_to_values(&s, 3).unwrap());
        assert!(matches!(
            c.evaluate(&vals),
            Err(crate::EvalError::AssertionFailed { .. })
        ));
    }
}
