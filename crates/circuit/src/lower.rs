//! Bit-level lowering: word circuits → AND/XOR/NOT circuits.
//!
//! The paper treats Boolean and arithmetic circuits interchangeably up to
//! `poly(log u)` factors (Sec. 4.1). This module makes the translation
//! concrete: every word wire becomes `width` bit wires; word gates expand
//! to textbook Boolean blocks (ripple-carry adders, comparators,
//! multiplexers). The result is exactly what garbled-circuit or GMW-style
//! protocols consume — XOR gates are "free" in both, so [`BitCircuit`]
//! reports AND count and AND depth separately.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::OnceLock;

use qec_par::Pool;

use crate::driver::CompileOptions;
use crate::shared::{InternTable, Pages};
use crate::{Circuit, Gate, WireId};

/// A bit-level gate over GF(2) with NOT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BGate {
    /// The `i`-th input bit.
    Input(usize),
    /// A constant bit.
    Const(bool),
    /// XOR (free in GMW/garbling).
    Xor(u32, u32),
    /// AND (the expensive gate).
    And(u32, u32),
    /// NOT (free).
    Not(u32),
    /// Assertion: the bit must be 0 at evaluation time.
    AssertFalse(u32),
}

/// A lowered Boolean circuit.
///
/// The circuit is sealed at construction: the gate list, outputs, input
/// arity, and width are only readable (via [`BitCircuit::gates`] and
/// friends), never mutable. The size/depth metrics
/// ([`BitCircuit::and_count`] &c.) are computed lazily on first use and
/// cached in a `OnceLock`; sealing is what makes that cache sound — a
/// circuit mutated after the first metrics read would silently keep
/// reporting the stale numbers. To change a circuit, build a new one
/// with [`BitCircuit::new`].
pub struct BitCircuit {
    /// Gates in topological order.
    gates: Vec<BGate>,
    /// Output bit wires (the word outputs, `width` bits each, LSB first).
    outputs: Vec<u32>,
    /// Number of input bits.
    num_inputs: usize,
    /// Word width used by the lowering.
    width: u32,
    /// Lazily computed metrics (one pass over `gates`, then cached —
    /// `report` calls `and_depth` per table row).
    metrics: OnceLock<BitMetrics>,
}

/// Single-pass size/depth metrics for a [`BitCircuit`].
#[derive(Clone, Copy, Debug, Default)]
struct BitMetrics {
    gate_count: u64,
    and_count: u64,
    xor_count: u64,
    and_depth: u32,
}

impl BitCircuit {
    /// Assembles a bit circuit. Gates must be topologically ordered.
    pub fn new(gates: Vec<BGate>, outputs: Vec<u32>, num_inputs: usize, width: u32) -> BitCircuit {
        BitCircuit {
            gates,
            outputs,
            num_inputs,
            width,
            metrics: OnceLock::new(),
        }
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[BGate] {
        &self.gates
    }

    /// Output bit wires (the word outputs, `width` bits each, LSB first).
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Number of input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Word width used by the lowering.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn metrics(&self) -> &BitMetrics {
        self.metrics.get_or_init(|| {
            let mut m = BitMetrics::default();
            let mut depth = vec![0u32; self.gates.len()];
            for (i, g) in self.gates.iter().enumerate() {
                depth[i] = match *g {
                    BGate::Input(_) | BGate::Const(_) => 0,
                    BGate::Xor(a, b) => {
                        m.xor_count += 1;
                        depth[a as usize].max(depth[b as usize])
                    }
                    BGate::Not(a) | BGate::AssertFalse(a) => depth[a as usize],
                    BGate::And(a, b) => {
                        m.and_count += 1;
                        depth[a as usize].max(depth[b as usize]) + 1
                    }
                };
                if !matches!(g, BGate::Input(_) | BGate::Const(_)) {
                    m.gate_count += 1;
                }
                m.and_depth = m.and_depth.max(depth[i]);
            }
            m
        })
    }

    /// Number of AND gates (the MPC/garbling cost driver).
    pub fn and_count(&self) -> u64 {
        self.metrics().and_count
    }

    /// Number of XOR gates (free in GMW/garbling).
    pub fn xor_count(&self) -> u64 {
        self.metrics().xor_count
    }

    /// Total gate count (excluding inputs and constants).
    pub fn gate_count(&self) -> u64 {
        self.metrics().gate_count
    }

    /// Multiplicative (AND) depth — the round count of a GMW evaluation.
    pub fn and_depth(&self) -> u32 {
        self.metrics().and_depth
    }

    /// Plaintext evaluation (reference for the MPC protocols).
    /// Allocates a fresh wire store per call; loops should hold a
    /// [`BitEvalScratch`] and use [`BitCircuit::evaluate_with`].
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, crate::EvalError> {
        let mut scratch = BitEvalScratch::default();
        self.evaluate_with(inputs, &mut scratch)
            .map(|out| out.to_vec())
    }

    /// [`BitCircuit::evaluate`] into caller-owned scratch buffers: the
    /// wire store and output vector live in `scratch` and are reused
    /// across calls (the returned slice borrows from it). One scratch
    /// serves circuits of any size — buffers regrow on demand.
    pub fn evaluate_with<'s>(
        &self,
        inputs: &[bool],
        scratch: &'s mut BitEvalScratch,
    ) -> Result<&'s [bool], crate::EvalError> {
        if inputs.len() != self.num_inputs {
            return Err(crate::EvalError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let vals = &mut scratch.vals;
        vals.clear();
        vals.resize(self.gates.len(), false);
        for (i, g) in self.gates.iter().enumerate() {
            vals[i] = match *g {
                BGate::Input(idx) => inputs[idx],
                BGate::Const(v) => v,
                BGate::Xor(a, b) => vals[a as usize] ^ vals[b as usize],
                BGate::And(a, b) => vals[a as usize] & vals[b as usize],
                BGate::Not(a) => !vals[a as usize],
                BGate::AssertFalse(a) => {
                    if vals[a as usize] {
                        return Err(crate::EvalError::AssertionFailed { gate: i, value: 1 });
                    }
                    false
                }
            };
        }
        scratch.outs.clear();
        scratch
            .outs
            .extend(self.outputs.iter().map(|&w| vals[w as usize]));
        Ok(&scratch.outs)
    }

    /// Packs word inputs into the bit layout the lowering expects
    /// (LSB-first per word).
    pub fn pack_inputs(&self, words: &[u64]) -> Vec<bool> {
        let mut bits = Vec::with_capacity(words.len() * self.width as usize);
        for &w in words {
            for i in 0..self.width {
                bits.push((w >> i) & 1 == 1);
            }
        }
        bits
    }

    /// Unpacks output bits back into words.
    pub fn unpack_outputs(&self, bits: &[bool]) -> Vec<u64> {
        bits.chunks(self.width as usize)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
            })
            .collect()
    }
}

/// Reusable wire-store + output buffers for
/// [`BitCircuit::evaluate_with`], so per-instance reference evaluation
/// in tight loops (the fuzzer's sampled bit checks, BitEngine parity
/// tests) stops allocating a fresh `Vec<bool>` per call.
#[derive(Default)]
pub struct BitEvalScratch {
    vals: Vec<bool>,
    outs: Vec<bool>,
}

/// The constant-`false` wire: always id 0 (both the sequential `Lowerer`
/// and the parallel core seed it first).
pub(crate) const B_FALSE: u32 = 0;
/// The constant-`true` wire: always id 1.
pub(crate) const B_TRUE: u32 = 1;

/// Bit wires above this id collide with the parallel stores' sentinels
/// (`u32::MAX`, `u32::MAX - 1`), so it is the last allocatable bit id.
pub(crate) const MAX_BIT_WIRES: u64 = (u32::MAX - 2) as u64;

/// Checked bit-wire allocation: the id for the `n`-th bit wire
/// (0-based), or a typed [`EvalError`](crate::EvalError) once the id
/// space is exhausted. Allocation used to wrap silently via `as u32` at
/// this boundary (>4.29B bit gates, reached around N=4096 on the X1
/// family).
pub(crate) fn checked_bit_id(n: u64) -> Result<u32, crate::EvalError> {
    if n > MAX_BIT_WIRES {
        return Err(crate::EvalError::CircuitTooLarge {
            wires: n + 1,
            limit: MAX_BIT_WIRES + 1,
        });
    }
    Ok(n as u32)
}

/// Sorts commutative operands (both binary bit gates commute).
pub(crate) fn canon_bit(g: BGate) -> BGate {
    match g {
        BGate::Xor(a, b) if a > b => BGate::Xor(b, a),
        BGate::And(a, b) if a > b => BGate::And(b, a),
        g => g,
    }
}

/// Rewrites every operand of `g` through `renum`.
fn remap_bgate(g: BGate, renum: &[u32]) -> BGate {
    let r = |w: u32| renum[w as usize];
    match g {
        BGate::Input(i) => BGate::Input(i),
        BGate::Const(v) => BGate::Const(v),
        BGate::Xor(a, b) => BGate::Xor(r(a), r(b)),
        BGate::And(a, b) => BGate::And(r(a), r(b)),
        BGate::Not(a) => BGate::Not(r(a)),
        BGate::AssertFalse(a) => BGate::AssertFalse(r(a)),
    }
}

/// Bit-gate construction rules with online constant folding and
/// hash-consing, written once against an abstract store: XOR and AND
/// fold against the constant wires and equal operands, NOT cancels NOT,
/// and structurally repeated gates (operands sorted) return the existing
/// wire. All bit wires carry `0`/`1`, so unlike the word level every
/// identity here is unconditionally sound.
///
/// Implementors provide the storage primitives: [`Lowerer`] (sequential
/// vector + `HashMap`), `ParTaskStore` (the sharded concurrent core used
/// by [`lower_with_pool`]), and `BitSpec` (the read-only decision view
/// used by [`optimize_bits_with_pool`]). One copy of the rule bodies is
/// what keeps the three schedules byte-identical.
pub(crate) trait BitRewrite {
    /// Appends an uncached gate (inputs, asserts).
    fn push(&mut self, g: BGate) -> u32;
    /// Interns an already-canonical gate key.
    fn intern(&mut self, key: BGate) -> u32;
    /// `Some(x)` when wire `w` is defined by `Not(x)` (the NOT-cancel
    /// peephole). This is the *only* structural query the rewrite rules
    /// make, and it is deliberately this narrow: a streaming store that
    /// has already spilled `w`'s definition can still answer it from a
    /// small side map, where a full `peek` would have to re-read the
    /// spill.
    fn not_operand(&self, w: u32) -> Option<u32>;
    fn count_fold(&mut self);

    fn emit(&mut self, g: BGate) -> u32 {
        self.intern(canon_bit(g))
    }

    fn xor(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            self.count_fold();
            return B_FALSE;
        }
        if a == B_FALSE {
            self.count_fold();
            return b;
        }
        if b == B_FALSE {
            self.count_fold();
            return a;
        }
        if a == B_TRUE {
            self.count_fold();
            return self.not(b);
        }
        if b == B_TRUE {
            self.count_fold();
            return self.not(a);
        }
        self.emit(BGate::Xor(a, b))
    }

    fn and(&mut self, a: u32, b: u32) -> u32 {
        if a == B_FALSE || b == B_FALSE {
            self.count_fold();
            return B_FALSE;
        }
        if a == B_TRUE {
            self.count_fold();
            return b;
        }
        if b == B_TRUE {
            self.count_fold();
            return a;
        }
        if a == b {
            self.count_fold();
            return a;
        }
        self.emit(BGate::And(a, b))
    }

    fn not(&mut self, a: u32) -> u32 {
        if a == B_FALSE {
            return B_TRUE;
        }
        if a == B_TRUE {
            return B_FALSE;
        }
        if let Some(x) = self.not_operand(a) {
            self.count_fold();
            return x;
        }
        self.emit(BGate::Not(a))
    }

    fn or(&mut self, a: u32, b: u32) -> u32 {
        // a | b = (a ^ b) ^ (a & b)
        let x = self.xor(a, b);
        let n = self.and(a, b);
        self.xor(x, n)
    }

    fn mux_bit(&mut self, s: u32, a: u32, b: u32) -> u32 {
        // b ^ (s & (a ^ b)) — one AND per bit
        let d = self.xor(a, b);
        let m = self.and(s, d);
        self.xor(b, m)
    }

    /// OR-reduction: "is any bit set" (word truthiness).
    fn truthy(&mut self, bits: &[u32]) -> u32 {
        let mut acc = B_FALSE;
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    fn add_words(&mut self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut carry = B_FALSE;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b.iter()) {
            let xy = self.xor(x, y);
            let s = self.xor(xy, carry);
            // carry' = (x & y) ^ (carry & (x ^ y))
            let g = self.and(x, y);
            let p = self.and(carry, xy);
            carry = self.xor(g, p);
            out.push(s);
        }
        out
    }

    fn neg_words(&mut self, a: &[u32]) -> Vec<u32> {
        // two's complement: ~a + 1
        let inv: Vec<u32> = a.iter().map(|&x| self.not(x)).collect();
        let mut one_word = vec![B_FALSE; a.len()];
        one_word[0] = B_TRUE;
        self.add_words(&inv, &one_word)
    }

    fn eq_words(&mut self, a: &[u32], b: &[u32]) -> u32 {
        let mut acc = B_TRUE;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let d = self.xor(x, y);
            let same = self.not(d);
            acc = self.and(acc, same);
        }
        acc
    }

    fn lt_words(&mut self, a: &[u32], b: &[u32]) -> u32 {
        // ripple from LSB: lt = (!a & b) | (!(a^b) & lt_prev)
        let mut lt = B_FALSE;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let nx = self.not(x);
            let here = self.and(nx, y);
            let d = self.xor(x, y);
            let same = self.not(d);
            let keep = self.and(same, lt);
            lt = self.or(here, keep);
        }
        lt
    }

    fn mul_words(&mut self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let w = a.len();
        let mut acc = vec![B_FALSE; w];
        for (i, &bi) in b.iter().enumerate() {
            // partial product: (a << i) & bi, truncated to w bits
            let mut pp = vec![B_FALSE; w];
            for j in 0..w - i {
                pp[i + j] = self.and(a[j], bi);
            }
            acc = self.add_words(&acc, &pp);
        }
        acc
    }
}

/// Sequential store behind [`BitRewrite`]: a gate vector plus a single
/// `HashMap` cons table, with fold/CSE counters for [`BitOptStats`].
pub(crate) struct Lowerer {
    pub(crate) gates: Vec<BGate>,
    cse: HashMap<BGate, u32>,
    pub(crate) cse_hits: u64,
    pub(crate) folds: u64,
}

impl Lowerer {
    pub(crate) fn new() -> Lowerer {
        Lowerer {
            gates: vec![BGate::Const(false), BGate::Const(true)],
            cse: HashMap::new(),
            cse_hits: 0,
            folds: 0,
        }
    }
}

impl BitRewrite for Lowerer {
    fn push(&mut self, g: BGate) -> u32 {
        let id = match checked_bit_id(self.gates.len() as u64) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        };
        self.gates.push(g);
        id
    }

    fn intern(&mut self, key: BGate) -> u32 {
        if let Some(&w) = self.cse.get(&key) {
            self.cse_hits += 1;
            return w;
        }
        let w = self.push(key);
        self.cse.insert(key, w);
        w
    }

    fn not_operand(&self, w: u32) -> Option<u32> {
        match self.gates[w as usize] {
            BGate::Not(x) => Some(x),
            _ => None,
        }
    }

    fn count_fold(&mut self) {
        self.folds += 1;
    }
}

/// A word wired to a single result bit: `out[0] = bit`, upper bits zero.
fn bit_word(bit: u32, w: usize) -> Vec<u32> {
    let mut out = vec![B_FALSE; w];
    out[0] = bit;
    out
}

/// Expands one word gate into its Boolean block against any
/// [`BitRewrite`] store. `word_bits[op]` holds the bit wires of word wire
/// `op`, already lowered — word gate lists are topological, so operands
/// always precede their consumers. Shared by the sequential [`lower`]
/// loop and the per-gate tasks of [`lower_with_pool`]; tracking
/// `num_input_bits` for `Input` gates stays with the caller.
pub(crate) fn lower_gate<S: BitRewrite>(
    lw: &mut S,
    g: Gate,
    word_bits: &[Vec<u32>],
    w: usize,
) -> Vec<u32> {
    let wb = |x: WireId| &word_bits[x as usize];
    match g {
        Gate::Input(idx) => (0..w).map(|k| lw.push(BGate::Input(idx * w + k))).collect(),
        Gate::Const(v) => (0..w)
            .map(|k| if (v >> k) & 1 == 1 { B_TRUE } else { B_FALSE })
            .collect(),
        Gate::Add(a, b) => lw.add_words(wb(a), wb(b)),
        Gate::Sub(a, b) => {
            let nb = lw.neg_words(wb(b));
            lw.add_words(wb(a), &nb)
        }
        Gate::Mul(a, b) => lw.mul_words(wb(a), wb(b)),
        Gate::Eq(a, b) => {
            let e = lw.eq_words(wb(a), wb(b));
            bit_word(e, w)
        }
        Gate::Lt(a, b) => {
            let l = lw.lt_words(wb(a), wb(b));
            bit_word(l, w)
        }
        Gate::And(a, b) => {
            let (ta, tb) = (lw.truthy(wb(a)), lw.truthy(wb(b)));
            let r = lw.and(ta, tb);
            bit_word(r, w)
        }
        Gate::Or(a, b) => {
            let (ta, tb) = (lw.truthy(wb(a)), lw.truthy(wb(b)));
            let r = lw.or(ta, tb);
            bit_word(r, w)
        }
        Gate::Xor(a, b) => {
            let (ta, tb) = (lw.truthy(wb(a)), lw.truthy(wb(b)));
            let r = lw.xor(ta, tb);
            bit_word(r, w)
        }
        Gate::Not(a) => {
            let ta = lw.truthy(wb(a));
            let r = lw.not(ta);
            bit_word(r, w)
        }
        Gate::Mux(s, a, b) => {
            let ts = lw.truthy(wb(s));
            wb(a)
                .iter()
                .zip(wb(b).iter())
                .map(|(&x, &y)| lw.mux_bit(ts, x, y))
                .collect()
        }
        Gate::AssertZero(a) => {
            let ta = lw.truthy(wb(a));
            // A truthiness that folded to constant 0 can never fire;
            // anything else (including constant 1 = always-fail)
            // keeps its assert so failure semantics survive.
            if ta != B_FALSE {
                lw.push(BGate::AssertFalse(ta));
            }
            vec![B_FALSE; w]
        }
    }
}

/// Lowers a word circuit to bits. Every word input becomes `width` input
/// bits (LSB first); word values must fit in `width` bits for the
/// semantics to agree with the word evaluator (checked by tests over the
/// operating domain).
///
/// Width contract: choose `width` so that every domain value is
/// `< 2^width − 1`. The all-ones word is the image of the reserved `?`
/// sentinel (`QMARK = u64::MAX`, Sec. 5.3), which truncates consistently:
/// order and equality comparisons against domain values behave as at word
/// level, but a domain value equal to `2^width − 1` would collide with it.
///
/// # Panics
/// Panics if the circuit was built in count-only mode.
fn lower_seq(c: &Circuit, width: u32) -> BitCircuit {
    assert!(c.is_evaluable(), "cannot lower a count-only circuit");
    let w = width as usize;
    let mut lw = Lowerer::new();
    let mut word_bits: Vec<Vec<u32>> = Vec::with_capacity(c.num_wires());
    let mut num_input_bits = 0usize;

    for g in c.gates() {
        if let Gate::Input(idx) = *g {
            num_input_bits = num_input_bits.max((idx + 1) * w);
        }
        let bits = lower_gate(&mut lw, *g, &word_bits, w);
        word_bits.push(bits);
    }

    let outputs = c
        .outputs()
        .iter()
        .flat_map(|&w_id: &WireId| word_bits[w_id as usize].clone())
        .collect();
    BitCircuit::new(lw.gates, outputs, num_input_bits, width)
}

/// Counters describing one [`optimize_bits`] run.
#[derive(Clone, Debug, Default)]
pub struct BitOptStats {
    /// Logic gates before (XOR + AND + NOT + asserts).
    pub gates_before: u64,
    /// Logic gates after.
    pub gates_after: u64,
    /// AND gates before — the MPC/garbling cost driver.
    pub and_before: u64,
    /// AND gates after.
    pub and_after: u64,
    /// AND depth before — the GMW round count.
    pub and_depth_before: u32,
    /// AND depth after.
    pub and_depth_after: u32,
    /// Structural CSE hits during the rewrite.
    pub cse_hits: u64,
    /// Constant/identity folds during the rewrite.
    pub folds: u64,
    /// Wires removed by mark-and-sweep DCE.
    pub dead: u64,
}

impl BitOptStats {
    /// Fraction of AND gates removed, in `[0, 1]`.
    pub fn and_reduction(&self) -> f64 {
        if self.and_before == 0 {
            0.0
        } else {
            1.0 - self.and_after as f64 / self.and_before as f64
        }
    }
}

/// Offline optimizer for bit circuits: XOR/AND/NOT constant folding and
/// identity rewrites, structural CSE, and assertion-safe DCE (asserts
/// are roots; only an assert whose input folds to constant `false` is
/// dropped). Circuits freshly produced by [`lower`] are already folded
/// online, so this pass mostly pays off on hand-assembled or
/// deserialized bit circuits — and as the place where AND-count/AND-depth
/// deltas are measured.
fn optimize_bits_seq(bc: &BitCircuit) -> (BitCircuit, BitOptStats) {
    let out = rewrite_bits_seq(bc);
    let live = mark_live_bits_seq(bc, &out);
    assemble_bits(bc, out, &live)
}

/// The rewritten (pre-DCE) bit-gate list plus everything the sweep and
/// final stats need. Produced by both the sequential rewrite loop and the
/// parallel level pipeline.
struct BitRewriteOut {
    gates: Vec<BGate>,
    /// Source wire → rewritten wire.
    map: Vec<u32>,
    cse_hits: u64,
    folds: u64,
}

/// Applies the [`BitRewrite`] rules to one source gate against the
/// committed `map`. Shared verbatim by the sequential loop and the
/// parallel decision phase — this dispatch is the single definition of
/// what "rewriting a bit gate" means.
fn rewrite_bit_gate<S: BitRewrite>(lw: &mut S, map: &[u32], g: BGate) -> u32 {
    match g {
        BGate::Input(i) => lw.push(BGate::Input(i)),
        BGate::Const(v) => {
            if v {
                B_TRUE
            } else {
                B_FALSE
            }
        }
        BGate::Xor(a, b) => lw.xor(map[a as usize], map[b as usize]),
        BGate::And(a, b) => lw.and(map[a as usize], map[b as usize]),
        BGate::Not(a) => lw.not(map[a as usize]),
        BGate::AssertFalse(a) => {
            let a = map[a as usize];
            if a == B_FALSE {
                B_FALSE
            } else {
                lw.push(BGate::AssertFalse(a))
            }
        }
    }
}

fn rewrite_bits_seq(bc: &BitCircuit) -> BitRewriteOut {
    let mut lw = Lowerer::new();
    let mut map: Vec<u32> = Vec::with_capacity(bc.gates.len());
    for &g in &bc.gates {
        let w = rewrite_bit_gate(&mut lw, &map, g);
        map.push(w);
    }
    BitRewriteOut {
        gates: lw.gates,
        map,
        cse_hits: lw.cse_hits,
        folds: lw.folds,
    }
}

/// Sequential liveness mark over the rewritten gates: outputs, asserts,
/// and inputs are roots; a single reverse pass suffices because the gate
/// list is topologically ordered.
fn mark_live_bits_seq(bc: &BitCircuit, out: &BitRewriteOut) -> Vec<bool> {
    let n = out.gates.len();
    let mut live = vec![false; n];
    for &o in &bc.outputs {
        live[out.map[o as usize] as usize] = true;
    }
    for (w, g) in out.gates.iter().enumerate() {
        if matches!(g, BGate::AssertFalse(_) | BGate::Input(_)) {
            live[w] = true;
        }
    }
    for w in (0..n).rev() {
        if live[w] {
            match out.gates[w] {
                BGate::Xor(a, b) | BGate::And(a, b) => {
                    live[a as usize] = true;
                    live[b as usize] = true;
                }
                BGate::Not(a) | BGate::AssertFalse(a) => live[a as usize] = true,
                BGate::Input(_) | BGate::Const(_) => {}
            }
        }
    }
    live
}

/// Sweep (compaction in id order) and final stats assembly, shared by the
/// sequential and parallel passes so the produced `(BitCircuit,
/// BitOptStats)` agree byte for byte whenever the rewrite outputs and
/// live sets agree.
fn assemble_bits(bc: &BitCircuit, out: BitRewriteOut, live: &[bool]) -> (BitCircuit, BitOptStats) {
    let n = out.gates.len();
    let mut remap = vec![u32::MAX; n];
    let mut gates = Vec::with_capacity(n);
    for w in 0..n {
        if !live[w] {
            continue;
        }
        remap[w] = gates.len() as u32;
        gates.push(remap_bgate(out.gates[w], &remap));
    }
    let dead = (n - gates.len()) as u64;
    let outputs = bc
        .outputs
        .iter()
        .map(|&o| remap[out.map[o as usize] as usize])
        .collect();
    let opt = BitCircuit::new(gates, outputs, bc.num_inputs, bc.width);
    let stats = BitOptStats {
        gates_before: bc.gate_count(),
        gates_after: opt.gate_count(),
        and_before: bc.and_count(),
        and_after: opt.and_count(),
        and_depth_before: bc.and_depth(),
        and_depth_after: opt.and_depth(),
        cse_hits: out.cse_hits,
        folds: out.folds,
        dead,
    };
    (opt, stats)
}

// ===================== parallel lowering =====================
//
// `lower_with_pool` replays the word circuit level by level (word gate
// lists give every gate a depth strictly above its operands), lowering
// every word gate of a level as an independent task into a shared
// concurrent core: the sharded intern table dedups structurally, paged
// atomic columns hold the gate payloads, and a single atomic counter
// hands out wire ids. Parallel ids are schedule-dependent, so tasks log
// the wire returned by *every* table attempt; the attempt keyed
// `(word gate, invocation index)` is exactly where the sequential
// `Lowerer` would have performed the same lookup, which makes "earliest
// attempt that produced the wire" the wire's sequential creation point.
// Renumbering by that key and re-canonicalizing operand order rebuilds
// the byte-identical sequential gate list.
//
// The rule bodies themselves come from `BitRewrite` and take identical
// paths in both schedules: folds test only wire identity and the two
// constant ids (0/1 in both), and dedup makes parallel↔sequential ids a
// bijection, so identity tests agree everywhere.

/// Bit-gate kind tags for the packed intern key and the paged columns.
/// Tags start at 1: key 0 is the intern table's empty-slot sentinel.
const BK_CONST: u8 = 1;
const BK_INPUT: u8 = 2;
const BK_XOR: u8 = 3;
const BK_AND: u8 = 4;
const BK_NOT: u8 = 5;
const BK_ASSERT: u8 = 6;

fn bgate_parts(g: BGate) -> (u8, u32, u32) {
    match g {
        BGate::Const(v) => (BK_CONST, u32::from(v), 0),
        BGate::Input(i) => (
            BK_INPUT,
            u32::try_from(i).expect("input bit index exceeds u32"),
            0,
        ),
        BGate::Xor(a, b) => (BK_XOR, a, b),
        BGate::And(a, b) => (BK_AND, a, b),
        BGate::Not(a) => (BK_NOT, a, 0),
        BGate::AssertFalse(a) => (BK_ASSERT, a, 0),
    }
}

/// Packs a canonical gate into the non-zero intern key: kind tag in the
/// low 3 bits, operands above.
fn pack_bkey(g: BGate) -> u128 {
    let (k, a, b) = bgate_parts(g);
    (k as u128) | ((a as u128) << 3) | ((b as u128) << 35)
}

/// The shared concurrent bit-gate store: struct-of-arrays payload columns
/// (1-byte kind + two 4-byte operands per gate) over paged write-once
/// storage, a sharded intern table for structural dedup, and an atomic
/// wire-id allocator. Wires 0/1 are preseeded with the constants, same as
/// the sequential [`Lowerer`].
struct ParLowerCore {
    table: InternTable,
    kinds: Pages<AtomicU8>,
    opa: Pages<AtomicU32>,
    opb: Pages<AtomicU32>,
    next: AtomicU32,
}

impl ParLowerCore {
    fn new() -> ParLowerCore {
        let core = ParLowerCore {
            table: InternTable::new(),
            kinds: Pages::new(),
            opa: Pages::new(),
            opb: Pages::new(),
            next: AtomicU32::new(2),
        };
        core.write(B_FALSE, BGate::Const(false));
        core.write(B_TRUE, BGate::Const(true));
        core
    }

    /// Stores `g`'s payload at wire `w`. Relaxed suffices: cross-thread
    /// visibility rides on the intern table's shard lock (payload is
    /// written before the key is published) or on pool scope joins.
    fn write(&self, w: u32, g: BGate) {
        let (k, a, b) = bgate_parts(g);
        self.opa.at(w).store(a, Ordering::Relaxed);
        self.opb.at(w).store(b, Ordering::Relaxed);
        self.kinds.at(w).store(k, Ordering::Relaxed);
    }

    fn alloc(&self, g: BGate) -> u32 {
        let w = self.next.fetch_add(1, Ordering::Relaxed);
        self.write(w, g);
        w
    }

    fn read(&self, w: u32) -> BGate {
        let k = self.kinds.at(w).load(Ordering::Relaxed);
        let a = self.opa.at(w).load(Ordering::Relaxed);
        let b = self.opb.at(w).load(Ordering::Relaxed);
        match k {
            BK_CONST => BGate::Const(a == 1),
            BK_INPUT => BGate::Input(a as usize),
            BK_XOR => BGate::Xor(a, b),
            BK_AND => BGate::And(a, b),
            BK_NOT => BGate::Not(a),
            BK_ASSERT => BGate::AssertFalse(a),
            _ => unreachable!("read of an unwritten bit wire"),
        }
    }
}

/// One lowering task's view of the shared core: interns and pushes go to
/// the concurrent store, and the wire returned by every attempt is logged
/// in invocation order for the creator renumbering.
struct ParTaskStore<'a> {
    core: &'a ParLowerCore,
    log: Vec<u32>,
}

impl BitRewrite for ParTaskStore<'_> {
    fn push(&mut self, g: BGate) -> u32 {
        // Uncached, like the sequential `push`: inputs and asserts are
        // never deduplicated.
        let w = self.core.alloc(g);
        self.log.push(w);
        w
    }

    fn intern(&mut self, key: BGate) -> u32 {
        let core = self.core;
        let (w, _created) = core.table.intern_with(pack_bkey(key), || core.alloc(key));
        self.log.push(w);
        w
    }

    fn not_operand(&self, w: u32) -> Option<u32> {
        match self.core.read(w) {
            BGate::Not(x) => Some(x),
            _ => None,
        }
    }

    /// `lower` exposes no fold statistics, so there is nothing to count.
    fn count_fold(&mut self) {}
}

/// [`lower`], scheduled across `pool`'s workers: word gates of equal
/// depth are expanded concurrently into the shared core, then the gate
/// list is renumbered into sequential creation order. Produces the
/// byte-identical [`BitCircuit`] for every evaluable circuit; a
/// single-worker pool delegates to the sequential pass directly.
///
/// # Panics
/// Panics if the circuit was built in count-only mode.
fn lower_pooled(c: &Circuit, width: u32, pool: &Pool) -> BitCircuit {
    assert!(c.is_evaluable(), "cannot lower a count-only circuit");
    if pool.is_sequential() {
        return lower_seq(c, width);
    }
    let w = width as usize;
    let src = c.gates();
    let depths = c.wire_depths();
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); c.depth() as usize + 1];
    for (i, &d) in depths.iter().enumerate() {
        levels[d as usize].push(i as u32);
    }

    let core = ParLowerCore::new();
    // Per bit wire: packed `(word gate + 1) << 32 | attempt index` of the
    // earliest attempt that produced it — the sequential creation point.
    // The preseeded constants get the two smallest keys.
    let mut creator: Vec<u64> = vec![0, 1];
    let mut word_bits: Vec<Vec<u32>> = vec![Vec::new(); src.len()];
    let mut num_input_bits = 0usize;

    for idxs in &levels {
        let done = pool.map(idxs.len(), |k| {
            let mut store = ParTaskStore {
                core: &core,
                log: Vec::new(),
            };
            let bits = lower_gate(&mut store, src[idxs[k] as usize], &word_bits, w);
            (bits, store.log)
        });
        let total = core.next.load(Ordering::Relaxed) as usize;
        creator.resize(total, u64::MAX);
        for (k, (bits, log)) in done.into_iter().enumerate() {
            let i = idxs[k];
            if let Gate::Input(idx) = src[i as usize] {
                num_input_bits = num_input_bits.max((idx + 1) * w);
            }
            for (a, &wire) in log.iter().enumerate() {
                let key = ((i as u64 + 1) << 32) | a as u64;
                let slot = &mut creator[wire as usize];
                if key < *slot {
                    *slot = key;
                }
            }
            word_bits[i as usize] = bits;
        }
    }

    // Renumber into sequential creation order (= ascending creator), and
    // re-canonicalize: commutative operand order depends on numbering.
    let total = core.next.load(Ordering::Relaxed) as usize;
    debug_assert_eq!(creator.len(), total);
    debug_assert!(creator.iter().all(|&k| k != u64::MAX));
    let mut order: Vec<u32> = (0..total as u32).collect();
    order.sort_unstable_by_key(|&x| creator[x as usize]);
    let mut renum = vec![0u32; total];
    for (new, &old) in order.iter().enumerate() {
        renum[old as usize] = new as u32;
    }
    let gates: Vec<BGate> = order
        .iter()
        .map(|&old| canon_bit(remap_bgate(core.read(old), &renum)))
        .collect();
    let outputs: Vec<u32> = c
        .outputs()
        .iter()
        .flat_map(|&wid: &WireId| word_bits[wid as usize].iter().map(|&bw| renum[bw as usize]))
        .collect();
    BitCircuit::new(gates, outputs, num_input_bits, width)
}

/// Lowers a word circuit to bits under `opts`, scheduled across
/// `opts.pool` (byte-identical [`BitCircuit`] for every worker count).
/// See [`lower_seq`]'s width contract: every domain value must fit in
/// `width` bits, with the all-ones word reserved for the `?` sentinel.
///
/// When `opts.recorder` is enabled the pass records a `lower` span and
/// the headline bit-level gate counts; the produced circuit never
/// depends on whether tracing was on.
///
/// # Panics
/// Panics if the circuit was built in count-only mode.
pub fn lower_with(c: &Circuit, width: u32, opts: &CompileOptions) -> BitCircuit {
    let rec = &opts.recorder;
    let _span = rec.span("lower");
    let bc = lower_pooled(c, width, &opts.pool);
    if rec.is_enabled() {
        rec.add("lower.bit_gates", bc.gate_count());
        rec.add("lower.and_gates", bc.and_count());
        rec.add("lower.xor_gates", bc.xor_count());
        rec.gauge_max("lower.and_depth", bc.and_depth() as u64);
    }
    bc
}

// ===================== parallel bit optimizer =====================

/// Placeholder returned by [`BitSpec`] for a not-yet-committed creation.
const BSPEC: u32 = u32::MAX - 1;

/// The single table action one bit gate's rewrite performs, if any. The
/// rule set guarantees at most one per source gate: every dispatch in
/// [`rewrite_bit_gate`] ends in at most one `intern` or `push`, and the
/// result is never consumed further within the same gate.
#[derive(Clone, Copy, Debug)]
enum BitAttempt {
    /// Fold or passthrough: the result is an existing wire.
    None,
    /// Decision-time lookup hit this existing wire.
    Hit(u32),
    /// Missed the CSE table (interned kinds) or an uncached push (inputs,
    /// asserts); commit re-runs it.
    Create(BGate),
}

/// One bit gate's planned rewrite: its result (or [`BSPEC`]), the pending
/// table action, and the exact counter deltas the sequential pass would
/// record for it.
struct BitDecision {
    result: u32,
    attempt: BitAttempt,
    folds: u64,
    cse_hits: u64,
}

/// Read-only speculative view of a [`Lowerer`] for the decision phase:
/// same rules, but table misses record the pending action instead of
/// mutating.
struct BitSpec<'a> {
    lw: &'a Lowerer,
    folds: u64,
    cse_hits: u64,
    attempt: BitAttempt,
}

impl BitRewrite for BitSpec<'_> {
    fn push(&mut self, g: BGate) -> u32 {
        debug_assert!(
            matches!(self.attempt, BitAttempt::None),
            "a rule performs at most one table action"
        );
        self.attempt = BitAttempt::Create(g);
        BSPEC
    }

    fn intern(&mut self, key: BGate) -> u32 {
        debug_assert!(
            matches!(self.attempt, BitAttempt::None),
            "a rule performs at most one table action"
        );
        match self.lw.cse.get(&key) {
            Some(&w) => {
                self.cse_hits += 1;
                self.attempt = BitAttempt::Hit(w);
                w
            }
            None => {
                self.attempt = BitAttempt::Create(key);
                BSPEC
            }
        }
    }

    fn not_operand(&self, w: u32) -> Option<u32> {
        match self.lw.gates[w as usize] {
            BGate::Not(x) => Some(x),
            _ => None,
        }
    }

    fn count_fold(&mut self) {
        self.folds += 1;
    }
}

/// Runs the rewrite rules for one source gate against committed state
/// only (operands sit at strictly lower levels).
fn decide_bit(lw: &Lowerer, map: &[u32], g: BGate) -> BitDecision {
    let mut sp = BitSpec {
        lw,
        folds: 0,
        cse_hits: 0,
        attempt: BitAttempt::None,
    };
    let result = rewrite_bit_gate(&mut sp, map, g);
    BitDecision {
        result,
        attempt: sp.attempt,
        folds: sp.folds,
        cse_hits: sp.cse_hits,
    }
}

/// Records a table attempt by source gate `i` that resolved to wire `w`:
/// a fresh creation appends its creator, a hit lowers the existing one.
/// Creator keys are `i + 2` so the preseeded constants sort first.
fn note_bit_attempt(creator: &mut Vec<u32>, total: usize, w: u32, i: u32) {
    let key = i + 2;
    if creator.len() < total {
        debug_assert_eq!(creator.len() + 1, total);
        debug_assert_eq!(w as usize, total - 1);
        creator.push(key);
    } else if key < creator[w as usize] {
        creator[w as usize] = key;
    }
}

/// Groups source bit gates into dependency levels: sources at 0, every
/// other kind strictly above all of its operands. (A scheduling depth —
/// unrelated to AND depth, which treats XOR/NOT as free.)
pub(crate) fn bit_levels(gates: &[BGate]) -> Vec<Vec<u32>> {
    let mut depth = vec![0u32; gates.len()];
    let mut max_d = 0u32;
    for (i, g) in gates.iter().enumerate() {
        let d = match *g {
            BGate::Input(_) | BGate::Const(_) => 0,
            BGate::Xor(a, b) | BGate::And(a, b) => depth[a as usize].max(depth[b as usize]) + 1,
            BGate::Not(a) | BGate::AssertFalse(a) => depth[a as usize] + 1,
        };
        depth[i] = d;
        max_d = max_d.max(d);
    }
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_d as usize + 1];
    for (i, &d) in depth.iter().enumerate() {
        levels[d as usize].push(i as u32);
    }
    levels
}

/// The level-parallel bit rewrite. Unlike the word-level pass there is no
/// fallback: bit asserts are uncached pushes with no value tracking, so
/// every gate — including one consuming an assert's wire — commits on the
/// level schedule.
fn rewrite_bits_par(bc: &BitCircuit, pool: &Pool) -> BitRewriteOut {
    let src = &bc.gates;
    let levels = bit_levels(src);
    let mut lw = Lowerer::new();
    // Per created wire: lowest source index that attempted it (offset by
    // the two preseeded constants).
    let mut creator: Vec<u32> = vec![0, 1];
    let mut map: Vec<u32> = vec![u32::MAX; src.len()];

    for idxs in &levels {
        let decisions = pool.map(idxs.len(), |k| decide_bit(&lw, &map, src[idxs[k] as usize]));
        for (d, &i) in decisions.iter().zip(idxs) {
            lw.folds += d.folds;
            lw.cse_hits += d.cse_hits;
            let w = match d.attempt {
                BitAttempt::None => d.result,
                BitAttempt::Hit(w0) => {
                    note_bit_attempt(&mut creator, lw.gates.len(), w0, i);
                    d.result
                }
                BitAttempt::Create(g) => {
                    let w = match g {
                        // A same-level predecessor may have committed the
                        // same key, in which case the re-intern becomes
                        // the CSE hit the sequential pass would count.
                        BGate::Input(_) | BGate::AssertFalse(_) => lw.push(g),
                        g => lw.intern(g),
                    };
                    note_bit_attempt(&mut creator, lw.gates.len(), w, i);
                    w
                }
            };
            map[i as usize] = w;
        }
    }

    // Renumber into sequential creation order (= ascending creator), and
    // re-canonicalize: commutative operand order depends on numbering.
    let n = lw.gates.len();
    debug_assert_eq!(creator.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&x| creator[x as usize]);
    let mut renum = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        renum[old as usize] = new as u32;
    }
    let gates: Vec<BGate> = order
        .iter()
        .map(|&old| canon_bit(remap_bgate(lw.gates[old as usize], &renum)))
        .collect();
    for m in &mut map {
        *m = renum[*m as usize];
    }
    BitRewriteOut {
        gates,
        map,
        cse_hits: lw.cse_hits,
        folds: lw.folds,
    }
}

/// Parallel liveness mark: same closure as [`mark_live_bits_seq`],
/// computed in descending level waves (a gate's own flag is settled
/// before its wave; it only stores into strictly lower levels, so waves
/// never race).
fn mark_live_bits_par(bc: &BitCircuit, out: &BitRewriteOut, pool: &Pool) -> Vec<bool> {
    let n = out.gates.len();
    let glevels = bit_levels(&out.gates);
    let live: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    for &o in &bc.outputs {
        live[out.map[o as usize] as usize].store(true, Ordering::Relaxed);
    }
    pool.run_chunks(n, pool.grain_for(n), |r| {
        for w in r {
            if matches!(out.gates[w], BGate::AssertFalse(_) | BGate::Input(_)) {
                live[w].store(true, Ordering::Relaxed);
            }
        }
    });
    for lvl in glevels.iter().rev() {
        pool.run_chunks(lvl.len(), pool.grain_for(lvl.len()), |r| {
            for k in r {
                let w = lvl[k] as usize;
                if live[w].load(Ordering::Relaxed) {
                    match out.gates[w] {
                        BGate::Xor(a, b) | BGate::And(a, b) => {
                            live[a as usize].store(true, Ordering::Relaxed);
                            live[b as usize].store(true, Ordering::Relaxed);
                        }
                        BGate::Not(a) | BGate::AssertFalse(a) => {
                            live[a as usize].store(true, Ordering::Relaxed);
                        }
                        BGate::Input(_) | BGate::Const(_) => {}
                    }
                }
            }
        });
    }
    live.into_iter().map(|b| b.into_inner()).collect()
}

/// [`optimize_bits_seq`], scheduled across `pool`'s workers. Produces
/// the byte-identical `(BitCircuit, BitOptStats)` for every circuit; a
/// single-worker pool delegates to the sequential pass directly.
fn optimize_bits_pooled(bc: &BitCircuit, pool: &Pool) -> (BitCircuit, BitOptStats) {
    if pool.is_sequential() {
        return optimize_bits_seq(bc);
    }
    let out = rewrite_bits_par(bc, pool);
    let live = mark_live_bits_par(bc, &out, pool);
    assemble_bits(bc, out, &live)
}

/// Offline optimizer for bit circuits under `opts`: XOR/AND/NOT constant
/// folding and identity rewrites, structural CSE, and assertion-safe DCE
/// (asserts are roots; only an assert whose input folds to constant
/// `false` is dropped), scheduled across `opts.pool` (byte-identical
/// result for every worker count). Circuits freshly produced by
/// [`lower_with`] are already folded online, so this pass mostly pays
/// off on hand-assembled or deserialized bit circuits — and as the place
/// where AND-count/AND-depth deltas are measured. Runs regardless of
/// `opts.optimize` (that flag gates the *word-level* pass inside the
/// compile driver; calling this function is already the opt-in).
///
/// When `opts.recorder` is enabled the pass records an `opt_bits` span
/// and its headline counters.
pub fn optimize_bits_with(bc: &BitCircuit, opts: &CompileOptions) -> (BitCircuit, BitOptStats) {
    let rec = &opts.recorder;
    let _span = rec.span("opt_bits");
    let (opt, st) = optimize_bits_pooled(bc, &opts.pool);
    if rec.is_enabled() {
        rec.add("opt_bits.gates_before", st.gates_before);
        rec.add("opt_bits.gates_after", st.gates_after);
        rec.add("opt_bits.cse_hits", st.cse_hits);
        rec.add("opt_bits.folds", st.folds);
        rec.add("opt_bits.dead", st.dead);
    }
    (opt, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Mode};

    fn check_against_words(
        build: impl Fn(&mut Builder) -> Vec<WireId>,
        inputs: &[u64],
        width: u32,
    ) {
        let mut b = Builder::new(Mode::Build);
        let outs = build(&mut b);
        let c = b.finish(outs);
        let word_result = c.evaluate(inputs).unwrap();
        let bc = lower_with(&c, width, &CompileOptions::sequential());
        let bit_result = bc.unpack_outputs(&bc.evaluate(&bc.pack_inputs(inputs)).unwrap());
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let masked: Vec<u64> = word_result.iter().map(|&v| v & mask).collect();
        assert_eq!(bit_result, masked, "inputs {inputs:?}");
    }

    #[test]
    fn arithmetic_gates_agree_with_word_semantics() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            vec![b.add(x, y), b.sub(x, y), b.mul(x, y)]
        };
        for (x, y) in [(3u64, 5u64), (200, 55), (255, 255), (0, 0), (17, 4)] {
            check_against_words(build, &[x, y], 16);
        }
    }

    #[test]
    fn comparison_and_logic_agree() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            let e = b.eq(x, y);
            let l = b.lt(x, y);
            let a = b.and(x, y);
            let o = b.or(x, y);
            let n = b.not(x);
            let xo = b.xor(x, y);
            vec![e, l, a, o, n, xo]
        };
        for (x, y) in [(3u64, 5u64), (5, 3), (7, 7), (0, 9), (0, 0)] {
            check_against_words(build, &[x, y], 12);
        }
    }

    #[test]
    fn mux_agrees() {
        let build = |b: &mut Builder| {
            let s = b.input();
            let x = b.input();
            let y = b.input();
            vec![b.mux(s, x, y)]
        };
        for (s, x, y) in [(0u64, 11u64, 22u64), (1, 11, 22), (9, 11, 22)] {
            check_against_words(build, &[s, x, y], 8);
        }
    }

    #[test]
    fn assertion_lowering_fires() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let bc = lower_with(&c, 8, &CompileOptions::sequential());
        assert!(bc.evaluate(&bc.pack_inputs(&[0])).is_ok());
        assert!(bc.evaluate(&bc.pack_inputs(&[4])).is_err());
    }

    #[test]
    fn and_metrics() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let c = b.finish(vec![s]);
        let bc = lower_with(&c, 16, &CompileOptions::sequential());
        // ripple-carry: 2 ANDs per bit (generate + propagate), except
        // the LSB where carry-in = 0 folds the propagate AND away
        assert_eq!(bc.and_count(), 31);
        assert!(bc.and_depth() >= 15, "carry chain depth");
        assert!(bc.gate_count() > bc.and_count());
        // metrics are cached: repeated calls agree
        assert_eq!(bc.and_depth(), bc.and_depth());
        assert_eq!(bc.gate_count(), bc.xor_count() + bc.and_count());
    }

    #[test]
    fn online_folding_preserves_semantics_with_consts() {
        // x + 0 and x * 1 exercise the zero/one fold paths heavily.
        let build = |b: &mut Builder| {
            let x = b.input();
            let zero = b.constant(0);
            let one = b.constant(1);
            let s = b.add(x, zero);
            let p = b.mul(x, one);
            let e = b.eq(s, p);
            vec![s, p, e]
        };
        for x in [0u64, 1, 77, 255] {
            check_against_words(build, &[x], 8);
        }
    }

    #[test]
    fn optimize_bits_is_equivalent_and_no_larger() {
        // Hand-assembled redundancy (circuits from `lower` are already
        // folded online, so build the duplicates directly).
        let gates = vec![
            BGate::Input(0),  // 0
            BGate::Input(1),  // 1
            BGate::And(0, 1), // 2
            BGate::And(1, 0), // 3: commutative duplicate of 2
            BGate::Xor(2, 3), // 4: x ^ x = 0
            BGate::Not(4),    // 5: = 1
            BGate::And(2, 5), // 6: (x & y) & 1 = x & y
        ];
        let bc = BitCircuit::new(gates, vec![6], 2, 1);
        let (opt, st) = optimize_bits_with(&bc, &CompileOptions::sequential());
        assert_eq!(st.and_before, 3);
        assert_eq!(st.and_after, 1, "only one real AND remains");
        assert!(st.cse_hits >= 1);
        assert!(st.dead >= 1);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(
                bc.evaluate(&[x, y]).unwrap(),
                opt.evaluate(&[x, y]).unwrap(),
                "({x}, {y})"
            );
        }
    }

    #[test]
    fn optimize_bits_keeps_failing_asserts() {
        // An assert over constant-true must survive as always-fail.
        let gates = vec![
            BGate::Const(false),
            BGate::Const(true),
            BGate::AssertFalse(1),
        ];
        let bc = BitCircuit::new(gates, vec![], 0, 1);
        let (opt, _) = optimize_bits_with(&bc, &CompileOptions::sequential());
        assert!(
            opt.evaluate(&[]).is_err(),
            "always-fail assert must survive"
        );
        // And an assert over constant-false is dropped.
        let gates = vec![
            BGate::Const(false),
            BGate::Const(true),
            BGate::AssertFalse(0),
        ];
        let bc = BitCircuit::new(gates, vec![], 0, 1);
        let (opt, _) = optimize_bits_with(&bc, &CompileOptions::sequential());
        assert!(opt.evaluate(&[]).is_ok());
        assert_eq!(opt.gate_count(), 0);
    }

    /// A word circuit exercising every gate kind, structural duplicates
    /// (commutative and literal), constant folds, asserts (passing and
    /// redundant), and a deep dependency chain.
    fn gnarly_word_circuit() -> Circuit {
        let mut b = Builder::without_cse(Mode::Build);
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let c1 = b.constant(1);
        let c0 = b.constant(0);
        let mut acc = x;
        for i in 0..6 {
            let s = b.add(acc, y);
            let p = b.mul(s, z);
            let e = b.eq(p, x);
            let l = b.lt(acc, p);
            let m = b.mux(e, s, l);
            let o = b.or(m, c1);
            let xo = b.xor(o, c0);
            let n = b.not(xo);
            let a2 = b.and(n, m);
            // structurally duplicate adds (also commuted) and an
            // always-passing assert over their difference
            let dup = b.add(acc, y);
            let du2 = b.add(y, acc);
            let su = b.sub(dup, du2);
            b.assert_zero(su);
            let pick = if i % 2 == 0 { s } else { m };
            acc = b.add(a2, pick);
        }
        b.finish(vec![acc, x])
    }

    fn assert_same_lower(c: &Circuit, width: u32, threads: usize) {
        let seq = lower_with(c, width, &CompileOptions::sequential());
        let par = lower_with(
            c,
            width,
            &CompileOptions::sequential().with_pool(Pool::new(threads)),
        );
        assert_eq!(par.gates(), seq.gates(), "threads={threads}");
        assert_eq!(par.outputs(), seq.outputs(), "threads={threads}");
        assert_eq!(par.num_inputs(), seq.num_inputs());
        assert_eq!(par.width(), seq.width());
    }

    #[test]
    fn parallel_lowering_is_byte_identical() {
        let c = gnarly_word_circuit();
        for threads in [1, 2, 3, 8] {
            assert_same_lower(&c, 12, threads);
        }
    }

    #[test]
    fn parallel_lowering_matches_on_tiny_circuits() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![x]);
        for threads in [2, 8] {
            assert_same_lower(&c, 8, threads);
        }
    }

    /// A hand-assembled bit DAG with duplicates (plain and commuted),
    /// folds, NOT chains, droppable and surviving asserts, and dead
    /// gates, from a fixed xorshift stream.
    fn gnarly_bit_circuit() -> BitCircuit {
        let mut gates = vec![BGate::Const(false), BGate::Const(true)];
        for i in 0..4 {
            gates.push(BGate::Input(i));
        }
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let n = gates.len() as u32;
            let a = (rng() % n as u64) as u32;
            let b = (rng() % n as u64) as u32;
            gates.push(match rng() % 8 {
                0 | 1 => BGate::Xor(a, b),
                2 | 3 => BGate::And(a, b),
                4 => BGate::Xor(b, a),
                5 => BGate::Not(a),
                6 => BGate::And(a, a),
                _ => BGate::Xor(a, a),
            });
        }
        let n = gates.len() as u32;
        gates.push(BGate::Xor(n - 1, n - 1)); // identically 0
        gates.push(BGate::AssertFalse(n)); // folds away
        gates.push(BGate::AssertFalse(0)); // folds away
        gates.push(BGate::AssertFalse(5)); // survives (input wire)
        BitCircuit::new(gates, vec![n - 1, n - 3, 7], 4, 1)
    }

    fn assert_same_bitopt(bc: &BitCircuit, threads: usize) {
        let (seq, seq_st) = optimize_bits_with(bc, &CompileOptions::sequential());
        let (par, par_st) = optimize_bits_with(
            bc,
            &CompileOptions::sequential().with_pool(Pool::new(threads)),
        );
        assert_eq!(par.gates(), seq.gates(), "threads={threads}");
        assert_eq!(par.outputs(), seq.outputs(), "threads={threads}");
        assert_eq!(par.num_inputs(), seq.num_inputs());
        assert_eq!(
            format!("{par_st:?}"),
            format!("{seq_st:?}"),
            "threads={threads}"
        );
    }

    #[test]
    fn parallel_bit_optimizer_is_byte_identical() {
        let bc = gnarly_bit_circuit();
        for threads in [1, 2, 3, 8] {
            assert_same_bitopt(&bc, threads);
        }
    }

    #[test]
    fn parallel_bit_optimizer_matches_on_lowered_circuits() {
        // Already folded online: exercises the Input/assert push paths
        // and the passthrough-heavy rewrite.
        let lowered = lower_with(&gnarly_word_circuit(), 10, &CompileOptions::sequential());
        for threads in [2, 8] {
            assert_same_bitopt(&lowered, threads);
        }
    }

    #[test]
    fn sealed_metrics_stay_consistent_with_gate_list() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let p = b.mul(s, y);
        let c = b.finish(vec![p]);
        let bc = lower_with(&c, 8, &CompileOptions::sequential());
        // Prime the metrics cache, then recount from the sealed
        // accessors: the gate list is immutable after construction, so
        // the cache can never disagree with it.
        let and_cached = bc.and_count();
        let xor_cached = bc.xor_count();
        let gates_cached = bc.gate_count();
        let and_recount = bc
            .gates()
            .iter()
            .filter(|g| matches!(g, BGate::And(_, _)))
            .count() as u64;
        let xor_recount = bc
            .gates()
            .iter()
            .filter(|g| matches!(g, BGate::Xor(_, _)))
            .count() as u64;
        let logic_recount = bc
            .gates()
            .iter()
            .filter(|g| !matches!(g, BGate::Input(_) | BGate::Const(_)))
            .count() as u64;
        assert_eq!(and_cached, and_recount);
        assert_eq!(xor_cached, xor_recount);
        assert_eq!(gates_cached, logic_recount);
        // repeated reads keep returning the cached values
        assert_eq!(bc.and_count(), and_cached);
        assert_eq!(bc.gate_count(), gates_cached);
    }

    #[test]
    fn wrapping_matches_width() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            vec![b.add(x, y)]
        };
        // 250 + 10 wraps mod 2^8 = 4
        check_against_words(build, &[250, 10], 8);
    }
}
