//! Bit-level lowering: word circuits → AND/XOR/NOT circuits.
//!
//! The paper treats Boolean and arithmetic circuits interchangeably up to
//! `poly(log u)` factors (Sec. 4.1). This module makes the translation
//! concrete: every word wire becomes `width` bit wires; word gates expand
//! to textbook Boolean blocks (ripple-carry adders, comparators,
//! multiplexers). The result is exactly what garbled-circuit or GMW-style
//! protocols consume — XOR gates are "free" in both, so [`BitCircuit`]
//! reports AND count and AND depth separately.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::{Circuit, Gate, WireId};

/// A bit-level gate over GF(2) with NOT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BGate {
    /// The `i`-th input bit.
    Input(usize),
    /// A constant bit.
    Const(bool),
    /// XOR (free in GMW/garbling).
    Xor(u32, u32),
    /// AND (the expensive gate).
    And(u32, u32),
    /// NOT (free).
    Not(u32),
    /// Assertion: the bit must be 0 at evaluation time.
    AssertFalse(u32),
}

/// A lowered Boolean circuit.
///
/// Treat the gate list as immutable once constructed: the size/depth
/// metrics ([`BitCircuit::and_count`] and friends) are computed lazily
/// on first use and cached, so they would not observe later mutation.
pub struct BitCircuit {
    /// Gates in topological order.
    pub gates: Vec<BGate>,
    /// Output bit wires (the word outputs, `width` bits each, LSB first).
    pub outputs: Vec<u32>,
    /// Number of input bits.
    pub num_inputs: usize,
    /// Word width used by the lowering.
    pub width: u32,
    /// Lazily computed metrics (one pass over `gates`, then cached —
    /// `report` calls `and_depth` per table row).
    metrics: OnceLock<BitMetrics>,
}

/// Single-pass size/depth metrics for a [`BitCircuit`].
#[derive(Clone, Copy, Debug, Default)]
struct BitMetrics {
    gate_count: u64,
    and_count: u64,
    xor_count: u64,
    and_depth: u32,
}

impl BitCircuit {
    /// Assembles a bit circuit. Gates must be topologically ordered.
    pub fn new(gates: Vec<BGate>, outputs: Vec<u32>, num_inputs: usize, width: u32) -> BitCircuit {
        BitCircuit {
            gates,
            outputs,
            num_inputs,
            width,
            metrics: OnceLock::new(),
        }
    }

    fn metrics(&self) -> &BitMetrics {
        self.metrics.get_or_init(|| {
            let mut m = BitMetrics::default();
            let mut depth = vec![0u32; self.gates.len()];
            for (i, g) in self.gates.iter().enumerate() {
                depth[i] = match *g {
                    BGate::Input(_) | BGate::Const(_) => 0,
                    BGate::Xor(a, b) => {
                        m.xor_count += 1;
                        depth[a as usize].max(depth[b as usize])
                    }
                    BGate::Not(a) | BGate::AssertFalse(a) => depth[a as usize],
                    BGate::And(a, b) => {
                        m.and_count += 1;
                        depth[a as usize].max(depth[b as usize]) + 1
                    }
                };
                if !matches!(g, BGate::Input(_) | BGate::Const(_)) {
                    m.gate_count += 1;
                }
                m.and_depth = m.and_depth.max(depth[i]);
            }
            m
        })
    }

    /// Number of AND gates (the MPC/garbling cost driver).
    pub fn and_count(&self) -> u64 {
        self.metrics().and_count
    }

    /// Number of XOR gates (free in GMW/garbling).
    pub fn xor_count(&self) -> u64 {
        self.metrics().xor_count
    }

    /// Total gate count (excluding inputs and constants).
    pub fn gate_count(&self) -> u64 {
        self.metrics().gate_count
    }

    /// Multiplicative (AND) depth — the round count of a GMW evaluation.
    pub fn and_depth(&self) -> u32 {
        self.metrics().and_depth
    }

    /// Plaintext evaluation (reference for the MPC protocols).
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, crate::EvalError> {
        if inputs.len() != self.num_inputs {
            return Err(crate::EvalError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let mut vals = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            vals[i] = match *g {
                BGate::Input(idx) => inputs[idx],
                BGate::Const(v) => v,
                BGate::Xor(a, b) => vals[a as usize] ^ vals[b as usize],
                BGate::And(a, b) => vals[a as usize] & vals[b as usize],
                BGate::Not(a) => !vals[a as usize],
                BGate::AssertFalse(a) => {
                    if vals[a as usize] {
                        return Err(crate::EvalError::AssertionFailed { gate: i, value: 1 });
                    }
                    false
                }
            };
        }
        Ok(self.outputs.iter().map(|&w| vals[w as usize]).collect())
    }

    /// Packs word inputs into the bit layout the lowering expects
    /// (LSB-first per word).
    pub fn pack_inputs(&self, words: &[u64]) -> Vec<bool> {
        let mut bits = Vec::with_capacity(words.len() * self.width as usize);
        for &w in words {
            for i in 0..self.width {
                bits.push((w >> i) & 1 == 1);
            }
        }
        bits
    }

    /// Unpacks output bits back into words.
    pub fn unpack_outputs(&self, bits: &[bool]) -> Vec<u64> {
        bits.chunks(self.width as usize)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
            })
            .collect()
    }
}

/// Bit-gate builder with online constant folding and hash-consing: XOR
/// and AND fold against the `zero`/`one` wires and equal operands, NOT
/// cancels NOT, and structurally repeated gates (operands sorted — both
/// binary bit gates are commutative) return the existing wire. All bit
/// wires carry `0`/`1`, so unlike the word level every identity here is
/// unconditionally sound.
struct Lowerer {
    gates: Vec<BGate>,
    zero: u32,
    one: u32,
    cse: HashMap<BGate, u32>,
    cse_hits: u64,
    folds: u64,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            gates: vec![BGate::Const(false), BGate::Const(true)],
            zero: 0,
            one: 1,
            cse: HashMap::new(),
            cse_hits: 0,
            folds: 0,
        }
    }

    fn push(&mut self, g: BGate) -> u32 {
        self.gates.push(g);
        (self.gates.len() - 1) as u32
    }

    fn emit(&mut self, g: BGate) -> u32 {
        let key = match g {
            BGate::Xor(a, b) if a > b => BGate::Xor(b, a),
            BGate::And(a, b) if a > b => BGate::And(b, a),
            g => g,
        };
        if let Some(&w) = self.cse.get(&key) {
            self.cse_hits += 1;
            return w;
        }
        let w = self.push(key);
        self.cse.insert(key, w);
        w
    }

    fn xor(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            self.folds += 1;
            return self.zero;
        }
        if a == self.zero {
            self.folds += 1;
            return b;
        }
        if b == self.zero {
            self.folds += 1;
            return a;
        }
        if a == self.one {
            self.folds += 1;
            return self.not(b);
        }
        if b == self.one {
            self.folds += 1;
            return self.not(a);
        }
        self.emit(BGate::Xor(a, b))
    }

    fn and(&mut self, a: u32, b: u32) -> u32 {
        if a == self.zero || b == self.zero {
            self.folds += 1;
            return self.zero;
        }
        if a == self.one {
            self.folds += 1;
            return b;
        }
        if b == self.one {
            self.folds += 1;
            return a;
        }
        if a == b {
            self.folds += 1;
            return a;
        }
        self.emit(BGate::And(a, b))
    }

    fn not(&mut self, a: u32) -> u32 {
        if a == self.zero {
            return self.one;
        }
        if a == self.one {
            return self.zero;
        }
        if let BGate::Not(x) = self.gates[a as usize] {
            self.folds += 1;
            return x;
        }
        self.emit(BGate::Not(a))
    }

    fn or(&mut self, a: u32, b: u32) -> u32 {
        // a | b = (a ^ b) ^ (a & b)
        let x = self.xor(a, b);
        let n = self.and(a, b);
        self.xor(x, n)
    }

    fn mux_bit(&mut self, s: u32, a: u32, b: u32) -> u32 {
        // b ^ (s & (a ^ b)) — one AND per bit
        let d = self.xor(a, b);
        let m = self.and(s, d);
        self.xor(b, m)
    }

    /// OR-reduction: "is any bit set" (word truthiness).
    fn truthy(&mut self, bits: &[u32]) -> u32 {
        let mut acc = self.zero;
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    fn add_words(&mut self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut carry = self.zero;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b.iter()) {
            let xy = self.xor(x, y);
            let s = self.xor(xy, carry);
            // carry' = (x & y) ^ (carry & (x ^ y))
            let g = self.and(x, y);
            let p = self.and(carry, xy);
            carry = self.xor(g, p);
            out.push(s);
        }
        out
    }

    fn neg_words(&mut self, a: &[u32]) -> Vec<u32> {
        // two's complement: ~a + 1
        let inv: Vec<u32> = a.iter().map(|&x| self.not(x)).collect();
        let mut one_word = vec![self.zero; a.len()];
        one_word[0] = self.one;
        self.add_words(&inv, &one_word)
    }

    fn eq_words(&mut self, a: &[u32], b: &[u32]) -> u32 {
        let mut acc = self.one;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let d = self.xor(x, y);
            let same = self.not(d);
            acc = self.and(acc, same);
        }
        acc
    }

    fn lt_words(&mut self, a: &[u32], b: &[u32]) -> u32 {
        // ripple from LSB: lt = (!a & b) | (!(a^b) & lt_prev)
        let mut lt = self.zero;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let nx = self.not(x);
            let here = self.and(nx, y);
            let d = self.xor(x, y);
            let same = self.not(d);
            let keep = self.and(same, lt);
            lt = self.or(here, keep);
        }
        lt
    }

    fn mul_words(&mut self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let w = a.len();
        let mut acc = vec![self.zero; w];
        for (i, &bi) in b.iter().enumerate() {
            // partial product: (a << i) & bi, truncated to w bits
            let mut pp = vec![self.zero; w];
            for j in 0..w - i {
                pp[i + j] = self.and(a[j], bi);
            }
            acc = self.add_words(&acc, &pp);
        }
        acc
    }
}

/// Lowers a word circuit to bits. Every word input becomes `width` input
/// bits (LSB first); word values must fit in `width` bits for the
/// semantics to agree with the word evaluator (checked by tests over the
/// operating domain).
///
/// Width contract: choose `width` so that every domain value is
/// `< 2^width − 1`. The all-ones word is the image of the reserved `?`
/// sentinel (`QMARK = u64::MAX`, Sec. 5.3), which truncates consistently:
/// order and equality comparisons against domain values behave as at word
/// level, but a domain value equal to `2^width − 1` would collide with it.
///
/// # Panics
/// Panics if the circuit was built in count-only mode.
pub fn lower(c: &Circuit, width: u32) -> BitCircuit {
    assert!(c.is_evaluable(), "cannot lower a count-only circuit");
    let w = width as usize;
    let mut lw = Lowerer::new();
    let mut word_bits: Vec<Vec<u32>> = Vec::with_capacity(c.num_wires());
    let mut num_input_bits = 0usize;

    for (i, g) in c.gates().iter().enumerate() {
        let bits: Vec<u32> = match *g {
            Gate::Input(idx) => {
                num_input_bits = num_input_bits.max((idx + 1) * w);
                (0..w).map(|k| lw.push(BGate::Input(idx * w + k))).collect()
            }
            Gate::Const(v) => (0..w)
                .map(|k| if (v >> k) & 1 == 1 { lw.one } else { lw.zero })
                .collect(),
            Gate::Add(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                lw.add_words(&a, &b)
            }
            Gate::Sub(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let nb = lw.neg_words(&b);
                lw.add_words(&a, &nb)
            }
            Gate::Mul(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                lw.mul_words(&a, &b)
            }
            Gate::Eq(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let e = lw.eq_words(&a, &b);
                let mut out = vec![lw.zero; w];
                out[0] = e;
                out
            }
            Gate::Lt(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let l = lw.lt_words(&a, &b);
                let mut out = vec![lw.zero; w];
                out[0] = l;
                out
            }
            Gate::And(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let (ta, tb) = (lw.truthy(&a), lw.truthy(&b));
                let r = lw.and(ta, tb);
                let mut out = vec![lw.zero; w];
                out[0] = r;
                out
            }
            Gate::Or(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let (ta, tb) = (lw.truthy(&a), lw.truthy(&b));
                let r = lw.or(ta, tb);
                let mut out = vec![lw.zero; w];
                out[0] = r;
                out
            }
            Gate::Xor(a, b) => {
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                let (ta, tb) = (lw.truthy(&a), lw.truthy(&b));
                let r = lw.xor(ta, tb);
                let mut out = vec![lw.zero; w];
                out[0] = r;
                out
            }
            Gate::Not(a) => {
                let a = word_bits[a as usize].clone();
                let ta = lw.truthy(&a);
                let r = lw.not(ta);
                let mut out = vec![lw.zero; w];
                out[0] = r;
                out
            }
            Gate::Mux(s, a, b) => {
                let s_bits = word_bits[s as usize].clone();
                let ts = lw.truthy(&s_bits);
                let (a, b) = (word_bits[a as usize].clone(), word_bits[b as usize].clone());
                a.iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| lw.mux_bit(ts, x, y))
                    .collect()
            }
            Gate::AssertZero(a) => {
                let a = word_bits[a as usize].clone();
                let ta = lw.truthy(&a);
                // A truthiness that folded to constant 0 can never fire;
                // anything else (including constant 1 = always-fail)
                // keeps its assert so failure semantics survive.
                if ta != lw.zero {
                    lw.push(BGate::AssertFalse(ta));
                }
                vec![lw.zero; w]
            }
        };
        debug_assert_eq!(i, word_bits.len());
        word_bits.push(bits);
    }

    let outputs = c
        .outputs()
        .iter()
        .flat_map(|&w_id: &WireId| word_bits[w_id as usize].clone())
        .collect();
    BitCircuit::new(lw.gates, outputs, num_input_bits, width)
}

/// Counters describing one [`optimize_bits`] run.
#[derive(Clone, Debug, Default)]
pub struct BitOptStats {
    /// Logic gates before (XOR + AND + NOT + asserts).
    pub gates_before: u64,
    /// Logic gates after.
    pub gates_after: u64,
    /// AND gates before — the MPC/garbling cost driver.
    pub and_before: u64,
    /// AND gates after.
    pub and_after: u64,
    /// AND depth before — the GMW round count.
    pub and_depth_before: u32,
    /// AND depth after.
    pub and_depth_after: u32,
    /// Structural CSE hits during the rewrite.
    pub cse_hits: u64,
    /// Constant/identity folds during the rewrite.
    pub folds: u64,
    /// Wires removed by mark-and-sweep DCE.
    pub dead: u64,
}

impl BitOptStats {
    /// Fraction of AND gates removed, in `[0, 1]`.
    pub fn and_reduction(&self) -> f64 {
        if self.and_before == 0 {
            0.0
        } else {
            1.0 - self.and_after as f64 / self.and_before as f64
        }
    }
}

/// Offline optimizer for bit circuits: XOR/AND/NOT constant folding and
/// identity rewrites, structural CSE, and assertion-safe DCE (asserts
/// are roots; only an assert whose input folds to constant `false` is
/// dropped). Circuits freshly produced by [`lower`] are already folded
/// online, so this pass mostly pays off on hand-assembled or
/// deserialized bit circuits — and as the place where AND-count/AND-depth
/// deltas are measured.
pub fn optimize_bits(bc: &BitCircuit) -> (BitCircuit, BitOptStats) {
    let mut lw = Lowerer::new();
    let mut map: Vec<u32> = Vec::with_capacity(bc.gates.len());
    for g in &bc.gates {
        let w = match *g {
            BGate::Input(i) => lw.push(BGate::Input(i)),
            BGate::Const(v) => {
                if v {
                    lw.one
                } else {
                    lw.zero
                }
            }
            BGate::Xor(a, b) => lw.xor(map[a as usize], map[b as usize]),
            BGate::And(a, b) => lw.and(map[a as usize], map[b as usize]),
            BGate::Not(a) => lw.not(map[a as usize]),
            BGate::AssertFalse(a) => {
                let a = map[a as usize];
                if a == lw.zero {
                    lw.zero
                } else {
                    lw.push(BGate::AssertFalse(a))
                }
            }
        };
        map.push(w);
    }

    // Mark-and-sweep: outputs, asserts, and inputs are roots.
    let n = lw.gates.len();
    let mut live = vec![false; n];
    for &o in &bc.outputs {
        live[map[o as usize] as usize] = true;
    }
    for (w, g) in lw.gates.iter().enumerate() {
        if matches!(g, BGate::AssertFalse(_) | BGate::Input(_)) {
            live[w] = true;
        }
    }
    for w in (0..n).rev() {
        if live[w] {
            match lw.gates[w] {
                BGate::Xor(a, b) | BGate::And(a, b) => {
                    live[a as usize] = true;
                    live[b as usize] = true;
                }
                BGate::Not(a) | BGate::AssertFalse(a) => live[a as usize] = true,
                BGate::Input(_) | BGate::Const(_) => {}
            }
        }
    }
    let mut remap = vec![u32::MAX; n];
    let mut gates = Vec::with_capacity(n);
    for w in 0..n {
        if !live[w] {
            continue;
        }
        remap[w] = gates.len() as u32;
        gates.push(match lw.gates[w] {
            BGate::Input(i) => BGate::Input(i),
            BGate::Const(v) => BGate::Const(v),
            BGate::Xor(a, b) => BGate::Xor(remap[a as usize], remap[b as usize]),
            BGate::And(a, b) => BGate::And(remap[a as usize], remap[b as usize]),
            BGate::Not(a) => BGate::Not(remap[a as usize]),
            BGate::AssertFalse(a) => BGate::AssertFalse(remap[a as usize]),
        });
    }
    let dead = (n - gates.len()) as u64;
    let outputs = bc
        .outputs
        .iter()
        .map(|&o| remap[map[o as usize] as usize])
        .collect();
    let opt = BitCircuit::new(gates, outputs, bc.num_inputs, bc.width);
    let stats = BitOptStats {
        gates_before: bc.gate_count(),
        gates_after: opt.gate_count(),
        and_before: bc.and_count(),
        and_after: opt.and_count(),
        and_depth_before: bc.and_depth(),
        and_depth_after: opt.and_depth(),
        cse_hits: lw.cse_hits,
        folds: lw.folds,
        dead,
    };
    (opt, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Mode};

    fn check_against_words(
        build: impl Fn(&mut Builder) -> Vec<WireId>,
        inputs: &[u64],
        width: u32,
    ) {
        let mut b = Builder::new(Mode::Build);
        let outs = build(&mut b);
        let c = b.finish(outs);
        let word_result = c.evaluate(inputs).unwrap();
        let bc = lower(&c, width);
        let bit_result = bc.unpack_outputs(&bc.evaluate(&bc.pack_inputs(inputs)).unwrap());
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let masked: Vec<u64> = word_result.iter().map(|&v| v & mask).collect();
        assert_eq!(bit_result, masked, "inputs {inputs:?}");
    }

    #[test]
    fn arithmetic_gates_agree_with_word_semantics() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            vec![b.add(x, y), b.sub(x, y), b.mul(x, y)]
        };
        for (x, y) in [(3u64, 5u64), (200, 55), (255, 255), (0, 0), (17, 4)] {
            check_against_words(build, &[x, y], 16);
        }
    }

    #[test]
    fn comparison_and_logic_agree() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            let e = b.eq(x, y);
            let l = b.lt(x, y);
            let a = b.and(x, y);
            let o = b.or(x, y);
            let n = b.not(x);
            let xo = b.xor(x, y);
            vec![e, l, a, o, n, xo]
        };
        for (x, y) in [(3u64, 5u64), (5, 3), (7, 7), (0, 9), (0, 0)] {
            check_against_words(build, &[x, y], 12);
        }
    }

    #[test]
    fn mux_agrees() {
        let build = |b: &mut Builder| {
            let s = b.input();
            let x = b.input();
            let y = b.input();
            vec![b.mux(s, x, y)]
        };
        for (s, x, y) in [(0u64, 11u64, 22u64), (1, 11, 22), (9, 11, 22)] {
            check_against_words(build, &[s, x, y], 8);
        }
    }

    #[test]
    fn assertion_lowering_fires() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let bc = lower(&c, 8);
        assert!(bc.evaluate(&bc.pack_inputs(&[0])).is_ok());
        assert!(bc.evaluate(&bc.pack_inputs(&[4])).is_err());
    }

    #[test]
    fn and_metrics() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let c = b.finish(vec![s]);
        let bc = lower(&c, 16);
        // ripple-carry: 2 ANDs per bit (generate + propagate), except
        // the LSB where carry-in = 0 folds the propagate AND away
        assert_eq!(bc.and_count(), 31);
        assert!(bc.and_depth() >= 15, "carry chain depth");
        assert!(bc.gate_count() > bc.and_count());
        // metrics are cached: repeated calls agree
        assert_eq!(bc.and_depth(), bc.and_depth());
        assert_eq!(bc.gate_count(), bc.xor_count() + bc.and_count());
    }

    #[test]
    fn online_folding_preserves_semantics_with_consts() {
        // x + 0 and x * 1 exercise the zero/one fold paths heavily.
        let build = |b: &mut Builder| {
            let x = b.input();
            let zero = b.constant(0);
            let one = b.constant(1);
            let s = b.add(x, zero);
            let p = b.mul(x, one);
            let e = b.eq(s, p);
            vec![s, p, e]
        };
        for x in [0u64, 1, 77, 255] {
            check_against_words(build, &[x], 8);
        }
    }

    #[test]
    fn optimize_bits_is_equivalent_and_no_larger() {
        // Hand-assembled redundancy (circuits from `lower` are already
        // folded online, so build the duplicates directly).
        let gates = vec![
            BGate::Input(0),  // 0
            BGate::Input(1),  // 1
            BGate::And(0, 1), // 2
            BGate::And(1, 0), // 3: commutative duplicate of 2
            BGate::Xor(2, 3), // 4: x ^ x = 0
            BGate::Not(4),    // 5: = 1
            BGate::And(2, 5), // 6: (x & y) & 1 = x & y
        ];
        let bc = BitCircuit::new(gates, vec![6], 2, 1);
        let (opt, st) = optimize_bits(&bc);
        assert_eq!(st.and_before, 3);
        assert_eq!(st.and_after, 1, "only one real AND remains");
        assert!(st.cse_hits >= 1);
        assert!(st.dead >= 1);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(
                bc.evaluate(&[x, y]).unwrap(),
                opt.evaluate(&[x, y]).unwrap(),
                "({x}, {y})"
            );
        }
    }

    #[test]
    fn optimize_bits_keeps_failing_asserts() {
        // An assert over constant-true must survive as always-fail.
        let gates = vec![
            BGate::Const(false),
            BGate::Const(true),
            BGate::AssertFalse(1),
        ];
        let bc = BitCircuit::new(gates, vec![], 0, 1);
        let (opt, _) = optimize_bits(&bc);
        assert!(
            opt.evaluate(&[]).is_err(),
            "always-fail assert must survive"
        );
        // And an assert over constant-false is dropped.
        let gates = vec![
            BGate::Const(false),
            BGate::Const(true),
            BGate::AssertFalse(0),
        ];
        let bc = BitCircuit::new(gates, vec![], 0, 1);
        let (opt, _) = optimize_bits(&bc);
        assert!(opt.evaluate(&[]).is_ok());
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn wrapping_matches_width() {
        let build = |b: &mut Builder| {
            let x = b.input();
            let y = b.input();
            vec![b.add(x, y)]
        };
        // 250 + 10 wraps mod 2^8 = 4
        check_against_words(build, &[250, 10], 8);
    }
}
