//! Failure-path suite for the networked protocol: every frame-level
//! fault — drop, duplicate, truncation, reordering, corruption — must
//! surface as a **typed** [`MpcError`] on both parties, bounded by the
//! transport timeout. Never a hang, never a silently wrong answer.
//!
//! Each scenario runs over both the in-process [`Duplex`] pair and a
//! TCP loopback connection, with party 0's outgoing frames routed
//! through a [`FaultTransport`].

use qec_circuit::lower::{lower_with, BitCircuit};
use qec_circuit::{Builder, CompileOptions, CompiledBitCircuit, Mode};
use qec_mpc::{
    share_bits, Duplex, Fault, FaultTransport, MpcError, Outcome, PackedDealer, Role, Session,
    TcpTransport, Transport,
};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_millis(300);

fn adder() -> BitCircuit {
    let mut b = Builder::new(Mode::Build);
    let x = b.input();
    let y = b.input();
    let s = b.add(x, y);
    let lt = b.lt(x, y);
    let c = b.finish(vec![s, lt]);
    lower_with(&c, 16, &CompileOptions::sequential())
}

type TwoResults = (Result<Outcome, MpcError>, Result<Outcome, MpcError>);

/// Runs one two-party session with `faults` injected into party 0's
/// sends, over transports built by `make`.
fn run_with_faults<T0, T1>(make: impl FnOnce() -> (T0, T1), faults: &[(u64, Fault)]) -> TwoResults
where
    T0: Transport + Send,
    T1: Transport + Send,
{
    let bc = adder();
    let eng = CompiledBitCircuit::compile_gmw(&bc);
    let bits = bc.pack_inputs(&[77, 11]);
    let (s0, s1) = share_bits(&bits, 5);
    let (sh0, sh1) = ([s0], [s1]);
    let (t0, t1) = PackedDealer::new(eng.stats().and_ops as usize, 1, 7).split();
    let (d0, d1) = make();
    let mut f0 = FaultTransport::new(d0);
    for &(at, f) in faults {
        f0 = f0.inject(at, f);
    }
    std::thread::scope(|s| {
        let h = s.spawn(|| Session::new(&eng, Role::P1, d1, t1).with_words(1).run(&sh1));
        let r0 = Session::new(&eng, Role::P0, f0, t0).with_words(1).run(&sh0);
        (r0, h.join().expect("party 1 thread"))
    })
}

fn duplex_pair() -> (Duplex, Duplex) {
    Duplex::pair_with_timeout(TIMEOUT)
}

fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let h = std::thread::spawn(move || TcpTransport::connect(addr, TIMEOUT).unwrap());
    let a = TcpTransport::accept(&listener, TIMEOUT).unwrap();
    (a, h.join().unwrap())
}

/// Every error a sabotaged wire may legitimately produce. Anything
/// outside this set (or an `Ok` with wrong outputs) is a protocol bug.
fn is_typed_wire_error(e: &MpcError) -> bool {
    matches!(
        e,
        MpcError::BadMagic
            | MpcError::BadVersion { .. }
            | MpcError::BadChecksum
            | MpcError::BadFrame(_)
            | MpcError::ShortRead
            | MpcError::PeerTimeout
            | MpcError::PeerClosed
            | MpcError::UnexpectedRound { .. }
            | MpcError::UnexpectedKind { .. }
            | MpcError::RoleMismatch { .. }
            | MpcError::TapeMismatch(_)
            | MpcError::Io(_)
    )
}

fn assert_both_fail_typed(name: &str, (r0, r1): TwoResults) {
    let e0 = r0.expect_err(&format!("{name}: party 0 must fail"));
    let e1 = r1.expect_err(&format!("{name}: party 1 must fail"));
    assert!(is_typed_wire_error(&e0), "{name}: party 0 untyped: {e0:?}");
    assert!(is_typed_wire_error(&e1), "{name}: party 1 untyped: {e1:?}");
}

/// For faults on the final Open frame: party 1 (the victim) must fail
/// typed, while party 0 — whose transcript was clean — may legitimately
/// finish with the correct answer (P1 sends its Open before decoding
/// P0's).
fn assert_victim_fails_typed(name: &str, (r0, r1): TwoResults, plain: &[bool]) {
    let e1 = r1.expect_err(&format!("{name}: party 1 must fail"));
    assert!(is_typed_wire_error(&e1), "{name}: party 1 untyped: {e1:?}");
    match r0 {
        Ok(out) => assert_eq!(
            out.results[0].as_ref().unwrap(),
            plain,
            "{name}: party 0 finished with a wrong answer"
        ),
        Err(e0) => assert!(is_typed_wire_error(&e0), "{name}: party 0 untyped: {e0:?}"),
    }
}

fn is_starved(e: &MpcError) -> bool {
    matches!(e, MpcError::PeerTimeout | MpcError::PeerClosed)
}

/// Frame indices of party 0's send stream: Hello = 0, then one
/// AndLevel per AND-bearing level, then Open.
fn frame_indices() -> (u64, u64) {
    let eng = CompiledBitCircuit::compile_gmw(&adder());
    let and_levels = eng.stats().and_levels as u64;
    (1, 1 + and_levels) // (first AndLevel, Open)
}

#[test]
fn no_fault_control_matches_plaintext() {
    let bc = adder();
    let plain = bc.evaluate(&bc.pack_inputs(&[77, 11])).unwrap();
    let (r0, r1) = run_with_faults(duplex_pair, &[]);
    assert_eq!(r0.unwrap().results[0].as_ref().unwrap(), &plain);
    assert_eq!(r1.unwrap().results[0].as_ref().unwrap(), &plain);
    let (r0, r1) = run_with_faults(tcp_pair, &[]);
    assert_eq!(r0.unwrap().results[0].as_ref().unwrap(), &plain);
    assert_eq!(r1.unwrap().results[0].as_ref().unwrap(), &plain);
}

#[test]
fn dropped_frame_times_out_typed() {
    let (and0, _) = frame_indices();
    let started = Instant::now();
    // Both parties starve — party 1 on the missing frame, party 0 on
    // the reply party 1 never sends. Whichever times out first closes
    // its end, so the other may observe PeerClosed instead.
    for make in 0..2 {
        let (r0, r1) = if make == 0 {
            run_with_faults(duplex_pair, &[(and0, Fault::Drop)])
        } else {
            run_with_faults(tcp_pair, &[(and0, Fault::Drop)])
        };
        for (party, e) in [(0, r0.unwrap_err()), (1, r1.unwrap_err())] {
            assert!(
                is_starved(&e),
                "party {party} got {e:?}, not a starvation error"
            );
        }
    }
    assert!(
        started.elapsed() < 4 * TIMEOUT + Duration::from_secs(2),
        "both runs bounded by the transport timeout"
    );
}

#[test]
fn duplicated_frame_is_an_unexpected_round() {
    let (and0, _) = frame_indices();
    let (r0, r1) = run_with_faults(duplex_pair, &[(and0, Fault::Duplicate)]);
    // The duplicate arrives where the *next* round's frame belongs.
    assert!(matches!(
        r1.unwrap_err(),
        MpcError::UnexpectedRound { .. } | MpcError::UnexpectedKind { .. }
    ));
    assert!(r0.is_err());
    assert_both_fail_typed(
        "tcp duplicate",
        run_with_faults(tcp_pair, &[(and0, Fault::Duplicate)]),
    );
}

#[test]
fn truncated_frame_is_a_short_read_or_timeout() {
    let (and0, open) = frame_indices();
    // Over Duplex the message arrives whole-but-short: a ShortRead.
    let (r0, r1) = run_with_faults(duplex_pair, &[(and0, Fault::Truncate(9))]);
    assert_eq!(r1.unwrap_err(), MpcError::ShortRead);
    assert!(r0.is_err());
    // Over TCP the stream stalls mid-frame: timeout (or short read if
    // the sender's side closes first).
    let (r0, r1) = run_with_faults(tcp_pair, &[(and0, Fault::Truncate(9))]);
    assert!(matches!(
        r1.unwrap_err(),
        MpcError::PeerTimeout | MpcError::ShortRead
    ));
    assert!(r0.is_err());
    // Truncating the final Open frame must not leave the peer hanging
    // either (party 0's transcript is clean at that point, so it may
    // finish — correctly).
    let plain = {
        let bc = adder();
        bc.evaluate(&bc.pack_inputs(&[77, 11])).unwrap()
    };
    assert_victim_fails_typed(
        "truncated open",
        run_with_faults(duplex_pair, &[(open, Fault::Truncate(30))]),
        &plain,
    );
}

#[test]
fn corrupted_payload_is_a_bad_checksum() {
    let (and0, open) = frame_indices();
    // Flip a payload byte (offset 25 is inside the payload).
    let (r0, r1) = run_with_faults(duplex_pair, &[(and0, Fault::Corrupt(25))]);
    assert_eq!(r1.unwrap_err(), MpcError::BadChecksum);
    assert!(r0.is_err());
    let (r0, r1) = run_with_faults(tcp_pair, &[(and0, Fault::Corrupt(25))]);
    assert_eq!(r1.unwrap_err(), MpcError::BadChecksum);
    assert!(r0.is_err());
    // Corrupting the final Open frame is equally fatal for the victim;
    // party 0's transcript is clean, so it may finish correctly.
    let plain = {
        let bc = adder();
        bc.evaluate(&bc.pack_inputs(&[77, 11])).unwrap()
    };
    assert_victim_fails_typed(
        "corrupt open",
        run_with_faults(duplex_pair, &[(open, Fault::Corrupt(25))]),
        &plain,
    );
}

#[test]
fn corrupted_magic_is_bad_magic() {
    let (and0, _) = frame_indices();
    let (r0, r1) = run_with_faults(duplex_pair, &[(and0, Fault::Corrupt(2))]);
    assert_eq!(r1.unwrap_err(), MpcError::BadMagic);
    assert!(r0.is_err());
    let (r0, r1) = run_with_faults(tcp_pair, &[(and0, Fault::Corrupt(2))]);
    assert_eq!(r1.unwrap_err(), MpcError::BadMagic);
    assert!(r0.is_err());
}

#[test]
fn reordered_frames_starve_the_exchange_typed() {
    // The protocol is strictly request-response: party 1 won't send
    // round r until it has round r's frame, so a held (reordered)
    // frame behaves exactly like a dropped one — both parties starve
    // within the timeout. A frame that *did* arrive out of order is
    // caught by the round counter instead (see
    // `duplicated_frame_is_an_unexpected_round` and the transport
    // unit tests).
    let (and0, _) = frame_indices();
    let (r0, r1) = run_with_faults(duplex_pair, &[(and0, Fault::Reorder)]);
    assert!(is_starved(&r0.unwrap_err()));
    assert!(is_starved(&r1.unwrap_err()));
    assert_both_fail_typed(
        "tcp reorder",
        run_with_faults(tcp_pair, &[(and0, Fault::Reorder)]),
    );
}

#[test]
fn sabotaged_hello_fails_before_any_secret_moves() {
    for fault in [Fault::Drop, Fault::Corrupt(25), Fault::Truncate(12)] {
        assert_both_fail_typed("hello fault", run_with_faults(duplex_pair, &[(0, fault)]));
    }
}

#[test]
fn every_fault_over_both_transports_never_hangs_or_lies() {
    let bc = adder();
    let plain = bc.evaluate(&bc.pack_inputs(&[77, 11])).unwrap();
    let (and0, open) = frame_indices();
    let faults = [
        Fault::Drop,
        Fault::Duplicate,
        Fault::Truncate(0),
        Fault::Truncate(23),
        Fault::Truncate(31),
        Fault::Corrupt(0),
        Fault::Corrupt(13),
        Fault::Corrupt(17),
        Fault::Reorder,
    ];
    for &at in &[0, and0, and0 + 1, open] {
        for &fault in &faults {
            for (name, run) in [
                ("duplex", run_with_faults(duplex_pair, &[(at, fault)])),
                ("tcp", run_with_faults(tcp_pair, &[(at, fault)])),
            ] {
                let (r0, r1) = run;
                for (party, r) in [(0, &r0), (1, &r1)] {
                    match r {
                        // A party the fault never reached may finish —
                        // but then its answer must be right (e.g. a
                        // Duplicate of the final Open frame leaves
                        // both transcripts decodable; a sabotaged
                        // Open still lets party 0 finish cleanly).
                        Ok(out) => {
                            assert_eq!(
                                out.results[0].as_ref().unwrap(),
                                &plain,
                                "{name} P{party} fault {fault:?}@{at}: wrong answer"
                            );
                        }
                        Err(e) => assert!(
                            is_typed_wire_error(e),
                            "{name} P{party} fault {fault:?}@{at}: untyped {e:?}"
                        ),
                    }
                }
            }
        }
    }
}
